//! Rack-scale determinism suite (public API surface).
//!
//! Two contracts the serving story depends on:
//!
//! 1. Traffic is a pure function of its seed: equal profiles yield
//!    bit-identical arrival/size streams, on every arrival process.
//! 2. A cluster run is a pure function of its configuration: the full
//!    [`ClusterReport`] — latency histogram, SLO counters, and every
//!    chip's report — is bit-identical across PDES worker counts
//!    {1, 4} × cycle_skip {on, off}, healthy or with a chaos plan on
//!    one chip.

use smarco::core::cluster::{BalancePolicy, Cluster, ClusterReport, FabricConfig, TrafficProfile};
use smarco::core::config::SmarcoConfig;
use smarco::core::fault::FaultPlan;

const SEED: u64 = 97;
const CHIPS: usize = 4;
const MAX_CYCLES: u64 = 10_000_000;

fn traffic() -> TrafficProfile {
    TrafficProfile::poisson(SEED, 2.0).slo(5_000).requests(80)
}

/// One cluster run at the given knob settings, drained to completion.
fn run(workers: usize, cycle_skip: bool, chaos: bool) -> ClusterReport {
    let chip = SmarcoConfig::tiny();
    let mut builder = Cluster::builder()
        .chips(CHIPS)
        .chip(chip.clone())
        .fabric(FabricConfig::datacenter())
        .traffic(traffic())
        .policy(BalancePolicy::LaxityAware)
        .workers(workers)
        .cycle_skip(cycle_skip);
    if chaos {
        builder = builder.fault_plan(0, FaultPlan::chaos(13, &chip));
    }
    let mut cluster = builder.build().expect("valid cluster");
    let report = cluster.run(MAX_CYCLES);
    assert!(
        cluster.is_done(),
        "cluster must drain (workers {workers}, skip {cycle_skip}, chaos {chaos})"
    );
    report
}

#[test]
fn seeded_poisson_traffic_is_reproducible() {
    let p = traffic();
    let a: Vec<_> = p.stream().collect();
    let b: Vec<_> = p.stream().collect();
    assert_eq!(a, b, "same seed must give the same stream");
    assert_eq!(a.len(), 80);
    let other: Vec<_> = TrafficProfile::poisson(SEED + 1, 2.0)
        .slo(5_000)
        .requests(80)
        .stream()
        .collect();
    assert_ne!(a, other, "a different seed must give a different stream");
}

#[test]
fn seeded_diurnal_traffic_is_reproducible() {
    let p = TrafficProfile::diurnal(SEED, 1.0, 6.0, 40_000).requests(200);
    let a: Vec<_> = p.stream().collect();
    let b: Vec<_> = p.stream().collect();
    assert_eq!(a, b);
}

#[test]
fn healthy_cluster_reports_are_bit_identical_across_workers_and_skip() {
    let baseline = run(1, true, false);
    assert_eq!(baseline.offered, 80);
    assert_eq!(baseline.completed, baseline.offered, "healthy run drains");
    for workers in [1, 4] {
        for cycle_skip in [false, true] {
            assert_eq!(
                run(workers, cycle_skip, false),
                baseline,
                "workers {workers}, cycle_skip {cycle_skip}"
            );
        }
    }
}

#[test]
fn chaos_cluster_reports_are_bit_identical_across_workers_and_skip() {
    let baseline = run(1, true, true);
    assert_eq!(baseline.offered, 80);
    for workers in [1, 4] {
        for cycle_skip in [false, true] {
            assert_eq!(
                run(workers, cycle_skip, true),
                baseline,
                "workers {workers}, cycle_skip {cycle_skip}"
            );
        }
    }
}
