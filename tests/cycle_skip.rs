//! The cycle-skipping contract: event-horizon fast-forwarding is a pure
//! wall-clock optimisation. For every HTC benchmark and every tested
//! worker count, a run with skipping enabled produces a bit-identical
//! [`SmarcoReport`] to one with skipping disabled — and on these
//! memory-bound workloads the skipper must actually engage (a skip ratio
//! of zero would mean the horizons never clear, i.e. the feature is dead).

use smarco::core::chip::SmarcoSystem;
use smarco::core::config::SmarcoConfig;
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

const THREADS_PER_CORE: usize = 2;
const INSTRS: u64 = 300;
const MAX_CYCLES: u64 = 10_000_000;

/// A small chip loaded with one benchmark's team-interleaved threads.
fn loaded(bench: Benchmark, workers: usize, cycle_skip: bool) -> SmarcoSystem {
    let mut cfg = SmarcoConfig::tiny();
    cfg.workers = workers;
    cfg.cycle_skip = cycle_skip;
    let mut sys = SmarcoSystem::builder().config(cfg).build().unwrap();
    let teams = sys.cores_len() * THREADS_PER_CORE;
    let mut seed = 11u64;
    for core in 0..sys.cores_len() {
        for t in 0..THREADS_PER_CORE {
            let lane = (core * THREADS_PER_CORE + t) as u64;
            let p =
                bench.thread_params(0x100_0000, 1 << 22, 0x8000_0000, lane, teams as u64, INSTRS);
            sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                .expect("vacant slot");
            seed += 1;
        }
    }
    sys
}

#[test]
fn skip_on_and_off_are_bit_identical_on_all_benchmarks() {
    for bench in Benchmark::ALL {
        let mut off_sys = loaded(bench, 1, false);
        let off = off_sys.run(MAX_CYCLES);
        assert!(off_sys.is_done(), "{} drained", bench.name());
        assert_eq!(off_sys.skipped_cycles(), 0, "skip-off run still skipped");
        for workers in [1, 4] {
            let mut on_sys = loaded(bench, workers, true);
            let on = on_sys.run(MAX_CYCLES);
            assert_eq!(
                on,
                off,
                "{} diverged with skip on at {workers} workers",
                bench.name()
            );
            assert!(
                on_sys.skipped_cycles() > 0,
                "{} at {workers} workers never skipped a cycle",
                bench.name()
            );
            // Counters partition the shard-cycles: nothing lost or
            // double-counted relative to the simulated span.
            let shards = (on_sys.config().noc.subrings + 1) as u64;
            assert_eq!(
                on_sys.stepped_cycles() + on_sys.skipped_cycles(),
                shards * on.cycles,
                "{} skip counters do not partition the run",
                bench.name()
            );
        }
    }
}
