//! Randomized (but fully deterministic) tests of the core data-structure
//! invariants. Inputs are generated from [`SimRng`] with fixed seeds, so
//! every run exercises the same cases — no external property-test
//! dependency, no shrinking, but the same invariants as a proptest suite.

use smarco::mem::cache::{Cache, CacheConfig};
use smarco::mem::mact::{Mact, MactConfig};
use smarco::mem::request::{MemRequest, RequestIdAllocator};
use smarco::mem::spm::Spm;
use smarco::noc::link::{LinkConfig, Transmittable};
use smarco::noc::ring::Ring;
use smarco::runtime::functional::map_reduce;
use smarco::sched::executor::{run_tasks, run_tasks_preemptive};
use smarco::sched::{DeadlineScheduler, FifoScheduler, LaxityAwareScheduler, Task, TaskScheduler};
use smarco::sim::rng::SimRng;
use smarco_isa::MemRef;

const TRIALS: u64 = 48;

#[derive(Debug, Clone, PartialEq)]
struct P(u32);
impl Transmittable for P {
    fn bytes(&self) -> u32 {
        self.0
    }
}

/// The MACT never loses or duplicates a request: every collected request
/// appears in exactly one batch; bypassed requests come back immediately.
#[test]
fn mact_conserves_requests() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x4d41_4354 + trial);
        let n = 1 + rng.gen_index(199);
        let threshold = 1 + rng.gen_range(63);
        let lines = 1 + rng.gen_index(31);
        let mut mact = Mact::new(MactConfig {
            lines,
            line_bytes: 64,
            threshold,
        });
        let mut ids = RequestIdAllocator::new();
        let mut issued = Vec::new();
        let mut seen = Vec::new();
        for i in 0..n {
            let bytes = 1u8 << rng.gen_range(4); // 1, 2, 4 or 8
            let addr = rng.gen_range(4096);
            let addr = addr - addr % u64::from(bytes); // aligned, no line crossing
            let req = MemRequest {
                id: ids.next_id(),
                core: 0,
                mem: MemRef::new(addr, bytes),
                is_write: rng.chance(0.5),
                issued_at: i as u64,
            };
            issued.push(req.id);
            match mact.offer(req, i as u64) {
                smarco::mem::MactOutcome::Bypass(r) => seen.push(r.id),
                smarco::mem::MactOutcome::Collected => {}
            }
            for b in mact.tick(i as u64) {
                seen.extend(b.requests.iter().map(|r| r.id));
            }
        }
        for b in mact.drain_all(n as u64) {
            seen.extend(b.requests.iter().map(|r| r.id));
        }
        seen.sort_unstable();
        issued.sort_unstable();
        assert_eq!(seen, issued, "trial {trial}");
        assert_eq!(mact.pending_requests(), 0, "trial {trial}");
    }
}

/// Every injected ring packet is delivered exactly once, at its exit.
#[test]
fn ring_delivers_exactly_once() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x5249_4e47 + trial);
        let routes = 1 + rng.gen_index(79);
        let mut ring: Ring<P> = Ring::new(12, LinkConfig::sub_ring());
        let mut expected = 0u64;
        let mut delivered = 0u64;
        for _ in 0..routes {
            let src = rng.gen_index(12);
            let dst = rng.gen_index(12);
            let bytes = 1 + rng.gen_range(63) as u32;
            expected += 1;
            if ring.inject(src, dst, P(bytes)).is_some() {
                delivered += 1; // src == dst delivers immediately
            }
        }
        for now in 0..20_000u64 {
            delivered += ring.tick(now).len() as u64;
            if ring.is_idle() {
                break;
            }
        }
        assert!(ring.is_idle(), "trial {trial}: ring drained");
        assert_eq!(delivered, expected, "trial {trial}");
    }
}

/// Cache residency: an accessed line probes present immediately after, and
/// the cache never reports more hits than accesses.
#[test]
fn cache_hits_are_consistent() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x4341_4348 + trial);
        let n = 1 + rng.gen_index(299);
        let mut c = Cache::new(CacheConfig {
            size_bytes: 2048,
            line_bytes: 64,
            ways: 2,
        });
        for _ in 0..n {
            let a = rng.gen_range(1 << 16);
            let _ = c.access(a, a.is_multiple_of(3));
            assert!(
                c.probe(a),
                "trial {trial}: line just accessed must be resident"
            );
        }
        let s = c.stats();
        assert!(s.accesses.hits() <= s.accesses.total());
        assert_eq!(s.accesses.total(), n as u64, "trial {trial}");
    }
}

/// SPM residency algebra: fills make ranges resident, eviction undoes.
#[test]
fn spm_residency_roundtrip() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x0053_504d + trial);
        let ranges = 1 + rng.gen_index(39);
        let mut spm = Spm::new();
        let cap = Spm::data_bytes();
        for _ in 0..ranges {
            let off = rng.gen_range(100_000) % (cap - 4096);
            let len = 1 + rng.gen_range(4095);
            spm.make_resident(off, len);
            assert!(spm.is_resident(off, len), "trial {trial}");
            spm.evict(off, len);
            assert!(!spm.is_resident(off, len.min(64)), "trial {trial}");
        }
    }
}

/// Every task completes exactly once with any scheduler, preemptive or not,
/// and no exit precedes arrival + work.
#[test]
fn executors_complete_every_task_once() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x4558_4543 + trial);
        let count = 1 + rng.gen_index(59);
        let slots = 1 + rng.gen_index(15);
        let quantum = 1 + rng.gen_range(1999);
        let tasks: Vec<Task> = (0..count)
            .map(|i| {
                Task::new(
                    i as u64,
                    (i as u64 % 7) * 10,
                    1_000_000,
                    1 + rng.gen_range(4999),
                )
            })
            .collect();
        let mut schedulers: Vec<Box<dyn TaskScheduler>> = vec![
            Box::new(FifoScheduler::new()),
            Box::new(DeadlineScheduler::new()),
            Box::new(LaxityAwareScheduler::new(256)),
        ];
        let which = rng.gen_index(schedulers.len());
        let sched = &mut *schedulers[which];
        let report = if quantum.is_multiple_of(2) {
            run_tasks_preemptive(sched, tasks.clone(), slots, quantum, u64::MAX / 2)
        } else {
            run_tasks(sched, tasks.clone(), slots, u64::MAX / 2)
        };
        assert_eq!(report.records.len(), tasks.len(), "trial {trial}");
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.task.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len(), "trial {trial}");
        for rec in &report.records {
            let orig = tasks.iter().find(|t| t.id == rec.task.id).expect("task");
            assert!(
                rec.exit >= orig.arrival + orig.work,
                "trial {trial}: task {} exits at {} before arrival {} + work {}",
                orig.id,
                rec.exit,
                orig.arrival,
                orig.work
            );
        }
    }
}

/// The functional MapReduce engine is partition-count invariant and agrees
/// with a direct fold.
#[test]
fn mapreduce_partition_invariance() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x4d41_5052 + trial);
        let n = 1 + rng.gen_index(99);
        let parts = 1 + rng.gen_index(15);
        let nums: Vec<u64> = (0..n).map(|_| rng.gen_range(1000)).collect();
        let by_parts = map_reduce(
            &nums,
            |&n| vec![(n % 10, n)],
            |_k, vs: &[u64]| vs.iter().sum(),
            parts,
        );
        let reference = map_reduce(
            &nums,
            |&n| vec![(n % 10, n)],
            |_k, vs: &[u64]| vs.iter().sum(),
            1,
        );
        assert_eq!(&by_parts, &reference, "trial {trial}");
        let direct: u64 = nums.iter().sum();
        let total: u64 = by_parts.values().sum();
        assert_eq!(total, direct, "trial {trial}");
    }
}

/// SimRng::gen_range stays in bounds for arbitrary seeds and bounds.
#[test]
fn rng_range_in_bounds() {
    let mut meta = SimRng::new(0x0052_4e47);
    for _ in 0..256 {
        let seed = meta.next_u64();
        let bound = 1 + meta.gen_range(1_000_000);
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            assert!(rng.gen_range(bound) < bound);
        }
    }
}
