//! Shape tests: every figure/table of the paper regenerated at quick scale
//! must show the paper's *qualitative* result — who wins, roughly by how
//! much, where the curves bend. These are the reproduction's acceptance
//! tests (EXPERIMENTS.md records the quantitative outputs).

use smarco_bench::figures;
use smarco_bench::Scale;
use smarco_workloads::Benchmark;

#[test]
fn fig01_starvation_rises_and_caches_miss() {
    let f = figures::fig01::run(Scale::Quick);
    for bench in figures::fig01::KERNELS {
        let rows: Vec<_> = f.pressure.iter().filter(|r| r.bench == bench).collect();
        // Fig. 1b: instruction starvation grows with oversubscription.
        let first = rows.first().expect("sweep rows").starvation_ratio;
        let last = rows.last().expect("sweep rows").starvation_ratio;
        assert!(
            last > first * 1.5,
            "{bench}: starvation {first:.3} → {last:.3}"
        );
        // Fig. 1a: issue resources are mostly idle throughout.
        assert!(
            rows.iter().all(|r| r.idle_ratio > 0.6),
            "{bench} idle too low"
        );
    }
    // Fig. 1c: every level misses substantially on HTC kernels.
    for c in &f.cache {
        assert!(
            c.miss_ratio[0] > 0.3,
            "{} L1 miss {:.3}",
            c.bench,
            c.miss_ratio[0]
        );
        assert!(
            c.miss_ratio[1] > 0.5,
            "{} L2 miss {:.3}",
            c.bench,
            c.miss_ratio[1]
        );
        assert!(
            c.miss_ratio[2] > 0.3,
            "{} LLC miss {:.3}",
            c.bench,
            c.miss_ratio[2]
        );
        // Fig. 1d: effective latency grows down the hierarchy.
        assert!(c.avg_latency[0] > 10.0);
    }
}

#[test]
fn fig02_cdn_is_nic_bound_and_cache_hostile() {
    let f = figures::fig02::run(Scale::Quick);
    assert_eq!(f.max_clients, 400);
    let at_cap = f
        .rows
        .iter()
        .find(|r| r.clients == 400)
        .expect("400-client row");
    assert!(
        at_cap.cpu_utilization < 0.10,
        "util {:.3}",
        at_cap.cpu_utilization
    );
    assert!(
        at_cap.branch_miss > 0.10,
        "branch miss {:.3}",
        at_cap.branch_miss
    );
    assert!(at_cap.l1_miss > 0.15, "L1 miss {:.3}", at_cap.l1_miss);
    // Utilization grows with clients up to the cap.
    assert!(f
        .rows
        .windows(2)
        .all(|w| w[1].cpu_utilization >= w[0].cpu_utilization));
}

#[test]
fn fig08_htc_granularity_is_finer_than_conventional() {
    let f = figures::fig08::run(Scale::Quick);
    let max_htc = f
        .rows
        .iter()
        .filter(|r| r.htc)
        .map(|r| r.mean_bytes)
        .fold(0.0f64, f64::max);
    let min_conv = f
        .rows
        .iter()
        .filter(|r| !r.htc)
        .map(|r| r.mean_bytes)
        .fold(f64::INFINITY, f64::min);
    assert!(
        max_htc < min_conv,
        "HTC max {max_htc:.1} vs conventional min {min_conv:.1}"
    );
    // Sampled fractions are proper distributions.
    for r in &f.rows {
        let sum: f64 = r.fractions.iter().sum();
        assert!(
            (sum - 1.0).abs() < 0.05,
            "{} fractions sum {sum:.3}",
            r.name
        );
    }
}

#[test]
fn fig17_ipc_scales_linearly_to_four_then_slowly() {
    let f = figures::fig17::run(Scale::Quick);
    for r in &f.rows {
        // Near-linear from 1 to 4 threads.
        assert!(r.ipc[3] > r.ipc[0] * 3.0, "{}: {:?}", r.bench, r.ipc);
        // Slower growth from 4 to 8 (friends only hide latency).
        let early = r.ipc[3] - r.ipc[0];
        let late = r.ipc[7] - r.ipc[3];
        assert!(
            late < early,
            "{}: late gain {late:.2} vs early {early:.2}",
            r.bench
        );
        // A 4-issue core never exceeds IPC 4.
        assert!(r.ipc.iter().all(|&v| v <= 4.0), "{}: {:?}", r.bench, r.ipc);
    }
}

#[test]
fn fig18_slicing_helps_most_where_packets_are_smallest() {
    let f = figures::fig18::run(Scale::Quick);
    let impr = |b: Benchmark| {
        f.rows
            .iter()
            .find(|r| r.bench == b)
            .expect("row")
            .improvement(2)
    };
    // Everyone gains from 16 B → 2 B slices.
    for r in &f.rows {
        assert!(
            r.improvement(2) > 1.05,
            "{} gains {:.2}",
            r.bench,
            r.improvement(2)
        );
        // Monotone (allowing tiny noise): finer slices never hurt.
        assert!(r.improvement(4) <= r.improvement(2) * 1.02, "{}", r.bench);
    }
    // KMP and RNC (1–2 B packets) gain the most; K-means the least and is
    // nearly flat below 8 B (§4.2.2).
    let kmeans = f
        .rows
        .iter()
        .find(|r| r.bench == Benchmark::KMeans)
        .expect("row");
    for b in [Benchmark::Kmp, Benchmark::Rnc] {
        assert!(impr(b) > impr(Benchmark::KMeans) * 1.5, "{b} vs K-means");
    }
    let kmeans_tail = kmeans.at(2) / kmeans.at(4);
    assert!(kmeans_tail < 1.05, "K-means 4B→2B gain {kmeans_tail:.3}");
}

#[test]
fn fig19_threshold_sweet_spot_is_interior() {
    let f = figures::fig19::run(Scale::Quick);
    for r in &f.rows {
        // 4 cycles is too short to collect anything for most benchmarks.
        let s4 = r.speedup_norm8(4);
        let s16 = r.speedup_norm8(16);
        assert!(
            s16 >= s4 * 0.98,
            "{}: 16cy {s16:.3} vs 4cy {s4:.3}",
            r.bench
        );
    }
    // The best threshold is interior (not the shortest).
    let best = f.best_threshold();
    assert!(best >= 8, "best threshold {best}");
    // At least some benchmarks decline again at 64 (read-latency cost).
    let declining = f
        .rows
        .iter()
        .filter(|r| r.speedup_norm8(64) < r.speedup_norm8(best))
        .count();
    assert!(declining >= 2, "only {declining} benchmarks decline at 64");
}

#[test]
fn fig20_mact_wins_where_requests_are_small_and_dense() {
    let f = figures::fig20::run(Scale::Quick);
    // Request counts drop for everyone; most benchmarks speed up.
    for r in &f.rows {
        assert!(
            r.request_ratio < 1.0,
            "{}: requests {:.3}",
            r.bench,
            r.request_ratio
        );
    }
    let wins = f.rows.iter().filter(|r| r.speedup > 1.0).count();
    assert!(wins >= 4, "only {wins} of 6 speed up");
    // K-means benefits least (large accesses, nothing to merge).
    let kmeans = f
        .rows
        .iter()
        .find(|r| r.bench == Benchmark::KMeans)
        .expect("row");
    let better = f.rows.iter().filter(|r| r.speedup > kmeans.speedup).count();
    assert!(better >= 4, "K-means should be near the bottom");
}

#[test]
fn fig21_laxity_scheduler_tightens_exits_and_meets_deadlines() {
    let f = figures::fig21::run(Scale::Quick);
    assert!(f.hardware.exit_spread() < f.software.exit_spread() / 3);
    assert!(f.hardware.success_rate() > f.software.success_rate());
    assert!(
        (f.hardware.success_rate() - 1.0).abs() < 1e-9,
        "hardware meets every deadline"
    );
    // The hardware's earliest exit is *later* — it spends slack on the
    // stragglers (the paper's explicit observation).
    assert!(f.hardware.exit_range().0 > f.software.exit_range().0);
    assert_eq!(f.software.records.len(), 128);
    assert_eq!(f.hardware.records.len(), 128);
}

#[test]
fn fig22_smarco_beats_xeon_on_performance_and_efficiency() {
    let f = figures::fig22::run(Scale::Quick);
    assert_eq!(f.rows.len(), 6);
    // Quick scale is a 16-core chip against a 4-core Xeon (a 2.7× peak
    // ratio); the win must exceed what raw resources explain on average.
    assert!(f.avg_speedup() > 1.5, "avg speedup {:.2}", f.avg_speedup());
    assert!(
        f.avg_efficiency() > 1.5,
        "avg efficiency {:.2}",
        f.avg_efficiency()
    );
    let winning = f.rows.iter().filter(|r| r.speedup > 1.0).count();
    assert!(winning >= 5, "{winning} of 6 benchmarks win");
}

#[test]
fn fig23_xeon_peaks_then_declines_and_smarco_crosses() {
    let f = figures::fig23::run(Scale::Quick);
    let peak = f.xeon_peak_threads();
    // Xeon peaks near its hardware context count (8 on the small config).
    assert!((4..=32).contains(&peak), "xeon peak at {peak}");
    // …and has lost at least 30% of its peak at the sweep's end.
    let peak_ips = f.rows.iter().map(|r| r.xeon_ips).fold(0.0f64, f64::max);
    let end = f.rows.last().expect("rows").xeon_ips;
    assert!(
        end < peak_ips * 0.7,
        "xeon end {end:.2e} vs peak {peak_ips:.2e}"
    );
    // SmarCo starts below the Xeon, crosses it, and ends on top.
    assert!(f.rows[0].smarco_ips < f.rows[0].xeon_ips);
    let cross = f.crossover_threads().expect("smarco should cross");
    assert!(cross > peak / 2, "crossover at {cross}");
    let last = f.rows.last().expect("rows");
    assert!(last.smarco_ips > last.xeon_ips * 2.0);
}

#[test]
fn fig26_prototype_is_efficient_but_less_than_full_chip() {
    let f26 = figures::fig26::run(Scale::Quick);
    let f22 = figures::fig22::run(Scale::Quick);
    assert!(
        f26.avg_efficiency() > 1.0,
        "prototype EE {:.2}",
        f26.avg_efficiency()
    );
    // The 40 nm, 256-thread prototype gains less than the full design
    // (paper: 3.85× vs 6.95×).
    assert!(
        f26.avg_efficiency() < f22.avg_efficiency(),
        "prototype {:.2} vs full {:.2}",
        f26.avg_efficiency(),
        f22.avg_efficiency()
    );
}

#[test]
fn table1_matches_paper_totals() {
    let est = figures::table1::run(Scale::Quick);
    assert!(
        (est.total_area_mm2() - 751.0).abs() < 8.0,
        "area {:.1}",
        est.total_area_mm2()
    );
    assert!(
        (est.total_power_w() - 240.09).abs() < 2.5,
        "power {:.2}",
        est.total_power_w()
    );
    // Cores dominate both budgets, as in the paper.
    let cores = est.component("Cores").expect("cores row");
    assert!(cores.area_mm2 / est.total_area_mm2() > 0.8);
    assert!(cores.power_w / est.total_power_w() > 0.8);
}

#[test]
fn table2_lists_both_machines() {
    let t = figures::table2::run(Scale::Quick);
    let text = t.to_string();
    assert!(text.contains("256 cores, 2048 threads"));
    assert!(text.contains("24 cores, 48 threads"));
    assert!(text.contains("136.5 GB/s"));
    assert!(text.contains("85.0 GB/s"));
}

// ---- Ablations (design choices the paper argues qualitatively) ----

#[test]
fn ablation_ring_is_more_predictable_than_mesh() {
    let a = figures::ablations::mesh_vs_ring(Scale::Quick);
    // The paper's §3.2 claim is predictability, not raw latency: the
    // ring's worst case stays close to its mean.
    let ring_spread = a.ring_max / a.ring_mean.max(1e-9);
    let mesh_spread = a.mesh_max / a.mesh_mean.max(1e-9);
    assert!(
        ring_spread < mesh_spread,
        "ring {ring_spread:.2} vs mesh {mesh_spread:.2}"
    );
    assert!(a.ring_throughput > 0.0 && a.mesh_throughput > 0.0);
}

#[test]
fn ablation_inpair_always_helps_memory_bound_threads() {
    let rows = figures::ablations::inpair_ablation(Scale::Quick);
    for r in &rows {
        assert!(
            r.full >= r.no_inpair * 0.99,
            "{}: in-pair never hurts",
            r.bench
        );
        assert!(r.full >= r.no_iseg * 0.98, "{}: iseg never hurts", r.bench);
    }
    // The memory-heaviest benchmark gains the most from pairing.
    let rnc = rows
        .iter()
        .find(|r| r.bench == Benchmark::Rnc)
        .expect("row");
    assert!(rnc.full / rnc.no_inpair > 1.2, "RNC pairing gain");
}

#[test]
fn ablation_spm_staging_pays_for_most_benchmarks() {
    let rows = figures::ablations::staging_ablation(Scale::Quick);
    let wins = rows
        .iter()
        .filter(|r| r.unstaged_cycles as f64 / r.staged_cycles as f64 > 1.2)
        .count();
    assert!(
        wins >= 4,
        "{wins} of 6 benchmarks should gain ≥1.2x from staging"
    );
    // Staging slashes DRAM traffic across the board.
    for r in &rows {
        assert!(
            r.staged_requests < r.unstaged_requests,
            "{}: staged {} vs unstaged {}",
            r.bench,
            r.staged_requests,
            r.unstaged_requests
        );
    }
}

#[test]
fn ablation_pim_offload_wins_on_streaming_matches() {
    let r = figures::ablations::pim_matching(Scale::Quick);
    // §7's premise: fixed-pattern scans should not drag the whole text
    // across the channel — offload wins by an order of magnitude and
    // collapses channel traffic to a handful of commands.
    assert!(r.speedup() > 5.0, "offload speedup {:.1}", r.speedup());
    assert!(
        r.pim_commands * 100 < r.core_dram_requests,
        "{} commands vs {} requests",
        r.pim_commands,
        r.core_dram_requests
    );
}
