//! The sharded chip's determinism contract: running `SmarcoSystem` with
//! any number of PDES worker threads produces a bit-identical
//! [`SmarcoReport`] to the sequential run — on every HTC benchmark, and
//! with the observability layer on or off. Shard interactions travel as
//! `(timestamp, sender, sequence)`-ordered boundary messages, so host
//! thread interleaving can never leak into simulated state.

use smarco::core::chip::SmarcoSystem;
use smarco::core::config::SmarcoConfig;
use smarco::core::fault::FaultPlan;
use smarco::core::report::SmarcoReport;
use smarco::sim::obs::ObsConfig;
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

const THREADS_PER_CORE: usize = 2;
const INSTRS: u64 = 300;
const MAX_CYCLES: u64 = 10_000_000;

/// A small chip loaded with one benchmark's team-interleaved threads.
fn loaded(bench: Benchmark, workers: usize, obs: ObsConfig) -> SmarcoSystem {
    let mut cfg = SmarcoConfig::tiny();
    cfg.workers = workers;
    cfg.obs = obs;
    let mut sys = SmarcoSystem::builder().config(cfg).build().unwrap();
    let teams = sys.cores_len() * THREADS_PER_CORE;
    let mut seed = 11u64;
    for core in 0..sys.cores_len() {
        for t in 0..THREADS_PER_CORE {
            let lane = (core * THREADS_PER_CORE + t) as u64;
            let p =
                bench.thread_params(0x100_0000, 1 << 22, 0x8000_0000, lane, teams as u64, INSTRS);
            sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                .expect("vacant slot");
            seed += 1;
        }
    }
    sys
}

#[test]
fn every_worker_count_matches_sequential_on_all_benchmarks() {
    for bench in Benchmark::ALL {
        let mut seq_sys = loaded(bench, 1, ObsConfig::off());
        let seq = seq_sys.run(MAX_CYCLES);
        assert!(seq_sys.is_done(), "{} drained", bench.name());
        assert!(seq.instructions > 0 && seq.requests > 0);
        // 16 workers exceeds the tiny chip's 5 shards — the engine clamps,
        // exercising the workers >= shards path too.
        for workers in [2, 4, 16] {
            let par = loaded(bench, workers, ObsConfig::off()).run(MAX_CYCLES);
            assert_eq!(par, seq, "{} diverged at {workers} workers", bench.name());
        }
    }
}

/// One wordcount run under a seeded chaos plan — the adversarial case for
/// the mailbox exchange, since faults add retries, quarantines, and
/// redispatch traffic across shard boundaries.
fn chaos_loaded(workers: usize) -> SmarcoReport {
    let mut cfg = SmarcoConfig::tiny();
    cfg.workers = workers;
    let plan = FaultPlan::chaos(23, &cfg);
    let mut sys = SmarcoSystem::builder()
        .config(cfg)
        .fault_plan(plan)
        .build()
        .expect("valid config");
    let teams = sys.cores_len() * THREADS_PER_CORE;
    let mut seed = 11u64;
    for core in 0..sys.cores_len() {
        for t in 0..THREADS_PER_CORE {
            let lane = (core * THREADS_PER_CORE + t) as u64;
            let p = Benchmark::WordCount.thread_params(
                0x100_0000,
                1 << 22,
                0x8000_0000,
                lane,
                teams as u64,
                INSTRS,
            );
            sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                .expect("vacant slot");
            seed += 1;
        }
    }
    let report = sys.run(MAX_CYCLES);
    assert!(sys.is_done(), "chip drained under chaos");
    report
}

#[test]
fn oversubscribed_and_odd_worker_counts_match_under_chaos() {
    // The exchange path must hold up when worker groups split the shards
    // unevenly (3), when workers exceed the shard count (8), and when
    // they exceed the *host's* parallelism outright (2x the CPU count),
    // where the adaptive barrier falls back to yield-on-every-check. The
    // degradation section is part of `SmarcoReport`'s equality, so fault
    // damage and recovery must also be bit-identical.
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let baseline = chaos_loaded(1);
    assert!(
        !baseline.degradation.is_clean(),
        "chaos plan did no damage: {:?}",
        baseline.degradation
    );
    for workers in [3, 8, 2 * host_cpus] {
        let run = chaos_loaded(workers);
        assert_eq!(run, baseline, "diverged at workers={workers}");
    }
}

#[test]
fn parallel_observed_run_matches_sequential_unobserved() {
    let seq = loaded(Benchmark::TeraSort, 1, ObsConfig::off()).run(MAX_CYCLES);
    let mut sys = loaded(Benchmark::TeraSort, 4, ObsConfig::full(5_000));
    let par = sys.run(MAX_CYCLES);
    assert_eq!(par, seq, "observability or parallelism touched the chip");
    // The observed parallel run still captured real observations.
    assert!(sys.trace().expect("tracing enabled").total() > 0);
    assert!(!sys
        .metrics()
        .expect("sampling enabled")
        .windows()
        .is_empty());
}
