//! The sharded chip's determinism contract: running `SmarcoSystem` with
//! any number of PDES worker threads produces a bit-identical
//! [`SmarcoReport`] to the sequential run — on every HTC benchmark, and
//! with the observability layer on or off. Shard interactions travel as
//! `(timestamp, sender, sequence)`-ordered boundary messages, so host
//! thread interleaving can never leak into simulated state.

use smarco::core::chip::SmarcoSystem;
use smarco::core::config::SmarcoConfig;
use smarco::sim::obs::ObsConfig;
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

const THREADS_PER_CORE: usize = 2;
const INSTRS: u64 = 300;
const MAX_CYCLES: u64 = 10_000_000;

/// A small chip loaded with one benchmark's team-interleaved threads.
fn loaded(bench: Benchmark, workers: usize, obs: ObsConfig) -> SmarcoSystem {
    let mut cfg = SmarcoConfig::tiny();
    cfg.workers = workers;
    cfg.obs = obs;
    let mut sys = SmarcoSystem::builder().config(cfg).build().unwrap();
    let teams = sys.cores_len() * THREADS_PER_CORE;
    let mut seed = 11u64;
    for core in 0..sys.cores_len() {
        for t in 0..THREADS_PER_CORE {
            let lane = (core * THREADS_PER_CORE + t) as u64;
            let p =
                bench.thread_params(0x100_0000, 1 << 22, 0x8000_0000, lane, teams as u64, INSTRS);
            sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                .expect("vacant slot");
            seed += 1;
        }
    }
    sys
}

#[test]
fn every_worker_count_matches_sequential_on_all_benchmarks() {
    for bench in Benchmark::ALL {
        let mut seq_sys = loaded(bench, 1, ObsConfig::off());
        let seq = seq_sys.run(MAX_CYCLES);
        assert!(seq_sys.is_done(), "{} drained", bench.name());
        assert!(seq.instructions > 0 && seq.requests > 0);
        // 16 workers exceeds the tiny chip's 5 shards — the engine clamps,
        // exercising the workers >= shards path too.
        for workers in [2, 4, 16] {
            let par = loaded(bench, workers, ObsConfig::off()).run(MAX_CYCLES);
            assert_eq!(par, seq, "{} diverged at {workers} workers", bench.name());
        }
    }
}

#[test]
fn parallel_observed_run_matches_sequential_unobserved() {
    let seq = loaded(Benchmark::TeraSort, 1, ObsConfig::off()).run(MAX_CYCLES);
    let mut sys = loaded(Benchmark::TeraSort, 4, ObsConfig::full(5_000));
    let par = sys.run(MAX_CYCLES);
    assert_eq!(par, seq, "observability or parallelism touched the chip");
    // The observed parallel run still captured real observations.
    assert!(sys.trace().expect("tracing enabled").total() > 0);
    assert!(!sys
        .metrics()
        .expect("sampling enabled")
        .windows()
        .is_empty());
}
