//! The self-profiling contract: host-side profiling of the PDES engine is
//! pure observation. For every HTC benchmark, a profiled run produces a
//! bit-identical [`SmarcoReport`] to an unprofiled one — across worker
//! counts and with cycle skipping on or off — while the profile itself
//! accounts for every measured nanosecond (the named phase buckets plus
//! the remainder sum to the total exactly).

use smarco::core::chip::SmarcoSystem;
use smarco::core::config::{ProfConfig, SmarcoConfig};
use smarco::sim::prof::HostPhase;
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

const THREADS_PER_CORE: usize = 2;
const INSTRS: u64 = 300;
const MAX_CYCLES: u64 = 10_000_000;

/// A small chip loaded with one benchmark's team-interleaved threads.
fn loaded(bench: Benchmark, workers: usize, cycle_skip: bool, prof: ProfConfig) -> SmarcoSystem {
    let mut cfg = SmarcoConfig::tiny();
    cfg.workers = workers;
    cfg.cycle_skip = cycle_skip;
    cfg.prof = prof;
    let mut sys = SmarcoSystem::builder().config(cfg).build().unwrap();
    let teams = sys.cores_len() * THREADS_PER_CORE;
    let mut seed = 11u64;
    for core in 0..sys.cores_len() {
        for t in 0..THREADS_PER_CORE {
            let lane = (core * THREADS_PER_CORE + t) as u64;
            let p =
                bench.thread_params(0x100_0000, 1 << 22, 0x8000_0000, lane, teams as u64, INSTRS);
            sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                .expect("vacant slot");
            seed += 1;
        }
    }
    sys
}

#[test]
fn profiling_is_result_neutral_on_all_benchmarks() {
    for bench in Benchmark::ALL {
        for cycle_skip in [true, false] {
            let mut plain_sys = loaded(bench, 1, cycle_skip, ProfConfig::off());
            let plain = plain_sys.run(MAX_CYCLES);
            assert!(plain_sys.is_done(), "{} drained", bench.name());
            assert!(
                plain_sys.profile_report().is_none(),
                "unprofiled run produced a profile"
            );
            for workers in [1, 4] {
                let mut prof_sys = loaded(bench, workers, cycle_skip, ProfConfig::on());
                let profiled = prof_sys.run(MAX_CYCLES);
                assert_eq!(
                    profiled,
                    plain,
                    "{} diverged under profiling at {workers} workers \
                     (cycle_skip={cycle_skip})",
                    bench.name()
                );
                let report = prof_sys.profile_report().expect("profile present");
                // Every measured nanosecond is attributed: the named
                // buckets plus each worker's remainder sum to the total
                // exactly (not within a tolerance).
                assert_eq!(
                    report.phases().total(),
                    report.total_ns(),
                    "{} phase buckets do not partition the run",
                    bench.name()
                );
                for w in &report.workers {
                    assert_eq!(w.named_ns() + w.other_ns(), w.busy_ns);
                }
                assert!(
                    report.phases().get(HostPhase::Step) > 0,
                    "{} spent no time stepping",
                    bench.name()
                );
            }
        }
    }
}

#[test]
fn profile_telemetry_matches_engine_counters() {
    let mut sys = loaded(Benchmark::WordCount, 4, true, ProfConfig::on());
    let r = sys.run(MAX_CYCLES);
    assert!(sys.is_done());
    let report = sys.profile_report().expect("profile present");
    // Per-shard window counts partition the boundary count.
    for s in &report.shards {
        assert_eq!(
            s.windows_stepped + s.windows_skipped,
            report.telemetry.windows
        );
    }
    // Default stride samples every window, so the occupancy histogram
    // covers them all.
    assert_eq!(report.telemetry.sampled_windows, report.telemetry.windows);
    assert_eq!(
        report.telemetry.occupancy.iter().sum::<u64>(),
        report.telemetry.sampled_windows
    );
    // The facade substitutes the chip's shard names.
    assert_eq!(report.shard_names.len(), report.shards.len());
    assert!(report.shard_names.iter().any(|n| n == "hub"));
    assert!(report.shard_names.iter().any(|n| n == "sub-ring0"));
    // With 4 workers the run took the parallel path and measured
    // barrier-arrival spread.
    assert_eq!(report.parallel.windows, report.telemetry.windows);
    assert!(report.telemetry.spread.count() > 0);
    assert!(r.cycles > 0);
}

#[test]
fn profile_exports_are_written_alongside_the_run() {
    let dir = std::env::temp_dir().join(format!("smarco_prof_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("profile.json");
    let mut cfg = SmarcoConfig::tiny();
    cfg.workers = 2;
    let mut sys = SmarcoSystem::builder()
        .config(cfg)
        .profile_to(&json)
        .build()
        .unwrap();
    let teams = sys.cores_len();
    for core in 0..sys.cores_len() {
        let p = Benchmark::Kmp.thread_params(
            0x100_0000,
            1 << 22,
            0x8000_0000,
            core as u64,
            teams as u64,
            INSTRS,
        );
        sys.attach(
            core,
            Box::new(HtcStream::new(p, SimRng::new(core as u64 + 1))),
        )
        .expect("vacant slot");
    }
    let _ = sys.run(MAX_CYCLES);
    assert!(sys.is_done());
    let body = std::fs::read_to_string(&json).expect("JSON export written");
    assert!(
        body.starts_with('{') && body.contains("\"phases\""),
        "{body}"
    );
    let folded = std::fs::read_to_string(json.with_extension("folded")).expect("folded export");
    assert!(
        folded.lines().any(|l| l.starts_with("smarco-sim;")),
        "{folded}"
    );
    let trace = std::fs::read_to_string(json.with_extension("trace.json")).expect("chrome export");
    assert!(
        trace.contains("\"traceEvents\"") && trace.contains("host-workers"),
        "{trace}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
