//! Property-based tests of the core data-structure invariants.

use proptest::prelude::*;

use smarco::mem::cache::{Cache, CacheConfig};
use smarco::mem::mact::{Mact, MactConfig};
use smarco::mem::request::{MemRequest, RequestIdAllocator};
use smarco::mem::spm::Spm;
use smarco::noc::link::{LinkConfig, Transmittable};
use smarco::noc::ring::Ring;
use smarco::runtime::functional::map_reduce;
use smarco::sched::executor::{run_tasks, run_tasks_preemptive};
use smarco::sched::{DeadlineScheduler, FifoScheduler, LaxityAwareScheduler, Task, TaskScheduler};
use smarco::sim::rng::SimRng;
use smarco_isa::MemRef;

#[derive(Debug, Clone, PartialEq)]
struct P(u32);
impl Transmittable for P {
    fn bytes(&self) -> u32 {
        self.0
    }
}

proptest! {
    /// The MACT never loses or duplicates a request: every collected
    /// request appears in exactly one batch; bypassed requests come back
    /// immediately.
    #[test]
    fn mact_conserves_requests(
        addrs in prop::collection::vec((0u64..4096, 1u8..=8, any::<bool>()), 1..200),
        threshold in 1u64..64,
        lines in 1usize..32,
    ) {
        let mut mact = Mact::new(MactConfig { lines, line_bytes: 64, threshold });
        let mut ids = RequestIdAllocator::new();
        let mut issued = Vec::new();
        let mut seen = Vec::new();
        for (i, &(addr, bytes, is_write)) in addrs.iter().enumerate() {
            let addr = addr - addr % u64::from(bytes); // aligned, no line crossing
            let req = MemRequest {
                id: ids.next_id(),
                core: 0,
                mem: MemRef::new(addr, bytes),
                is_write,
                issued_at: i as u64,
            };
            issued.push(req.id);
            match mact.offer(req, i as u64) {
                smarco::mem::MactOutcome::Bypass(r) => seen.push(r.id),
                smarco::mem::MactOutcome::Collected => {}
            }
            for b in mact.tick(i as u64) {
                seen.extend(b.requests.iter().map(|r| r.id));
            }
        }
        for b in mact.drain_all(addrs.len() as u64) {
            seen.extend(b.requests.iter().map(|r| r.id));
        }
        seen.sort_unstable();
        issued.sort_unstable();
        prop_assert_eq!(seen, issued);
        prop_assert_eq!(mact.pending_requests(), 0);
    }

    /// Every injected ring packet is delivered exactly once, at its exit.
    #[test]
    fn ring_delivers_exactly_once(
        routes in prop::collection::vec((0usize..12, 0usize..12, 1u32..64), 1..80),
    ) {
        let mut ring: Ring<P> = Ring::new(12, LinkConfig::sub_ring());
        let mut expected = 0u64;
        let mut delivered = 0u64;
        for &(src, dst, bytes) in &routes {
            expected += 1;
            if ring.inject(src, dst, P(bytes)).is_some() {
                delivered += 1; // src == dst delivers immediately
            }
        }
        for now in 0..20_000u64 {
            delivered += ring.tick(now).len() as u64;
            if ring.is_idle() {
                break;
            }
        }
        prop_assert!(ring.is_idle(), "ring drained");
        prop_assert_eq!(delivered, expected);
    }

    /// Cache residency: an accessed line probes present immediately after,
    /// and the cache never reports more hits than accesses.
    #[test]
    fn cache_hits_are_consistent(addrs in prop::collection::vec(0u64..1u64 << 16, 1..300)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 2048, line_bytes: 64, ways: 2 });
        for &a in &addrs {
            let _ = c.access(a, a % 3 == 0);
            prop_assert!(c.probe(a), "line just accessed must be resident");
        }
        let s = c.stats();
        prop_assert!(s.accesses.hits() <= s.accesses.total());
        prop_assert_eq!(s.accesses.total(), addrs.len() as u64);
    }

    /// SPM residency algebra: fills make ranges resident, eviction undoes.
    #[test]
    fn spm_residency_roundtrip(
        ranges in prop::collection::vec((0u64..100_000, 1u64..4096), 1..40),
    ) {
        let mut spm = Spm::new();
        let cap = Spm::data_bytes();
        for &(off, len) in &ranges {
            let off = off % (cap - 4096);
            spm.make_resident(off, len);
            prop_assert!(spm.is_resident(off, len));
            spm.evict(off, len);
            prop_assert!(!spm.is_resident(off, len.min(64)));
        }
    }

    /// Every task completes exactly once with any scheduler, preemptive or
    /// not, and no exit precedes arrival + work.
    #[test]
    fn executors_complete_every_task_once(
        works in prop::collection::vec(1u64..5000, 1..60),
        slots in 1usize..16,
        quantum in 1u64..2000,
        which in 0usize..3,
    ) {
        let tasks: Vec<Task> = works
            .iter()
            .enumerate()
            .map(|(i, &w)| Task::new(i as u64, (i as u64 % 7) * 10, 1_000_000, w))
            .collect();
        let mut schedulers: Vec<Box<dyn TaskScheduler>> = vec![
            Box::new(FifoScheduler::new()),
            Box::new(DeadlineScheduler::new()),
            Box::new(LaxityAwareScheduler::new(256)),
        ];
        let sched = &mut *schedulers[which];
        let report = if quantum % 2 == 0 {
            run_tasks_preemptive(sched, tasks.clone(), slots, quantum, u64::MAX / 2)
        } else {
            run_tasks(sched, tasks.clone(), slots, u64::MAX / 2)
        };
        prop_assert_eq!(report.records.len(), tasks.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.task.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), tasks.len());
        for rec in &report.records {
            let orig = tasks.iter().find(|t| t.id == rec.task.id).expect("task");
            prop_assert!(rec.exit >= orig.arrival + orig.work,
                "task {} exits at {} before arrival {} + work {}",
                orig.id, rec.exit, orig.arrival, orig.work);
        }
    }

    /// The functional MapReduce engine is partition-count invariant and
    /// agrees with a direct fold.
    #[test]
    fn mapreduce_partition_invariance(
        nums in prop::collection::vec(0u64..1000, 1..100),
        parts in 1usize..16,
    ) {
        let by_parts = map_reduce(&nums, |&n| vec![(n % 10, n)], |_k, vs: &[u64]| vs.iter().sum(), parts);
        let reference = map_reduce(&nums, |&n| vec![(n % 10, n)], |_k, vs: &[u64]| vs.iter().sum(), 1);
        prop_assert_eq!(&by_parts, &reference);
        let direct: u64 = nums.iter().sum();
        let total: u64 = by_parts.values().sum();
        prop_assert_eq!(total, direct);
    }

    /// SimRng::gen_range stays in bounds for arbitrary seeds and bounds.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }
}
