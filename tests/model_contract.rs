//! The horizon contract's two faces agree: `SmarcoSystem` installs the
//! config-derived [`HorizonContract`] on its PDES engine by default, so
//! every debug-build run cross-checks each boundary envelope against the
//! same floors the static verifier reasons about (`SL0421`). The checker
//! must be observation-only — a checked run's report is bit-identical to
//! an unchecked one on every HTC benchmark — and the static side must be
//! clean on exactly the configurations the dynamic side runs green.

use smarco::core::chip::SmarcoSystem;
use smarco::core::config::SmarcoConfig;
use smarco::core::contract::horizon_contract;
use smarco::lint::{lint_model, ModelInput};
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

const THREADS_PER_CORE: usize = 2;
const INSTRS: u64 = 300;
const MAX_CYCLES: u64 = 10_000_000;

/// A small chip loaded with one benchmark's team-interleaved threads.
fn loaded(bench: Benchmark, workers: usize) -> SmarcoSystem {
    let mut cfg = SmarcoConfig::tiny();
    cfg.workers = workers;
    let mut sys = SmarcoSystem::builder().config(cfg).build().unwrap();
    let teams = sys.cores_len() * THREADS_PER_CORE;
    let mut seed = 11u64;
    for core in 0..sys.cores_len() {
        for t in 0..THREADS_PER_CORE {
            let lane = (core * THREADS_PER_CORE + t) as u64;
            let p =
                bench.thread_params(0x100_0000, 1 << 22, 0x8000_0000, lane, teams as u64, INSTRS);
            sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                .expect("vacant slot");
            seed += 1;
        }
    }
    sys
}

#[test]
fn checked_runs_are_bit_identical_to_unchecked_on_all_benchmarks() {
    for bench in Benchmark::ALL {
        // Default build: contract installed, debug assertions verify every
        // boundary envelope. A panic here is a broken horizon promise.
        let mut checked_sys = loaded(bench, 4);
        let checked = checked_sys.run(MAX_CYCLES);
        assert!(checked_sys.is_done(), "{} drained", bench.name());
        assert!(checked.instructions > 0 && checked.requests > 0);
        // Same chip with the checker removed: observation-only means the
        // reports cannot differ in a single bit.
        let mut unchecked_sys = loaded(bench, 4);
        unchecked_sys.set_contract_checking(false);
        let unchecked = unchecked_sys.run(MAX_CYCLES);
        assert_eq!(
            checked,
            unchecked,
            "{}: the contract checker perturbed the simulation",
            bench.name()
        );
    }
}

#[test]
fn static_and_dynamic_checks_share_one_predicate() {
    // The object the lint pass evaluates is the object the engine
    // enforces: derived once, from the same config.
    let cfg = SmarcoConfig::tiny();
    let from_static = horizon_contract(&cfg);
    let from_engine = horizon_contract(&cfg); // assemble() calls this too
    assert_eq!(from_static, from_engine);
    // And the static verdict on the config the runs above use is clean:
    // the dynamic checker running green is the runtime face of this.
    assert!(lint_model(&ModelInput::new(cfg)).is_empty());
}

#[test]
fn reenabling_the_checker_reinstalls_the_derived_contract() {
    let mut sys = loaded(Benchmark::WordCount, 2);
    sys.set_contract_checking(false);
    sys.set_contract_checking(true);
    let report = sys.run(MAX_CYCLES);
    assert!(report.instructions > 0, "checked run made progress");
}
