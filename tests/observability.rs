//! The observability layer must be *read-only*: a run with tracing and
//! windowed sampling enabled produces a bit-identical [`SmarcoReport`] to
//! the same seeded run with observation off, while still capturing a rich
//! event trace and per-window metrics.

use smarco::core::chip::SmarcoSystem;
use smarco::core::config::SmarcoConfig;
use smarco::sim::obs::ObsConfig;
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

const THREADS_PER_CORE: usize = 4;
const INSTRS: u64 = 400;

/// A small loaded chip; `obs` selects the observability configuration.
fn loaded(obs: ObsConfig) -> SmarcoSystem {
    let mut cfg = SmarcoConfig::tiny();
    cfg.obs = obs;
    let mut sys = SmarcoSystem::builder().config(cfg).build().unwrap();
    let teams = sys.cores_len() * THREADS_PER_CORE;
    let mut seed = 7u64;
    for core in 0..sys.cores_len() {
        for t in 0..THREADS_PER_CORE {
            let lane = (core * THREADS_PER_CORE + t) as u64;
            let p = Benchmark::WordCount.thread_params(
                0x100_0000,
                1 << 22,
                0x8000_0000,
                lane,
                teams as u64,
                INSTRS,
            );
            sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                .expect("vacant slot");
            seed += 1;
        }
    }
    sys
}

#[test]
fn observed_run_is_bit_identical_to_unobserved() {
    let baseline = loaded(ObsConfig::off()).run(10_000_000);
    let mut observed_sys = loaded(ObsConfig::full(5_000));
    let observed = observed_sys.run(10_000_000);
    // Same seed, same workload: every counter, ratio and latency tracker
    // must match exactly — the hooks may watch, never touch.
    assert_eq!(observed, baseline);
    assert!(
        baseline.instructions > 0 && baseline.requests > 0,
        "workload actually ran"
    );

    // And the observed run actually observed something.
    let trace = observed_sys.trace().expect("tracing enabled");
    assert!(trace.total() > 0, "events were captured");
    let kinds = trace.counts_by_kind();
    assert!(
        kinds.len() >= 6,
        "expected >= 6 distinct event types, got {}: {:?}",
        kinds.len(),
        kinds
    );
    let metrics = observed_sys.metrics().expect("sampling enabled");
    assert!(!metrics.windows().is_empty(), "windows were closed");
    let w = &metrics.windows()[0];
    for key in [
        "ipc",
        "subring_utilization",
        "mem_latency_p50",
        "mem_latency_p99",
        "mem_latency_p999",
    ] {
        assert!(w.stats.get(key).is_some(), "window missing {key}");
    }
}

#[test]
fn trace_export_is_loadable_chrome_json() {
    let mut sys = loaded(ObsConfig::tracing());
    let _ = sys.run(10_000_000);
    let json = sys.trace().expect("tracing enabled").to_chrome_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    // Track metadata names the units Perfetto groups by.
    assert!(json.contains("\"core0\"") && json.contains("\"sub-ring0\""));
}

#[test]
fn observed_tick_by_tick_run_flushes_explicitly() {
    use smarco::sim::engine::CycleModel;
    let mut sys = loaded(ObsConfig::full(2_000));
    for now in 0..20_000 {
        sys.tick(now);
    }
    sys.flush_observations()
        .expect("no export paths set, nothing to write");
    let metrics = sys.metrics().expect("sampling enabled");
    // 20k cycles / 2k window = 9 full windows + the final partial flush.
    assert!(
        metrics.windows().len() >= 9,
        "got {} windows",
        metrics.windows().len()
    );
}
