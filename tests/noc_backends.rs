//! The backend determinism contract: every pluggable NoC backend runs
//! every HTC benchmark to completion and produces a bit-identical
//! [`SmarcoReport`] regardless of PDES worker count or whether
//! event-horizon cycle skipping is enabled. The interconnect model may
//! differ *across* backends — that is the point of the sweep — but
//! within one backend the report is a pure function of the config and
//! the seeds.

use smarco::core::chip::SmarcoSystem;
use smarco::core::config::SmarcoConfig;
use smarco::noc::buffered::BufferedNoc;
use smarco::noc::{BufferedNocConfig, NocBackendKind};
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

const THREADS_PER_CORE: usize = 2;
const INSTRS: u64 = 300;
const MAX_CYCLES: u64 = 10_000_000;

fn backends() -> [NocBackendKind; 3] {
    [
        NocBackendKind::Ring,
        NocBackendKind::Mesh,
        NocBackendKind::Buffered(BufferedNocConfig::default()),
    ]
}

/// A small chip on `backend` loaded with one benchmark's threads.
fn loaded(
    backend: NocBackendKind,
    bench: Benchmark,
    workers: usize,
    cycle_skip: bool,
) -> SmarcoSystem {
    let mut cfg = SmarcoConfig::tiny();
    cfg.workers = workers;
    cfg.cycle_skip = cycle_skip;
    cfg.noc = cfg.noc.with_backend(backend).with_criticality_routing(true);
    let mut sys = SmarcoSystem::builder().config(cfg).build().unwrap();
    let teams = sys.cores_len() * THREADS_PER_CORE;
    let mut seed = 11u64;
    for core in 0..sys.cores_len() {
        for t in 0..THREADS_PER_CORE {
            let lane = (core * THREADS_PER_CORE + t) as u64;
            let p =
                bench.thread_params(0x100_0000, 1 << 22, 0x8000_0000, lane, teams as u64, INSTRS);
            sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                .expect("vacant slot");
            seed += 1;
        }
    }
    sys
}

#[test]
fn every_backend_is_bit_identical_across_workers_and_skip() {
    for backend in backends() {
        for bench in Benchmark::ALL {
            let mut base_sys = loaded(backend, bench, 1, false);
            let base = base_sys.run(MAX_CYCLES);
            assert!(
                base_sys.is_done(),
                "{} failed to drain {}",
                backend.name(),
                bench.name()
            );
            assert!(base.instructions > 0);
            for workers in [1, 4] {
                for cycle_skip in [false, true] {
                    if workers == 1 && !cycle_skip {
                        continue; // that's the baseline itself
                    }
                    let mut sys = loaded(backend, bench, workers, cycle_skip);
                    let report = sys.run(MAX_CYCLES);
                    assert_eq!(
                        report,
                        base,
                        "{} diverged on {} at {workers} workers, skip={cycle_skip}",
                        backend.name(),
                        bench.name()
                    );
                }
            }
        }
    }
}

#[test]
fn higher_criticality_wins_arbitration_at_the_same_cycle() {
    // Two packets become deliverable on the same cycle through one
    // buffered switch: the bulk packet was injected first, but the
    // critical one (class 3) must come out ahead of it (class 0).
    #[derive(Debug, Clone)]
    struct Tagged {
        id: u32,
        class: u8,
    }
    impl smarco::noc::link::Transmittable for Tagged {
        fn bytes(&self) -> u32 {
            8
        }
        fn class(&self) -> u8 {
            self.class
        }
    }

    let mut noc: BufferedNoc<Tagged> = BufferedNoc::new(4, BufferedNocConfig::default());
    assert!(noc.inject(0, 2, Tagged { id: 0, class: 0 }, 0).is_none());
    assert!(noc.inject(1, 2, Tagged { id: 1, class: 3 }, 0).is_none());
    let mut order = Vec::new();
    for now in 1..32 {
        for (exit, item) in noc.tick(now) {
            assert_eq!(exit, 2);
            order.push(item.id);
        }
        if noc.is_idle() {
            break;
        }
    }
    assert_eq!(
        order,
        vec![1, 0],
        "the critical packet must beat the earlier-injected bulk packet"
    );
}
