//! The fault-injection determinism contract: a seeded [`FaultPlan`]
//! perturbs a run, but the perturbed run is still *exactly* reproducible
//! — the full [`SmarcoReport`], including its degradation section, is
//! bit-identical for any PDES worker count and with cycle skipping on or
//! off. Corruption verdicts are pure functions of (seed, packet id,
//! attempt) and every scheduled fault publishes a `next_event` horizon,
//! so neither host-thread interleaving nor fast-forwarding can leak into
//! the damage done or the recovery performed.

use smarco::core::config::SmarcoConfig;
use smarco::core::fault::{Fault, FaultPlan};
use smarco::core::report::SmarcoReport;
use smarco::core::SmarcoSystem;
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

const THREADS_PER_CORE: usize = 4;
const OPS: u64 = 1_200;
const MAX_CYCLES: u64 = 100_000_000;

/// Runs TeraSort through the hardware dispatcher under `plan`.
fn chaos_run(plan: FaultPlan, workers: usize, cycle_skip: bool) -> SmarcoReport {
    let mut cfg = SmarcoConfig::tiny();
    cfg.workers = workers;
    cfg.cycle_skip = cycle_skip;
    let mut sys = SmarcoSystem::builder()
        .config(cfg.clone())
        .fault_plan(plan)
        .build()
        .expect("valid config");
    let total = (cfg.noc.cores() * THREADS_PER_CORE) as u64;
    for j in 0..total {
        let p = Benchmark::TeraSort.thread_params(0x100_0000, 16 << 20, 0x8000_0000, j, total, OPS);
        sys.submit_task(
            Box::new(HtcStream::new(p, SimRng::new(1 + j))),
            4_000_000,
            OPS * 4,
            smarco::sched::TaskPriority::Normal,
        );
    }
    let report = sys.run(MAX_CYCLES);
    assert!(sys.is_done(), "chip drained under faults");
    report
}

#[test]
fn chaos_report_identical_across_workers_and_cycle_skip() {
    let cfg = SmarcoConfig::tiny();
    let plan = FaultPlan::chaos(42, &cfg);
    let baseline = chaos_run(plan.clone(), 1, false);
    let d = &baseline.degradation;
    assert!(d.link_retries > 0, "noise never fired: {d:?}");
    assert!(d.quarantined_cores > 0, "no core died: {d:?}");
    for (workers, cycle_skip) in [(1, true), (4, false), (4, true)] {
        let run = chaos_run(plan.clone(), workers, cycle_skip);
        assert_eq!(
            run, baseline,
            "diverged at workers={workers} cycle_skip={cycle_skip}"
        );
    }
}

#[test]
fn zero_fault_plan_reproduces_unfaulted_run() {
    let healthy = chaos_run(FaultPlan::none(), 1, true);
    assert!(healthy.degradation.is_clean(), "empty plan did damage");
    // A chip built with no plan at all must match one built with the
    // explicit empty plan, bit for bit.
    let mut cfg = SmarcoConfig::tiny();
    cfg.cycle_skip = true;
    let mut sys = SmarcoSystem::builder()
        .config(cfg.clone())
        .build()
        .expect("valid config");
    let total = (cfg.noc.cores() * THREADS_PER_CORE) as u64;
    for j in 0..total {
        let p = Benchmark::TeraSort.thread_params(0x100_0000, 16 << 20, 0x8000_0000, j, total, OPS);
        sys.submit_task(
            Box::new(HtcStream::new(p, SimRng::new(1 + j))),
            4_000_000,
            OPS * 4,
            smarco::sched::TaskPriority::Normal,
        );
    }
    assert_eq!(sys.run(MAX_CYCLES), healthy);
}

#[test]
fn quarantine_then_redispatch_completes_all_terasort_tasks() {
    // One core dies early with noise on both ring levels; its dispatched
    // tasks must be ripped out, re-enqueued with recomputed deadlines,
    // and finish on the surviving cores.
    let plan = FaultPlan::new(7)
        .with_fault(Fault::SubRingNoise { permille: 30 })
        .with_fault(Fault::MainRingNoise { permille: 15 })
        .with_fault(Fault::CoreDeath { core: 0, at: 3_000 });
    let report = chaos_run(plan, 1, true);
    let d = &report.degradation;
    assert_eq!(d.quarantined_cores, 1, "{d:?}");
    assert!(
        d.redispatches > 0,
        "dead core's tasks not re-dispatched: {d:?}"
    );
    assert_eq!(
        d.lost_threads, 0,
        "dispatcher-managed tasks must survive: {d:?}"
    );
    assert!(d.link_retries > 0, "{d:?}");
    assert!(report.instructions > 0);
}
