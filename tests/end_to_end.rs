//! Cross-crate integration tests: the whole stack — workload generators,
//! cores, NoC, MACT, DRAM, runtime, power — wired together.

use smarco::baseline::{ConventionalSystem, XeonConfig};
use smarco::core::chip::SmarcoSystem;
use smarco::core::config::SmarcoConfig;
use smarco::power::{run_energy, TechNode};
use smarco::runtime::Threads;
use smarco::sim::rng::SimRng;
use smarco::workloads::{Benchmark, HtcStream};

fn loaded_chip(bench: Benchmark, ops: u64) -> SmarcoSystem {
    let cfg = SmarcoConfig::tiny();
    let mut sys = SmarcoSystem::builder().config(cfg.clone()).build().unwrap();
    let cps = cfg.noc.cores_per_subring;
    let team = (cps * 4) as u64;
    let mut seed = 1;
    for core in 0..sys.cores_len() {
        let sr = (core / cps) as u64;
        for t in 0..4 {
            let j = ((core % cps) * 4 + t) as u64;
            let p = bench.thread_params(
                0x100_0000 + sr * (64 << 20),
                4 << 20,
                0x8000_0000 + sr * (1 << 20),
                j,
                team,
                ops,
            );
            sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                .expect("slot");
            seed += 1;
        }
    }
    sys
}

#[test]
fn full_stack_runs_every_benchmark_to_completion() {
    for bench in Benchmark::ALL {
        let mut sys = loaded_chip(bench, 400);
        let report = sys.run(100_000_000);
        assert!(sys.is_done(), "{bench} drained");
        assert_eq!(
            report.instructions,
            16 * 4 * 401,
            "{bench} instruction count"
        );
        assert!(report.ipc() > 0.0, "{bench}");
        // RNC is the only benchmark with real-time traffic, which bypasses
        // the MACT.
        if bench == Benchmark::Rnc {
            assert!(report.requests > 0);
        }
    }
}

#[test]
fn chip_is_deterministic_end_to_end() {
    let a = loaded_chip(Benchmark::WordCount, 300).run(100_000_000);
    let b = loaded_chip(Benchmark::WordCount, 300).run(100_000_000);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.dram_requests, b.dram_requests);
    assert_eq!(a.mact_batches, b.mact_batches);
}

#[test]
fn threads_runtime_balances_and_joins() {
    let mut threads = Threads::new(
        SmarcoSystem::builder()
            .config(SmarcoConfig::tiny())
            .build()
            .unwrap(),
    );
    for i in 0..64 {
        let p = Benchmark::Search.thread_params(
            0x100_0000 + i * (1 << 20),
            1 << 20,
            0x8000_0000,
            0,
            1,
            300,
        );
        threads
            .create(Box::new(HtcStream::new(p, SimRng::new(i))), 300)
            .expect("capacity");
    }
    let report = threads.join_all(100_000_000);
    assert_eq!(report.instructions, 64 * 301);
    assert_eq!(threads.created(), 64);
}

#[test]
fn energy_model_composes_with_chip_runs() {
    let cfg = SmarcoConfig::tiny();
    let mut sys = loaded_chip(Benchmark::KMeans, 400);
    let report = sys.run(100_000_000);
    let energy = run_energy(&report, &cfg, TechNode::n32());
    assert!(energy.avg_power_w > 0.0);
    assert!(energy.energy_j > 0.0);
    assert!(energy.efficiency() > 0.0);
    // A tiny 16-core chip draws far less than the 256-core chip's 240 W.
    assert!(energy.avg_power_w < 60.0, "power {:.1}", energy.avg_power_w);
}

#[test]
fn smarco_and_xeon_run_the_same_benchmark_comparably() {
    // Same benchmark, both machines, end to end — the Fig. 22 plumbing.
    let mut xeon = ConventionalSystem::new(XeonConfig::small());
    for i in 0..8u64 {
        let mix = Benchmark::Kmp.mix(0x10_0000 + i * (1 << 22), 1 << 22);
        xeon.spawn(Box::new(smarco::isa::mix::SyntheticStream::new(
            mix,
            2_000,
            SimRng::new(i),
        )));
    }
    let xr = xeon.run(1_000_000_000);
    assert!(xeon.is_done());
    assert_eq!(xr.instructions, 8 * 2001);

    let sr = loaded_chip(Benchmark::Kmp, 400).run(100_000_000);
    // Throughput comparison is meaningful: both report instructions/s.
    assert!(sr.throughput(1.5) > 0.0);
    assert!(xr.throughput(2.2) > 0.0);
}

#[test]
fn in_pair_ablation_matters_at_chip_level() {
    // Search is latency-bound on this chip (few, expensive cold-table
    // misses rather than saturated bandwidth) — the regime where hiding
    // latency behind a friend thread pays.
    let run = |in_pair: bool| {
        let mut cfg = SmarcoConfig::tiny();
        cfg.tcg.in_pair = in_pair;
        let mut sys = SmarcoSystem::builder().config(cfg.clone()).build().unwrap();
        let cps = cfg.noc.cores_per_subring;
        let mut seed = 1;
        for core in 0..sys.cores_len() {
            let sr = (core / cps) as u64;
            for t in 0..8 {
                let j = ((core % cps) * 8 + t) as u64;
                let p = Benchmark::Search.thread_params(
                    0x100_0000 + sr * (64 << 20),
                    4 << 20,
                    0x8000_0000 + sr * (1 << 20),
                    j,
                    (cps * 8) as u64,
                    300,
                );
                sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                    .expect("slot");
                seed += 1;
            }
        }
        sys.run(100_000_000).cycles
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with < without,
        "in-pair should hide memory latency: {with} vs {without} cycles"
    );
}

#[test]
fn degraded_ring_channel_still_delivers_exactly_once() {
    use smarco::noc::link::{LinkConfig, Transmittable};
    use smarco::noc::ring::Ring;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u32);
    impl Transmittable for P {
        fn bytes(&self) -> u32 {
            self.0
        }
    }

    let load = |ring: &mut Ring<P>| {
        let mut n = 0;
        for src in 0..8 {
            for dst in 0..8 {
                if src != dst {
                    for _ in 0..4 {
                        let _ = ring.inject(src, dst, P(8));
                        n += 1;
                    }
                }
            }
        }
        n
    };
    let drain = |ring: &mut Ring<P>| {
        let mut delivered = 0;
        let mut last = 0;
        for now in 0..50_000u64 {
            let d = ring.tick(now).len();
            delivered += d;
            if d > 0 {
                last = now;
            }
            if ring.is_idle() {
                break;
            }
        }
        (delivered, last)
    };

    let mut healthy: Ring<P> = Ring::new(8, LinkConfig::sub_ring());
    let n = load(&mut healthy);
    let (d_healthy, t_healthy) = drain(&mut healthy);
    assert_eq!(d_healthy, n);

    // Fault injection: one channel loses its bidirectional lanes (a third
    // of its bandwidth in each direction at peak).
    let mut degraded: Ring<P> = Ring::new(8, LinkConfig::sub_ring());
    degraded.set_channel_config(
        3,
        LinkConfig {
            lanes_bidir: 0,
            ..LinkConfig::sub_ring()
        },
    );
    let n = load(&mut degraded);
    let (d_degraded, t_degraded) = drain(&mut degraded);
    // Exactly-once delivery survives the fault; only time suffers.
    assert_eq!(d_degraded, n);
    assert!(
        t_degraded >= t_healthy,
        "degraded drain {t_degraded} vs healthy {t_healthy}"
    );
}
