//! SmarCo: a Rust reproduction of the HPCA 2018 many-core processor for
//! high-throughput datacenter applications.
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on one crate:
//!
//! * [`sim`] — PDES simulation kernel (time, events, stats, parallel shards)
//! * [`isa`] — abstract throughput ISA and thread programs
//! * [`mem`] — caches, scratchpad memory, MACT, DDR controllers
//! * [`noc`] — hierarchical ring, high-density links, direct datapath
//! * [`sched`] — laxity-aware hardware task scheduler and baselines
//! * [`core`] — TCG cores, the full 256-core SmarCo chip, and the
//!   rack-scale multi-chip cluster (`core::cluster`)
//! * [`baseline`] — conventional (Xeon-like) processor model
//! * [`workloads`] — the six HTC benchmarks, CDN, and SPLASH2-like loads
//! * [`runtime`] — pthreads-like API and MapReduce framework
//! * [`power`] — analytic area/power/energy models
//! * [`lint`] — static verifier: address-map, race, DMA-overlap, and
//!   config passes with stable `SLxxxx` diagnostics
//!
//! # Examples
//!
//! Run a few KMP threads on a small chip and read the report:
//!
//! ```
//! use smarco::core::chip::SmarcoSystem;
//! use smarco::core::config::SmarcoConfig;
//! use smarco::sim::rng::SimRng;
//! use smarco::workloads::{Benchmark, HtcStream};
//!
//! let mut sys = SmarcoSystem::builder()
//!     .config(SmarcoConfig::tiny())
//!     .build()
//!     .expect("valid config");
//! for core in 0..sys.cores_len() {
//!     let params = Benchmark::Kmp.thread_params(
//!         0x100_0000, 1 << 20,  // this team's text slice
//!         0x8000_0000,          // shared pattern tables
//!         core as u64, 16,      // interleave across the team
//!         500,                  // instructions per thread
//!     );
//!     sys.attach(core, Box::new(HtcStream::new(params, SimRng::new(core as u64))))
//!         .expect("vacant thread slot");
//! }
//! let report = sys.run(10_000_000);
//! assert_eq!(report.instructions, 16 * 501);
//! assert!(report.ipc() > 0.0);
//! ```
//!
//! See `examples/quickstart.rs` for a fuller tour.

pub use smarco_baseline as baseline;
pub use smarco_core as core;
pub use smarco_isa as isa;
pub use smarco_lint as lint;
pub use smarco_mem as mem;
pub use smarco_noc as noc;
pub use smarco_power as power;
pub use smarco_runtime as runtime;
pub use smarco_sched as sched;
pub use smarco_sim as sim;
pub use smarco_workloads as workloads;
