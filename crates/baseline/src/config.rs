//! Baseline processor configuration.

use smarco_mem::cache::CacheConfig;
use smarco_mem::dram::DramConfig;
use smarco_sim::Cycle;

/// Parameters of the conventional processor (defaults: Xeon E7-8890 v4,
/// Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XeonConfig {
    /// Physical cores (24).
    pub cores: usize,
    /// Hardware threads per core (2-way SMT).
    pub smt: usize,
    /// Issue width shared by a core's SMT contexts.
    pub issue_width: usize,
    /// Clock in GHz (2.2 base).
    pub freq_ghz: f64,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Per-core L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// L2 hit latency (cycles).
    pub l2_latency: Cycle,
    /// LLC hit latency (cycles).
    pub llc_latency: Cycle,
    /// I-cache miss penalty.
    pub icache_miss_penalty: Cycle,
    /// Branch mispredict penalty (deep OoO pipeline).
    pub branch_penalty: Cycle,
    /// Outstanding DRAM misses a context tolerates before stalling
    /// (memory-level parallelism of the OoO window).
    pub mlp: usize,
    /// Memory system.
    pub dram: DramConfig,
    /// Serialized cost to create one software thread (cycles).
    pub spawn_cost: Cycle,
    /// Kernel context-switch cost (cycles).
    pub switch_cost: Cycle,
    /// Scheduling quantum (cycles) when software threads exceed hardware
    /// contexts.
    pub quantum: Cycle,
}

impl XeonConfig {
    /// Xeon E7-8890 v4-like defaults (scaled OS costs; see crate docs).
    pub fn e7_8890v4() -> Self {
        Self {
            cores: 24,
            smt: 2,
            issue_width: 4,
            freq_ghz: 2.2,
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                line_bytes: 64,
                ways: 8,
            },
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                line_bytes: 64,
                ways: 8,
            },
            l2: CacheConfig {
                size_bytes: 256 << 10,
                line_bytes: 64,
                ways: 8,
            },
            llc: CacheConfig {
                size_bytes: 60 << 20,
                line_bytes: 64,
                ways: 20,
            },
            l2_latency: 12,
            llc_latency: 40,
            icache_miss_penalty: 20,
            branch_penalty: 16,
            mlp: 10,
            dram: DramConfig::xeon(),
            spawn_cost: 2_000,
            switch_cost: 1_500,
            quantum: 20_000,
        }
    }

    /// A 4-core variant for fast tests.
    pub fn small() -> Self {
        Self {
            cores: 4,
            ..Self::e7_8890v4()
        }
    }

    /// Hardware thread contexts.
    pub fn contexts(&self) -> usize {
        self.cores * self.smt
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero counts or non-positive parameters.
    pub fn validate(&self) {
        assert!(
            self.cores > 0 && self.smt > 0 && self.issue_width > 0,
            "zero geometry"
        );
        assert!(self.mlp > 0, "mlp must be positive");
        assert!(self.freq_ghz > 0.0, "frequency must be positive");
        assert!(
            self.quantum > 0 && self.spawn_cost > 0,
            "OS costs must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters() {
        let c = XeonConfig::e7_8890v4();
        c.validate();
        assert_eq!(c.contexts(), 48);
        // 24 × 32 KB ≈ 0.77 MB L1 as Table 2 lists.
        assert_eq!(c.cores as u64 * c.l1i.size_bytes, 768 << 10);
        assert_eq!(c.llc.size_bytes, 60 << 20);
    }

    #[test]
    fn small_variant_validates() {
        let c = XeonConfig::small();
        c.validate();
        assert_eq!(c.contexts(), 8);
    }

    #[test]
    #[should_panic(expected = "mlp must be positive")]
    fn zero_mlp_rejected() {
        let mut c = XeonConfig::small();
        c.mlp = 0;
        c.validate();
    }
}
