//! The conventional multi-core system with software threading.

use std::collections::VecDeque;

use smarco_isa::{InstructionStream, Op};
use smarco_mem::cache::Cache;
use smarco_mem::dram::Dram;
use smarco_sim::stats::{MeanTracker, Ratio};
use smarco_sim::Cycle;

use crate::config::XeonConfig;
use crate::core::{CoreAccess, XeonCore};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SwState {
    Spawning,
    Ready,
    Running,
    Done,
}

struct SwThread {
    stream: Box<dyn InstructionStream + Send>,
    state: SwState,
    ready_at: Cycle,
    instructions: u64,
}

/// Statistics of a baseline run.
#[derive(Debug, Clone, Default)]
pub struct BaselineReport {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Instructions retired.
    pub instructions: u64,
    /// Issue slots offered (cores × width × cycles).
    pub issue_slots: u64,
    /// Issue slots actually used.
    pub issue_used: u64,
    /// Context-cycles lost to I-cache miss stalls.
    pub istarve_cycles: u64,
    /// Context-cycles observed (for starvation ratio).
    pub context_cycles: u64,
    /// Branches by predicted/mispredicted.
    pub branches: Ratio,
    /// L1D accesses by hit/miss.
    pub l1d: Ratio,
    /// L2 accesses by hit/miss.
    pub l2: Ratio,
    /// LLC accesses by hit/miss.
    pub llc: Ratio,
    /// Average data-access latency per level observed (cycles).
    pub access_latency: MeanTracker,
    /// DRAM bandwidth utilization (0–1).
    pub dram_utilization: f64,
    /// Mean DRAM request latency.
    pub dram_latency: f64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Software threads that ran.
    pub threads: usize,
}

impl BaselineReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of issue slots idle (Fig. 1a).
    pub fn idle_ratio(&self) -> f64 {
        if self.issue_slots == 0 {
            0.0
        } else {
            1.0 - self.issue_used as f64 / self.issue_slots as f64
        }
    }

    /// Fraction of context-cycles stalled on instruction supply (Fig. 1b).
    pub fn starvation_ratio(&self) -> f64 {
        if self.context_cycles == 0 {
            0.0
        } else {
            self.istarve_cycles as f64 / self.context_cycles as f64
        }
    }

    /// Instructions per second at `freq_ghz`.
    pub fn throughput(&self, freq_ghz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / (self.cycles as f64 / (freq_ghz * 1e9))
        }
    }
}

/// The conventional (Xeon-like) system.
///
/// # Examples
///
/// ```
/// use smarco_baseline::{ConventionalSystem, XeonConfig};
/// use smarco_isa::mix::compute_only;
///
/// let mut sys = ConventionalSystem::new(XeonConfig::small());
/// sys.spawn(Box::new(compute_only(100)));
/// let report = sys.run(1_000_000);
/// assert!(sys.is_done());
/// assert_eq!(report.instructions, 101);
/// ```
pub struct ConventionalSystem {
    config: XeonConfig,
    cores: Vec<XeonCore>,
    llc: Cache,
    dram: Dram<(usize, usize, Cycle)>,
    threads: Vec<SwThread>,
    ready: VecDeque<usize>,
    next_spawn_ready: Cycle,
    report: BaselineReport,
    now: Cycle,
}

impl std::fmt::Debug for ConventionalSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConventionalSystem")
            .field("cores", &self.cores.len())
            .field("threads", &self.threads.len())
            .field("now", &self.now)
            .finish()
    }
}

impl ConventionalSystem {
    /// Builds an idle system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: XeonConfig) -> Self {
        config.validate();
        Self {
            cores: (0..config.cores).map(|_| XeonCore::new(&config)).collect(),
            llc: Cache::new(config.llc),
            dram: Dram::new(config.dram),
            threads: Vec::new(),
            ready: VecDeque::new(),
            next_spawn_ready: 0,
            report: BaselineReport::default(),
            config,
            now: 0,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &XeonConfig {
        &self.config
    }

    /// Spawns a software thread (pthread_create): creation is serialized,
    /// so the i-th spawned thread only becomes ready after
    /// `i × spawn_cost` cycles.
    pub fn spawn(&mut self, stream: Box<dyn InstructionStream + Send>) -> usize {
        self.next_spawn_ready += self.config.spawn_cost;
        let id = self.threads.len();
        self.threads.push(SwThread {
            stream,
            state: SwState::Spawning,
            ready_at: self.next_spawn_ready,
            instructions: 0,
        });
        id
    }

    fn schedule(&mut self, now: Cycle) {
        for c in 0..self.cores.len() {
            for x in 0..self.config.smt {
                let ctx = self.cores[c].contexts[x];
                match ctx.thread {
                    None => {
                        if let Some(tid) = self.ready.pop_front() {
                            self.threads[tid].state = SwState::Running;
                            let ctx = &mut self.cores[c].contexts[x];
                            ctx.thread = Some(tid);
                            ctx.stall_until = now + self.config.switch_cost;
                            ctx.quantum_end = now + self.config.quantum;
                            self.report.context_switches += 1;
                        }
                    }
                    Some(tid) => {
                        if now >= ctx.quantum_end && !self.ready.is_empty() && !ctx.blocked {
                            // Preempt: rotate with the ready queue.
                            self.threads[tid].state = SwState::Ready;
                            self.ready.push_back(tid);
                            let next = self.ready.pop_front().expect("ready non-empty");
                            self.threads[next].state = SwState::Running;
                            let ctx = &mut self.cores[c].contexts[x];
                            ctx.thread = Some(next);
                            ctx.stall_until = now + self.config.switch_cost;
                            ctx.quantum_end = now + self.config.quantum;
                            self.report.context_switches += 1;
                        }
                    }
                }
            }
        }
    }

    fn issue_one(&mut self, core: usize, x: usize, now: Cycle) -> bool {
        let Some(tid) = self.cores[core].contexts[x].thread else {
            return false;
        };
        let ctx = self.cores[core].contexts[x];
        if ctx.blocked || ctx.stall_until > now {
            return false;
        }
        let Some(instr) = self.threads[tid].stream.next_instr() else {
            self.retire(core, x, tid);
            return false;
        };
        // Instruction supply.
        if !self.cores[core].fetch(instr.pc) {
            let ctx = &mut self.cores[core].contexts[x];
            ctx.stall_until = now + self.config.icache_miss_penalty;
            self.report.istarve_cycles += self.config.icache_miss_penalty;
        }
        self.threads[tid].instructions += 1;
        self.report.instructions += 1;
        match instr.op {
            Op::Compute { latency } => {
                // The OoO window hides short ALU latencies entirely.
                if latency > 4 {
                    let ctx = &mut self.cores[core].contexts[x];
                    ctx.stall_until = ctx.stall_until.max(now + Cycle::from(latency) / 2);
                }
            }
            Op::Branch { mispredicted } => {
                self.report.branches.record(!mispredicted);
                if mispredicted {
                    let ctx = &mut self.cores[core].contexts[x];
                    ctx.stall_until = ctx.stall_until.max(now + self.config.branch_penalty);
                }
            }
            Op::Exit => {
                self.retire(core, x, tid);
            }
            // No scratchpads or DMA on the conventional machine: treat as
            // plain memory work already covered by loads/stores.
            Op::Sync | Op::Dma { .. } => {}
            Op::Load(m) => self.mem_access(core, x, m.addr, false, now),
            Op::Store(m) => self.mem_access(core, x, m.addr, true, now),
        }
        true
    }

    fn mem_access(&mut self, core: usize, x: usize, addr: u64, is_write: bool, now: Cycle) {
        match self.cores[core].data_access(addr, is_write) {
            CoreAccess::L1 => {
                self.report.l1d.record(true);
                self.report.access_latency.record(4.0);
            }
            CoreAccess::L2 => {
                self.report.l1d.record(false);
                self.report.l2.record(true);
                self.report
                    .access_latency
                    .record(self.config.l2_latency as f64);
                let ctx = &mut self.cores[core].contexts[x];
                ctx.stall_until = ctx.stall_until.max(now + self.config.l2_latency / 2);
            }
            CoreAccess::EscalateLlc => {
                self.report.l1d.record(false);
                self.report.l2.record(false);
                if self.llc.access(addr, is_write).is_hit() {
                    self.report.llc.record(true);
                    self.report
                        .access_latency
                        .record(self.config.llc_latency as f64);
                    let ctx = &mut self.cores[core].contexts[x];
                    ctx.stall_until = ctx.stall_until.max(now + self.config.llc_latency / 2);
                } else {
                    self.report.llc.record(false);
                    let line = self.llc.line_addr(addr);
                    let channel = ((line / 4096) % self.config.dram.channels as u64) as usize;
                    self.dram.enqueue(channel, 64, now, (core, x, now));
                    if !is_write {
                        let ctx = &mut self.cores[core].contexts[x];
                        ctx.outstanding += 1;
                        if ctx.outstanding >= self.config.mlp {
                            ctx.blocked = true;
                        }
                    }
                }
            }
        }
    }

    fn retire(&mut self, core: usize, x: usize, tid: usize) {
        self.threads[tid].state = SwState::Done;
        self.cores[core].contexts[x].thread = None;
    }

    /// Advances one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.now = now + 1;
        // DRAM completions free MLP slots.
        for (core, x, issued) in self.dram.tick(now) {
            self.report.access_latency.record((now - issued) as f64);
            let ctx = &mut self.cores[core].contexts[x];
            ctx.outstanding = ctx.outstanding.saturating_sub(1);
            if ctx.outstanding < self.config.mlp {
                ctx.blocked = false;
            }
        }
        // Threads finish spawning.
        for tid in 0..self.threads.len() {
            if self.threads[tid].state == SwState::Spawning && self.threads[tid].ready_at <= now {
                self.threads[tid].state = SwState::Ready;
                self.ready.push_back(tid);
            }
        }
        self.schedule(now);
        // Issue: each core shares its width across SMT contexts.
        for c in 0..self.cores.len() {
            let mut budget = self.config.issue_width;
            self.report.issue_slots += self.config.issue_width as u64;
            for x in 0..self.config.smt {
                if self.cores[c].contexts[x].thread.is_some() {
                    self.report.context_cycles += 1;
                }
            }
            'issue: loop {
                let mut progressed = false;
                for x in 0..self.config.smt {
                    if budget == 0 {
                        break 'issue;
                    }
                    if self.issue_one(c, x, now) {
                        budget -= 1;
                        self.report.issue_used += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
    }

    /// Whether all threads finished and memory drained.
    pub fn is_done(&self) -> bool {
        self.threads.iter().all(|t| t.state == SwState::Done) && self.dram.is_idle()
    }

    /// Runs until done or `max` cycles; returns the report.
    pub fn run(&mut self, max: Cycle) -> BaselineReport {
        while self.now < max && !self.is_done() {
            self.tick(self.now);
        }
        self.report()
    }

    /// Builds the report at the current cycle.
    pub fn report(&self) -> BaselineReport {
        let mut r = self.report.clone();
        r.cycles = self.now;
        r.threads = self.threads.len();
        r.dram_utilization = self.dram.utilization(self.now.max(1));
        r.dram_latency = self.dram.mean_latency();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_isa::mix::{compute_only, AddressModel, GranularityMix, OpMix, SyntheticStream};
    use smarco_sim::rng::SimRng;

    fn mem_mix(base: u64, ws: u64) -> OpMix {
        OpMix {
            mem_frac: 0.4,
            load_frac: 0.7,
            branch_frac: 0.15,
            branch_miss: 0.08,
            realtime_frac: 0.0,
            granularity: GranularityMix::new([0.3, 0.3, 0.2, 0.2, 0.0, 0.0, 0.0]),
            addresses: AddressModel::random(base, ws),
        }
    }

    fn sys_with(threads: usize, instrs: u64, ws: u64) -> ConventionalSystem {
        let mut s = ConventionalSystem::new(XeonConfig::small());
        for i in 0..threads {
            let mix = mem_mix(0x10_0000 + (i as u64) * ws, ws);
            s.spawn(Box::new(SyntheticStream::new(
                mix,
                instrs,
                SimRng::new(i as u64 + 1),
            )));
        }
        s
    }

    #[test]
    fn single_compute_thread_exploits_width() {
        let mut s = ConventionalSystem::new(XeonConfig::small());
        s.spawn(Box::new(compute_only(10_000)));
        let r = s.run(1_000_000);
        // One thread on a 4-wide OoO core: IPC well above an in-order 1.0
        // once spawn/switch costs amortize.
        let core_ipc = r.instructions as f64 / (r.cycles as f64 - 2000.0);
        assert!(core_ipc > 2.0, "ipc {core_ipc}");
    }

    #[test]
    fn all_threads_finish() {
        let mut s = sys_with(16, 2_000, 1 << 16);
        let r = s.run(50_000_000);
        assert!(s.is_done());
        assert_eq!(r.instructions, 16 * 2001);
        assert_eq!(r.threads, 16);
    }

    #[test]
    fn memory_pressure_costs_throughput() {
        let light = sys_with(8, 5_000, 1 << 12).run(50_000_000); // cache-resident
        let heavy = sys_with(8, 5_000, 1 << 24).run(50_000_000); // cache-hostile
        assert!(
            heavy.ipc() < light.ipc() * 0.8,
            "heavy ipc {:.3} vs light ipc {:.3}",
            heavy.ipc(),
            light.ipc()
        );
        assert!(
            heavy.l1d.ratio() < light.l1d.ratio(),
            "heavy should miss more"
        );
    }

    #[test]
    fn oversubscription_adds_switches_and_overhead() {
        // 8 contexts on the small config; 64 threads oversubscribe 8×.
        let exact = sys_with(8, 4_000, 1 << 16).run(100_000_000);
        let over = sys_with(64, 500, 1 << 16).run(100_000_000);
        assert!(over.context_switches > exact.context_switches);
        // Equal total work, but oversubscribed run burns more cycles.
        assert_eq!(exact.instructions, 8 * 4001);
        assert_eq!(over.instructions, 64 * 501);
    }

    #[test]
    fn mlp_blocks_after_window_fills() {
        // A pure pointer-chase into a huge region: every access a DRAM miss.
        let mix = OpMix {
            mem_frac: 1.0,
            load_frac: 1.0,
            branch_frac: 0.0,
            branch_miss: 0.0,
            realtime_frac: 0.0,
            granularity: GranularityMix::new([0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0]),
            addresses: AddressModel::random(0, 1 << 28),
        };
        let mut s = ConventionalSystem::new(XeonConfig::small());
        s.spawn(Box::new(SyntheticStream::new(mix, 2_000, SimRng::new(1))));
        let r = s.run(10_000_000);
        assert!(s.is_done());
        assert!(r.llc.ratio() < 0.2, "llc mostly misses");
        assert!(r.idle_ratio() > 0.8, "memory-bound run leaves slots idle");
    }

    #[test]
    fn spawn_serialization_delays_start() {
        let mut s = ConventionalSystem::new(XeonConfig::small());
        for _ in 0..10 {
            s.spawn(Box::new(compute_only(10)));
        }
        let r = s.run(1_000_000);
        // Last thread ready at 10 × spawn_cost; run can't be shorter.
        assert!(r.cycles >= 10 * s.config().spawn_cost);
    }

    #[test]
    fn deterministic() {
        let a = sys_with(8, 1_000, 1 << 16).run(50_000_000);
        let b = sys_with(8, 1_000, 1 << 16).run(50_000_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.context_switches, b.context_switches);
    }
}
