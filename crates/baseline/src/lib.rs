//! Conventional high-performance processor model (the paper's comparison
//! baseline, an Intel Xeon E7-8890 v4 per Table 2).
//!
//! The model reproduces what the paper measures about conventional
//! processors under HTC load (Figs. 1, 2, 22, 23):
//!
//! * wide out-of-order cores (latency tolerance modelled as a
//!   memory-level-parallelism window) with 2-way SMT;
//! * a three-level cache hierarchy (32 KB L1, 256 KB L2 per core, 60 MB
//!   shared LLC) whose miss ratios and average access latencies degrade on
//!   cache-hostile HTC working sets;
//! * software threading: serialized thread creation, quantum-based context
//!   switching with kernel-scale costs, so performance peaks around 32–64
//!   threads and then declines (Fig. 23);
//! * 85 GB/s of shared memory bandwidth.
//!
//! Timescale substitution: OS quanta and spawn costs are scaled down
//! (quantum ≈ 20 k cycles, spawn ≈ 2 k cycles) so that scheduling effects
//! appear at simulatable run lengths; the *shape* of the curves — not
//! absolute magnitudes — is the reproduction target (see DESIGN.md).

#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod system;

pub use config::XeonConfig;
pub use system::{BaselineReport, ConventionalSystem};
