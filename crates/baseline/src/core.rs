//! One conventional core: private L1 I/D and L2, SMT contexts.

use smarco_mem::cache::Cache;
use smarco_sim::Cycle;

use crate::config::XeonConfig;

/// Where a data access was served (before the shared LLC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAccess {
    /// L1 data hit.
    L1,
    /// L2 hit.
    L2,
    /// Missed both private levels; escalate to the shared LLC.
    EscalateLlc,
}

/// One SMT context's execution state.
#[derive(Debug, Clone, Copy, Default)]
pub struct Context {
    /// Scheduled software thread, if any.
    pub thread: Option<usize>,
    /// No issue before this cycle.
    pub stall_until: Cycle,
    /// Outstanding DRAM misses.
    pub outstanding: usize,
    /// Stalled because `outstanding` reached the MLP window.
    pub blocked: bool,
    /// Current scheduling quantum expires at this cycle.
    pub quantum_end: Cycle,
}

/// A conventional physical core.
#[derive(Debug, Clone)]
pub struct XeonCore {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Private unified L2.
    pub l2: Cache,
    /// SMT contexts.
    pub contexts: Vec<Context>,
}

impl XeonCore {
    /// Creates an idle core per `config`.
    pub fn new(config: &XeonConfig) -> Self {
        Self {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            contexts: vec![Context::default(); config.smt],
        }
    }

    /// Probes the private data hierarchy, updating L1/L2 state.
    pub fn data_access(&mut self, addr: u64, is_write: bool) -> CoreAccess {
        if self.l1d.access(addr, is_write).is_hit() {
            return CoreAccess::L1;
        }
        if self.l2.access(addr, is_write).is_hit() {
            return CoreAccess::L2;
        }
        CoreAccess::EscalateLlc
    }

    /// Instruction fetch; returns whether the L1I hit.
    pub fn fetch(&mut self, pc: u64) -> bool {
        self.l1i.access(pc, false).is_hit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_escalates_coldest_first() {
        let mut c = XeonCore::new(&XeonConfig::small());
        assert_eq!(c.data_access(0x1000, false), CoreAccess::EscalateLlc);
        assert_eq!(c.data_access(0x1000, false), CoreAccess::L1);
        // Evict from tiny L1 by streaming, then L2 still holds it.
        for addr in (0..64 * 1024u64).step_by(64) {
            let _ = c.data_access(addr, false);
        }
        assert_eq!(c.data_access(0x1000, false), CoreAccess::L2);
    }

    #[test]
    fn fetch_tracks_icache() {
        let mut c = XeonCore::new(&XeonConfig::small());
        assert!(!c.fetch(0x400));
        assert!(c.fetch(0x400));
    }

    #[test]
    fn contexts_match_smt() {
        let c = XeonCore::new(&XeonConfig::e7_8890v4());
        assert_eq!(c.contexts.len(), 2);
    }
}
