//! Star-shaped direct memory datapath (§3.5.2, Fig. 14).
//!
//! Each sub-ring owns a dedicated narrow path straight to the memory
//! controllers, bypassing both rings. It is reserved for control messages
//! and *read* requests marked with high real-time priority — especially
//! valuable when the rings are congested, because its latency is a fixed
//! pipeline delay plus a small bandwidth-limited queue.

use std::collections::VecDeque;

use smarco_sim::event::EventWheel;
use smarco_sim::Cycle;

/// Direct-datapath parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectPathConfig {
    /// Sub-rings (one spoke per sub-ring).
    pub subrings: usize,
    /// Fixed traversal latency in cycles.
    pub latency: Cycle,
    /// Spoke bandwidth in bytes per cycle (narrow: it carries requests and
    /// control, not data bursts).
    pub bytes_per_cycle: f64,
}

impl DirectPathConfig {
    /// SmarCo defaults: 16 spokes, 8-cycle traversal, 8 B/cycle each.
    pub fn smarco() -> Self {
        Self {
            subrings: 16,
            latency: 8,
            bytes_per_cycle: 8.0,
        }
    }
}

/// One spoke's sender-side bandwidth gate: items queue until the spoke has
/// accumulated enough byte credit, then depart on a fixed-latency pipeline.
///
/// [`tick`](Self::tick) returns departures together with their *absolute*
/// arrival cycle (`now + latency`), so the receiving end may live in a
/// different shard and treat the traversal as a timestamped message — the
/// spoke itself is the whole sender-side state.
#[derive(Debug, Clone)]
pub struct DirectSpoke<T> {
    latency: Cycle,
    bytes_per_cycle: f64,
    queue: VecDeque<(u32, T)>,
    credit: f64,
    sent: u64,
}

impl<T> DirectSpoke<T> {
    /// Creates an idle spoke.
    ///
    /// # Panics
    ///
    /// Panics if `latency` or `bytes_per_cycle` is non-positive.
    pub fn new(latency: Cycle, bytes_per_cycle: f64) -> Self {
        assert!(latency > 0, "latency must be positive");
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        Self {
            latency,
            bytes_per_cycle,
            queue: VecDeque::new(),
            credit: 0.0,
            sent: 0,
        }
    }

    /// Queues `item` of `bytes` for traversal.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn send(&mut self, bytes: u32, item: T) {
        assert!(bytes > 0, "zero-byte direct send");
        self.queue.push_back((bytes, item));
    }

    /// Advances one cycle; returns `(arrival_cycle, item)` for every item
    /// that started its traversal this cycle.
    pub fn tick(&mut self, now: Cycle) -> Vec<(Cycle, T)> {
        let mut out = Vec::new();
        self.credit += self.bytes_per_cycle;
        while let Some(&(bytes, _)) = self.queue.front() {
            if self.credit < f64::from(bytes) {
                break;
            }
            self.credit -= f64::from(bytes);
            let (_, item) = self.queue.pop_front().expect("front exists");
            out.push((now + self.latency, item));
            self.sent += 1;
        }
        // Idle spokes don't hoard credit.
        if self.queue.is_empty() {
            self.credit = self.credit.min(self.bytes_per_cycle);
        }
        out
    }

    /// Items that have departed so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Whether nothing is waiting to depart (in-flight items are the
    /// receiver's problem once `tick` has handed them out).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Event horizon: `Some(now)` while items wait for credit, `None` when
    /// the queue is empty (an empty spoke's only per-cycle effect is the
    /// credit refill, which saturates after one idle tick).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.queue.is_empty() {
            None
        } else {
            Some(now)
        }
    }

    /// Fast-forwards an idle spoke: any positive number of idle ticks
    /// leaves the credit saturated at exactly one cycle's worth (`tick`
    /// refills then clamps), so the skip is a single assignment.
    pub fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        debug_assert!(from < to, "empty skip range");
        debug_assert!(self.queue.is_empty(), "cycle-skipped a loaded spoke");
        self.credit = self.bytes_per_cycle;
    }
}

#[derive(Debug, Clone)]
struct Spoke<T> {
    gate: DirectSpoke<T>,
    wheel: EventWheel<T>,
}

/// The star of direct spokes, carrying opaque items of known size.
///
/// # Examples
///
/// ```
/// use smarco_noc::direct::{DirectPath, DirectPathConfig};
///
/// let mut dp: DirectPath<&str> = DirectPath::new(DirectPathConfig {
///     subrings: 2, latency: 4, bytes_per_cycle: 8.0,
/// });
/// dp.send(0, 8, 0, "rt read");
/// let mut got = Vec::new();
/// for now in 0..10 {
///     got.extend(dp.tick(now));
/// }
/// assert_eq!(got, vec!["rt read"]);
/// ```
#[derive(Debug, Clone)]
pub struct DirectPath<T> {
    config: DirectPathConfig,
    spokes: Vec<Spoke<T>>,
    sent: u64,
}

impl<T> DirectPath<T> {
    /// Creates an idle star.
    ///
    /// # Panics
    ///
    /// Panics if `subrings` is zero or parameters are non-positive.
    pub fn new(config: DirectPathConfig) -> Self {
        assert!(config.subrings > 0, "need at least one spoke");
        assert!(config.latency > 0, "latency must be positive");
        assert!(config.bytes_per_cycle > 0.0, "bandwidth must be positive");
        Self {
            config,
            spokes: (0..config.subrings)
                .map(|_| Spoke {
                    gate: DirectSpoke::new(config.latency, config.bytes_per_cycle),
                    wheel: EventWheel::new(),
                })
                .collect(),
            sent: 0,
        }
    }

    /// Configuration.
    pub fn config(&self) -> DirectPathConfig {
        self.config
    }

    /// Queues `item` of `bytes` on sub-ring `subring`'s spoke at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the spoke index is out of range or `bytes` is zero.
    pub fn send(&mut self, subring: usize, bytes: u32, now: Cycle, item: T) {
        assert!(subring < self.spokes.len(), "spoke {subring} out of range");
        let _ = now;
        self.spokes[subring].gate.send(bytes, item);
    }

    /// Advances one cycle; returns items that traversed their spoke.
    pub fn tick(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        for spoke in &mut self.spokes {
            for (arrives, item) in spoke.gate.tick(now) {
                spoke.wheel.schedule(arrives, item);
                self.sent += 1;
            }
            while let Some(item) = spoke.wheel.pop_due(now) {
                out.push(item);
            }
        }
        out
    }

    /// Items sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Whether all spokes are idle.
    pub fn is_idle(&self) -> bool {
        self.spokes
            .iter()
            .all(|s| s.gate.is_idle() && s.wheel.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp() -> DirectPath<u32> {
        DirectPath::new(DirectPathConfig {
            subrings: 2,
            latency: 4,
            bytes_per_cycle: 8.0,
        })
    }

    #[test]
    fn fixed_latency_traversal() {
        let mut d = dp();
        d.send(0, 8, 0, 1);
        let mut arrived_at = None;
        for now in 0..20 {
            if !d.tick(now).is_empty() {
                arrived_at = Some(now);
                break;
            }
        }
        assert_eq!(arrived_at, Some(4));
        assert!(d.is_idle());
    }

    #[test]
    fn bandwidth_limits_injection_rate() {
        let mut d = dp();
        for i in 0..4 {
            d.send(0, 16, 0, i); // 16 B each at 8 B/cycle → one every 2 cycles
        }
        let mut times = Vec::new();
        for now in 0..30 {
            for it in d.tick(now) {
                times.push((now, it));
            }
        }
        assert_eq!(times.len(), 4);
        // Spacing of 2 cycles between completions.
        assert_eq!(times[1].0 - times[0].0, 2);
        assert_eq!(times[3].0 - times[2].0, 2);
    }

    #[test]
    fn spokes_are_independent() {
        let mut d = dp();
        d.send(0, 8, 0, 1);
        d.send(1, 8, 0, 2);
        let mut first = Vec::new();
        for now in 0..10 {
            first.extend(d.tick(now));
        }
        assert_eq!(first.len(), 2);
        assert_eq!(d.sent(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_spoke_rejected() {
        dp().send(7, 8, 0, 1);
    }

    #[test]
    fn spoke_skip_matches_idle_ticks() {
        let mut ticked: DirectSpoke<u32> = DirectSpoke::new(4, 8.0);
        let mut skipped: DirectSpoke<u32> = DirectSpoke::new(4, 8.0);
        // Leave both with partial credit, then idle one the slow way.
        ticked.send(12, 1);
        skipped.send(12, 1);
        assert!(ticked.tick(0).is_empty() && skipped.tick(0).is_empty());
        assert_eq!(ticked.tick(1), vec![(5, 1)]);
        assert_eq!(skipped.tick(1), vec![(5, 1)]);
        for now in 2..9 {
            ticked.tick(now);
        }
        skipped.skip_idle(2, 9);
        assert_eq!(skipped.next_event(9), None);
        // Identical behaviour after the idle stretch.
        ticked.send(16, 2);
        skipped.send(16, 2);
        assert_eq!(ticked.tick(9), skipped.tick(9));
        assert_eq!(ticked.tick(10), skipped.tick(10));
    }

    #[test]
    fn spoke_reports_absolute_arrival_cycles() {
        let mut s: DirectSpoke<u32> = DirectSpoke::new(4, 8.0);
        s.send(16, 1); // 16 B at 8 B/cycle → departs on the 2nd tick
        s.send(8, 2);
        assert!(s.tick(0).is_empty());
        assert_eq!(s.tick(1), vec![(5, 1)]);
        assert_eq!(s.tick(2), vec![(6, 2)]);
        assert!(s.is_idle());
        assert_eq!(s.sent(), 2);
    }
}
