//! A 2-D mesh NoC baseline (the topology the paper argues *against* for
//! HTC, §3.2).
//!
//! Mesh routers use dimension-ordered (XY) routing: correct and
//! deadlock-free, but each hop crosses a 5-port router, and central links
//! concentrate traffic — which is exactly the latency unpredictability
//! and congestion the paper's hierarchical ring avoids. Used by the
//! `ablation_mesh_vs_ring` bench.

use smarco_sim::stats::{Histogram, MeanTracker};
use smarco_sim::Cycle;

use crate::link::{DirectedLink, LinkConfig, Transmittable};

/// Wrapped item with its destination coordinates.
#[derive(Debug, Clone)]
struct MeshItem<T> {
    dst: (usize, usize),
    injected_at: Cycle,
    item: T,
}

impl<T: Transmittable> Transmittable for MeshItem<T> {
    fn bytes(&self) -> u32 {
        self.item.bytes()
    }
    fn realtime(&self) -> bool {
        self.item.realtime()
    }
}

/// Mesh-level delivery statistics.
#[derive(Debug, Clone, Default)]
pub struct MeshStats {
    /// Items delivered.
    pub delivered: u64,
    /// End-to-end latency.
    pub latency: MeanTracker,
    /// Latency distribution (for predictability comparisons with the
    /// ring).
    pub latency_hist: Histogram,
}

/// An `w × h` mesh with XY routing.
///
/// # Examples
///
/// ```
/// use smarco_noc::mesh::Mesh;
/// use smarco_noc::link::{LinkConfig, Transmittable};
///
/// #[derive(Debug)]
/// struct Word(u32);
/// impl Transmittable for Word {
///     fn bytes(&self) -> u32 { 4 }
/// }
///
/// let mut mesh: Mesh<Word> = Mesh::new(4, 4, LinkConfig::sub_ring());
/// mesh.inject((0, 0), (3, 3), 4, 0, Word(42));
/// let mut got = Vec::new();
/// for now in 0..100 {
///     got.extend(mesh.tick(now).into_iter().map(|(_, v)| v.0));
/// }
/// assert_eq!(got, vec![42]);
/// ```
#[derive(Debug)]
pub struct Mesh<T> {
    w: usize,
    h: usize,
    /// `east[y][x]`: link from (x,y) to (x+1,y); `west` the reverse.
    east: Vec<Vec<DirectedLink<MeshItem<T>>>>,
    west: Vec<Vec<DirectedLink<MeshItem<T>>>>,
    /// `south[y][x]`: link from (x,y) to (x,y+1); `north` the reverse.
    south: Vec<Vec<DirectedLink<MeshItem<T>>>>,
    north: Vec<Vec<DirectedLink<MeshItem<T>>>>,
    link: LinkConfig,
    stats: MeshStats,
}

impl<T: Transmittable> Mesh<T> {
    /// Creates a `w × h` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 or the link config is
    /// invalid.
    pub fn new(w: usize, h: usize, link: LinkConfig) -> Self {
        assert!(w >= 2 && h >= 2, "mesh needs at least 2×2 nodes");
        link.validate();
        let row = |n: usize| (0..n).map(|_| DirectedLink::new()).collect::<Vec<_>>();
        Self {
            w,
            h,
            east: (0..h).map(|_| row(w - 1)).collect(),
            west: (0..h).map(|_| row(w - 1)).collect(),
            south: (0..h - 1).map(|_| row(w)).collect(),
            north: (0..h - 1).map(|_| row(w)).collect(),
            link,
            stats: MeshStats::default(),
        }
    }

    /// Dimensions `(w, h)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.w, self.h)
    }

    /// Statistics so far.
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    fn route(&mut self, at: (usize, usize), it: MeshItem<T>, now: Cycle) -> Option<T> {
        let (x, y) = at;
        let (dx, dy) = it.dst;
        // XY routing: X first, then Y.
        if x < dx {
            self.east[y][x].push(it);
        } else if x > dx {
            self.west[y][x - 1].push(it);
        } else if y < dy {
            self.south[y][x].push(it);
        } else if y > dy {
            self.north[y - 1][x].push(it);
        } else {
            self.stats.delivered += 1;
            let lat = now.saturating_sub(it.injected_at);
            self.stats.latency.record(lat as f64);
            self.stats.latency_hist.record(lat);
            return Some(it.item);
        }
        None
    }

    /// Injects `item` of `bytes` at `src` addressed to `dst` at `now`;
    /// returns it immediately if `src == dst`.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of range or `bytes` is zero.
    pub fn inject(
        &mut self,
        src: (usize, usize),
        dst: (usize, usize),
        bytes: u32,
        now: Cycle,
        item: T,
    ) -> Option<T> {
        assert!(src.0 < self.w && src.1 < self.h, "src out of range");
        assert!(dst.0 < self.w && dst.1 < self.h, "dst out of range");
        assert!(bytes > 0, "zero-byte packet");
        let _ = bytes; // size comes from Transmittable
        self.route(
            src,
            MeshItem {
                dst,
                injected_at: now,
                item,
            },
            now,
        )
    }

    /// Advances one cycle; returns `(dst, item)` for deliveries.
    pub fn tick(&mut self, now: Cycle) -> Vec<((usize, usize), T)> {
        let mut out = Vec::new();
        // Arrivals, then forwarding decisions at each router.
        let mut moved: Vec<((usize, usize), MeshItem<T>)> = Vec::new();
        for y in 0..self.h {
            for x in 0..self.w - 1 {
                for it in self.east[y][x].arrivals(now) {
                    moved.push(((x + 1, y), it));
                }
                for it in self.west[y][x].arrivals(now) {
                    moved.push(((x, y), it));
                }
            }
        }
        for y in 0..self.h - 1 {
            for x in 0..self.w {
                for it in self.south[y][x].arrivals(now) {
                    moved.push(((x, y + 1), it));
                }
                for it in self.north[y][x].arrivals(now) {
                    moved.push(((x, y), it));
                }
            }
        }
        for (pos, it) in moved {
            let dst = it.dst;
            if let Some(v) = self.route(pos, it, now) {
                out.push((dst, v));
            }
        }
        // Transmit: each mesh link gets the full per-direction capacity
        // (no bidirectional lane sharing — mesh channels are fixed).
        let cap = self.link.max_capacity();
        let slice = self.link.slice_bytes;
        let lat = self.link.hop_latency;
        for row in self
            .east
            .iter_mut()
            .chain(self.west.iter_mut())
            .chain(self.south.iter_mut())
            .chain(self.north.iter_mut())
        {
            for l in row {
                l.transmit(cap, slice, lat, now);
            }
        }
        out
    }

    /// Whether nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.east
            .iter()
            .chain(self.west.iter())
            .chain(self.south.iter())
            .chain(self.north.iter())
            .all(|row| row.iter().all(DirectedLink::is_empty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u32);
    impl Transmittable for P {
        fn bytes(&self) -> u32 {
            self.0
        }
    }

    fn mesh() -> Mesh<P> {
        Mesh::new(4, 4, LinkConfig::sub_ring())
    }

    fn run(m: &mut Mesh<P>, cycles: Cycle) -> Vec<(Cycle, (usize, usize))> {
        let mut out = Vec::new();
        for now in 0..cycles {
            for (dst, _) in m.tick(now) {
                out.push((now, dst));
            }
        }
        out
    }

    #[test]
    fn xy_routing_delivers() {
        let mut m = mesh();
        m.inject((0, 0), (3, 2), 4, 0, P(4));
        let d = run(&mut m, 50);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, (3, 2));
        assert!(m.is_idle());
        // 5 hops minimum.
        assert!(d[0].0 >= 4);
    }

    #[test]
    fn self_delivery_immediate() {
        let mut m = mesh();
        assert_eq!(m.inject((1, 1), (1, 1), 4, 0, P(4)), Some(P(4)));
        assert_eq!(m.stats().delivered, 1);
    }

    #[test]
    fn all_pairs_exactly_once() {
        let mut m = mesh();
        let mut expected = 0;
        for sx in 0..4 {
            for sy in 0..4 {
                for dx in 0..4 {
                    for dy in 0..4 {
                        if (sx, sy) != (dx, dy) {
                            m.inject((sx, sy), (dx, dy), 4, 0, P(4));
                            expected += 1;
                        }
                    }
                }
            }
        }
        let d = run(&mut m, 2000);
        assert_eq!(d.len(), expected);
        assert!(m.is_idle());
    }

    #[test]
    fn latency_tracked() {
        let mut m = mesh();
        m.inject((0, 0), (3, 3), 8, 0, P(8));
        let _ = run(&mut m, 100);
        assert!(m.stats().latency.mean() >= 5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_coordinates_rejected() {
        mesh().inject((0, 0), (9, 9), 4, 0, P(4));
    }
}
