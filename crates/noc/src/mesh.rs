//! A 2-D mesh NoC baseline (the topology the paper argues *against* for
//! HTC, §3.2).
//!
//! Mesh routers use dimension-ordered (XY) routing: correct and
//! deadlock-free, but each hop crosses a 5-port router, and central links
//! concentrate traffic — which is exactly the latency unpredictability
//! and congestion the paper's hierarchical ring avoids. Used by the
//! `ablation_mesh_vs_ring` bench.

use smarco_sim::obs::{EventKind, TraceBuffer, TraceSink, Track};
use smarco_sim::stats::{Histogram, MeanTracker};
use smarco_sim::Cycle;

use crate::link::{DirectedLink, LinkConfig, Transmittable};

/// Wrapped item with its destination coordinates.
#[derive(Debug, Clone)]
struct MeshItem<T> {
    dst: (usize, usize),
    injected_at: Cycle,
    hops: u32,
    item: T,
}

impl<T: Transmittable> Transmittable for MeshItem<T> {
    fn bytes(&self) -> u32 {
        self.item.bytes()
    }
    fn realtime(&self) -> bool {
        self.item.realtime()
    }
    fn class(&self) -> u8 {
        self.item.class()
    }
}

/// Mesh-level delivery statistics.
#[derive(Debug, Clone, Default)]
pub struct MeshStats {
    /// Items delivered.
    pub delivered: u64,
    /// End-to-end latency.
    pub latency: MeanTracker,
    /// Latency distribution (for predictability comparisons with the
    /// ring).
    pub latency_hist: Histogram,
}

/// An `w × h` mesh with XY routing.
///
/// # Examples
///
/// ```
/// use smarco_noc::mesh::Mesh;
/// use smarco_noc::link::{LinkConfig, Transmittable};
///
/// #[derive(Debug)]
/// struct Word(u32);
/// impl Transmittable for Word {
///     fn bytes(&self) -> u32 { 4 }
/// }
///
/// let mut mesh: Mesh<Word> = Mesh::new(4, 4, LinkConfig::sub_ring());
/// mesh.inject((0, 0), (3, 3), 4, 0, Word(42));
/// let mut got = Vec::new();
/// for now in 0..100 {
///     got.extend(mesh.tick(now).into_iter().map(|(_, v)| v.0));
/// }
/// assert_eq!(got, vec![42]);
/// ```
#[derive(Debug)]
pub struct Mesh<T> {
    w: usize,
    h: usize,
    /// `east[y][x]`: link from (x,y) to (x+1,y); `west` the reverse.
    east: Vec<Vec<DirectedLink<MeshItem<T>>>>,
    west: Vec<Vec<DirectedLink<MeshItem<T>>>>,
    /// `south[y][x]`: link from (x,y) to (x,y+1); `north` the reverse.
    south: Vec<Vec<DirectedLink<MeshItem<T>>>>,
    north: Vec<Vec<DirectedLink<MeshItem<T>>>>,
    link: LinkConfig,
    stats: MeshStats,
    trace: Option<TraceBuffer>,
}

impl<T: Transmittable> Mesh<T> {
    /// Creates a `w × h` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 or the link config is
    /// invalid.
    pub fn new(w: usize, h: usize, link: LinkConfig) -> Self {
        assert!(w >= 2 && h >= 2, "mesh needs at least 2×2 nodes");
        link.validate();
        let row = |n: usize| (0..n).map(|_| DirectedLink::new()).collect::<Vec<_>>();
        Self {
            w,
            h,
            east: (0..h).map(|_| row(w - 1)).collect(),
            west: (0..h).map(|_| row(w - 1)).collect(),
            south: (0..h - 1).map(|_| row(w)).collect(),
            north: (0..h - 1).map(|_| row(w)).collect(),
            link,
            stats: MeshStats::default(),
            trace: None,
        }
    }

    /// Dimensions `(w, h)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.w, self.h)
    }

    /// Statistics so far.
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    fn route(&mut self, at: (usize, usize), it: MeshItem<T>, now: Cycle) -> Option<T> {
        let (x, y) = at;
        let (dx, dy) = it.dst;
        // XY routing: X first, then Y.
        if x < dx {
            self.east[y][x].push(it);
        } else if x > dx {
            self.west[y][x - 1].push(it);
        } else if y < dy {
            self.south[y][x].push(it);
        } else if y > dy {
            self.north[y - 1][x].push(it);
        } else {
            self.stats.delivered += 1;
            let lat = now.saturating_sub(it.injected_at);
            self.stats.latency.record(lat as f64);
            self.stats.latency_hist.record(lat);
            if let Some(buf) = self.trace.as_mut() {
                buf.emit(
                    now,
                    EventKind::RingHop {
                        hops: u64::from(it.hops),
                        bytes: u64::from(it.item.bytes()),
                    },
                );
            }
            return Some(it.item);
        }
        None
    }

    /// Injects `item` of `bytes` at `src` addressed to `dst` at `now`;
    /// returns it immediately if `src == dst`.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is out of range or `bytes` is zero.
    pub fn inject(
        &mut self,
        src: (usize, usize),
        dst: (usize, usize),
        bytes: u32,
        now: Cycle,
        item: T,
    ) -> Option<T> {
        assert!(src.0 < self.w && src.1 < self.h, "src out of range");
        assert!(dst.0 < self.w && dst.1 < self.h, "dst out of range");
        assert!(bytes > 0, "zero-byte packet");
        let _ = bytes; // size comes from Transmittable
        self.route(
            src,
            MeshItem {
                dst,
                injected_at: now,
                hops: 0,
                item,
            },
            now,
        )
    }

    /// Advances one cycle; returns `(dst, item)` for deliveries.
    pub fn tick(&mut self, now: Cycle) -> Vec<((usize, usize), T)> {
        let mut out = Vec::new();
        // Arrivals, then forwarding decisions at each router.
        let mut moved: Vec<((usize, usize), MeshItem<T>)> = Vec::new();
        for y in 0..self.h {
            for x in 0..self.w - 1 {
                for mut it in self.east[y][x].arrivals(now) {
                    it.hops += 1;
                    moved.push(((x + 1, y), it));
                }
                for mut it in self.west[y][x].arrivals(now) {
                    it.hops += 1;
                    moved.push(((x, y), it));
                }
            }
        }
        for y in 0..self.h - 1 {
            for x in 0..self.w {
                for mut it in self.south[y][x].arrivals(now) {
                    it.hops += 1;
                    moved.push(((x, y + 1), it));
                }
                for mut it in self.north[y][x].arrivals(now) {
                    it.hops += 1;
                    moved.push(((x, y), it));
                }
            }
        }
        for (pos, it) in moved {
            let dst = it.dst;
            if let Some(v) = self.route(pos, it, now) {
                out.push((dst, v));
            }
        }
        // Transmit: each mesh link gets the full per-direction capacity
        // (no bidirectional lane sharing — mesh channels are fixed).
        let cap = self.link.max_capacity();
        let slice = self.link.slice_bytes;
        let lat = self.link.hop_latency;
        for row in self
            .east
            .iter_mut()
            .chain(self.west.iter_mut())
            .chain(self.south.iter_mut())
            .chain(self.north.iter_mut())
        {
            for l in row {
                l.transmit(cap, slice, lat, now);
            }
        }
        out
    }

    /// Whether nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.links().all(DirectedLink::is_empty)
    }

    fn links(&self) -> impl Iterator<Item = &DirectedLink<MeshItem<T>>> {
        self.east
            .iter()
            .chain(self.west.iter())
            .chain(self.south.iter())
            .chain(self.north.iter())
            .flat_map(|row| row.iter())
    }

    fn links_mut(&mut self) -> impl Iterator<Item = &mut DirectedLink<MeshItem<T>>> {
        self.east
            .iter_mut()
            .chain(self.west.iter_mut())
            .chain(self.south.iter_mut())
            .chain(self.north.iter_mut())
            .flat_map(|row| row.iter_mut())
    }

    /// Event horizon: the earliest cycle at or after `now` at which any
    /// link can transmit or deliver something. `Some(now)` while bytes
    /// are queued anywhere, the earliest wire arrival while items are in
    /// flight, `None` when the mesh is fully drained — the same contract
    /// as [`crate::ring::Ring::next_event`], so cycle skipping covers
    /// the mesh too.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        for l in self.links() {
            if l.queued_packets() > 0 {
                return Some(now);
            }
            if let Some(due) = l.next_arrival() {
                let due = due.max(now);
                horizon = Some(horizon.map_or(due, |h| h.min(due)));
            }
        }
        horizon
    }

    /// Fast-forwards an idle mesh across `[from, to)`, accumulating
    /// exactly the offered-capacity statistics [`tick`](Self::tick)
    /// accumulates when every queue is empty: each directed link is
    /// offered the full per-direction capacity every cycle.
    pub fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        let bytes = (to - from) * u64::from(self.link.max_capacity());
        for l in self.links_mut() {
            l.skip_offer(bytes);
        }
    }

    /// Cumulative `(payload, offered)` bytes summed over all directed
    /// links. Monotonic counters, diffable for windowed utilization.
    pub fn payload_offered_bytes(&self) -> (u64, u64) {
        let (mut payload, mut offered) = (0u64, 0u64);
        for l in self.links() {
            let s = l.stats();
            payload += s.payload_bytes;
            offered += s.offered_bytes;
        }
        (payload, offered)
    }

    /// Aggregated payload utilization across all directed links.
    pub fn payload_utilization(&self) -> f64 {
        let (payload, offered) = self.payload_offered_bytes();
        if offered == 0 {
            0.0
        } else {
            payload as f64 / offered as f64
        }
    }

    /// Pending bytes across the output queues of node `(x, y)`
    /// (congestion metric, mirroring [`crate::ring::Ring::congestion_at`]).
    pub fn congestion_at(&self, at: (usize, usize)) -> u64 {
        let (x, y) = at;
        let mut q = 0u64;
        if x < self.w - 1 {
            q += self.east[y][x].queued_bytes();
        }
        if x > 0 {
            q += self.west[y][x - 1].queued_bytes();
        }
        if y < self.h - 1 {
            q += self.south[y][x].queued_bytes();
        }
        if y > 0 {
            q += self.north[y - 1][x].queued_bytes();
        }
        q
    }

    /// Turns event tracing on, staging delivery events on `track`.
    pub fn enable_trace(&mut self, track: Track) {
        self.trace = Some(TraceBuffer::new(track));
    }

    /// Moves staged delivery events into `sink` (no-op when tracing is
    /// off).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        if let Some(buf) = self.trace.as_mut() {
            buf.drain_into(sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u32);
    impl Transmittable for P {
        fn bytes(&self) -> u32 {
            self.0
        }
    }

    fn mesh() -> Mesh<P> {
        Mesh::new(4, 4, LinkConfig::sub_ring())
    }

    fn run(m: &mut Mesh<P>, cycles: Cycle) -> Vec<(Cycle, (usize, usize))> {
        let mut out = Vec::new();
        for now in 0..cycles {
            for (dst, _) in m.tick(now) {
                out.push((now, dst));
            }
        }
        out
    }

    #[test]
    fn xy_routing_delivers() {
        let mut m = mesh();
        m.inject((0, 0), (3, 2), 4, 0, P(4));
        let d = run(&mut m, 50);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, (3, 2));
        assert!(m.is_idle());
        // 5 hops minimum.
        assert!(d[0].0 >= 4);
    }

    #[test]
    fn self_delivery_immediate() {
        let mut m = mesh();
        assert_eq!(m.inject((1, 1), (1, 1), 4, 0, P(4)), Some(P(4)));
        assert_eq!(m.stats().delivered, 1);
    }

    #[test]
    fn all_pairs_exactly_once() {
        let mut m = mesh();
        let mut expected = 0;
        for sx in 0..4 {
            for sy in 0..4 {
                for dx in 0..4 {
                    for dy in 0..4 {
                        if (sx, sy) != (dx, dy) {
                            m.inject((sx, sy), (dx, dy), 4, 0, P(4));
                            expected += 1;
                        }
                    }
                }
            }
        }
        let d = run(&mut m, 2000);
        assert_eq!(d.len(), expected);
        assert!(m.is_idle());
    }

    #[test]
    fn latency_tracked() {
        let mut m = mesh();
        m.inject((0, 0), (3, 3), 8, 0, P(8));
        let _ = run(&mut m, 100);
        assert!(m.stats().latency.mean() >= 5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_coordinates_rejected() {
        mesh().inject((0, 0), (9, 9), 4, 0, P(4));
    }

    #[test]
    fn drained_mesh_reports_no_horizon() {
        let mut m = mesh();
        assert_eq!(m.next_event(7), None, "fresh mesh has no events");
        m.inject((0, 0), (2, 1), 4, 0, P(4));
        assert_eq!(m.next_event(0), Some(0), "queued item acts immediately");
        m.tick(0); // transmits; arrival due at 1
        assert_eq!(m.next_event(0), Some(1));
        let _ = run(&mut m, 50);
        assert!(m.is_idle());
        assert_eq!(m.next_event(50), None, "drained mesh reports None");
    }

    #[test]
    fn skip_idle_matches_ticking_an_idle_mesh() {
        let mut ticked = mesh();
        let mut skipped = mesh();
        for now in 0..80 {
            ticked.tick(now);
        }
        skipped.skip_idle(0, 80);
        assert_eq!(
            ticked.payload_offered_bytes(),
            skipped.payload_offered_bytes()
        );
    }

    #[test]
    fn congestion_counts_outgoing_queues() {
        let mut m = mesh();
        assert_eq!(m.congestion_at((1, 1)), 0);
        m.inject((1, 1), (3, 1), 8, 0, P(8));
        assert!(m.congestion_at((1, 1)) > 0);
    }
}
