//! Physical channels: lanes, slicing and the greedy allocator (§3.3).
//!
//! A channel between two routers bundles 64-bit *lanes* (the paper's
//! "datapaths"): some fixed per direction, some bidirectional and granted
//! cycle-by-cycle to the more congested direction. The per-direction
//! capacity can further be split into self-governed *slices* (2–16 bytes):
//!
//! * **Conventional** link (`slice_bytes == None`): one packet occupies the
//!   whole width for a cycle no matter how small it is — a 2-byte packet on
//!   a 32-byte link wastes 15/16 of the bandwidth.
//! * **High-density** link (`slice_bytes == Some(s)`): the greedy
//!   allocation algorithm packs as many queued packets as fit into the
//!   free slices each cycle, so small packets share the width.

use std::collections::VecDeque;

use smarco_sim::event::EventWheel;
use smarco_sim::Cycle;

/// Items a link can carry: anything that knows its size and priority.
pub trait Transmittable {
    /// Payload size in bytes (≥1).
    fn bytes(&self) -> u32;
    /// Real-time items jump ahead of queued normal items.
    fn realtime(&self) -> bool {
        false
    }
    /// Arbitration class: higher-class items are inserted ahead of queued
    /// lower-class items. The default maps real-time to class 1 and
    /// everything else to class 0, which reproduces the plain
    /// realtime-first queueing; criticality-aware payloads override this
    /// with a finer ladder (see `Criticality`).
    fn class(&self) -> u8 {
        u8::from(self.realtime())
    }
}

/// Channel geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// 64-bit lanes dedicated to each direction.
    pub lanes_fixed_per_dir: usize,
    /// 64-bit lanes granted per cycle to the needier direction.
    pub lanes_bidir: usize,
    /// Bytes per lane per cycle (8 for 64-bit lanes).
    pub lane_bytes: u32,
    /// Slice width for high-density operation; `None` = conventional.
    pub slice_bytes: Option<u32>,
    /// Cycles for a transmitted packet to reach the next router.
    pub hop_latency: Cycle,
}

impl LinkConfig {
    /// Main ring (§3.3): eight 64-bit datapaths — three fixed per
    /// direction plus two bidirectional; 512-bit total. High-density slices
    /// default to 2 bytes (the best point in Fig. 18).
    pub fn main_ring() -> Self {
        Self {
            lanes_fixed_per_dir: 3,
            lanes_bidir: 2,
            lane_bytes: 8,
            slice_bytes: Some(2),
            hop_latency: 1,
        }
    }

    /// Sub-ring (§3.3): four 64-bit datapaths — one fixed per direction
    /// plus two bidirectional; 256-bit total.
    pub fn sub_ring() -> Self {
        Self {
            lanes_fixed_per_dir: 1,
            lanes_bidir: 2,
            lane_bytes: 8,
            slice_bytes: Some(2),
            hop_latency: 1,
        }
    }

    /// Same geometry with conventional (unsliced) links, the Fig. 18/20
    /// baseline.
    pub fn conventional(mut self) -> Self {
        self.slice_bytes = None;
        self
    }

    /// Same geometry with `s`-byte slices.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero or exceeds the per-direction peak width.
    pub fn sliced(mut self, s: u32) -> Self {
        assert!(s > 0, "slice width must be positive");
        assert!(s <= self.max_capacity(), "slice wider than peak capacity");
        self.slice_bytes = Some(s);
        self
    }

    /// Guaranteed per-direction bytes per cycle (fixed lanes only).
    pub fn min_capacity(&self) -> u32 {
        self.lanes_fixed_per_dir as u32 * self.lane_bytes
    }

    /// Peak per-direction bytes per cycle (all bidirectional lanes
    /// granted).
    pub fn max_capacity(&self) -> u32 {
        (self.lanes_fixed_per_dir + self.lanes_bidir) as u32 * self.lane_bytes
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on zero lanes/width or a slice wider than the guaranteed
    /// capacity.
    pub fn validate(&self) {
        if let Err(reason) = self.check() {
            panic!("{reason}");
        }
    }

    /// Non-panicking validation for builder-style callers.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found, as a human-readable string.
    pub fn check(&self) -> Result<(), String> {
        if self.lanes_fixed_per_dir == 0 {
            return Err("need at least one fixed lane per direction".into());
        }
        if self.lane_bytes == 0 {
            return Err("lanes must be at least one byte wide".into());
        }
        if self.hop_latency == 0 {
            return Err("hop latency must be positive".into());
        }
        if let Some(s) = self.slice_bytes {
            if s == 0 || s > self.max_capacity() {
                return Err(format!("bad slice width {s}"));
            }
        }
        Ok(())
    }
}

/// Per-direction transmission statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkStats {
    /// Useful payload bytes delivered onto the wire.
    pub payload_bytes: u64,
    /// Bytes of link width consumed (payload + slice rounding, or the full
    /// width for conventional links).
    pub occupied_bytes: u64,
    /// Capacity offered over all ticks.
    pub offered_bytes: u64,
    /// Packets fully transmitted.
    pub packets_sent: u64,
    /// Cycles with at least one byte sent.
    pub busy_cycles: u64,
}

impl LinkStats {
    /// Fraction of offered capacity carrying payload.
    pub fn payload_utilization(&self) -> f64 {
        if self.offered_bytes == 0 {
            0.0
        } else {
            self.payload_bytes as f64 / self.offered_bytes as f64
        }
    }

    /// Fraction of offered capacity occupied (incl. rounding waste).
    pub fn occupancy(&self) -> f64 {
        if self.offered_bytes == 0 {
            0.0
        } else {
            self.occupied_bytes as f64 / self.offered_bytes as f64
        }
    }
}

/// One direction of a channel: an output queue, the wire, and arrivals.
#[derive(Debug, Clone)]
pub struct DirectedLink<T> {
    queue: VecDeque<T>,
    /// Bytes of the head packet already transmitted (wormhole progress).
    head_sent: u32,
    wire: EventWheel<T>,
    stats: LinkStats,
}

impl<T: Transmittable> Default for DirectedLink<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Transmittable> DirectedLink<T> {
    /// Creates an empty link direction.
    pub fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            head_sent: 0,
            wire: EventWheel::new(),
            stats: LinkStats::default(),
        }
    }

    /// Queues an item for transmission. Higher-class items (see
    /// [`Transmittable::class`]) are inserted ahead of queued lower-class
    /// items — FIFO within a class, and never preempting a partially sent
    /// head. With the default two-class ladder this is exactly
    /// realtime-first queueing.
    pub fn push(&mut self, item: T) {
        let class = item.class();
        if class > 0 {
            let start = usize::from(self.head_sent > 0);
            let idx = (start..self.queue.len())
                .find(|&i| self.queue[i].class() < class)
                .unwrap_or(self.queue.len());
            self.queue.insert(idx, item);
        } else {
            self.queue.push_back(item);
        }
    }

    /// Bytes waiting to be transmitted (congestion metric for direction
    /// choice and bidirectional lane granting).
    pub fn queued_bytes(&self) -> u64 {
        self.queue.iter().map(|p| u64::from(p.bytes())).sum::<u64>() - u64::from(self.head_sent)
    }

    /// Queued packet count.
    pub fn queued_packets(&self) -> usize {
        self.queue.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Transmits for one cycle with `capacity` bytes of granted width,
    /// using `slice`/`hop_latency` from the config.
    pub fn transmit(&mut self, capacity: u32, slice: Option<u32>, hop_latency: Cycle, now: Cycle) {
        self.stats.offered_bytes += u64::from(capacity);
        if self.queue.is_empty() || capacity == 0 {
            return;
        }
        let mut sent_any = false;
        match slice {
            None => {
                // Conventional: exactly one packet owns the whole width.
                let rem = self.queue[0].bytes() - self.head_sent;
                let sent = rem.min(capacity);
                self.head_sent += sent;
                self.stats.payload_bytes += u64::from(sent);
                self.stats.occupied_bytes += u64::from(capacity);
                sent_any = sent > 0;
                if self.head_sent >= self.queue[0].bytes() {
                    let pkt = self.queue.pop_front().expect("head exists");
                    self.head_sent = 0;
                    self.stats.packets_sent += 1;
                    self.wire.schedule(now + hop_latency, pkt);
                }
            }
            Some(s) => {
                // High-density greedy allocation: pack packets into free
                // slices until the width is exhausted.
                let mut free = capacity;
                while free > 0 && !self.queue.is_empty() {
                    let rem = self.queue[0].bytes() - self.head_sent;
                    let need = rem.div_ceil(s) * s;
                    if need <= free {
                        free -= need;
                        self.stats.payload_bytes += u64::from(rem);
                        self.stats.occupied_bytes += u64::from(need);
                        let pkt = self.queue.pop_front().expect("head exists");
                        self.head_sent = 0;
                        self.stats.packets_sent += 1;
                        self.wire.schedule(now + hop_latency, pkt);
                        sent_any = true;
                    } else {
                        // Partial (wormhole) progress: the head streams
                        // through whatever width remains this cycle.
                        let sent = free.min(rem);
                        self.head_sent += sent;
                        self.stats.payload_bytes += u64::from(sent);
                        self.stats.occupied_bytes += u64::from(free);
                        sent_any = true;
                        free = 0;
                    }
                }
            }
        }
        if sent_any {
            self.stats.busy_cycles += 1;
        }
    }

    /// Items arriving at the far router this cycle.
    pub fn arrivals(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(p) = self.wire.pop_due(now) {
            out.push(p);
        }
        out
    }

    /// Whether the link has nothing queued or in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.wire.is_empty()
    }

    /// Cycle at which the earliest in-flight item reaches the far router,
    /// if anything is on the wire.
    pub fn next_arrival(&self) -> Option<Cycle> {
        self.wire.next_due()
    }

    /// Accounts `bytes` of offered-but-unused capacity, exactly as an idle
    /// [`transmit`](Self::transmit) would — the fast-forward half of cycle
    /// skipping for topologies (like the mesh) that drive directed links
    /// without a [`Channel`] wrapper.
    ///
    /// Debug builds assert the link really is idle: nothing queued, so the
    /// skipped ticks could not have moved bytes.
    pub fn skip_offer(&mut self, bytes: u64) {
        debug_assert!(
            self.queue.is_empty(),
            "cycle-skipped a directed link with queued traffic"
        );
        self.stats.offered_bytes += bytes;
    }
}

/// A bidirectional channel: two directed links sharing the bidirectional
/// lanes, granted per cycle by queue pressure.
#[derive(Debug, Clone)]
pub struct Channel<T> {
    config: LinkConfig,
    /// "Forward" direction (clockwise in a ring).
    pub fwd: DirectedLink<T>,
    /// "Reverse" direction (counter-clockwise).
    pub rev: DirectedLink<T>,
}

impl<T: Transmittable> Channel<T> {
    /// Creates an idle channel.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`LinkConfig::validate`]).
    pub fn new(config: LinkConfig) -> Self {
        config.validate();
        Self {
            config,
            fwd: DirectedLink::new(),
            rev: DirectedLink::new(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Replaces the channel geometry in place (fault injection / dynamic
    /// reconfiguration studies); queued and in-flight traffic is kept.
    ///
    /// # Panics
    ///
    /// Panics if the new config is invalid.
    pub fn set_config(&mut self, config: LinkConfig) {
        config.validate();
        self.config = config;
    }

    /// Grants bidirectional lanes and transmits both directions.
    pub fn tick(&mut self, now: Cycle) {
        let base = self.config.min_capacity();
        let lane = self.config.lane_bytes;
        let mut fwd_cap = base;
        let mut rev_cap = base;
        // Grant each bidirectional lane to the direction with more unserved
        // queued bytes.
        let mut fq = self.fwd.queued_bytes();
        let mut rq = self.rev.queued_bytes();
        for _ in 0..self.config.lanes_bidir {
            let f_unserved = fq.saturating_sub(u64::from(fwd_cap));
            let r_unserved = rq.saturating_sub(u64::from(rev_cap));
            if f_unserved >= r_unserved {
                fwd_cap += lane;
                fq = fq.saturating_sub(u64::from(lane));
            } else {
                rev_cap += lane;
                rq = rq.saturating_sub(u64::from(lane));
            }
        }
        let slice = self.config.slice_bytes;
        let lat = self.config.hop_latency;
        self.fwd.transmit(fwd_cap, slice, lat, now);
        self.rev.transmit(rev_cap, slice, lat, now);
    }

    /// Whether both directions are idle.
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty() && self.rev.is_empty()
    }

    /// Event horizon: the earliest cycle at or after `now` at which this
    /// channel can transmit or deliver something. `Some(now)` while bytes
    /// are queued, the earliest wire arrival while items are in flight,
    /// `None` when fully drained.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.fwd.queue.is_empty() || !self.rev.queue.is_empty() {
            return Some(now);
        }
        match (self.fwd.wire.next_due(), self.rev.wire.next_due()) {
            (Some(a), Some(b)) => Some(now.max(a.min(b))),
            (Some(a), None) | (None, Some(a)) => Some(now.max(a)),
            (None, None) => None,
        }
    }

    /// Fast-forwards an idle channel across `[from, to)`, applying exactly
    /// the statistics `tick` accumulates when both queues are empty: the
    /// grant loop's tie-break hands every bidirectional lane to the forward
    /// direction, so per cycle `fwd` is offered the peak capacity and `rev`
    /// the guaranteed minimum.
    ///
    /// Debug builds assert the channel really is quiescent through `to` —
    /// a lying [`next_event`](Self::next_event) trips these rather than
    /// silently corrupting results.
    pub fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        debug_assert!(
            self.fwd.queue.is_empty() && self.rev.queue.is_empty(),
            "cycle-skipped a channel with queued traffic"
        );
        debug_assert!(
            self.fwd.wire.next_due().is_none_or(|d| d >= to)
                && self.rev.wire.next_due().is_none_or(|d| d >= to),
            "cycle-skipped past an in-flight arrival"
        );
        let cycles = to - from;
        self.fwd.stats.offered_bytes += cycles * u64::from(self.config.max_capacity());
        self.rev.stats.offered_bytes += cycles * u64::from(self.config.min_capacity());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Pkt {
        id: u32,
        bytes: u32,
        rt: bool,
    }

    impl Transmittable for Pkt {
        fn bytes(&self) -> u32 {
            self.bytes
        }
        fn realtime(&self) -> bool {
            self.rt
        }
    }

    fn pkt(id: u32, bytes: u32) -> Pkt {
        Pkt {
            id,
            bytes,
            rt: false,
        }
    }

    #[test]
    fn conventional_sends_one_packet_per_cycle() {
        let mut l: DirectedLink<Pkt> = DirectedLink::new();
        for i in 0..4 {
            l.push(pkt(i, 2));
        }
        // 32-byte conventional link: one 2-byte packet per cycle.
        for now in 0..4 {
            l.transmit(32, None, 1, now);
        }
        let delivered: Vec<u32> = (1..=4)
            .flat_map(|now| l.arrivals(now))
            .map(|p| p.id)
            .collect();
        assert_eq!(delivered, vec![0, 1, 2, 3]);
        let s = l.stats();
        assert_eq!(s.payload_bytes, 8);
        assert_eq!(s.occupied_bytes, 4 * 32, "whole width burned each cycle");
    }

    #[test]
    fn sliced_link_packs_small_packets() {
        let mut l: DirectedLink<Pkt> = DirectedLink::new();
        for i in 0..4 {
            l.push(pkt(i, 2));
        }
        // Same width, 2-byte slices: all four go in one cycle.
        l.transmit(32, Some(2), 1, 0);
        let delivered: Vec<u32> = l.arrivals(1).iter().map(|p| p.id).collect();
        assert_eq!(delivered, vec![0, 1, 2, 3]);
        assert_eq!(l.stats().occupied_bytes, 8);
    }

    #[test]
    fn slice_rounding_wastes_partial_slices() {
        let mut l: DirectedLink<Pkt> = DirectedLink::new();
        l.push(pkt(0, 3)); // needs 1 slice of 4 → occupies 4
        l.transmit(16, Some(4), 1, 0);
        let s = l.stats();
        assert_eq!(s.payload_bytes, 3);
        assert_eq!(s.occupied_bytes, 4);
    }

    #[test]
    fn big_packet_wormholes_across_cycles() {
        let mut l: DirectedLink<Pkt> = DirectedLink::new();
        l.push(pkt(0, 70));
        l.push(pkt(1, 2));
        // 32 B/cycle sliced: packet 0 takes 3 cycles; packet 1 shares the
        // third cycle's leftover width.
        let mut arrived = Vec::new();
        for now in 0..5 {
            l.transmit(32, Some(2), 1, now);
            arrived.extend(l.arrivals(now + 1).into_iter().map(|p| (now + 1, p.id)));
        }
        assert_eq!(arrived, vec![(3, 0), (3, 1)]);
    }

    #[test]
    fn conventional_big_packet_takes_multiple_cycles() {
        let mut l: DirectedLink<Pkt> = DirectedLink::new();
        l.push(pkt(0, 64));
        for now in 0..2 {
            l.transmit(32, None, 1, now);
        }
        assert_eq!(l.arrivals(2).len(), 1);
        assert_eq!(l.stats().packets_sent, 1);
    }

    #[test]
    fn realtime_jumps_queue_but_not_partial_head() {
        let mut l: DirectedLink<Pkt> = DirectedLink::new();
        l.push(pkt(0, 64)); // will be mid-flight
        l.push(pkt(1, 2));
        l.transmit(32, Some(2), 1, 0); // head partially sent
        l.push(Pkt {
            id: 2,
            bytes: 2,
            rt: true,
        });
        // rt packet should sit right after the in-progress head.
        let mut order = Vec::new();
        for now in 1..6 {
            l.transmit(32, Some(2), 1, now);
            order.extend(l.arrivals(now + 1).into_iter().map(|p| p.id));
        }
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[derive(Debug, Clone, PartialEq)]
    struct ClassedPkt {
        id: u32,
        class: u8,
    }

    impl Transmittable for ClassedPkt {
        fn bytes(&self) -> u32 {
            2
        }
        fn class(&self) -> u8 {
            self.class
        }
    }

    #[test]
    fn class_ladder_orders_queue_fifo_within_class() {
        let mut l: DirectedLink<ClassedPkt> = DirectedLink::new();
        for (id, class) in [(0, 1), (1, 0), (2, 2), (3, 1), (4, 3), (5, 2)] {
            l.push(ClassedPkt { id, class });
        }
        // One wide sliced cycle delivers everything in queue order.
        l.transmit(32, Some(2), 1, 0);
        let order: Vec<u32> = l.arrivals(1).iter().map(|p| p.id).collect();
        assert_eq!(order, vec![4, 2, 5, 0, 3, 1]);
    }

    #[test]
    fn queued_bytes_excludes_sent_head_portion() {
        let mut l: DirectedLink<Pkt> = DirectedLink::new();
        l.push(pkt(0, 64));
        assert_eq!(l.queued_bytes(), 64);
        l.transmit(32, Some(2), 1, 0);
        assert_eq!(l.queued_bytes(), 32);
        assert_eq!(l.queued_packets(), 1);
    }

    #[test]
    fn channel_grants_bidir_lanes_to_pressure() {
        let cfg = LinkConfig {
            lanes_fixed_per_dir: 1,
            lanes_bidir: 2,
            lane_bytes: 8,
            slice_bytes: Some(2),
            hop_latency: 1,
        };
        let mut ch: Channel<Pkt> = Channel::new(cfg);
        // Load only the forward direction.
        for i in 0..10 {
            ch.fwd.push(pkt(i, 8));
        }
        ch.tick(0);
        // Forward got fixed 8 + both bidir lanes (16) = 24 bytes → 3 packets.
        assert_eq!(ch.fwd.arrivals(1).len(), 3);
        assert!(ch.rev.arrivals(1).is_empty());
    }

    #[test]
    fn balanced_channel_splits_bidir_lanes() {
        let cfg = LinkConfig {
            lanes_fixed_per_dir: 1,
            lanes_bidir: 2,
            lane_bytes: 8,
            slice_bytes: Some(8),
            hop_latency: 1,
        };
        let mut ch: Channel<Pkt> = Channel::new(cfg);
        for i in 0..4 {
            ch.fwd.push(pkt(i, 8));
            ch.rev.push(pkt(100 + i, 8));
        }
        ch.tick(0);
        // Each direction: 8 fixed + 8 granted = 2 packets.
        assert_eq!(ch.fwd.arrivals(1).len(), 2);
        assert_eq!(ch.rev.arrivals(1).len(), 2);
    }

    #[test]
    fn capacities_per_paper() {
        let main = LinkConfig::main_ring();
        assert_eq!(main.max_capacity(), 40); // 5 lanes usable one way
        assert_eq!(main.min_capacity(), 24);
        let sub = LinkConfig::sub_ring();
        assert_eq!(sub.max_capacity(), 24);
        assert_eq!(sub.min_capacity(), 8);
        // Totals across both directions: 512-bit main, 256-bit sub.
        assert_eq!(
            (main.lanes_fixed_per_dir * 2 + main.lanes_bidir) as u32 * main.lane_bytes * 8,
            512
        );
        assert_eq!(
            (sub.lanes_fixed_per_dir * 2 + sub.lanes_bidir) as u32 * sub.lane_bytes * 8,
            256
        );
    }

    #[test]
    fn utilization_statistics() {
        let mut l: DirectedLink<Pkt> = DirectedLink::new();
        l.push(pkt(0, 16));
        l.transmit(32, Some(2), 1, 0);
        l.transmit(32, Some(2), 1, 1); // idle cycle still offers capacity
        let s = l.stats();
        assert!((s.payload_utilization() - 16.0 / 64.0).abs() < 1e-12);
        assert!((s.occupancy() - 16.0 / 64.0).abs() < 1e-12);
        assert_eq!(s.busy_cycles, 1);
    }

    #[test]
    #[should_panic(expected = "slice wider than peak capacity")]
    fn oversized_slice_rejected() {
        let _ = LinkConfig::sub_ring().sliced(64);
    }

    #[test]
    fn skip_idle_matches_ticking_an_idle_channel() {
        for cfg in [
            LinkConfig::sub_ring(),
            LinkConfig::main_ring(),
            LinkConfig::main_ring().conventional(),
        ] {
            let mut ticked: Channel<Pkt> = Channel::new(cfg);
            let mut skipped: Channel<Pkt> = Channel::new(cfg);
            for now in 0..100 {
                ticked.tick(now);
            }
            skipped.skip_idle(0, 100);
            assert_eq!(ticked.fwd.stats(), skipped.fwd.stats());
            assert_eq!(ticked.rev.stats(), skipped.rev.stats());
        }
    }

    #[test]
    fn channel_horizon_tracks_queue_and_wire() {
        let mut ch: Channel<Pkt> = Channel::new(LinkConfig::sub_ring());
        assert_eq!(ch.next_event(5), None);
        ch.rev.push(pkt(0, 2));
        assert_eq!(ch.next_event(5), Some(5));
        ch.tick(5); // transmits; arrival due at 6
        assert_eq!(ch.next_event(5), Some(6));
        assert_eq!(ch.fwd.next_arrival(), None);
        assert_eq!(ch.rev.next_arrival(), Some(6));
        let _ = ch.rev.arrivals(6);
        assert_eq!(ch.next_event(7), None);
    }
}
