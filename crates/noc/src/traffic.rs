//! Synthetic traffic for NoC-only studies (Fig. 18).
//!
//! Each core injects packets at a configurable rate with a configurable
//! size distribution (HTC workloads are dominated by 1–8-byte requests,
//! Fig. 8) toward memory controllers and/or peer cores. The testbench
//! reports throughput (packets per cycle — the paper's "throughput rate"),
//! latency and link utilization for a given link slicing.

use smarco_sim::rng::SimRng;
use smarco_sim::Cycle;

use crate::hierarchy::{HierarchicalRing, NocConfig};
use crate::packet::{NodeId, Packet};

/// A discrete packet-size distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeMix {
    sizes: Vec<(u32, f64)>,
}

impl SizeMix {
    /// Creates a mix from `(bytes, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty, any size is zero, or all weights are zero.
    pub fn new(sizes: Vec<(u32, f64)>) -> Self {
        assert!(!sizes.is_empty(), "size mix must not be empty");
        assert!(
            sizes.iter().all(|&(b, w)| b > 0 && w >= 0.0),
            "bad size entry"
        );
        assert!(
            sizes.iter().map(|&(_, w)| w).sum::<f64>() > 0.0,
            "weights all zero"
        );
        Self { sizes }
    }

    /// HTC-like: small packets dominate (Fig. 8 left).
    pub fn htc() -> Self {
        Self::new(vec![
            (1, 0.25),
            (2, 0.3),
            (4, 0.2),
            (8, 0.15),
            (16, 0.06),
            (32, 0.04),
        ])
    }

    /// Conventional/SPLASH2-like: larger transfers (Fig. 8 right).
    pub fn conventional() -> Self {
        Self::new(vec![(8, 0.1), (16, 0.2), (32, 0.3), (64, 0.4)])
    }

    /// Samples a packet size.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let weights: Vec<f64> = self.sizes.iter().map(|&(_, w)| w).collect();
        self.sizes[rng.pick_weighted(&weights)].0
    }

    /// Weighted mean size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        let total: f64 = self.sizes.iter().map(|&(_, w)| w).sum();
        self.sizes
            .iter()
            .map(|&(b, w)| f64::from(b) * w / total)
            .sum()
    }
}

/// Where generated packets go.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// All packets to a random memory controller (the dominant HTC
    /// pattern).
    ToMemory,
    /// Uniform random peer core.
    UniformCores,
    /// `mem_frac` of traffic to memory, the rest to random cores.
    Mixed {
        /// Fraction of packets that target memory controllers.
        mem_frac: f64,
    },
}

/// Traffic generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Expected packets injected per core per cycle (values above 1 model
    /// cores with multiple outstanding requests; must be ≤ 8).
    pub rate: f64,
    /// Destination pattern.
    pub pattern: Pattern,
    /// Packet size distribution.
    pub sizes: SizeMix,
}

/// Results of a testbench run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficReport {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Delivered packets per cycle (the paper's throughput rate).
    pub throughput: f64,
    /// Mean end-to-end latency in cycles.
    pub mean_latency: f64,
    /// Max observed latency.
    pub max_latency: f64,
    /// Main-ring payload utilization.
    pub main_util: f64,
    /// Sub-ring payload utilization.
    pub sub_util: f64,
}

/// Closed harness: a [`HierarchicalRing`] driven by per-core generators.
#[derive(Debug)]
pub struct Testbench {
    noc: HierarchicalRing<()>,
    traffic: TrafficConfig,
    rng: SimRng,
    next_id: u64,
    injected: u64,
}

impl Testbench {
    /// Creates a testbench over `noc_config` with `traffic`.
    ///
    /// # Panics
    ///
    /// Panics if the injection rate is outside `[0, 1]`.
    pub fn new(noc_config: NocConfig, traffic: TrafficConfig, seed: u64) -> Self {
        assert!(
            (0.0..=8.0).contains(&traffic.rate),
            "rate must be in [0, 8]"
        );
        Self {
            noc: HierarchicalRing::new(noc_config),
            traffic,
            rng: SimRng::new(seed),
            next_id: 0,
            injected: 0,
        }
    }

    fn destination(&mut self, src: usize) -> NodeId {
        let cfg = self.noc.config();
        let mem = |rng: &mut SimRng| NodeId::MemCtrl(rng.gen_index(cfg.mem_ctrls));
        let peer = |rng: &mut SimRng, src: usize| {
            let mut d = rng.gen_index(cfg.cores());
            if d == src {
                d = (d + 1) % cfg.cores();
            }
            NodeId::Core(d)
        };
        match self.traffic.pattern {
            Pattern::ToMemory => mem(&mut self.rng),
            Pattern::UniformCores => peer(&mut self.rng, src),
            Pattern::Mixed { mem_frac } => {
                if self.rng.chance(mem_frac) {
                    mem(&mut self.rng)
                } else {
                    peer(&mut self.rng, src)
                }
            }
        }
    }

    /// Runs `cycles` cycles of injection, then drains in-flight packets
    /// for up to `drain` additional cycles, and reports.
    ///
    /// Throughput counts only deliveries *during the injection window* —
    /// the sustained rate the network keeps up with — while latency stats
    /// include drained packets.
    pub fn run(&mut self, cycles: Cycle, drain: Cycle) -> TrafficReport {
        for now in 0..cycles {
            for core in 0..self.noc.config().cores() {
                let whole = self.traffic.rate.floor() as u32;
                let frac = self.traffic.rate - f64::from(whole);
                let n = whole + u32::from(self.rng.chance(frac));
                for _ in 0..n {
                    let dst = self.destination(core);
                    let bytes = self.traffic.sizes.sample(&mut self.rng);
                    let id = self.next_id;
                    self.next_id += 1;
                    self.injected += 1;
                    let _ = self.noc.inject(
                        Packet::new(id, NodeId::Core(core), dst, bytes, now, ()),
                        now,
                    );
                }
            }
            let _ = self.noc.tick(now);
        }
        let delivered_in_window = self.noc.stats().delivered;
        let mut now = cycles;
        while !self.noc.is_idle() && now < cycles + drain {
            let _ = self.noc.tick(now);
            now += 1;
        }
        let stats = self.noc.stats();
        TrafficReport {
            injected: self.injected,
            delivered: stats.delivered,
            throughput: delivered_in_window as f64 / cycles as f64,
            mean_latency: stats.latency.mean(),
            max_latency: stats.latency.max(),
            main_util: self.noc.main_ring_utilization(),
            sub_util: self.noc.subring_utilization(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;

    fn bench(slice: Option<u32>, rate: f64) -> TrafficReport {
        let mut cfg = NocConfig::tiny();
        cfg.main_link = match slice {
            Some(s) => LinkConfig::main_ring().sliced(s),
            None => LinkConfig::main_ring().conventional(),
        };
        cfg.sub_link = match slice {
            Some(s) => LinkConfig::sub_ring().sliced(s),
            None => LinkConfig::sub_ring().conventional(),
        };
        let traffic = TrafficConfig {
            rate,
            pattern: Pattern::ToMemory,
            sizes: SizeMix::htc(),
        };
        Testbench::new(cfg, traffic, 7).run(2000, 4000)
    }

    #[test]
    fn packets_flow_and_mostly_arrive() {
        let r = bench(Some(2), 0.05);
        assert!(r.injected > 0);
        assert!(r.delivered as f64 >= r.injected as f64 * 0.95, "{r:?}");
        assert!(r.mean_latency > 0.0);
    }

    #[test]
    fn high_density_beats_conventional_on_small_packets() {
        // Saturating rate: conventional links burn a full cycle per tiny
        // packet; sliced links pack many per cycle.
        let conventional = bench(None, 0.9);
        let sliced = bench(Some(2), 0.9);
        assert!(
            sliced.throughput > conventional.throughput * 1.2,
            "sliced {:.3} vs conventional {:.3}",
            sliced.throughput,
            conventional.throughput
        );
    }

    #[test]
    fn narrower_slices_help_htc_mixes() {
        let s16 = bench(Some(16), 0.9);
        let s2 = bench(Some(2), 0.9);
        assert!(
            s2.throughput >= s16.throughput,
            "2B {:.3} should beat 16B {:.3}",
            s2.throughput,
            s16.throughput
        );
    }

    #[test]
    fn size_mix_sampling() {
        let m = SizeMix::htc();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            let s = m.sample(&mut rng);
            assert!([1, 2, 4, 8, 16, 32].contains(&s));
        }
        assert!(m.mean_bytes() < SizeMix::conventional().mean_bytes());
    }

    #[test]
    fn mixed_pattern_reaches_cores_and_memory() {
        let mut cfg = NocConfig::tiny();
        cfg.main_link = LinkConfig::main_ring();
        let traffic = TrafficConfig {
            rate: 0.05,
            pattern: Pattern::Mixed { mem_frac: 0.5 },
            sizes: SizeMix::htc(),
        };
        let r = Testbench::new(cfg, traffic, 3).run(1000, 2000);
        assert!(r.delivered > 0);
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn bad_rate_rejected() {
        let traffic = TrafficConfig {
            rate: 9.0,
            pattern: Pattern::ToMemory,
            sizes: SizeMix::htc(),
        };
        let _ = Testbench::new(NocConfig::tiny(), traffic, 0);
    }

    #[test]
    fn rates_above_one_inject_multiple_per_core() {
        let traffic = TrafficConfig {
            rate: 2.0,
            pattern: Pattern::ToMemory,
            sizes: SizeMix::htc(),
        };
        let mut tb = Testbench::new(NocConfig::tiny(), traffic, 5);
        let r = tb.run(200, 0);
        // 16 cores × 2 pkts/cycle × 200 cycles.
        assert_eq!(r.injected, 16 * 2 * 200);
    }
}
