//! A bidirectional ring of routers (§3.2, Fig. 7).
//!
//! Rings keep routing trivial — at injection, pick the direction with
//! fewer hops (ties broken toward the less congested output queue) and
//! ride it to the exit position. Per-hop cost is one channel traversal;
//! the channel model (including bidirectional lane granting and
//! high-density slicing) lives in [`crate::link`].

use smarco_sim::Cycle;

use crate::link::{Channel, LinkConfig, Transmittable};

/// Travel direction around the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Toward increasing positions.
    Cw,
    /// Toward decreasing positions.
    Ccw,
}

/// Internal wrapper: an item plus its routing state on this ring.
#[derive(Debug, Clone)]
struct RingItem<T> {
    exit: usize,
    dir: Dir,
    hops: u32,
    item: T,
}

impl<T: Transmittable> Transmittable for RingItem<T> {
    fn bytes(&self) -> u32 {
        self.item.bytes()
    }
    fn realtime(&self) -> bool {
        self.item.realtime()
    }
    fn class(&self) -> u8 {
        self.item.class()
    }
}

/// Ring-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RingStats {
    /// Items delivered at their exit position.
    pub delivered: u64,
    /// Total hops travelled by delivered items.
    pub total_hops: u64,
}

/// A ring of `n` router positions connected by [`Channel`]s.
///
/// The ring is topology-only: it moves opaque items from an injection
/// position to an exit position. Endpoint semantics (which position is a
/// core, a junction, a memory controller) belong to
/// [`crate::hierarchy::HierarchicalRing`].
#[derive(Debug, Clone)]
pub struct Ring<T> {
    /// `channels[i]` joins position `i` (fwd = cw) and `i+1 mod n`.
    channels: Vec<Channel<RingItem<T>>>,
    n: usize,
    /// When on, high-class items (class ≥ 2) pick their direction by a
    /// congestion-weighted cost instead of pure minimum hops.
    adaptive: bool,
    stats: RingStats,
}

impl<T: Transmittable> Ring<T> {
    /// Creates a ring of `n` positions.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the link config is invalid.
    pub fn new(n: usize, link: LinkConfig) -> Self {
        assert!(n >= 2, "a ring needs at least two positions");
        link.validate();
        Self {
            channels: (0..n).map(|_| Channel::new(link)).collect(),
            n,
            adaptive: false,
            stats: RingStats::default(),
        }
    }

    /// Turns criticality-adaptive direction choice on or off (default
    /// off). With it on, items of class ≥ 2 weigh queued congestion
    /// against hop distance when picking a direction; lower classes (and
    /// everything, when off) keep the original minimum-hop rule.
    pub fn set_adaptive(&mut self, on: bool) {
        self.adaptive = on;
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false — rings have at least two positions.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Statistics so far.
    pub fn stats(&self) -> RingStats {
        self.stats
    }

    /// Degrades (or restores) the channel between positions `i` and
    /// `i+1 mod n` — fault-injection hook: model a partially failed link
    /// by giving it fewer lanes.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the config is invalid.
    pub fn set_channel_config(&mut self, i: usize, link: LinkConfig) {
        assert!(i < self.n, "channel {i} out of range");
        self.channels[i].set_config(link);
    }

    /// Hop distance from `a` to `b` travelling `dir`.
    pub fn distance(&self, a: usize, b: usize, dir: Dir) -> usize {
        match dir {
            Dir::Cw => (b + self.n - a) % self.n,
            Dir::Ccw => (a + self.n - b) % self.n,
        }
    }

    fn out_queue_bytes(&self, at: usize, dir: Dir) -> u64 {
        match dir {
            Dir::Cw => self.channels[at].fwd.queued_bytes(),
            Dir::Ccw => self.channels[(at + self.n - 1) % self.n].rev.queued_bytes(),
        }
    }

    /// Pending bytes in both output queues of position `at` (congestion
    /// metric).
    pub fn congestion_at(&self, at: usize) -> u64 {
        self.out_queue_bytes(at, Dir::Cw) + self.out_queue_bytes(at, Dir::Ccw)
    }

    /// Injects `item` at position `at`, to leave the ring at `exit`.
    ///
    /// Direction is chosen by minimum hops; on a tie, by the smaller
    /// output-queue backlog (§3.2: cores "choose both directions of
    /// sub-ring to send packets based on the congestion condition").
    /// Returns `Some(item)` immediately when `at == exit`.
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range.
    pub fn inject(&mut self, at: usize, exit: usize, item: T) -> Option<T> {
        assert!(at < self.n && exit < self.n, "position out of range");
        if at == exit {
            self.stats.delivered += 1;
            return Some(item);
        }
        let dcw = self.distance(at, exit, Dir::Cw);
        let dccw = self.distance(at, exit, Dir::Ccw);
        let dir = if self.adaptive && item.class() >= 2 {
            // Criticality-adaptive choice: estimate the cycles to reach
            // the exit as hop-serialization plus draining the local
            // backlog at peak width, and take the cheaper way round even
            // when it is the longer one.
            let width = u64::from(self.channels[at].config().max_capacity()).max(1);
            let cost = |d: usize, q: u64| d as u64 * width + q;
            let ccw = cost(dccw, self.out_queue_bytes(at, Dir::Ccw));
            if cost(dcw, self.out_queue_bytes(at, Dir::Cw)) <= ccw {
                Dir::Cw
            } else {
                Dir::Ccw
            }
        } else if dcw < dccw {
            Dir::Cw
        } else if dccw < dcw {
            Dir::Ccw
        } else if self.out_queue_bytes(at, Dir::Cw) <= self.out_queue_bytes(at, Dir::Ccw) {
            Dir::Cw
        } else {
            Dir::Ccw
        };
        let wrapped = RingItem {
            exit,
            dir,
            hops: 0,
            item,
        };
        self.push_out(at, wrapped);
        None
    }

    fn push_out(&mut self, at: usize, item: RingItem<T>) {
        match item.dir {
            Dir::Cw => self.channels[at].fwd.push(item),
            Dir::Ccw => self.channels[(at + self.n - 1) % self.n].rev.push(item),
        }
    }

    /// Advances one cycle; returns `(exit_position, hops, item)` for every
    /// item that reached its exit.
    pub fn tick(&mut self, now: Cycle) -> Vec<(usize, u32, T)> {
        let mut delivered = Vec::new();
        // 1. Arrivals: collect from every channel, then forward or eject.
        let mut moved: Vec<(usize, RingItem<T>)> = Vec::new();
        for i in 0..self.n {
            for mut it in self.channels[i].fwd.arrivals(now) {
                it.hops += 1;
                moved.push(((i + 1) % self.n, it));
            }
            for mut it in self.channels[i].rev.arrivals(now) {
                it.hops += 1;
                moved.push((i, it));
            }
        }
        for (pos, it) in moved {
            if it.exit == pos {
                self.stats.delivered += 1;
                self.stats.total_hops += u64::from(it.hops);
                delivered.push((pos, it.hops, it.item));
            } else {
                self.push_out(pos, it);
            }
        }
        // 2. Transmit on every channel.
        for ch in &mut self.channels {
            ch.tick(now);
        }
        delivered
    }

    /// Whether nothing is queued or in flight anywhere on the ring.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(Channel::is_empty)
    }

    /// Event horizon: the earliest cycle at or after `now` at which any
    /// channel can transmit or deliver. Arrivals are processed before
    /// transmits within a tick, so an in-flight item due at `t` acts
    /// exactly at `t` — the wire due-cycle is an exact horizon, not an
    /// approximation. `None` when the ring is fully drained.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.channels
            .iter()
            .filter_map(|ch| ch.next_event(now))
            .min()
    }

    /// Fast-forwards an idle ring across `[from, to)`: every channel
    /// accumulates its idle-grant offered-capacity statistics without
    /// being ticked.
    pub fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        for ch in &mut self.channels {
            ch.skip_idle(from, to);
        }
    }

    /// Cumulative `(payload, offered)` bytes summed over all channel
    /// directions. Monotonic counters: the windowed-metrics recorder diffs
    /// successive snapshots to get per-window utilization.
    pub fn payload_offered_bytes(&self) -> (u64, u64) {
        let (mut payload, mut offered) = (0u64, 0u64);
        for ch in &self.channels {
            for s in [ch.fwd.stats(), ch.rev.stats()] {
                payload += s.payload_bytes;
                offered += s.offered_bytes;
            }
        }
        (payload, offered)
    }

    /// Aggregated payload utilization across all channel directions.
    pub fn payload_utilization(&self) -> f64 {
        let (payload, offered) = self.payload_offered_bytes();
        if offered == 0 {
            0.0
        } else {
            payload as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u32);

    impl Transmittable for P {
        fn bytes(&self) -> u32 {
            self.0
        }
    }

    fn ring(n: usize) -> Ring<P> {
        Ring::new(
            n,
            LinkConfig {
                lanes_fixed_per_dir: 1,
                lanes_bidir: 0,
                lane_bytes: 8,
                slice_bytes: Some(2),
                hop_latency: 1,
            },
        )
    }

    fn run_until_delivered(r: &mut Ring<P>, max: Cycle) -> Vec<(Cycle, usize, u32)> {
        let mut out = Vec::new();
        for now in 0..max {
            for (pos, hops, _) in r.tick(now) {
                out.push((now, pos, hops));
            }
        }
        out
    }

    #[test]
    fn short_way_round_is_chosen() {
        let mut r = ring(8);
        assert!(r.inject(0, 2, P(4)).is_none());
        let d = run_until_delivered(&mut r, 10);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, 2);
        assert_eq!(d[0].2, 2, "2 hops cw, not 6 ccw");
    }

    #[test]
    fn ccw_shortcut_is_taken() {
        let mut r = ring(8);
        r.inject(1, 7, P(4));
        let d = run_until_delivered(&mut r, 10);
        assert_eq!(d[0].2, 2, "2 hops ccw, not 6 cw");
    }

    #[test]
    fn self_delivery_is_immediate() {
        let mut r = ring(4);
        assert_eq!(r.inject(3, 3, P(4)), Some(P(4)));
        assert_eq!(r.stats().delivered, 1);
    }

    #[test]
    fn tie_breaks_toward_less_congested_direction() {
        let mut r = ring(4);
        // Pre-load the cw output queue of node 0.
        for _ in 0..10 {
            r.inject(0, 1, P(64));
        }
        // 0 → 2 is a 2-hop tie; congestion should steer it ccw.
        r.inject(0, 2, P(4));
        let cw_q = r.out_queue_bytes(0, Dir::Cw);
        let ccw_q = r.out_queue_bytes(0, Dir::Ccw);
        assert!(ccw_q > 0, "tied packet went ccw (cw backlog {cw_q})");
    }

    #[test]
    fn hop_latency_accumulates() {
        let mut r = ring(8);
        r.inject(0, 4, P(2));
        let d = run_until_delivered(&mut r, 20);
        // 4 hops at ≥1 cycle each: delivery at cycle ≥ 3 (arrivals lead
        // transmits within a tick), exactly 4 hops.
        assert_eq!(d[0].2, 4);
        assert!(r.is_idle());
    }

    #[test]
    fn many_packets_all_arrive_exactly_once() {
        let mut r = ring(16);
        let mut expected = 0;
        for src in 0..16 {
            for dst in 0..16 {
                if src != dst {
                    r.inject(src, dst, P(4));
                    expected += 1;
                }
            }
        }
        let d = run_until_delivered(&mut r, 500);
        assert_eq!(d.len(), expected);
        assert_eq!(r.stats().delivered as usize, expected);
        assert!(r.is_idle());
    }

    #[test]
    fn utilization_rises_under_load() {
        let mut r = ring(8);
        for src in 0..8 {
            for _ in 0..4 {
                r.inject(src, (src + 4) % 8, P(8));
            }
        }
        let _ = run_until_delivered(&mut r, 100);
        assert!(r.payload_utilization() > 0.0);
    }

    #[test]
    fn skip_idle_matches_ticking_an_idle_ring() {
        let mut ticked = ring(4);
        let mut skipped = ring(4);
        for now in 0..50 {
            ticked.tick(now);
        }
        skipped.skip_idle(0, 50);
        assert_eq!(
            ticked.payload_offered_bytes(),
            skipped.payload_offered_bytes()
        );
    }

    #[test]
    fn ring_horizon_follows_in_flight_items() {
        let mut r = ring(8);
        assert_eq!(r.next_event(3), None);
        r.inject(0, 2, P(4));
        assert_eq!(r.next_event(3), Some(3), "queued item acts immediately");
        r.tick(3); // transmits; arrival due at 4
        assert_eq!(r.next_event(3), Some(4));
        let _ = run_until_delivered(&mut r, 20);
        assert_eq!(r.next_event(20), None);
    }

    #[test]
    #[should_panic(expected = "at least two positions")]
    fn tiny_ring_rejected() {
        let _: Ring<P> = ring(1);
    }

    #[test]
    #[should_panic(expected = "position out of range")]
    fn bad_position_rejected() {
        ring(4).inject(0, 9, P(1));
    }
}
