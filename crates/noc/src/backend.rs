//! Pluggable interconnect backends behind one boundary-event contract.
//!
//! The shard layer (in `smarco-core`) splits the chip into one shard per
//! sub-ring plus a hub shard; each shard owns one *half* of the
//! interconnect and exchanges junction crossings as timestamped PDES
//! messages. Historically that contract was exercised ad hoc against
//! [`SubRingNoc`]/[`MainRingNoc`]; this module names it —
//! [`NocBackend`] — so the hierarchical ring, a 2-D mesh and an
//! Uber-style buffered switch are interchangeable behind it:
//!
//! * [`NocBackend::inject`] admits a packet at an [`Entry`] and may
//!   deliver it instantly;
//! * [`NocBackend::tick`] advances one cycle and reports
//!   [`NocEvent::Delivered`] endpoints and [`NocEvent::Boundary`]
//!   junction crossings;
//! * [`NocBackend::next_event`]/[`NocBackend::skip_idle`] expose the
//!   exact event horizon the cycle-skipping engine relies on;
//! * [`NocBackend::boundary_latency`] is the backend's promise of the
//!   soonest a boundary crossing becomes visible in the other half —
//!   it feeds the engine lookahead and the horizon contract.
//!
//! Determinism is part of the contract: a backend's event order must be
//! a pure function of the injected traffic, never of wall-clock or hash
//! iteration order, so reports stay bit-identical across worker counts.

use std::collections::HashMap;

use smarco_sim::obs::{TraceSink, Track};
use smarco_sim::Cycle;

use crate::buffered::{BufferedNoc, BufferedNocConfig};
use crate::hierarchy::{MainRingEvent, MainRingNoc, NocConfig, SubRingEvent, SubRingNoc};
use crate::mesh::Mesh;
use crate::packet::{NodeId, Packet};

/// Which interconnect implementation carries the chip's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocBackendKind {
    /// The paper's hierarchical ring (§3.2) — the default, and the
    /// reference for report bit-identity.
    Ring,
    /// A 2-D mesh with XY routing standing in for each half — the
    /// paper's comparison topology (Fig. 18).
    Mesh,
    /// An Uber-style central buffered switch per half (see
    /// [`crate::buffered`]).
    Buffered(BufferedNocConfig),
}

impl NocBackendKind {
    /// Stable lower-case name (`ring` / `mesh` / `buffered`), used in
    /// benchmark reports and CLI selection.
    pub fn name(&self) -> &'static str {
        match self {
            NocBackendKind::Ring => "ring",
            NocBackendKind::Mesh => "mesh",
            NocBackendKind::Buffered(_) => "buffered",
        }
    }

    /// Parses a backend name as produced by [`Self::name`]; `buffered`
    /// gets the default switch configuration.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ring" => Some(NocBackendKind::Ring),
            "mesh" => Some(NocBackendKind::Mesh),
            "buffered" => Some(NocBackendKind::Buffered(BufferedNocConfig::default())),
            _ => None,
        }
    }
}

/// Where a packet enters its half of the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entry {
    /// A local endpoint position — the core's position within its
    /// sub-ring on the sub side. Hub backends derive the entry from
    /// `pkt.src` instead and ignore this variant's index.
    Endpoint(usize),
    /// The junction bridge port: a packet descending into a sub-ring
    /// from the hub, or (on the hub side) ascending from a sub-ring.
    Bridge,
}

/// What a backend produced at an endpoint.
#[derive(Debug)]
pub enum NocEvent<P> {
    /// Reached a local endpoint of this half.
    Delivered(Packet<P>),
    /// Reached the junction bridge and must cross into the other half,
    /// where it becomes visible no earlier than
    /// [`NocBackend::boundary_latency`] cycles later.
    Boundary(Packet<P>),
}

/// The interconnect contract one shard half exercises — see the module
/// docs for the shape and [`build_sub_backend`]/[`build_hub_backend`]
/// for constructors.
pub trait NocBackend<P>: Send {
    /// Admits `pkt` at `entry`; returns an event if it reached its exit
    /// instantly (entry and exit coincide).
    fn inject(&mut self, entry: Entry, pkt: Packet<P>, now: Cycle) -> Option<NocEvent<P>>;

    /// Advances one cycle; returns deliveries and boundary crossings in
    /// deterministic order.
    fn tick(&mut self, now: Cycle) -> Vec<NocEvent<P>>;

    /// Whether nothing is queued or in flight.
    fn is_idle(&self) -> bool;

    /// Earliest cycle ≥ `now` at which [`tick`](Self::tick) could
    /// produce an event or change state; `None` when fully drained.
    fn next_event(&self, now: Cycle) -> Option<Cycle>;

    /// Fast-forwards the idle backend across `[from, to)`, accumulating
    /// exactly the statistics idle ticking would.
    fn skip_idle(&mut self, from: Cycle, to: Cycle);

    /// Cumulative `(payload, offered)` bytes over the backend's links.
    fn payload_offered_bytes(&self) -> (u64, u64);

    /// Aggregated payload utilization over the backend's links.
    fn payload_utilization(&self) -> f64;

    /// Turns event tracing on, on this half's own track.
    fn enable_trace(&mut self);

    /// Moves staged trace events into `sink` (no-op when tracing is
    /// off).
    fn drain_trace(&mut self, sink: &mut dyn TraceSink);

    /// The soonest a [`NocEvent::Boundary`] crossing becomes visible in
    /// the other half. The shard layer stamps crossings `now + this`,
    /// the horizon contract floors the junction message class at it,
    /// and the PDES lookahead must not exceed it.
    fn boundary_latency(&self) -> Cycle;
}

// ---------------------------------------------------------------------
// Shared endpoint layouts
// ---------------------------------------------------------------------

/// Sub-side endpoint layout: core positions `0..cps`, gateway (junction
/// port) at `cps`.
#[derive(Debug, Clone, Copy)]
struct SubLayout {
    sr: usize,
    cps: usize,
}

impl SubLayout {
    fn gateway(&self) -> usize {
        self.cps
    }

    fn owns_core(&self, core: usize) -> bool {
        core / self.cps == self.sr
    }

    fn local_pos(&self, core: usize) -> usize {
        debug_assert!(self.owns_core(core));
        core % self.cps
    }

    /// Exit position for a destination: the local core's position, or
    /// the gateway for everything leaving (or addressed to) the
    /// junction.
    fn exit_for(&self, dst: NodeId) -> usize {
        match dst {
            NodeId::Core(d) if self.owns_core(d) => self.local_pos(d),
            _ => self.gateway(),
        }
    }

    /// Entry position for an [`Entry`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint index is not a core position.
    fn entry_pos(&self, entry: Entry) -> usize {
        match entry {
            Entry::Endpoint(pos) => {
                assert!(pos < self.cps, "not a core position: {pos}");
                pos
            }
            Entry::Bridge => self.gateway(),
        }
    }

    /// A delivery at `pos` is a boundary crossing iff it reached the
    /// gateway without being addressed to the junction's own structures.
    fn classify<P>(&self, pos: usize, pkt: Packet<P>) -> NocEvent<P> {
        if pos == self.gateway() && pkt.dst != NodeId::Junction(self.sr) {
            NocEvent::Boundary(pkt)
        } else {
            NocEvent::Delivered(pkt)
        }
    }
}

/// Hub-side endpoint layout, mirroring [`MainRingNoc::new`]: junctions
/// in order with a memory controller after every `subrings / mem_ctrls`
/// of them, then scheduler and host.
#[derive(Debug, Clone)]
struct HubLayout {
    cores_per_subring: usize,
    main_pos: HashMap<NodeId, usize>,
    junction_pos: Vec<usize>,
    ports: usize,
}

impl HubLayout {
    fn new(config: &NocConfig) -> Self {
        config.validate();
        let mut main_pos = HashMap::new();
        let mut junction_pos = vec![0usize; config.subrings];
        let group = config.subrings / config.mem_ctrls;
        let mut pos = 0usize;
        let mut mc = 0usize;
        for (sr, jpos) in junction_pos.iter_mut().enumerate() {
            *jpos = pos;
            pos += 1;
            if (sr + 1) % group == 0 {
                main_pos.insert(NodeId::MemCtrl(mc), pos);
                mc += 1;
                pos += 1;
            }
        }
        main_pos.insert(NodeId::MainScheduler, pos);
        pos += 1;
        main_pos.insert(NodeId::Host, pos);
        pos += 1;
        Self {
            cores_per_subring: config.cores_per_subring,
            main_pos,
            junction_pos,
            ports: pos,
        }
    }

    fn exit_for(&self, dst: NodeId) -> usize {
        match dst {
            NodeId::Core(c) => self.junction_pos[c / self.cores_per_subring],
            NodeId::Junction(sr) => self.junction_pos[sr],
            other => *self
                .main_pos
                .get(&other)
                .unwrap_or_else(|| panic!("unknown main-ring endpoint {other:?}")),
        }
    }

    /// Entry position derived from the packet source: core packets enter
    /// at their sub-ring's junction, everything else at its own
    /// endpoint.
    fn entry_for(&self, src: NodeId) -> usize {
        match src {
            NodeId::Core(c) => self.junction_pos[c / self.cores_per_subring],
            other => self.exit_for(other),
        }
    }

    /// A packet addressed to a core must descend through a junction —
    /// a boundary crossing; everything else terminates on the hub.
    fn classify<P>(&self, pkt: Packet<P>) -> NocEvent<P> {
        if matches!(pkt.dst, NodeId::Core(_)) {
            NocEvent::Boundary(pkt)
        } else {
            NocEvent::Delivered(pkt)
        }
    }
}

/// Square-ish mesh dimensions for `n` endpoints (both ≥ 2 as
/// [`Mesh::new`] requires); endpoint `i` lives at `(i % w, i / w)` and
/// surplus grid positions stay idle.
fn mesh_dims(n: usize) -> (usize, usize) {
    let w = ((n as f64).sqrt().ceil() as usize).max(2);
    let h = n.div_ceil(w).max(2);
    (w, h)
}

// ---------------------------------------------------------------------
// Hierarchical-ring backends
// ---------------------------------------------------------------------

/// The sub-ring half of the paper's hierarchical ring, behind the
/// backend contract.
#[derive(Debug)]
pub struct RingSubBackend<P> {
    noc: SubRingNoc<P>,
    boundary: Cycle,
}

impl<P> RingSubBackend<P> {
    /// Builds the backend for sub-ring `sr` from the topology config.
    pub fn new(config: &NocConfig, sr: usize) -> Self {
        let mut noc = SubRingNoc::new(sr, config.cores_per_subring, config.sub_link);
        noc.set_adaptive(config.criticality_routing);
        Self {
            noc,
            boundary: config.boundary_latency(),
        }
    }
}

impl<P: Send> NocBackend<P> for RingSubBackend<P> {
    fn inject(&mut self, entry: Entry, pkt: Packet<P>, _now: Cycle) -> Option<NocEvent<P>> {
        match entry {
            Entry::Endpoint(pos) => self.noc.inject_from_core(pos, pkt).map(NocEvent::Delivered),
            Entry::Bridge => self.noc.inject_from_junction(pkt).map(NocEvent::Delivered),
        }
    }

    fn tick(&mut self, now: Cycle) -> Vec<NocEvent<P>> {
        self.noc
            .tick(now)
            .into_iter()
            .map(|ev| match ev {
                SubRingEvent::Delivered(p) => NocEvent::Delivered(p),
                SubRingEvent::Climb(p) => NocEvent::Boundary(p),
            })
            .collect()
    }

    fn is_idle(&self) -> bool {
        self.noc.is_idle()
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.noc.next_event(now)
    }

    fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.noc.skip_idle(from, to);
    }

    fn payload_offered_bytes(&self) -> (u64, u64) {
        self.noc.payload_offered_bytes()
    }

    fn payload_utilization(&self) -> f64 {
        self.noc.payload_utilization()
    }

    fn enable_trace(&mut self) {
        self.noc.enable_trace();
    }

    fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        self.noc.drain_trace(sink);
    }

    fn boundary_latency(&self) -> Cycle {
        self.boundary
    }
}

/// The main-ring half of the paper's hierarchical ring, behind the
/// backend contract. Entry positions derive from `pkt.src`.
#[derive(Debug)]
pub struct RingHubBackend<P> {
    noc: MainRingNoc<P>,
    boundary: Cycle,
}

impl<P> RingHubBackend<P> {
    /// Builds the backend from the topology config.
    pub fn new(config: &NocConfig) -> Self {
        let mut noc = MainRingNoc::new(config);
        noc.set_adaptive(config.criticality_routing);
        Self {
            noc,
            boundary: config.boundary_latency(),
        }
    }
}

fn from_main_event<P>(ev: MainRingEvent<P>) -> NocEvent<P> {
    match ev {
        MainRingEvent::Delivered(p) => NocEvent::Delivered(p),
        MainRingEvent::Descend(p) => NocEvent::Boundary(p),
    }
}

impl<P: Send> NocBackend<P> for RingHubBackend<P> {
    fn inject(&mut self, _entry: Entry, pkt: Packet<P>, _now: Cycle) -> Option<NocEvent<P>> {
        self.noc.inject(pkt).map(from_main_event)
    }

    fn tick(&mut self, now: Cycle) -> Vec<NocEvent<P>> {
        self.noc
            .tick(now)
            .into_iter()
            .map(from_main_event)
            .collect()
    }

    fn is_idle(&self) -> bool {
        self.noc.is_idle()
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.noc.next_event(now)
    }

    fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.noc.skip_idle(from, to);
    }

    fn payload_offered_bytes(&self) -> (u64, u64) {
        self.noc.payload_offered_bytes()
    }

    fn payload_utilization(&self) -> f64 {
        self.noc.payload_utilization()
    }

    fn enable_trace(&mut self) {
        self.noc.enable_trace();
    }

    fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        self.noc.drain_trace(sink);
    }

    fn boundary_latency(&self) -> Cycle {
        self.boundary
    }
}

// ---------------------------------------------------------------------
// Mesh backends
// ---------------------------------------------------------------------

/// One sub-ring's slice carried by a 2-D XY mesh: cores at grid
/// positions `0..cps`, the junction gateway at position `cps`.
#[derive(Debug)]
pub struct MeshSubBackend<P> {
    layout: SubLayout,
    w: usize,
    mesh: Mesh<Packet<P>>,
    boundary: Cycle,
}

impl<P> MeshSubBackend<P> {
    /// Builds the backend for sub-ring `sr` from the topology config.
    pub fn new(config: &NocConfig, sr: usize) -> Self {
        let cps = config.cores_per_subring;
        let (w, h) = mesh_dims(cps + 1);
        Self {
            layout: SubLayout { sr, cps },
            w,
            mesh: Mesh::new(w, h, config.sub_link),
            boundary: config.boundary_latency(),
        }
    }

    fn node(&self, i: usize) -> (usize, usize) {
        (i % self.w, i / self.w)
    }

    fn index(&self, at: (usize, usize)) -> usize {
        at.1 * self.w + at.0
    }
}

impl<P: Send> NocBackend<P> for MeshSubBackend<P> {
    fn inject(&mut self, entry: Entry, pkt: Packet<P>, now: Cycle) -> Option<NocEvent<P>> {
        let at = self.layout.entry_pos(entry);
        let exit = self.layout.exit_for(pkt.dst);
        let (src, dst) = (self.node(at), self.node(exit));
        let bytes = pkt.bytes;
        self.mesh
            .inject(src, dst, bytes, now, pkt)
            .map(|p| self.layout.classify(exit, p))
    }

    fn tick(&mut self, now: Cycle) -> Vec<NocEvent<P>> {
        self.mesh
            .tick(now)
            .into_iter()
            .map(|(at, p)| {
                let pos = self.index(at);
                self.layout.classify(pos, p)
            })
            .collect()
    }

    fn is_idle(&self) -> bool {
        self.mesh.is_idle()
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.mesh.next_event(now)
    }

    fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.mesh.skip_idle(from, to);
    }

    fn payload_offered_bytes(&self) -> (u64, u64) {
        self.mesh.payload_offered_bytes()
    }

    fn payload_utilization(&self) -> f64 {
        self.mesh.payload_utilization()
    }

    fn enable_trace(&mut self) {
        self.mesh.enable_trace(Track::SubRing(self.layout.sr));
    }

    fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        self.mesh.drain_trace(sink);
    }

    fn boundary_latency(&self) -> Cycle {
        self.boundary
    }
}

/// The hub slice carried by a 2-D XY mesh, with the main ring's
/// endpoint layout mapped onto grid positions.
#[derive(Debug)]
pub struct MeshHubBackend<P> {
    layout: HubLayout,
    w: usize,
    mesh: Mesh<Packet<P>>,
    boundary: Cycle,
}

impl<P> MeshHubBackend<P> {
    /// Builds the backend from the topology config.
    pub fn new(config: &NocConfig) -> Self {
        let layout = HubLayout::new(config);
        let (w, h) = mesh_dims(layout.ports);
        Self {
            layout,
            w,
            mesh: Mesh::new(w, h, config.main_link),
            boundary: config.boundary_latency(),
        }
    }

    fn node(&self, i: usize) -> (usize, usize) {
        (i % self.w, i / self.w)
    }
}

impl<P: Send> NocBackend<P> for MeshHubBackend<P> {
    fn inject(&mut self, _entry: Entry, pkt: Packet<P>, now: Cycle) -> Option<NocEvent<P>> {
        let src = self.node(self.layout.entry_for(pkt.src));
        let dst = self.node(self.layout.exit_for(pkt.dst));
        let bytes = pkt.bytes;
        self.mesh
            .inject(src, dst, bytes, now, pkt)
            .map(|p| self.layout.classify(p))
    }

    fn tick(&mut self, now: Cycle) -> Vec<NocEvent<P>> {
        self.mesh
            .tick(now)
            .into_iter()
            .map(|(_at, p)| self.layout.classify(p))
            .collect()
    }

    fn is_idle(&self) -> bool {
        self.mesh.is_idle()
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.mesh.next_event(now)
    }

    fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.mesh.skip_idle(from, to);
    }

    fn payload_offered_bytes(&self) -> (u64, u64) {
        self.mesh.payload_offered_bytes()
    }

    fn payload_utilization(&self) -> f64 {
        self.mesh.payload_utilization()
    }

    fn enable_trace(&mut self) {
        self.mesh.enable_trace(Track::MainRing);
    }

    fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        self.mesh.drain_trace(sink);
    }

    fn boundary_latency(&self) -> Cycle {
        self.boundary
    }
}

// ---------------------------------------------------------------------
// Buffered-switch backends
// ---------------------------------------------------------------------

/// One sub-ring's slice carried by a central buffered switch: core
/// ports `0..cps`, the junction gateway port at `cps`.
#[derive(Debug)]
pub struct BufferedSubBackend<P> {
    layout: SubLayout,
    noc: BufferedNoc<Packet<P>>,
    boundary: Cycle,
}

impl<P> BufferedSubBackend<P> {
    /// Builds the backend for sub-ring `sr` from the topology config.
    pub fn new(config: &NocConfig, sr: usize, switch: BufferedNocConfig) -> Self {
        let cps = config.cores_per_subring;
        Self {
            layout: SubLayout { sr, cps },
            noc: BufferedNoc::new(cps + 1, switch),
            boundary: config.boundary_latency(),
        }
    }
}

impl<P: Send> NocBackend<P> for BufferedSubBackend<P> {
    fn inject(&mut self, entry: Entry, pkt: Packet<P>, now: Cycle) -> Option<NocEvent<P>> {
        let at = self.layout.entry_pos(entry);
        let exit = self.layout.exit_for(pkt.dst);
        self.noc
            .inject(at, exit, pkt, now)
            .map(|p| self.layout.classify(exit, p))
    }

    fn tick(&mut self, now: Cycle) -> Vec<NocEvent<P>> {
        self.noc
            .tick(now)
            .into_iter()
            .map(|(port, p)| self.layout.classify(port, p))
            .collect()
    }

    fn is_idle(&self) -> bool {
        self.noc.is_idle()
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.noc.next_event(now)
    }

    fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.noc.skip_idle(from, to);
    }

    fn payload_offered_bytes(&self) -> (u64, u64) {
        self.noc.payload_offered_bytes()
    }

    fn payload_utilization(&self) -> f64 {
        self.noc.payload_utilization()
    }

    fn enable_trace(&mut self) {
        self.noc.enable_trace(Track::SubRing(self.layout.sr));
    }

    fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        self.noc.drain_trace(sink);
    }

    fn boundary_latency(&self) -> Cycle {
        self.boundary
    }
}

/// The hub slice carried by a central buffered switch, one port per
/// main-ring endpoint.
#[derive(Debug)]
pub struct BufferedHubBackend<P> {
    layout: HubLayout,
    noc: BufferedNoc<Packet<P>>,
    boundary: Cycle,
}

impl<P> BufferedHubBackend<P> {
    /// Builds the backend from the topology config.
    pub fn new(config: &NocConfig, switch: BufferedNocConfig) -> Self {
        let layout = HubLayout::new(config);
        let ports = layout.ports;
        Self {
            layout,
            noc: BufferedNoc::new(ports, switch),
            boundary: config.boundary_latency(),
        }
    }
}

impl<P: Send> NocBackend<P> for BufferedHubBackend<P> {
    fn inject(&mut self, _entry: Entry, pkt: Packet<P>, now: Cycle) -> Option<NocEvent<P>> {
        let at = self.layout.entry_for(pkt.src);
        let exit = self.layout.exit_for(pkt.dst);
        self.noc
            .inject(at, exit, pkt, now)
            .map(|p| self.layout.classify(p))
    }

    fn tick(&mut self, now: Cycle) -> Vec<NocEvent<P>> {
        self.noc
            .tick(now)
            .into_iter()
            .map(|(_port, p)| self.layout.classify(p))
            .collect()
    }

    fn is_idle(&self) -> bool {
        self.noc.is_idle()
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.noc.next_event(now)
    }

    fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.noc.skip_idle(from, to);
    }

    fn payload_offered_bytes(&self) -> (u64, u64) {
        self.noc.payload_offered_bytes()
    }

    fn payload_utilization(&self) -> f64 {
        self.noc.payload_utilization()
    }

    fn enable_trace(&mut self) {
        self.noc.enable_trace(Track::MainRing);
    }

    fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        self.noc.drain_trace(sink);
    }

    fn boundary_latency(&self) -> Cycle {
        self.boundary
    }
}

// ---------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------

/// Builds the sub-side backend for sub-ring `sr` selected by
/// `config.backend`.
pub fn build_sub_backend<P: Send + 'static>(
    config: &NocConfig,
    sr: usize,
) -> Box<dyn NocBackend<P>> {
    match config.backend {
        NocBackendKind::Ring => Box::new(RingSubBackend::new(config, sr)),
        NocBackendKind::Mesh => Box::new(MeshSubBackend::new(config, sr)),
        NocBackendKind::Buffered(b) => Box::new(BufferedSubBackend::new(config, sr, b)),
    }
}

/// Builds the hub-side backend selected by `config.backend`.
pub fn build_hub_backend<P: Send + 'static>(config: &NocConfig) -> Box<dyn NocBackend<P>> {
    match config.backend {
        NocBackendKind::Ring => Box::new(RingHubBackend::new(config)),
        NocBackendKind::Mesh => Box::new(MeshHubBackend::new(config)),
        NocBackendKind::Buffered(b) => Box::new(BufferedHubBackend::new(config, b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: NocBackendKind) -> NocConfig {
        NocConfig::tiny().with_backend(kind)
    }

    fn kinds() -> [NocBackendKind; 3] {
        [
            NocBackendKind::Ring,
            NocBackendKind::Mesh,
            NocBackendKind::Buffered(BufferedNocConfig::default()),
        ]
    }

    fn drive<P>(b: &mut dyn NocBackend<P>, cycles: Cycle) -> Vec<(Cycle, NocEvent<P>)> {
        let mut out = Vec::new();
        for now in 0..cycles {
            for ev in b.tick(now) {
                out.push((now, ev));
            }
        }
        out
    }

    #[test]
    fn every_backend_moves_a_local_packet_to_its_core() {
        for kind in kinds() {
            let c = cfg(kind);
            let mut b = build_sub_backend::<()>(&c, 0);
            // Core 1 → core 3, both on sub-ring 0 of the tiny config.
            let pkt = Packet::new(0, NodeId::Core(1), NodeId::Core(3), 8, 0, ());
            assert!(b.inject(Entry::Endpoint(1), pkt, 0).is_none());
            let evs = drive(b.as_mut(), 200);
            assert_eq!(evs.len(), 1, "{} delivered once", kind.name());
            assert!(
                matches!(evs[0].1, NocEvent::Delivered(ref p) if p.dst == NodeId::Core(3)),
                "{} delivers locally without a boundary crossing",
                kind.name()
            );
            assert!(b.is_idle());
            assert_eq!(b.next_event(500), None, "drained backend reports None");
        }
    }

    #[test]
    fn every_backend_raises_a_boundary_for_remote_traffic() {
        for kind in kinds() {
            let c = cfg(kind);
            let mut b = build_sub_backend::<()>(&c, 0);
            let pkt = Packet::new(0, NodeId::Core(0), NodeId::MemCtrl(0), 8, 0, ());
            assert!(b.inject(Entry::Endpoint(0), pkt, 0).is_none());
            let evs = drive(b.as_mut(), 200);
            assert_eq!(evs.len(), 1);
            assert!(
                matches!(evs[0].1, NocEvent::Boundary(_)),
                "{} surfaces memory traffic at the bridge",
                kind.name()
            );
        }
    }

    #[test]
    fn every_hub_backend_descends_core_traffic_and_delivers_memory_replies() {
        for kind in kinds() {
            let c = cfg(kind);
            let mut b = build_hub_backend::<()>(&c);
            // Request up: core 0 → memory controller 1 (delivered on hub).
            let req = Packet::new(0, NodeId::Core(0), NodeId::MemCtrl(1), 8, 0, ());
            let mut evs: Vec<NocEvent<()>> = b.inject(Entry::Bridge, req, 0).into_iter().collect();
            evs.extend(drive(b.as_mut(), 300).into_iter().map(|(_, ev)| ev));
            assert_eq!(evs.len(), 1);
            assert!(
                matches!(evs[0], NocEvent::Delivered(ref p) if p.dst == NodeId::MemCtrl(1)),
                "{} delivers at the controller",
                kind.name()
            );
            // Reply down: controller 1 → core 0 (boundary at the junction).
            let rep = Packet::new(1, NodeId::MemCtrl(1), NodeId::Core(0), 8, 300, ());
            let mut evs: Vec<NocEvent<()>> =
                b.inject(Entry::Endpoint(0), rep, 300).into_iter().collect();
            for now in 300..600 {
                evs.extend(b.tick(now));
            }
            assert_eq!(evs.len(), 1);
            assert!(
                matches!(evs[0], NocEvent::Boundary(ref p) if p.dst == NodeId::Core(0)),
                "{} descends replies at the junction",
                kind.name()
            );
        }
    }

    #[test]
    fn every_backend_skip_matches_idle_ticking() {
        for kind in kinds() {
            let c = cfg(kind);
            let mut ticked = build_sub_backend::<()>(&c, 0);
            let mut skipped = build_sub_backend::<()>(&c, 0);
            for now in 0..97 {
                assert!(ticked.tick(now).is_empty());
            }
            skipped.skip_idle(0, 97);
            assert_eq!(
                ticked.payload_offered_bytes(),
                skipped.payload_offered_bytes(),
                "{} skip accounting drifts from ticking",
                kind.name()
            );
        }
    }

    #[test]
    fn boundary_latency_follows_the_config() {
        assert_eq!(
            build_sub_backend::<()>(&cfg(NocBackendKind::Ring), 0).boundary_latency(),
            2
        );
        let b = BufferedNocConfig {
            boundary_latency: 5,
            ..BufferedNocConfig::default()
        };
        assert_eq!(
            build_hub_backend::<()>(&cfg(NocBackendKind::Buffered(b))).boundary_latency(),
            5
        );
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in kinds() {
            assert_eq!(NocBackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(NocBackendKind::parse("torus"), None);
    }
}
