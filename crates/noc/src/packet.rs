//! Packets and node addressing.

use smarco_sim::Cycle;

/// Global address of a NoC endpoint.
///
/// Junction routers that bridge a sub-ring to the main ring are not
/// endpoints and have no `NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// A TCG core (0..256 in the full configuration).
    Core(usize),
    /// A DDR memory controller on the main ring (0..4).
    MemCtrl(usize),
    /// A sub-ring's junction router — addressable because sub-ring shared
    /// structures (the MACT, §3.4) live there.
    Junction(usize),
    /// The main task scheduler attached to the main ring.
    MainScheduler,
    /// The PCIe/host interface on the main ring.
    Host,
}

/// A packet in flight, generic over the semantic payload `P` (a memory
/// request, a reply, a DMA chunk, …). `bytes` is the *payload* size the
/// link must move — the quantity whose distribution Fig. 8 measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<P> {
    /// Unique id (assigned by the injector).
    pub id: u64,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Payload size in bytes (≥1).
    pub bytes: u32,
    /// Real-time packets may use the direct datapath and are prioritized
    /// in allocation.
    pub realtime: bool,
    /// Injection cycle, for end-to-end latency statistics.
    pub injected_at: Cycle,
    /// Semantic payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Creates a normal-priority packet.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn new(
        id: u64,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        injected_at: Cycle,
        payload: P,
    ) -> Self {
        assert!(bytes > 0, "packets must carry at least one byte");
        Self {
            id,
            src,
            dst,
            bytes,
            realtime: false,
            injected_at,
            payload,
        }
    }

    /// Marks the packet real-time.
    pub fn with_realtime(mut self) -> Self {
        self.realtime = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_priority() {
        let p = Packet::new(1, NodeId::Core(0), NodeId::MemCtrl(1), 8, 5, ());
        assert!(!p.realtime);
        let p = p.with_realtime();
        assert!(p.realtime);
        assert_eq!(p.bytes, 8);
        assert_eq!(p.injected_at, 5);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_packet_rejected() {
        let _ = Packet::new(0, NodeId::Host, NodeId::Core(0), 0, 0, ());
    }

    #[test]
    fn node_ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId::Core(1));
        set.insert(NodeId::MemCtrl(0));
        set.insert(NodeId::MainScheduler);
        set.insert(NodeId::Host);
        assert_eq!(set.len(), 4);
        assert!(NodeId::Core(0) < NodeId::Core(1));
    }
}
