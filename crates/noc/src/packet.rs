//! Packets and node addressing.

use smarco_sim::Cycle;

/// Global address of a NoC endpoint.
///
/// Junction routers that bridge a sub-ring to the main ring are not
/// endpoints and have no `NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// A TCG core (0..256 in the full configuration).
    Core(usize),
    /// A DDR memory controller on the main ring (0..4).
    MemCtrl(usize),
    /// A sub-ring's junction router — addressable because sub-ring shared
    /// structures (the MACT, §3.4) live there.
    Junction(usize),
    /// The main task scheduler attached to the main ring.
    MainScheduler,
    /// The PCIe/host interface on the main ring.
    Host,
}

/// Consumer-derived priority of a packet, used by backends for
/// arbitration and buffer allocation when criticality routing is on.
///
/// The class is derived from the *consumer* of the data, not the
/// producer: a DMA bulk pull tolerates latency, a MACT-batched read
/// rides a collection deadline, a low-laxity task's read gates a task
/// deadline, and a real-time read gates a hardware deadline. The
/// numeric value is the arbitration class — higher wins ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Criticality {
    /// Latency-tolerant bulk transfers (SPM-to-SPM DMA spans).
    Bulk = 0,
    /// Ordinary demand traffic with no deadline pressure.
    Normal = 1,
    /// Deadline-sensitive traffic: reads issued by a task whose laxity
    /// slack is low, or traffic racing a MACT collection deadline.
    Elevated = 2,
    /// Real-time traffic with a hardware deadline (§3.5.2).
    Critical = 3,
}

impl Criticality {
    /// The arbitration class (higher wins).
    pub fn class(self) -> u8 {
        self as u8
    }
}

/// A packet in flight, generic over the semantic payload `P` (a memory
/// request, a reply, a DMA chunk, …). `bytes` is the *payload* size the
/// link must move — the quantity whose distribution Fig. 8 measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<P> {
    /// Unique id (assigned by the injector).
    pub id: u64,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Payload size in bytes (≥1).
    pub bytes: u32,
    /// Real-time packets may use the direct datapath and are prioritized
    /// in allocation.
    pub realtime: bool,
    /// Consumer-derived criticality (defaults to [`Criticality::Normal`]).
    /// Real-time packets always arbitrate as [`Criticality::Critical`]
    /// regardless of this field.
    pub criticality: Criticality,
    /// Injection cycle, for end-to-end latency statistics.
    pub injected_at: Cycle,
    /// Semantic payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Creates a normal-priority packet.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn new(
        id: u64,
        src: NodeId,
        dst: NodeId,
        bytes: u32,
        injected_at: Cycle,
        payload: P,
    ) -> Self {
        assert!(bytes > 0, "packets must carry at least one byte");
        Self {
            id,
            src,
            dst,
            bytes,
            realtime: false,
            criticality: Criticality::Normal,
            injected_at,
            payload,
        }
    }

    /// Marks the packet real-time.
    pub fn with_realtime(mut self) -> Self {
        self.realtime = true;
        self
    }

    /// Sets the consumer-derived criticality.
    pub fn with_criticality(mut self, criticality: Criticality) -> Self {
        self.criticality = criticality;
        self
    }

    /// The arbitration class: real-time packets always class as
    /// [`Criticality::Critical`]; everything else classes as its
    /// `criticality` field. With every packet left at the default
    /// `Normal`, class-ordered arbitration degenerates to the original
    /// realtime-first FIFO.
    pub fn class(&self) -> u8 {
        if self.realtime {
            Criticality::Critical.class()
        } else {
            self.criticality.class()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_priority() {
        let p = Packet::new(1, NodeId::Core(0), NodeId::MemCtrl(1), 8, 5, ());
        assert!(!p.realtime);
        assert_eq!(p.criticality, Criticality::Normal);
        let p = p.with_realtime();
        assert!(p.realtime);
        assert_eq!(p.bytes, 8);
        assert_eq!(p.injected_at, 5);
    }

    #[test]
    fn class_follows_criticality_with_realtime_pinned_to_critical() {
        let p = Packet::new(1, NodeId::Core(0), NodeId::MemCtrl(1), 8, 5, ());
        assert_eq!(p.class(), 1, "default is Normal");
        assert_eq!(p.clone().with_criticality(Criticality::Bulk).class(), 0);
        assert_eq!(p.clone().with_criticality(Criticality::Elevated).class(), 2);
        let rt = p.with_criticality(Criticality::Bulk).with_realtime();
        assert_eq!(rt.class(), 3, "realtime overrides the field");
        assert!(Criticality::Bulk < Criticality::Critical);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_packet_rejected() {
        let _ = Packet::new(0, NodeId::Host, NodeId::Core(0), 0, 0, ());
    }

    #[test]
    fn node_ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId::Core(1));
        set.insert(NodeId::MemCtrl(0));
        set.insert(NodeId::MainScheduler);
        set.insert(NodeId::Host);
        assert_eq!(set.len(), 4);
        assert!(NodeId::Core(0) < NodeId::Core(1));
    }
}
