//! Network-on-chip models for the SmarCo reproduction (§3.2–§3.4).
//!
//! * [`packet`] — packets with byte sizes and real-time priority; the NoC
//!   is generic over the semantic payload it carries.
//! * [`link`] — the physical channel between two routers: fixed +
//!   bidirectional 64-bit lanes, optionally split into self-governed
//!   narrow slices (**high-density NoC**, §3.3/Figs. 9–10) packed by the
//!   greedy allocation algorithm. Conventional wide links send one packet
//!   per cycle regardless of its size; sliced links let small packets
//!   share a cycle.
//! * [`ring`] — a bidirectional ring of routers with min-hop,
//!   congestion-tie-broken direction choice and per-channel bidirectional
//!   lane granting (§3.2, Fig. 7).
//! * [`hierarchy`] — the full topology: one 512-bit main ring bridged to
//!   16 × 256-bit sub-rings of 16 cores each, DDR controllers, scheduler
//!   and host attached to the main ring (Fig. 4).
//! * [`direct`] — the star-shaped direct memory datapath for real-time
//!   requests (§3.5.2, Fig. 14).
//! * [`traffic`] — synthetic traffic generation for NoC-only studies
//!   (Fig. 18).
//! * [`backend`] — the [`NocBackend`] contract the shard layer drives,
//!   with the hierarchical ring, the mesh and the buffered switch as
//!   interchangeable implementations selected by [`NocBackendKind`].
//! * [`buffered`] — an Uber-style central buffered switch, the third
//!   backend contender.

#![warn(missing_docs)]

pub mod backend;
pub mod buffered;
pub mod direct;
pub mod hierarchy;
pub mod link;
pub mod mesh;
pub mod packet;
pub mod ring;
pub mod traffic;

pub use backend::{
    build_hub_backend, build_sub_backend, Entry, NocBackend, NocBackendKind, NocEvent,
};
pub use buffered::{BufferedNoc, BufferedNocConfig};
pub use hierarchy::{
    HierarchicalRing, MainRingEvent, MainRingNoc, NocConfig, SubRingEvent, SubRingNoc,
};
pub use link::LinkConfig;
pub use packet::{Criticality, NodeId, Packet};
