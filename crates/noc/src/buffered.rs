//! An Uber-style buffered switch NoC — the third backend contender.
//!
//! Uber (PAPERS.md) argues that at hundreds-of-cores scale a buffered
//! NoC with deep enough router buffers approaches ideal wire latency:
//! packets are absorbed at injection, arbitrated centrally, and stream
//! out of per-exit buffers at full port bandwidth. This module models
//! one such switch per topology half: a shared input buffer feeding
//! depth-limited per-exit output buffers, with class-ordered (criticality
//! aware) arbitration at both the allocation and the output queue.
//!
//! Packets are never dropped: when an output buffer is full the packet
//! simply stays in the input buffer — lower-class packets bound for
//! other exits may overtake it (no cross-exit head-of-line blocking),
//! but arrival order within a class and exit is preserved, keeping the
//! switch deterministic.

use std::collections::VecDeque;

use smarco_sim::obs::{EventKind, TraceBuffer, TraceSink, Track};
use smarco_sim::Cycle;

use crate::hierarchy::NocStats;
use crate::link::{DirectedLink, Transmittable};

/// Buffered-switch parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedNocConfig {
    /// Output-buffer depth in packets per exit port. Zero or one is
    /// degenerate — the switch clamps to one and the verifier flags it
    /// (`SL0441`): a depthless "buffered" NoC serializes on its input
    /// buffer and loses exactly the absorption the design pays area for.
    pub depth: usize,
    /// Output port bandwidth in bytes per cycle.
    pub bytes_per_cycle: u32,
    /// Cycles from the last byte leaving an output buffer to delivery at
    /// the exit port (the switch + wire traversal).
    pub switch_latency: Cycle,
    /// The boundary-crossing latency this backend promises to the shard
    /// layer (junction-crossing messages are stamped `now +
    /// boundary_latency`). Must be at least the engine lookahead; the
    /// verifier flags a shortfall (`SL0440`).
    pub boundary_latency: Cycle,
}

impl Default for BufferedNocConfig {
    /// Defaults matched to the hierarchical ring's shipped geometry: the
    /// main ring's peak per-direction width (40 B/cycle) and the
    /// junction latency (2 cycles) as both switch and boundary latency.
    fn default() -> Self {
        Self {
            depth: 8,
            bytes_per_cycle: 40,
            switch_latency: 2,
            boundary_latency: 2,
        }
    }
}

impl BufferedNocConfig {
    /// Non-panicking validation of the hard constraints — the ones under
    /// which the switch cannot be simulated at all. Degenerate-but-
    /// simulable values (`depth` of zero or one, a `boundary_latency`
    /// below the engine lookahead) are left to the verifier's backend
    /// pass so they can be linted rather than rejected.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found, as a human-readable string.
    pub fn check(&self) -> Result<(), String> {
        if self.bytes_per_cycle == 0 {
            return Err("buffered switch needs port bandwidth".into());
        }
        if self.switch_latency == 0 {
            return Err("buffered switch latency must be positive".into());
        }
        if self.boundary_latency == 0 {
            return Err("buffered boundary latency must be positive".into());
        }
        Ok(())
    }
}

/// An item in the switch, wrapped with its exit port and entry cycle.
#[derive(Debug, Clone)]
struct Slot<T> {
    exit: usize,
    injected_at: Cycle,
    item: T,
}

impl<T: Transmittable> Transmittable for Slot<T> {
    fn bytes(&self) -> u32 {
        self.item.bytes()
    }
    fn realtime(&self) -> bool {
        self.item.realtime()
    }
    fn class(&self) -> u8 {
        self.item.class()
    }
}

/// A single buffered switch joining `ports` endpoints.
///
/// Topology-free like [`crate::ring::Ring`]: it moves opaque items from
/// an entry port to an exit port; endpoint semantics belong to the
/// backend wrappers in [`crate::backend`].
#[derive(Debug)]
pub struct BufferedNoc<T> {
    config: BufferedNocConfig,
    /// Effective output depth (config depth clamped to ≥ 1 so the
    /// switch always makes progress even when misconfigured).
    depth: usize,
    /// Shared input buffer, FIFO by arrival.
    pending: VecDeque<Slot<T>>,
    /// Per-exit output buffers; the queue inside each link is
    /// class-ordered by [`DirectedLink::push`].
    outputs: Vec<DirectedLink<Slot<T>>>,
    stats: NocStats,
    trace: Option<TraceBuffer>,
}

impl<T: Transmittable> BufferedNoc<T> {
    /// Creates a switch with `ports` exit ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero or the configuration fails
    /// [`BufferedNocConfig::check`].
    pub fn new(ports: usize, config: BufferedNocConfig) -> Self {
        assert!(ports > 0, "a switch needs at least one port");
        if let Err(reason) = config.check() {
            panic!("{reason}");
        }
        Self {
            config,
            depth: config.depth.max(1),
            pending: VecDeque::new(),
            outputs: (0..ports).map(|_| DirectedLink::new()).collect(),
            stats: NocStats::default(),
            trace: None,
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.outputs.len()
    }

    /// Delivery statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Injects `item` entering at `entry` and leaving at `exit`; returns
    /// it immediately when the ports coincide.
    ///
    /// # Panics
    ///
    /// Panics if a port is out of range.
    pub fn inject(&mut self, entry: usize, exit: usize, item: T, now: Cycle) -> Option<T> {
        assert!(
            entry < self.outputs.len() && exit < self.outputs.len(),
            "port out of range"
        );
        if entry == exit {
            self.deliver_stats(now, now, item.bytes(), 0);
            return Some(item);
        }
        self.pending.push_back(Slot {
            exit,
            injected_at: now,
            item,
        });
        None
    }

    fn deliver_stats(&mut self, now: Cycle, injected_at: Cycle, bytes: u32, hops: u64) {
        self.stats.delivered += 1;
        let lat = now.saturating_sub(injected_at);
        self.stats.latency.record(lat as f64);
        self.stats.latency_hist.record(lat);
        if let Some(buf) = self.trace.as_mut() {
            buf.emit(
                now,
                EventKind::RingHop {
                    hops,
                    bytes: u64::from(bytes),
                },
            );
        }
    }

    /// Advances one cycle; returns `(exit_port, item)` for deliveries.
    ///
    /// Order within a tick: deliveries due now, then buffer allocation
    /// (class-ordered, FIFO within a class, skipping full outputs), then
    /// every output transmits up to the port bandwidth.
    pub fn tick(&mut self, now: Cycle) -> Vec<(usize, T)> {
        let mut out = Vec::new();
        for port in 0..self.outputs.len() {
            for slot in self.outputs[port].arrivals(now) {
                self.deliver_stats(now, slot.injected_at, slot.item.bytes(), 1);
                out.push((slot.exit, slot.item));
            }
        }
        // Allocation: highest class first (stable, so FIFO within a
        // class); a packet whose output is full waits in the input
        // buffer without blocking packets bound elsewhere.
        if !self.pending.is_empty() {
            let mut order: Vec<usize> = (0..self.pending.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(self.pending[i].class()));
            let mut taken = vec![false; self.pending.len()];
            for i in order {
                let exit = self.pending[i].exit;
                if self.outputs[exit].queued_packets() < self.depth {
                    taken[i] = true;
                }
            }
            let mut rest = VecDeque::with_capacity(self.pending.len());
            for (i, slot) in self.pending.drain(..).enumerate() {
                if taken[i] {
                    self.outputs[slot.exit].push(slot);
                } else {
                    rest.push_back(slot);
                }
            }
            self.pending = rest;
        }
        let cap = self.config.bytes_per_cycle;
        let lat = self.config.switch_latency;
        for l in &mut self.outputs {
            l.transmit(cap, None, lat, now);
        }
        out
    }

    /// Whether nothing is buffered or in flight.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.outputs.iter().all(DirectedLink::is_empty)
    }

    /// Event horizon: `Some(now)` while anything is buffered, the
    /// earliest in-flight delivery otherwise, `None` when drained.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.pending.is_empty() {
            return Some(now);
        }
        let mut horizon: Option<Cycle> = None;
        for l in &self.outputs {
            if l.queued_packets() > 0 {
                return Some(now);
            }
            if let Some(due) = l.next_arrival() {
                let due = due.max(now);
                horizon = Some(horizon.map_or(due, |h| h.min(due)));
            }
        }
        horizon
    }

    /// Fast-forwards an idle switch across `[from, to)`, accumulating
    /// exactly the offered-capacity statistics [`tick`](Self::tick)
    /// accumulates when every buffer is empty.
    pub fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        debug_assert!(
            self.pending.is_empty(),
            "cycle-skipped a switch with a pending input buffer"
        );
        let bytes = (to - from) * u64::from(self.config.bytes_per_cycle);
        for l in &mut self.outputs {
            l.skip_offer(bytes);
        }
    }

    /// Pending output bytes at `port` (congestion metric).
    pub fn congestion_at(&self, port: usize) -> u64 {
        self.outputs[port].queued_bytes()
    }

    /// Cumulative `(payload, offered)` bytes summed over all output
    /// ports. Monotonic counters, diffable for windowed utilization.
    pub fn payload_offered_bytes(&self) -> (u64, u64) {
        let (mut payload, mut offered) = (0u64, 0u64);
        for l in &self.outputs {
            let s = l.stats();
            payload += s.payload_bytes;
            offered += s.offered_bytes;
        }
        (payload, offered)
    }

    /// Aggregated payload utilization across all output ports.
    pub fn payload_utilization(&self) -> f64 {
        let (payload, offered) = self.payload_offered_bytes();
        if offered == 0 {
            0.0
        } else {
            payload as f64 / offered as f64
        }
    }

    /// Turns event tracing on, staging delivery events on `track`.
    pub fn enable_trace(&mut self, track: Track) {
        self.trace = Some(TraceBuffer::new(track));
    }

    /// Moves staged delivery events into `sink` (no-op when tracing is
    /// off).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        if let Some(buf) = self.trace.as_mut() {
            buf.drain_into(sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct P {
        id: u32,
        bytes: u32,
        class: u8,
    }

    impl Transmittable for P {
        fn bytes(&self) -> u32 {
            self.bytes
        }
        fn class(&self) -> u8 {
            self.class
        }
    }

    fn p(id: u32, bytes: u32, class: u8) -> P {
        P { id, bytes, class }
    }

    fn switch(ports: usize) -> BufferedNoc<P> {
        BufferedNoc::new(ports, BufferedNocConfig::default())
    }

    fn run(s: &mut BufferedNoc<P>, cycles: Cycle) -> Vec<(Cycle, usize, u32)> {
        let mut out = Vec::new();
        for now in 0..cycles {
            for (port, it) in s.tick(now) {
                out.push((now, port, it.id));
            }
        }
        out
    }

    #[test]
    fn delivers_with_switch_latency() {
        let mut s = switch(4);
        assert!(s.inject(0, 2, p(7, 8, 1), 0).is_none());
        let d = run(&mut s, 20);
        // Allocated at tick 0, transmitted in one cycle (8 ≤ 40),
        // delivered after the 2-cycle switch latency.
        assert_eq!(d, vec![(2, 2, 7)]);
        assert!(s.is_idle());
        assert_eq!(s.stats().delivered, 1);
    }

    #[test]
    fn same_port_short_circuits() {
        let mut s = switch(4);
        assert_eq!(s.inject(1, 1, p(9, 4, 1), 5), Some(p(9, 4, 1)));
        assert_eq!(s.stats().delivered, 1);
    }

    #[test]
    fn higher_class_wins_same_cycle_arbitration() {
        let mut s = switch(4);
        s.inject(0, 3, p(0, 8, 0), 0); // bulk, injected first
        s.inject(1, 3, p(1, 8, 3), 0); // critical, injected second
        let order: Vec<u32> = run(&mut s, 20).iter().map(|(_, _, id)| *id).collect();
        assert_eq!(
            order,
            vec![1, 0],
            "critical overtakes bulk at the same cycle"
        );
    }

    #[test]
    fn full_output_never_drops_packets() {
        let cfg = BufferedNocConfig {
            depth: 1,
            bytes_per_cycle: 8,
            ..BufferedNocConfig::default()
        };
        let mut s = BufferedNoc::new(2, cfg);
        for id in 0..20 {
            s.inject(0, 1, p(id, 8, 1), 0);
        }
        let d = run(&mut s, 100);
        assert_eq!(d.len(), 20, "every packet eventually delivered");
        let ids: Vec<u32> = d.iter().map(|(_, _, id)| *id).collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>(), "FIFO within a class");
        assert!(s.is_idle());
    }

    #[test]
    fn full_output_does_not_block_other_exits() {
        let cfg = BufferedNocConfig {
            depth: 1,
            bytes_per_cycle: 8,
            ..BufferedNocConfig::default()
        };
        let mut s = BufferedNoc::new(3, cfg);
        for id in 0..4 {
            s.inject(0, 1, p(id, 64, 1), 0); // long-running, fills exit 1
        }
        s.inject(0, 2, p(100, 8, 1), 0); // bound elsewhere
        let d = run(&mut s, 100);
        let first_to_2 = d.iter().find(|(_, port, _)| *port == 2).unwrap();
        let last_to_1 = d.iter().rfind(|(_, port, _)| *port == 1).unwrap();
        assert!(
            first_to_2.0 < last_to_1.0,
            "exit-2 packet was not head-of-line blocked"
        );
    }

    #[test]
    fn horizon_and_skip_match_the_contract() {
        let mut s = switch(2);
        assert_eq!(s.next_event(3), None);
        s.inject(0, 1, p(0, 8, 1), 3);
        assert_eq!(s.next_event(3), Some(3), "buffered item acts immediately");
        s.tick(3); // allocated + transmitted; delivery due at 5
        assert_eq!(s.next_event(4), Some(5));
        let _ = s.tick(5);
        assert_eq!(s.next_event(6), None, "drained switch reports None");

        let mut ticked = switch(2);
        let mut skipped = switch(2);
        for now in 0..50 {
            ticked.tick(now);
        }
        skipped.skip_idle(0, 50);
        assert_eq!(
            ticked.payload_offered_bytes(),
            skipped.payload_offered_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "port bandwidth")]
    fn zero_bandwidth_rejected() {
        let cfg = BufferedNocConfig {
            bytes_per_cycle: 0,
            ..BufferedNocConfig::default()
        };
        let _ = BufferedNoc::<P>::new(2, cfg);
    }
}
