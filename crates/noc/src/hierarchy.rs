//! The full hierarchical-ring topology (Fig. 4).
//!
//! 16 sub-rings of 16 cores each hang off one main ring through junction
//! routers. Four DDR controllers sit on the main ring with equal spacing;
//! the main scheduler and the PCIe host interface are attached as well.
//! A packet from a core to memory rides its sub-ring to the junction,
//! bridges, rides the main ring to the controller, and is delivered;
//! replies take the reverse path.

use std::collections::HashMap;

use smarco_sim::event::EventWheel;
use smarco_sim::obs::{EventKind, TraceBuffer, TraceSink, Track};
use smarco_sim::stats::{Histogram, MeanTracker};
use smarco_sim::Cycle;

use crate::link::{LinkConfig, Transmittable};
use crate::packet::{NodeId, Packet};
use crate::ring::Ring;

/// Topology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Number of sub-rings (16 in SmarCo).
    pub subrings: usize,
    /// Cores per sub-ring (16 in SmarCo).
    pub cores_per_subring: usize,
    /// DDR controllers on the main ring (4 in SmarCo).
    pub mem_ctrls: usize,
    /// Main-ring channel geometry.
    pub main_link: LinkConfig,
    /// Sub-ring channel geometry.
    pub sub_link: LinkConfig,
    /// Cycles to cross a junction router between rings.
    pub junction_latency: Cycle,
}

impl NocConfig {
    /// The paper's full configuration: 256 cores, 512-bit main ring,
    /// 256-bit sub-rings, 4 DDR controllers.
    pub fn smarco() -> Self {
        Self {
            subrings: 16,
            cores_per_subring: 16,
            mem_ctrls: 4,
            main_link: LinkConfig::main_ring(),
            sub_link: LinkConfig::sub_ring(),
            junction_latency: 2,
        }
    }

    /// A small configuration for fast tests: 4 sub-rings × 4 cores.
    pub fn tiny() -> Self {
        Self {
            subrings: 4,
            cores_per_subring: 4,
            mem_ctrls: 2,
            main_link: LinkConfig::main_ring(),
            sub_link: LinkConfig::sub_ring(),
            junction_latency: 2,
        }
    }

    /// Total core count.
    pub fn cores(&self) -> usize {
        self.subrings * self.cores_per_subring
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero counts, invalid link configs, or a controller count
    /// that does not divide the sub-ring count (needed for equal spacing).
    pub fn validate(&self) {
        assert!(
            self.subrings > 0 && self.cores_per_subring > 0,
            "zero topology"
        );
        assert!(self.mem_ctrls > 0, "need at least one memory controller");
        assert!(
            self.subrings.is_multiple_of(self.mem_ctrls),
            "controllers must divide sub-rings for equal spacing"
        );
        assert!(
            self.junction_latency > 0,
            "junction latency must be positive"
        );
        self.main_link.validate();
        self.sub_link.validate();
    }
}

impl<P> Transmittable for Packet<P> {
    fn bytes(&self) -> u32 {
        self.bytes
    }
    fn realtime(&self) -> bool {
        self.realtime
    }
}

/// End-to-end delivery statistics.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Packets delivered to their destination endpoint.
    pub delivered: u64,
    /// End-to-end latency (cycles).
    pub latency: MeanTracker,
    /// Latency distribution (power-of-two buckets) — the latency
    /// *predictability* the paper prizes in rings.
    pub latency_hist: Histogram,
}

/// The hierarchical-ring NoC, generic over packet payload `P`.
///
/// # Examples
///
/// ```
/// use smarco_noc::{HierarchicalRing, NocConfig, Packet};
/// use smarco_noc::packet::NodeId;
///
/// let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
/// noc.inject(Packet::new(0, NodeId::Core(0), NodeId::MemCtrl(0), 8, 0, ()), 0);
/// let mut delivered = Vec::new();
/// for now in 0..200 {
///     delivered.extend(noc.tick(now));
/// }
/// assert_eq!(delivered.len(), 1);
/// assert_eq!(delivered[0].dst, NodeId::MemCtrl(0));
/// ```
#[derive(Debug)]
pub struct HierarchicalRing<P> {
    config: NocConfig,
    subrings: Vec<Ring<Packet<P>>>,
    main: Ring<Packet<P>>,
    /// Position of each main-ring endpoint.
    main_pos: HashMap<NodeId, usize>,
    /// Junction position on the main ring, per sub-ring.
    junction_main_pos: Vec<usize>,
    /// Packets crossing a junction, delayed by `junction_latency`.
    bridge_to_main: EventWheel<Packet<P>>,
    bridge_to_sub: EventWheel<Packet<P>>,
    stats: NocStats,
    /// Staged ring-traversal events when tracing is enabled.
    trace_main: Option<TraceBuffer>,
    trace_subs: Option<Vec<TraceBuffer>>,
}

impl<P> HierarchicalRing<P> {
    /// Builds the topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`NocConfig::validate`]).
    pub fn new(config: NocConfig) -> Self {
        config.validate();
        let sub_positions = config.cores_per_subring + 1; // cores + junction
        let subrings = (0..config.subrings)
            .map(|_| Ring::new(sub_positions, config.sub_link))
            .collect();
        // Main-ring layout: junctions in order, a memory controller after
        // every `subrings / mem_ctrls` junctions, then scheduler and host.
        let mut main_pos = HashMap::new();
        let mut junction_main_pos = vec![0usize; config.subrings];
        let group = config.subrings / config.mem_ctrls;
        let mut pos = 0usize;
        let mut mc = 0usize;
        for (sr, jpos) in junction_main_pos.iter_mut().enumerate() {
            *jpos = pos;
            pos += 1;
            if (sr + 1) % group == 0 {
                main_pos.insert(NodeId::MemCtrl(mc), pos);
                mc += 1;
                pos += 1;
            }
        }
        main_pos.insert(NodeId::MainScheduler, pos);
        pos += 1;
        main_pos.insert(NodeId::Host, pos);
        pos += 1;
        let main = Ring::new(pos, config.main_link);
        Self {
            config,
            subrings,
            main,
            main_pos,
            junction_main_pos,
            bridge_to_main: EventWheel::new(),
            bridge_to_sub: EventWheel::new(),
            stats: NocStats::default(),
            trace_main: None,
            trace_subs: None,
        }
    }

    /// Turns event tracing on: each ring reports completed traversals on
    /// its own track ([`Track::MainRing`] / [`Track::SubRing`]).
    pub fn enable_trace(&mut self) {
        self.trace_main = Some(TraceBuffer::new(Track::MainRing));
        self.trace_subs = Some(
            (0..self.config.subrings)
                .map(|i| TraceBuffer::new(Track::SubRing(i)))
                .collect(),
        );
    }

    /// Moves staged ring events into `sink` (no-op when tracing is off).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        if let Some(buf) = self.trace_main.as_mut() {
            buf.drain_into(sink);
        }
        if let Some(bufs) = self.trace_subs.as_mut() {
            for b in bufs {
                b.drain_into(sink);
            }
        }
    }

    /// Cumulative `(payload, offered)` bytes over the main ring's channels.
    pub fn main_payload_offered(&self) -> (u64, u64) {
        self.main.payload_offered_bytes()
    }

    /// Cumulative `(payload, offered)` bytes summed over all sub-ring
    /// channels.
    pub fn sub_payload_offered(&self) -> (u64, u64) {
        let mut acc = (0u64, 0u64);
        for r in &self.subrings {
            let (p, o) = r.payload_offered_bytes();
            acc.0 += p;
            acc.1 += o;
        }
        acc
    }

    /// Topology parameters.
    pub fn config(&self) -> NocConfig {
        self.config
    }

    /// Delivery statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// `(sub-ring, position)` of a core.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn core_location(&self, core: usize) -> (usize, usize) {
        assert!(core < self.config.cores(), "core {core} out of range");
        (
            core / self.config.cores_per_subring,
            core % self.config.cores_per_subring,
        )
    }

    fn main_exit_for(&self, dst: NodeId) -> usize {
        match dst {
            NodeId::Core(c) => self.junction_main_pos[self.core_location(c).0],
            NodeId::Junction(sr) => {
                assert!(sr < self.junction_main_pos.len(), "unknown junction {sr}");
                self.junction_main_pos[sr]
            }
            other => *self
                .main_pos
                .get(&other)
                .unwrap_or_else(|| panic!("unknown main-ring endpoint {other:?}")),
        }
    }

    fn deliver(&mut self, pkt: Packet<P>, now: Cycle) -> Packet<P> {
        self.stats.delivered += 1;
        let lat = now.saturating_sub(pkt.injected_at);
        self.stats.latency.record(lat as f64);
        self.stats.latency_hist.record(lat);
        pkt
    }

    /// Injects a packet at its source endpoint at cycle `now`.
    ///
    /// Returns the packet immediately if source and destination coincide.
    ///
    /// # Panics
    ///
    /// Panics if the source or destination endpoint does not exist.
    pub fn inject(&mut self, pkt: Packet<P>, now: Cycle) -> Option<Packet<P>> {
        if pkt.src == pkt.dst {
            return Some(self.deliver(pkt, now));
        }
        match pkt.src {
            NodeId::Core(c) => {
                let (sr, pos) = self.core_location(c);
                let junction = self.config.cores_per_subring;
                let exit = match pkt.dst {
                    NodeId::Core(d) => {
                        let (dsr, dpos) = self.core_location(d);
                        if dsr == sr {
                            dpos
                        } else {
                            junction
                        }
                    }
                    _ => junction,
                };
                if let Some(p) = self.subrings[sr].inject(pos, exit, pkt) {
                    // Exit reached instantly: either a same-position core
                    // (impossible: src != dst) or… exit == pos can only
                    // happen for distinct cores at same pos, which cannot
                    // occur; treat as bridge-from-junction anyway.
                    self.bridge_to_main
                        .schedule(now + self.config.junction_latency, p);
                }
                None
            }
            NodeId::Junction(sr) => {
                // A junction-resident structure (MACT) sources packets
                // either down into its own sub-ring or out onto the main
                // ring.
                assert!(sr < self.subrings.len(), "unknown junction {sr}");
                let junction = self.config.cores_per_subring;
                match pkt.dst {
                    NodeId::Core(d) if self.core_location(d).0 == sr => {
                        let dpos = self.core_location(d).1;
                        if let Some(p) = self.subrings[sr].inject(junction, dpos, pkt) {
                            return Some(self.deliver(p, now));
                        }
                        None
                    }
                    _ => {
                        let at = self.junction_main_pos[sr];
                        let exit = self.main_exit_for(pkt.dst);
                        if let Some(p) = self.main.inject(at, exit, pkt) {
                            if matches!(p.dst, NodeId::Core(_)) {
                                self.bridge_to_sub
                                    .schedule(now + self.config.junction_latency, p);
                                return None;
                            }
                            return Some(self.deliver(p, now));
                        }
                        None
                    }
                }
            }
            NodeId::MemCtrl(_) | NodeId::MainScheduler | NodeId::Host => {
                let at = self.main_exit_for(pkt.src);
                let exit = self.main_exit_for(pkt.dst);
                if let Some(p) = self.main.inject(at, exit, pkt) {
                    // Destination shares the position only when it *is* the
                    // destination junction: bridge down.
                    if matches!(p.dst, NodeId::Core(_)) {
                        self.bridge_to_sub
                            .schedule(now + self.config.junction_latency, p);
                        return None;
                    }
                    return Some(self.deliver(p, now));
                }
                None
            }
        }
    }

    /// Advances one cycle; returns packets delivered to their destination
    /// endpoints.
    pub fn tick(&mut self, now: Cycle) -> Vec<Packet<P>> {
        let mut out = Vec::new();
        // Junction crossings that completed this cycle.
        while let Some(pkt) = self.bridge_to_main.pop_due(now) {
            let (sr, _) = match pkt.src {
                NodeId::Core(c) => self.core_location(c),
                _ => unreachable!("only core packets bridge upward"),
            };
            let at = self.junction_main_pos[sr];
            let exit = self.main_exit_for(pkt.dst);
            if let Some(p) = self.main.inject(at, exit, pkt) {
                if matches!(p.dst, NodeId::Core(_)) {
                    self.bridge_to_sub
                        .schedule(now + self.config.junction_latency, p);
                } else {
                    out.push(self.deliver(p, now));
                }
            }
        }
        while let Some(pkt) = self.bridge_to_sub.pop_due(now) {
            let NodeId::Core(d) = pkt.dst else {
                unreachable!("only core packets bridge downward");
            };
            let (sr, dpos) = self.core_location(d);
            let junction = self.config.cores_per_subring;
            if let Some(p) = self.subrings[sr].inject(junction, dpos, pkt) {
                out.push(self.deliver(p, now));
            }
        }
        // Sub-rings.
        for sr in 0..self.subrings.len() {
            for (pos, hops, pkt) in self.subrings[sr].tick(now) {
                if let Some(bufs) = self.trace_subs.as_mut() {
                    bufs[sr].emit(
                        now,
                        EventKind::RingHop {
                            hops: u64::from(hops),
                            bytes: u64::from(pkt.bytes),
                        },
                    );
                }
                if pos == self.config.cores_per_subring {
                    if pkt.dst == NodeId::Junction(sr) {
                        // Addressed to this junction's own structures.
                        out.push(self.deliver(pkt, now));
                    } else {
                        // Climb to the main ring.
                        self.bridge_to_main
                            .schedule(now + self.config.junction_latency, pkt);
                    }
                } else {
                    out.push(self.deliver(pkt, now));
                }
            }
        }
        // Main ring.
        let mut main_deliveries = self.main.tick(now);
        for (pos, hops, pkt) in main_deliveries.drain(..) {
            if let Some(buf) = self.trace_main.as_mut() {
                buf.emit(
                    now,
                    EventKind::RingHop {
                        hops: u64::from(hops),
                        bytes: u64::from(pkt.bytes),
                    },
                );
            }
            if matches!(pkt.dst, NodeId::Core(_)) {
                debug_assert!(self.junction_main_pos.contains(&pos));
                self.bridge_to_sub
                    .schedule(now + self.config.junction_latency, pkt);
            } else {
                out.push(self.deliver(pkt, now));
            }
        }
        out
    }

    /// Whether nothing is queued or in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.bridge_to_main.is_empty()
            && self.bridge_to_sub.is_empty()
            && self.main.is_idle()
            && self.subrings.iter().all(Ring::is_idle)
    }

    /// Mean payload utilization of the main ring's channels.
    pub fn main_ring_utilization(&self) -> f64 {
        self.main.payload_utilization()
    }

    /// Mean payload utilization across sub-ring channels.
    pub fn subring_utilization(&self) -> f64 {
        let sum: f64 = self.subrings.iter().map(Ring::payload_utilization).sum();
        sum / self.subrings.len() as f64
    }

    /// Congestion (queued output bytes) at a core's sub-ring router —
    /// used by cores to decide when the direct datapath is worthwhile.
    pub fn congestion_at_core(&self, core: usize) -> u64 {
        let (sr, pos) = self.core_location(core);
        self.subrings[sr].congestion_at(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<P>(noc: &mut HierarchicalRing<P>, cycles: Cycle) -> Vec<(Cycle, Packet<P>)> {
        let mut out = Vec::new();
        for now in 0..cycles {
            for p in noc.tick(now) {
                out.push((now, p));
            }
        }
        out
    }

    #[test]
    fn core_to_memory_and_back() {
        let mut noc: HierarchicalRing<u32> = HierarchicalRing::new(NocConfig::tiny());
        noc.inject(
            Packet::new(1, NodeId::Core(0), NodeId::MemCtrl(0), 8, 0, 42),
            0,
        );
        let d = run(&mut noc, 200);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1.payload, 42);
        let t = d[0].0;
        // Reply path.
        noc.inject(
            Packet::new(2, NodeId::MemCtrl(0), NodeId::Core(0), 64, t, 43),
            t,
        );
        let d2 = run(&mut noc, 400);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].1.dst, NodeId::Core(0));
        assert!(noc.is_idle());
    }

    #[test]
    fn same_subring_core_to_core_stays_local() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        noc.inject(
            Packet::new(1, NodeId::Core(0), NodeId::Core(3), 8, 0, ()),
            0,
        );
        let d = run(&mut noc, 50);
        assert_eq!(d.len(), 1);
        // Local traffic should be fast: a handful of cycles.
        assert!(d[0].0 < 10, "took {} cycles", d[0].0);
    }

    #[test]
    fn cross_subring_core_to_core() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        let last = noc.config().cores() - 1;
        noc.inject(
            Packet::new(1, NodeId::Core(0), NodeId::Core(last), 8, 0, ()),
            0,
        );
        let d = run(&mut noc, 300);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1.dst, NodeId::Core(last));
    }

    #[test]
    fn host_and_scheduler_reachable() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        noc.inject(Packet::new(1, NodeId::Core(5), NodeId::Host, 4, 0, ()), 0);
        noc.inject(
            Packet::new(2, NodeId::Host, NodeId::MainScheduler, 4, 0, ()),
            0,
        );
        noc.inject(
            Packet::new(3, NodeId::MainScheduler, NodeId::Core(7), 4, 0, ()),
            0,
        );
        let d = run(&mut noc, 300);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn all_cores_to_all_mcs_delivered_exactly_once() {
        let mut noc: HierarchicalRing<(usize, usize)> = HierarchicalRing::new(NocConfig::tiny());
        let mut id = 0;
        let mut expected = 0;
        for c in 0..noc.config().cores() {
            for m in 0..noc.config().mem_ctrls {
                noc.inject(
                    Packet::new(id, NodeId::Core(c), NodeId::MemCtrl(m), 8, 0, (c, m)),
                    0,
                );
                id += 1;
                expected += 1;
            }
        }
        let d = run(&mut noc, 2000);
        assert_eq!(d.len(), expected);
        assert!(noc.is_idle());
        // Every (core, mc) pair appears exactly once.
        let mut seen: Vec<(usize, usize)> = d.iter().map(|(_, p)| p.payload).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), expected);
        assert_eq!(noc.stats().delivered, expected as u64);
        assert!(noc.stats().latency.mean() > 0.0);
    }

    #[test]
    fn full_smarco_topology_builds_and_routes() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::smarco());
        noc.inject(
            Packet::new(1, NodeId::Core(255), NodeId::MemCtrl(3), 8, 0, ()),
            0,
        );
        noc.inject(
            Packet::new(2, NodeId::Core(0), NodeId::MemCtrl(0), 8, 0, ()),
            0,
        );
        let d = run(&mut noc, 500);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn self_delivery_short_circuits() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        let p = noc.inject(Packet::new(1, NodeId::Host, NodeId::Host, 4, 3, ()), 3);
        assert!(p.is_some());
        assert_eq!(noc.stats().delivered, 1);
    }

    #[test]
    fn core_location_mapping() {
        let noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::smarco());
        assert_eq!(noc.core_location(0), (0, 0));
        assert_eq!(noc.core_location(16), (1, 0));
        assert_eq!(noc.core_location(255), (15, 15));
    }

    #[test]
    fn junction_receives_from_local_cores() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        // Core 1 lives on sub-ring 0; its junction is addressable.
        noc.inject(
            Packet::new(1, NodeId::Core(1), NodeId::Junction(0), 4, 0, ()),
            0,
        );
        let d = run(&mut noc, 50);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1.dst, NodeId::Junction(0));
        assert!(d[0].0 < 10, "local junction should be close");
    }

    #[test]
    fn junction_sources_packets_both_ways() {
        let mut noc: HierarchicalRing<u8> = HierarchicalRing::new(NocConfig::tiny());
        // Down into its own sub-ring…
        noc.inject(
            Packet::new(1, NodeId::Junction(0), NodeId::Core(2), 8, 0, 1),
            0,
        );
        // …and out over the main ring to a memory controller.
        noc.inject(
            Packet::new(2, NodeId::Junction(1), NodeId::MemCtrl(0), 8, 0, 2),
            0,
        );
        // …and to a core in ANOTHER sub-ring (main ring + bridge down).
        let far = noc.config().cores() - 1;
        noc.inject(
            Packet::new(3, NodeId::Junction(0), NodeId::Core(far), 8, 0, 3),
            0,
        );
        let d = run(&mut noc, 300);
        let mut got: Vec<u8> = d.iter().map(|(_, p)| p.payload).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        assert!(noc.is_idle());
    }

    #[test]
    fn mem_ctrl_reaches_junction() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        noc.inject(
            Packet::new(1, NodeId::MemCtrl(1), NodeId::Junction(3), 64, 0, ()),
            0,
        );
        let d = run(&mut noc, 200);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1.dst, NodeId::Junction(3));
    }

    #[test]
    fn cross_subring_junction_traffic_transits_main_ring() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        // Core on sub-ring 0 to the junction of sub-ring 2: must climb,
        // cross the main ring, and terminate at the remote junction.
        noc.inject(
            Packet::new(1, NodeId::Core(0), NodeId::Junction(2), 4, 0, ()),
            0,
        );
        let d = run(&mut noc, 300);
        assert_eq!(d.len(), 1);
        assert!(d[0].0 > 5, "remote junction cannot be instant");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_rejected() {
        let noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        noc.core_location(999);
    }

    #[test]
    #[should_panic(expected = "controllers must divide")]
    fn unequal_spacing_rejected() {
        let mut c = NocConfig::tiny();
        c.mem_ctrls = 3;
        let _: HierarchicalRing<()> = HierarchicalRing::new(c);
    }
}
