//! The full hierarchical-ring topology (Fig. 4).
//!
//! 16 sub-rings of 16 cores each hang off one main ring through junction
//! routers. Four DDR controllers sit on the main ring with equal spacing;
//! the main scheduler and the PCIe host interface are attached as well.
//! A packet from a core to memory rides its sub-ring to the junction,
//! bridges, rides the main ring to the controller, and is delivered;
//! replies take the reverse path.
//!
//! The topology is built from two independent halves joined only at the
//! junctions: [`SubRingNoc`] (one sub-ring plus its junction port) and
//! [`MainRingNoc`] (the main ring with its endpoint layout). Neither half
//! holds a reference to the other — a packet crossing a junction leaves
//! one half as an explicit boundary event ([`SubRingEvent::Climb`] /
//! [`MainRingEvent::Descend`]) and becomes visible in the other half one
//! `junction_latency` later. That makes the junction latency a true
//! lookahead: the halves can live in different PDES shards and exchange
//! crossings as timestamped messages. [`HierarchicalRing`] recomposes the
//! halves into the classic single-threaded topology using event wheels as
//! the bridge buffers.

use std::collections::HashMap;

use smarco_sim::event::EventWheel;
use smarco_sim::obs::{EventKind, TraceBuffer, TraceSink, Track};
use smarco_sim::stats::{Histogram, MeanTracker};
use smarco_sim::Cycle;

use crate::link::{LinkConfig, Transmittable};
use crate::packet::{NodeId, Packet};
use crate::ring::Ring;

/// Topology parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocConfig {
    /// Number of sub-rings (16 in SmarCo).
    pub subrings: usize,
    /// Cores per sub-ring (16 in SmarCo).
    pub cores_per_subring: usize,
    /// DDR controllers on the main ring (4 in SmarCo).
    pub mem_ctrls: usize,
    /// Main-ring channel geometry.
    pub main_link: LinkConfig,
    /// Sub-ring channel geometry.
    pub sub_link: LinkConfig,
    /// Cycles to cross a junction router between rings.
    pub junction_latency: Cycle,
    /// Which interconnect implementation carries the traffic (the paper's
    /// hierarchical ring by default).
    pub backend: crate::backend::NocBackendKind,
    /// When on, backends consume each packet's consumer-derived
    /// [`Criticality`](crate::packet::Criticality) for arbitration,
    /// buffer allocation and direction choice, and the shard layer
    /// classifies requests accordingly. Off by default: every packet
    /// stays at `Normal` and arbitration degenerates to the original
    /// realtime-first behavior, bit for bit.
    pub criticality_routing: bool,
}

impl NocConfig {
    /// The paper's full configuration: 256 cores, 512-bit main ring,
    /// 256-bit sub-rings, 4 DDR controllers.
    pub fn smarco() -> Self {
        Self {
            subrings: 16,
            cores_per_subring: 16,
            mem_ctrls: 4,
            main_link: LinkConfig::main_ring(),
            sub_link: LinkConfig::sub_ring(),
            junction_latency: 2,
            backend: crate::backend::NocBackendKind::Ring,
            criticality_routing: false,
        }
    }

    /// A small configuration for fast tests: 4 sub-rings × 4 cores.
    pub fn tiny() -> Self {
        Self {
            subrings: 4,
            cores_per_subring: 4,
            mem_ctrls: 2,
            main_link: LinkConfig::main_ring(),
            sub_link: LinkConfig::sub_ring(),
            junction_latency: 2,
            backend: crate::backend::NocBackendKind::Ring,
            criticality_routing: false,
        }
    }

    /// The same topology carried by `backend`.
    #[must_use]
    pub fn with_backend(mut self, backend: crate::backend::NocBackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// The same topology with criticality routing switched on or off.
    #[must_use]
    pub fn with_criticality_routing(mut self, on: bool) -> Self {
        self.criticality_routing = on;
        self
    }

    /// The boundary-crossing latency the selected backend promises: the
    /// earliest a packet leaving one half of the topology can become
    /// visible in the other. This is what the shard layer stamps on
    /// junction-crossing messages and what the horizon contract floors
    /// the junction class at; the PDES lookahead must not exceed it.
    pub fn boundary_latency(&self) -> Cycle {
        match self.backend {
            crate::backend::NocBackendKind::Ring | crate::backend::NocBackendKind::Mesh => {
                self.junction_latency
            }
            crate::backend::NocBackendKind::Buffered(b) => b.boundary_latency,
        }
    }

    /// Total core count.
    pub fn cores(&self) -> usize {
        self.subrings * self.cores_per_subring
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on zero counts, invalid link configs, or a controller count
    /// that does not divide the sub-ring count (needed for equal spacing).
    pub fn validate(&self) {
        if let Err(reason) = self.check() {
            panic!("{reason}");
        }
    }

    /// Non-panicking validation for builder-style callers.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found, as a human-readable string.
    pub fn check(&self) -> Result<(), String> {
        if self.subrings == 0 || self.cores_per_subring == 0 {
            return Err("zero topology".into());
        }
        if self.mem_ctrls == 0 {
            return Err("need at least one memory controller".into());
        }
        if !self.subrings.is_multiple_of(self.mem_ctrls) {
            return Err("controllers must divide sub-rings for equal spacing".into());
        }
        if self.junction_latency == 0 {
            return Err("junction latency must be positive".into());
        }
        if let crate::backend::NocBackendKind::Buffered(b) = self.backend {
            b.check()?;
        }
        self.main_link.check()?;
        self.sub_link.check()
    }
}

impl<P> Transmittable for Packet<P> {
    fn bytes(&self) -> u32 {
        self.bytes
    }
    fn realtime(&self) -> bool {
        self.realtime
    }
    fn class(&self) -> u8 {
        Packet::class(self)
    }
}

/// End-to-end delivery statistics.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Packets delivered to their destination endpoint.
    pub delivered: u64,
    /// End-to-end latency (cycles).
    pub latency: MeanTracker,
    /// Latency distribution (power-of-two buckets) — the latency
    /// *predictability* the paper prizes in rings.
    pub latency_hist: Histogram,
}

/// What one sub-ring tick produced at each endpoint.
#[derive(Debug)]
pub enum SubRingEvent<P> {
    /// Reached a local endpoint: a core position, or the junction's own
    /// structures (`dst == Junction(sr)`).
    Delivered(Packet<P>),
    /// Reached the junction addressed beyond this sub-ring; it becomes
    /// visible on the main ring one junction latency later.
    Climb(Packet<P>),
}

/// One sub-ring with its junction port — the sub-ring half of the
/// topology. It knows nothing about the main ring: packets leaving for it
/// surface as [`SubRingEvent::Climb`] boundary events.
#[derive(Debug)]
pub struct SubRingNoc<P> {
    sr: usize,
    cores_per_subring: usize,
    ring: Ring<Packet<P>>,
    trace: Option<TraceBuffer>,
}

impl<P> SubRingNoc<P> {
    /// Builds sub-ring `sr`: `cores_per_subring` core positions plus the
    /// junction at position `cores_per_subring`.
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_subring` is zero or the link is invalid.
    pub fn new(sr: usize, cores_per_subring: usize, link: LinkConfig) -> Self {
        assert!(cores_per_subring > 0, "zero topology");
        Self {
            sr,
            cores_per_subring,
            ring: Ring::new(cores_per_subring + 1, link),
            trace: None,
        }
    }

    /// This sub-ring's index.
    pub fn subring(&self) -> usize {
        self.sr
    }

    /// Turns criticality-adaptive direction choice on or off (see
    /// [`Ring::set_adaptive`]).
    pub fn set_adaptive(&mut self, on: bool) {
        self.ring.set_adaptive(on);
    }

    fn junction(&self) -> usize {
        self.cores_per_subring
    }

    /// Whether a core id lives on this sub-ring.
    pub fn owns_core(&self, core: usize) -> bool {
        core / self.cores_per_subring == self.sr
    }

    fn local_pos(&self, core: usize) -> usize {
        debug_assert!(self.owns_core(core));
        core % self.cores_per_subring
    }

    /// Injects a packet sourced by the local core at ring position `pos`.
    /// The exit is the destination core's position for local traffic and
    /// the junction for everything else. Returns the packet if it reached
    /// its exit instantly (`pos == exit`).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is not a core position.
    pub fn inject_from_core(&mut self, pos: usize, pkt: Packet<P>) -> Option<Packet<P>> {
        assert!(pos < self.cores_per_subring, "not a core position: {pos}");
        let exit = match pkt.dst {
            NodeId::Core(d) if self.owns_core(d) => self.local_pos(d),
            _ => self.junction(),
        };
        self.ring.inject(pos, exit, pkt)
    }

    /// Injects a packet entering at the junction (bridged down from the
    /// main ring, or sourced by the junction's own structures) addressed
    /// to a local core. Returns the packet if delivered instantly.
    ///
    /// # Panics
    ///
    /// Panics if the destination is not a core of this sub-ring.
    pub fn inject_from_junction(&mut self, pkt: Packet<P>) -> Option<Packet<P>> {
        let NodeId::Core(d) = pkt.dst else {
            panic!("junction downlink carries core packets, got {:?}", pkt.dst);
        };
        assert!(self.owns_core(d), "core {d} not on sub-ring {}", self.sr);
        let dpos = self.local_pos(d);
        self.ring.inject(self.junction(), dpos, pkt)
    }

    /// Advances one cycle; returns deliveries and junction crossings.
    pub fn tick(&mut self, now: Cycle) -> Vec<SubRingEvent<P>> {
        let mut out = Vec::new();
        for (pos, hops, pkt) in self.ring.tick(now) {
            if let Some(buf) = self.trace.as_mut() {
                buf.emit(
                    now,
                    EventKind::RingHop {
                        hops: u64::from(hops),
                        bytes: u64::from(pkt.bytes),
                    },
                );
            }
            if pos == self.junction() && pkt.dst != NodeId::Junction(self.sr) {
                out.push(SubRingEvent::Climb(pkt));
            } else {
                out.push(SubRingEvent::Delivered(pkt));
            }
        }
        out
    }

    /// Whether nothing is queued or in flight on the ring.
    pub fn is_idle(&self) -> bool {
        self.ring.is_idle()
    }

    /// Event horizon of the underlying ring (see [`Ring::next_event`]).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.ring.next_event(now)
    }

    /// Fast-forwards the idle ring across `[from, to)` (see
    /// [`Ring::skip_idle`]).
    pub fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.ring.skip_idle(from, to);
    }

    /// Congestion (queued output bytes) at ring position `pos`.
    pub fn congestion_at(&self, pos: usize) -> u64 {
        self.ring.congestion_at(pos)
    }

    /// Cumulative `(payload, offered)` bytes over the ring's channels.
    pub fn payload_offered_bytes(&self) -> (u64, u64) {
        self.ring.payload_offered_bytes()
    }

    /// Aggregated payload utilization of the ring's channels.
    pub fn payload_utilization(&self) -> f64 {
        self.ring.payload_utilization()
    }

    /// Turns event tracing on ([`Track::SubRing`] of this index).
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceBuffer::new(Track::SubRing(self.sr)));
    }

    /// Moves staged ring events into `sink` (no-op when tracing is off).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        if let Some(buf) = self.trace.as_mut() {
            buf.drain_into(sink);
        }
    }
}

/// What one main-ring tick produced at each endpoint.
#[derive(Debug)]
pub enum MainRingEvent<P> {
    /// Reached a main-ring endpoint: a memory controller, the scheduler,
    /// the host, or a junction's own structures (`dst == Junction(sr)`).
    Delivered(Packet<P>),
    /// Reached the junction of the destination core's sub-ring; it
    /// becomes visible on that sub-ring one junction latency later.
    Descend(Packet<P>),
}

/// The main ring with its endpoint layout — the hub half of the topology.
/// It knows nothing about sub-ring interiors: packets addressed to cores
/// surface as [`MainRingEvent::Descend`] boundary events at the
/// destination junction.
#[derive(Debug)]
pub struct MainRingNoc<P> {
    cores_per_subring: usize,
    ring: Ring<Packet<P>>,
    /// Position of each non-junction main-ring endpoint.
    main_pos: HashMap<NodeId, usize>,
    /// Junction position on the main ring, per sub-ring.
    junction_main_pos: Vec<usize>,
    trace: Option<TraceBuffer>,
}

impl<P> MainRingNoc<P> {
    /// Builds the main ring: junctions in order, a memory controller after
    /// every `subrings / mem_ctrls` junctions, then scheduler and host.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`NocConfig::validate`]).
    pub fn new(config: &NocConfig) -> Self {
        config.validate();
        let mut main_pos = HashMap::new();
        let mut junction_main_pos = vec![0usize; config.subrings];
        let group = config.subrings / config.mem_ctrls;
        let mut pos = 0usize;
        let mut mc = 0usize;
        for (sr, jpos) in junction_main_pos.iter_mut().enumerate() {
            *jpos = pos;
            pos += 1;
            if (sr + 1) % group == 0 {
                main_pos.insert(NodeId::MemCtrl(mc), pos);
                mc += 1;
                pos += 1;
            }
        }
        main_pos.insert(NodeId::MainScheduler, pos);
        pos += 1;
        main_pos.insert(NodeId::Host, pos);
        pos += 1;
        Self {
            cores_per_subring: config.cores_per_subring,
            ring: Ring::new(pos, config.main_link),
            main_pos,
            junction_main_pos,
            trace: None,
        }
    }

    /// Turns criticality-adaptive direction choice on or off (see
    /// [`Ring::set_adaptive`]).
    pub fn set_adaptive(&mut self, on: bool) {
        self.ring.set_adaptive(on);
    }

    fn subring_of_core(&self, core: usize) -> usize {
        core / self.cores_per_subring
    }

    fn exit_for(&self, dst: NodeId) -> usize {
        match dst {
            NodeId::Core(c) => self.junction_main_pos[self.subring_of_core(c)],
            NodeId::Junction(sr) => {
                assert!(sr < self.junction_main_pos.len(), "unknown junction {sr}");
                self.junction_main_pos[sr]
            }
            other => *self
                .main_pos
                .get(&other)
                .unwrap_or_else(|| panic!("unknown main-ring endpoint {other:?}")),
        }
    }

    /// Where a packet enters the main ring, derived from its source: core
    /// packets enter at their sub-ring's junction, junction packets at
    /// that junction, everything else at its own endpoint position.
    fn entry_for(&self, src: NodeId) -> usize {
        match src {
            NodeId::Core(c) => self.junction_main_pos[self.subring_of_core(c)],
            other => self.exit_for(other),
        }
    }

    fn classify(&self, pkt: Packet<P>) -> MainRingEvent<P> {
        if matches!(pkt.dst, NodeId::Core(_)) {
            MainRingEvent::Descend(pkt)
        } else {
            MainRingEvent::Delivered(pkt)
        }
    }

    /// Injects a packet at its entry position. Returns the boundary event
    /// immediately if the exit coincides with the entry.
    ///
    /// # Panics
    ///
    /// Panics if the source or destination endpoint does not exist.
    pub fn inject(&mut self, pkt: Packet<P>) -> Option<MainRingEvent<P>> {
        let at = self.entry_for(pkt.src);
        let exit = self.exit_for(pkt.dst);
        self.ring.inject(at, exit, pkt).map(|p| self.classify(p))
    }

    /// Advances one cycle; returns deliveries and junction descents.
    pub fn tick(&mut self, now: Cycle) -> Vec<MainRingEvent<P>> {
        let mut out = Vec::new();
        for (_pos, hops, pkt) in self.ring.tick(now) {
            if let Some(buf) = self.trace.as_mut() {
                buf.emit(
                    now,
                    EventKind::RingHop {
                        hops: u64::from(hops),
                        bytes: u64::from(pkt.bytes),
                    },
                );
            }
            out.push(self.classify(pkt));
        }
        out
    }

    /// Whether nothing is queued or in flight on the ring.
    pub fn is_idle(&self) -> bool {
        self.ring.is_idle()
    }

    /// Event horizon of the underlying ring (see [`Ring::next_event`]).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.ring.next_event(now)
    }

    /// Fast-forwards the idle ring across `[from, to)` (see
    /// [`Ring::skip_idle`]).
    pub fn skip_idle(&mut self, from: Cycle, to: Cycle) {
        self.ring.skip_idle(from, to);
    }

    /// Cumulative `(payload, offered)` bytes over the ring's channels.
    pub fn payload_offered_bytes(&self) -> (u64, u64) {
        self.ring.payload_offered_bytes()
    }

    /// Aggregated payload utilization of the ring's channels.
    pub fn payload_utilization(&self) -> f64 {
        self.ring.payload_utilization()
    }

    /// Turns event tracing on ([`Track::MainRing`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(TraceBuffer::new(Track::MainRing));
    }

    /// Moves staged ring events into `sink` (no-op when tracing is off).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        if let Some(buf) = self.trace.as_mut() {
            buf.drain_into(sink);
        }
    }
}

/// The hierarchical-ring NoC, generic over packet payload `P` — the
/// single-threaded recomposition of [`SubRingNoc`] halves and one
/// [`MainRingNoc`], with event wheels as the junction bridge buffers.
///
/// # Examples
///
/// ```
/// use smarco_noc::{HierarchicalRing, NocConfig, Packet};
/// use smarco_noc::packet::NodeId;
///
/// let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
/// noc.inject(Packet::new(0, NodeId::Core(0), NodeId::MemCtrl(0), 8, 0, ()), 0);
/// let mut delivered = Vec::new();
/// for now in 0..200 {
///     delivered.extend(noc.tick(now));
/// }
/// assert_eq!(delivered.len(), 1);
/// assert_eq!(delivered[0].dst, NodeId::MemCtrl(0));
/// ```
#[derive(Debug)]
pub struct HierarchicalRing<P> {
    config: NocConfig,
    subrings: Vec<SubRingNoc<P>>,
    main: MainRingNoc<P>,
    /// Packets crossing a junction, delayed by `junction_latency`.
    bridge_to_main: EventWheel<Packet<P>>,
    bridge_to_sub: EventWheel<Packet<P>>,
    stats: NocStats,
}

impl<P> HierarchicalRing<P> {
    /// Builds the topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`NocConfig::validate`]).
    pub fn new(config: NocConfig) -> Self {
        let main = MainRingNoc::new(&config);
        let subrings = (0..config.subrings)
            .map(|sr| SubRingNoc::new(sr, config.cores_per_subring, config.sub_link))
            .collect();
        Self {
            config,
            subrings,
            main,
            bridge_to_main: EventWheel::new(),
            bridge_to_sub: EventWheel::new(),
            stats: NocStats::default(),
        }
    }

    /// Turns event tracing on: each ring reports completed traversals on
    /// its own track ([`Track::MainRing`] / [`Track::SubRing`]).
    pub fn enable_trace(&mut self) {
        self.main.enable_trace();
        for sub in &mut self.subrings {
            sub.enable_trace();
        }
    }

    /// Moves staged ring events into `sink` (no-op when tracing is off).
    pub fn drain_trace(&mut self, sink: &mut dyn TraceSink) {
        self.main.drain_trace(sink);
        for sub in &mut self.subrings {
            sub.drain_trace(sink);
        }
    }

    /// Cumulative `(payload, offered)` bytes over the main ring's channels.
    pub fn main_payload_offered(&self) -> (u64, u64) {
        self.main.payload_offered_bytes()
    }

    /// Cumulative `(payload, offered)` bytes summed over all sub-ring
    /// channels.
    pub fn sub_payload_offered(&self) -> (u64, u64) {
        let mut acc = (0u64, 0u64);
        for r in &self.subrings {
            let (p, o) = r.payload_offered_bytes();
            acc.0 += p;
            acc.1 += o;
        }
        acc
    }

    /// Topology parameters.
    pub fn config(&self) -> NocConfig {
        self.config
    }

    /// Delivery statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// `(sub-ring, position)` of a core.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn core_location(&self, core: usize) -> (usize, usize) {
        assert!(core < self.config.cores(), "core {core} out of range");
        (
            core / self.config.cores_per_subring,
            core % self.config.cores_per_subring,
        )
    }

    fn deliver(&mut self, pkt: Packet<P>, now: Cycle) -> Packet<P> {
        self.stats.delivered += 1;
        let lat = now.saturating_sub(pkt.injected_at);
        self.stats.latency.record(lat as f64);
        self.stats.latency_hist.record(lat);
        pkt
    }

    fn on_main_event(&mut self, ev: MainRingEvent<P>, now: Cycle) -> Option<Packet<P>> {
        match ev {
            MainRingEvent::Delivered(p) => Some(self.deliver(p, now)),
            MainRingEvent::Descend(p) => {
                self.bridge_to_sub
                    .schedule(now + self.config.junction_latency, p);
                None
            }
        }
    }

    /// Injects a packet at its source endpoint at cycle `now`.
    ///
    /// Returns the packet immediately if source and destination coincide.
    ///
    /// # Panics
    ///
    /// Panics if the source or destination endpoint does not exist.
    pub fn inject(&mut self, pkt: Packet<P>, now: Cycle) -> Option<Packet<P>> {
        if pkt.src == pkt.dst {
            return Some(self.deliver(pkt, now));
        }
        match pkt.src {
            NodeId::Core(c) => {
                let (sr, pos) = self.core_location(c);
                if let Some(p) = self.subrings[sr].inject_from_core(pos, pkt) {
                    // Exit reached instantly: either a same-position core
                    // (impossible: src != dst) or… exit == pos can only
                    // happen for distinct cores at same pos, which cannot
                    // occur; treat as bridge-from-junction anyway.
                    self.bridge_to_main
                        .schedule(now + self.config.junction_latency, p);
                }
                None
            }
            NodeId::Junction(sr) => {
                // A junction-resident structure (MACT) sources packets
                // either down into its own sub-ring or out onto the main
                // ring.
                assert!(sr < self.subrings.len(), "unknown junction {sr}");
                match pkt.dst {
                    NodeId::Core(d) if self.subrings[sr].owns_core(d) => {
                        if let Some(p) = self.subrings[sr].inject_from_junction(pkt) {
                            return Some(self.deliver(p, now));
                        }
                        None
                    }
                    _ => {
                        let ev = self.main.inject(pkt)?;
                        self.on_main_event(ev, now)
                    }
                }
            }
            NodeId::MemCtrl(_) | NodeId::MainScheduler | NodeId::Host => {
                let ev = self.main.inject(pkt)?;
                self.on_main_event(ev, now)
            }
        }
    }

    /// Advances one cycle; returns packets delivered to their destination
    /// endpoints.
    pub fn tick(&mut self, now: Cycle) -> Vec<Packet<P>> {
        let mut out = Vec::new();
        // Junction crossings that completed this cycle.
        while let Some(pkt) = self.bridge_to_main.pop_due(now) {
            if let Some(ev) = self.main.inject(pkt) {
                out.extend(self.on_main_event(ev, now));
            }
        }
        while let Some(pkt) = self.bridge_to_sub.pop_due(now) {
            let NodeId::Core(d) = pkt.dst else {
                unreachable!("only core packets bridge downward");
            };
            let (sr, _) = self.core_location(d);
            if let Some(p) = self.subrings[sr].inject_from_junction(pkt) {
                out.push(self.deliver(p, now));
            }
        }
        // Sub-rings.
        for sr in 0..self.subrings.len() {
            for ev in self.subrings[sr].tick(now) {
                match ev {
                    SubRingEvent::Delivered(p) => out.push(self.deliver(p, now)),
                    SubRingEvent::Climb(p) => {
                        self.bridge_to_main
                            .schedule(now + self.config.junction_latency, p);
                    }
                }
            }
        }
        // Main ring.
        for ev in self.main.tick(now) {
            out.extend(self.on_main_event(ev, now));
        }
        out
    }

    /// Whether nothing is queued or in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.bridge_to_main.is_empty()
            && self.bridge_to_sub.is_empty()
            && self.main.is_idle()
            && self.subrings.iter().all(SubRingNoc::is_idle)
    }

    /// Mean payload utilization of the main ring's channels.
    pub fn main_ring_utilization(&self) -> f64 {
        self.main.payload_utilization()
    }

    /// Mean payload utilization across sub-ring channels.
    pub fn subring_utilization(&self) -> f64 {
        let sum: f64 = self
            .subrings
            .iter()
            .map(SubRingNoc::payload_utilization)
            .sum();
        sum / self.subrings.len() as f64
    }

    /// Congestion (queued output bytes) at a core's sub-ring router —
    /// used by cores to decide when the direct datapath is worthwhile.
    pub fn congestion_at_core(&self, core: usize) -> u64 {
        let (sr, pos) = self.core_location(core);
        self.subrings[sr].congestion_at(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<P>(noc: &mut HierarchicalRing<P>, cycles: Cycle) -> Vec<(Cycle, Packet<P>)> {
        let mut out = Vec::new();
        for now in 0..cycles {
            for p in noc.tick(now) {
                out.push((now, p));
            }
        }
        out
    }

    #[test]
    fn core_to_memory_and_back() {
        let mut noc: HierarchicalRing<u32> = HierarchicalRing::new(NocConfig::tiny());
        noc.inject(
            Packet::new(1, NodeId::Core(0), NodeId::MemCtrl(0), 8, 0, 42),
            0,
        );
        let d = run(&mut noc, 200);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1.payload, 42);
        let t = d[0].0;
        // Reply path.
        noc.inject(
            Packet::new(2, NodeId::MemCtrl(0), NodeId::Core(0), 64, t, 43),
            t,
        );
        let d2 = run(&mut noc, 400);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].1.dst, NodeId::Core(0));
        assert!(noc.is_idle());
    }

    #[test]
    fn same_subring_core_to_core_stays_local() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        noc.inject(
            Packet::new(1, NodeId::Core(0), NodeId::Core(3), 8, 0, ()),
            0,
        );
        let d = run(&mut noc, 50);
        assert_eq!(d.len(), 1);
        // Local traffic should be fast: a handful of cycles.
        assert!(d[0].0 < 10, "took {} cycles", d[0].0);
    }

    #[test]
    fn cross_subring_core_to_core() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        let last = noc.config().cores() - 1;
        noc.inject(
            Packet::new(1, NodeId::Core(0), NodeId::Core(last), 8, 0, ()),
            0,
        );
        let d = run(&mut noc, 300);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1.dst, NodeId::Core(last));
    }

    #[test]
    fn host_and_scheduler_reachable() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        noc.inject(Packet::new(1, NodeId::Core(5), NodeId::Host, 4, 0, ()), 0);
        noc.inject(
            Packet::new(2, NodeId::Host, NodeId::MainScheduler, 4, 0, ()),
            0,
        );
        noc.inject(
            Packet::new(3, NodeId::MainScheduler, NodeId::Core(7), 4, 0, ()),
            0,
        );
        let d = run(&mut noc, 300);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn all_cores_to_all_mcs_delivered_exactly_once() {
        let mut noc: HierarchicalRing<(usize, usize)> = HierarchicalRing::new(NocConfig::tiny());
        let mut id = 0;
        let mut expected = 0;
        for c in 0..noc.config().cores() {
            for m in 0..noc.config().mem_ctrls {
                noc.inject(
                    Packet::new(id, NodeId::Core(c), NodeId::MemCtrl(m), 8, 0, (c, m)),
                    0,
                );
                id += 1;
                expected += 1;
            }
        }
        let d = run(&mut noc, 2000);
        assert_eq!(d.len(), expected);
        assert!(noc.is_idle());
        // Every (core, mc) pair appears exactly once.
        let mut seen: Vec<(usize, usize)> = d.iter().map(|(_, p)| p.payload).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), expected);
        assert_eq!(noc.stats().delivered, expected as u64);
        assert!(noc.stats().latency.mean() > 0.0);
    }

    #[test]
    fn full_smarco_topology_builds_and_routes() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::smarco());
        noc.inject(
            Packet::new(1, NodeId::Core(255), NodeId::MemCtrl(3), 8, 0, ()),
            0,
        );
        noc.inject(
            Packet::new(2, NodeId::Core(0), NodeId::MemCtrl(0), 8, 0, ()),
            0,
        );
        let d = run(&mut noc, 500);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn self_delivery_short_circuits() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        let p = noc.inject(Packet::new(1, NodeId::Host, NodeId::Host, 4, 3, ()), 3);
        assert!(p.is_some());
        assert_eq!(noc.stats().delivered, 1);
    }

    #[test]
    fn core_location_mapping() {
        let noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::smarco());
        assert_eq!(noc.core_location(0), (0, 0));
        assert_eq!(noc.core_location(16), (1, 0));
        assert_eq!(noc.core_location(255), (15, 15));
    }

    #[test]
    fn junction_receives_from_local_cores() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        // Core 1 lives on sub-ring 0; its junction is addressable.
        noc.inject(
            Packet::new(1, NodeId::Core(1), NodeId::Junction(0), 4, 0, ()),
            0,
        );
        let d = run(&mut noc, 50);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1.dst, NodeId::Junction(0));
        assert!(d[0].0 < 10, "local junction should be close");
    }

    #[test]
    fn junction_sources_packets_both_ways() {
        let mut noc: HierarchicalRing<u8> = HierarchicalRing::new(NocConfig::tiny());
        // Down into its own sub-ring…
        noc.inject(
            Packet::new(1, NodeId::Junction(0), NodeId::Core(2), 8, 0, 1),
            0,
        );
        // …and out over the main ring to a memory controller.
        noc.inject(
            Packet::new(2, NodeId::Junction(1), NodeId::MemCtrl(0), 8, 0, 2),
            0,
        );
        // …and to a core in ANOTHER sub-ring (main ring + bridge down).
        let far = noc.config().cores() - 1;
        noc.inject(
            Packet::new(3, NodeId::Junction(0), NodeId::Core(far), 8, 0, 3),
            0,
        );
        let d = run(&mut noc, 300);
        let mut got: Vec<u8> = d.iter().map(|(_, p)| p.payload).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        assert!(noc.is_idle());
    }

    #[test]
    fn mem_ctrl_reaches_junction() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        noc.inject(
            Packet::new(1, NodeId::MemCtrl(1), NodeId::Junction(3), 64, 0, ()),
            0,
        );
        let d = run(&mut noc, 200);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1.dst, NodeId::Junction(3));
    }

    #[test]
    fn cross_subring_junction_traffic_transits_main_ring() {
        let mut noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        // Core on sub-ring 0 to the junction of sub-ring 2: must climb,
        // cross the main ring, and terminate at the remote junction.
        noc.inject(
            Packet::new(1, NodeId::Core(0), NodeId::Junction(2), 4, 0, ()),
            0,
        );
        let d = run(&mut noc, 300);
        assert_eq!(d.len(), 1);
        assert!(d[0].0 > 5, "remote junction cannot be instant");
    }

    #[test]
    fn split_halves_expose_boundary_events() {
        // Drive the halves by hand: a packet leaves sub-ring 0 as a Climb,
        // crosses, rides the main ring to a junction, and descends.
        let cfg = NocConfig::tiny();
        let mut sub: SubRingNoc<()> = SubRingNoc::new(0, cfg.cores_per_subring, cfg.sub_link);
        let mut main: MainRingNoc<()> = MainRingNoc::new(&cfg);
        let pkt = Packet::new(1, NodeId::Core(0), NodeId::Core(14), 8, 0, ());
        assert!(sub.inject_from_core(0, pkt).is_none());
        let mut climbed = None;
        for now in 0..50 {
            for ev in sub.tick(now) {
                match ev {
                    SubRingEvent::Climb(p) => climbed = Some((now, p)),
                    SubRingEvent::Delivered(_) => panic!("dst is remote"),
                }
            }
            if climbed.is_some() {
                break;
            }
        }
        let (t, p) = climbed.expect("packet must climb");
        assert!(main.inject(p).is_none());
        let mut descended = None;
        for now in t..t + 100 {
            for ev in main.tick(now) {
                match ev {
                    MainRingEvent::Descend(p) => descended = Some(p),
                    MainRingEvent::Delivered(_) => panic!("dst is a core"),
                }
            }
            if descended.is_some() {
                break;
            }
        }
        let p = descended.expect("packet must descend");
        assert_eq!(p.dst, NodeId::Core(14));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_rejected() {
        let noc: HierarchicalRing<()> = HierarchicalRing::new(NocConfig::tiny());
        noc.core_location(999);
    }

    #[test]
    #[should_panic(expected = "controllers must divide")]
    fn unequal_spacing_rejected() {
        let mut c = NocConfig::tiny();
        c.mem_ctrls = 3;
        let _: HierarchicalRing<()> = HierarchicalRing::new(c);
    }
}
