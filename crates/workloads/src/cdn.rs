//! The CDN (Nginx video delivery) workload behind Fig. 2.
//!
//! The paper's motivating experiment: an Nginx CDN node with a 10 Gbps NIC
//! serving 25 Mbps video streams. The NIC caps the useful connection count
//! at ~400; at that point the measured CPU sits under 10 % utilization
//! while the branch miss ratio exceeds 10 % and L1 misses reach ~40 % —
//! the processor is simultaneously underused *and* cache-hostile.
//!
//! The model: each connection is a service thread that wakes per send
//! window, walks protocol state (branchy, mispredicting), and streams
//! video buffers far larger than L1. The NIC cap fixes how much service
//! work exists per unit time, so CPU utilization stays low no matter how
//! many cores wait for it.

use smarco_isa::mix::GranularityMix;

use crate::generator::ThreadGenParams;

/// CDN node parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdnConfig {
    /// NIC bandwidth in Gbps.
    pub nic_gbps: f64,
    /// Per-stream video rate in Mbps.
    pub stream_mbps: f64,
    /// Instructions the server spends per transmitted kilobyte (protocol
    /// + buffer management; sendfile-style paths are cheap).
    pub instrs_per_kb: f64,
}

impl CdnConfig {
    /// The paper's testbed: 10 Gbps NIC, 25 Mbps streams.
    pub fn paper() -> Self {
        Self {
            nic_gbps: 10.0,
            stream_mbps: 25.0,
            instrs_per_kb: 600.0,
        }
    }

    /// Maximum concurrent streams the NIC sustains.
    pub fn max_clients(&self) -> usize {
        (self.nic_gbps * 1000.0 / self.stream_mbps) as usize
    }

    /// Aggregate instructions per second of service work at `clients`
    /// (clamped by the NIC).
    pub fn service_instr_rate(&self, clients: usize) -> f64 {
        let clients = clients.min(self.max_clients()) as f64;
        let bytes_per_sec = clients * self.stream_mbps * 1e6 / 8.0;
        bytes_per_sec / 1024.0 * self.instrs_per_kb
    }

    /// Instructions of service work one connection performs over a window
    /// of `seconds`.
    pub fn instrs_per_connection(&self, seconds: f64) -> u64 {
        (self.stream_mbps * 1e6 / 8.0 / 1024.0 * self.instrs_per_kb * seconds) as u64
    }

    /// Thread-stream parameters for connection `client` serving for
    /// `seconds` of wall-clock time.
    ///
    /// The working set is the in-flight buffer churn: large, streaming,
    /// with branchy protocol handling consulting shared connection state.
    pub fn connection_params(&self, client: usize, seconds: f64) -> ThreadGenParams {
        let ops = self.instrs_per_connection(seconds).max(1000);
        ThreadGenParams {
            // Each connection churns through its own 4 MB of buffer space.
            scan_base: 0x4000_0000 + client as u64 * (4 << 20),
            scan_len: 4 << 20,
            thread_index: 0,
            team_size: 1,
            // Packet buffers recycle at ~MTU stride: little byte-level
            // reuse, so the L1 misses hard (Fig. 2's ≈40 %).
            scan_elem_bytes: 48,
            emit_run: 4,
            out_base: 0x6000_0000 + client as u64 * (1 << 20),
            out_len: 1 << 20,
            // Network buffers copy in words and small headers.
            granularity: GranularityMix::new([0.15, 0.2, 0.25, 0.25, 0.1, 0.05, 0.0]),
            // Shared connection/session table.
            table_base: 0x2000_0000,
            table_len: 8 << 20,
            table_frac: 0.3,
            table_hot_frac: 0.5,
            table_hot_bytes: 16 << 10,
            table_hot_base: None,
            mem_frac: 0.45,
            store_frac: 0.35,
            branch_frac: 0.22,
            branch_miss: 0.13, // Fig. 2: branch miss ratio exceeds 10 %
            realtime_frac: 0.0,
            ops,
            // Nginx event loop + HTTP/TLS paths: large instruction
            // footprint shared by all connections.
            segment: (0x10_0000, 96 << 10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_caps_at_400_streams() {
        assert_eq!(CdnConfig::paper().max_clients(), 400);
    }

    #[test]
    fn service_rate_saturates_at_nic_limit() {
        let c = CdnConfig::paper();
        let r200 = c.service_instr_rate(200);
        let r400 = c.service_instr_rate(400);
        let r800 = c.service_instr_rate(800);
        assert!(r400 > r200 * 1.9);
        assert_eq!(r400, r800, "beyond the NIC cap no extra work exists");
    }

    #[test]
    fn cpu_demand_is_far_below_capacity() {
        // The Fig. 2 observation: even at the NIC limit, the service work
        // is a small fraction of a 24-core × 2.2 GHz machine.
        let c = CdnConfig::paper();
        let demand = c.service_instr_rate(400);
        let capacity = 24.0 * 2.2e9 * 2.0; // cores × freq × modest IPC
        assert!(demand / capacity < 0.1, "utilization {}", demand / capacity);
    }

    #[test]
    fn connection_params_validate() {
        let p = CdnConfig::paper().connection_params(3, 0.001);
        p.validate();
        assert!(p.branch_miss > 0.10);
        assert!(p.scan_len > (1 << 20));
    }
}
