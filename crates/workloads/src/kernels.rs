//! Functional implementations of the six HTC benchmarks.
//!
//! These compute real answers — the reproduction's ground truth for what
//! each benchmark *does* — and are exercised by the examples and tests.
//! The timing models in [`crate::generator`] are parameterized from the
//! operation counts these kernels exhibit.

use std::collections::HashMap;

use smarco_sim::rng::SimRng;

/// Counts word occurrences (WordCount, from Phoenix++).
pub fn wordcount(text: &str) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for word in text.split_whitespace() {
        let w: String = word
            .chars()
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        if !w.is_empty() {
            *counts.entry(w).or_insert(0) += 1;
        }
    }
    counts
}

/// Sorts records by key (TeraSort). Returns the sorted keys.
pub fn terasort(mut keys: Vec<u64>) -> Vec<u64> {
    keys.sort_unstable();
    keys
}

/// Partitions keys into `buckets` contiguous ranges (the TeraSort shuffle
/// stage): bucket `i` receives keys in `[i*span, (i+1)*span)`.
pub fn terasort_partition(keys: &[u64], buckets: usize) -> Vec<Vec<u64>> {
    assert!(buckets > 0, "need at least one bucket");
    let span = (u64::MAX / buckets as u64).saturating_add(1);
    let mut out = vec![Vec::new(); buckets];
    for &k in keys {
        out[(k / span) as usize % buckets].push(k);
    }
    out
}

/// A tiny inverted-index search engine (Search, à la Xapian).
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<(u32, u32)>>, // term → (doc, tf)
    docs: u32,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed documents.
    pub fn len(&self) -> u32 {
        self.docs
    }

    /// Whether no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.docs == 0
    }

    /// Indexes a document, returning its id.
    pub fn add(&mut self, text: &str) -> u32 {
        let id = self.docs;
        self.docs += 1;
        for (term, tf) in wordcount(text) {
            self.postings.entry(term).or_default().push((id, tf as u32));
        }
        id
    }

    /// Conjunctive query scored by summed term frequency; returns
    /// `(doc, score)` sorted by descending score then doc id.
    pub fn query(&self, terms: &[&str]) -> Vec<(u32, u32)> {
        let mut scores: HashMap<u32, (u32, usize)> = HashMap::new();
        for term in terms {
            if let Some(list) = self.postings.get(&term.to_lowercase()) {
                for &(doc, tf) in list {
                    let e = scores.entry(doc).or_insert((0, 0));
                    e.0 += tf;
                    e.1 += 1;
                }
            }
        }
        let mut hits: Vec<(u32, u32)> = scores
            .into_iter()
            .filter(|&(_, (_, nterms))| nterms == terms.len())
            .map(|(doc, (score, _))| (doc, score))
            .collect();
        hits.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hits
    }
}

/// One Lloyd iteration of k-means over `points`; returns the new
/// centroids and assignments.
///
/// # Panics
///
/// Panics if `centroids` is empty or dimensions differ.
pub fn kmeans_step(points: &[Vec<f64>], centroids: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<usize>) {
    assert!(!centroids.is_empty(), "need at least one centroid");
    let dim = centroids[0].len();
    let mut assign = Vec::with_capacity(points.len());
    let mut sums = vec![vec![0.0; dim]; centroids.len()];
    let mut counts = vec![0u64; centroids.len()];
    for p in points {
        assert_eq!(p.len(), dim, "dimension mismatch");
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in centroids.iter().enumerate() {
            let d: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        assign.push(best);
        counts[best] += 1;
        for (s, v) in sums[best].iter_mut().zip(p) {
            *s += v;
        }
    }
    let new_centroids = sums
        .into_iter()
        .zip(&counts)
        .zip(centroids)
        .map(|((s, &n), old)| {
            if n == 0 {
                old.clone()
            } else {
                s.into_iter().map(|v| v / n as f64).collect()
            }
        })
        .collect();
    (new_centroids, assign)
}

/// Runs k-means to convergence (or `max_iters`); returns centroids.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(k > 0 && !points.is_empty(), "need points and k > 0");
    let mut rng = SimRng::new(seed);
    let mut centroids: Vec<Vec<f64>> = (0..k)
        .map(|_| points[rng.gen_index(points.len())].clone())
        .collect();
    for _ in 0..max_iters {
        let (next, _) = kmeans_step(points, &centroids);
        if next == centroids {
            break;
        }
        centroids = next;
    }
    centroids
}

/// KMP failure function.
pub fn kmp_table(pattern: &[u8]) -> Vec<usize> {
    let mut table = vec![0; pattern.len()];
    let mut k = 0;
    for i in 1..pattern.len() {
        while k > 0 && pattern[i] != pattern[k] {
            k = table[k - 1];
        }
        if pattern[i] == pattern[k] {
            k += 1;
        }
        table[i] = k;
    }
    table
}

/// KMP string search: returns all match start offsets.
pub fn kmp_search(text: &[u8], pattern: &[u8]) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    let table = kmp_table(pattern);
    let mut out = Vec::new();
    let mut k = 0;
    for (i, &c) in text.iter().enumerate() {
        while k > 0 && c != pattern[k] {
            k = table[k - 1];
        }
        if c == pattern[k] {
            k += 1;
        }
        if k == pattern.len() {
            out.push(i + 1 - k);
            k = table[k - 1];
        }
    }
    out
}

/// RNC event kinds (a governing element of the UMTS radio access network:
/// connection setup/teardown, handover decisions, paging — all with hard
/// deadlines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RncEvent {
    /// Radio-connection setup request.
    Setup {
        /// User equipment id.
        ue: u32,
    },
    /// Measurement report that may trigger a handover.
    Measurement {
        /// User equipment id.
        ue: u32,
        /// Received signal strength (arbitrary units).
        rssi: i32,
    },
    /// Connection release.
    Release {
        /// User equipment id.
        ue: u32,
    },
}

/// A minimal RNC: tracks connection state and decides handovers.
#[derive(Debug, Clone, Default)]
pub struct Rnc {
    connections: HashMap<u32, i32>,
    handovers: u64,
    rejected: u64,
}

impl Rnc {
    /// Creates an idle controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Active connection count.
    pub fn active(&self) -> usize {
        self.connections.len()
    }

    /// Handover decisions taken.
    pub fn handovers(&self) -> u64 {
        self.handovers
    }

    /// Events rejected (unknown UE).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Processes one event.
    pub fn handle(&mut self, ev: RncEvent) {
        match ev {
            RncEvent::Setup { ue } => {
                self.connections.insert(ue, 0);
            }
            RncEvent::Measurement { ue, rssi } => match self.connections.get_mut(&ue) {
                Some(prev) => {
                    // Hysteresis: hand over when signal drops sharply.
                    if rssi < *prev - 10 {
                        self.handovers += 1;
                    }
                    *prev = rssi;
                }
                None => self.rejected += 1,
            },
            RncEvent::Release { ue } => {
                if self.connections.remove(&ue).is_none() {
                    self.rejected += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordcount_counts() {
        let c = wordcount("the quick brown fox the LAZY the");
        assert_eq!(c["the"], 3);
        assert_eq!(c["lazy"], 1);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn wordcount_normalizes_punctuation() {
        let c = wordcount("Hello, hello! HELLO?");
        assert_eq!(c["hello"], 3);
    }

    #[test]
    fn terasort_sorts() {
        let mut rng = SimRng::new(1);
        let keys: Vec<u64> = (0..1000).map(|_| rng.next_u64()).collect();
        let sorted = terasort(keys.clone());
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sorted.len(), keys.len());
    }

    #[test]
    fn terasort_partition_covers_all_keys_in_range_order() {
        let mut rng = SimRng::new(2);
        let keys: Vec<u64> = (0..1000).map(|_| rng.next_u64()).collect();
        let parts = terasort_partition(&keys, 8);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1000);
        // Every key in bucket i is below every key in bucket i+1's range.
        let span = u64::MAX / 8 + 1;
        for (i, p) in parts.iter().enumerate() {
            for &k in p {
                assert_eq!((k / span) as usize, i);
            }
        }
    }

    #[test]
    fn search_conjunctive_query_ranks_by_tf() {
        let mut idx = InvertedIndex::new();
        let d0 = idx.add("rust systems programming rust");
        let d1 = idx.add("rust web programming");
        let _d2 = idx.add("cooking recipes");
        let hits = idx.query(&["rust", "programming"]);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, d0, "doc with tf=3 ranks first");
        assert_eq!(hits[1].0, d1);
        assert!(idx.query(&["rust", "recipes"]).is_empty(), "conjunction");
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let mut pts = Vec::new();
        let mut rng = SimRng::new(3);
        for _ in 0..50 {
            pts.push(vec![rng.gen_f64(), rng.gen_f64()]);
            pts.push(vec![10.0 + rng.gen_f64(), 10.0 + rng.gen_f64()]);
        }
        let cents = kmeans(&pts, 2, 50, 4);
        let near_origin = cents.iter().filter(|c| c[0] < 5.0).count();
        assert_eq!(near_origin, 1, "one centroid per blob: {cents:?}");
    }

    #[test]
    fn kmeans_step_empty_cluster_keeps_centroid() {
        let pts = vec![vec![0.0], vec![0.1]];
        let cents = vec![vec![0.0], vec![100.0]];
        let (next, assign) = kmeans_step(&pts, &cents);
        assert_eq!(assign, vec![0, 0]);
        assert_eq!(next[1], vec![100.0], "empty cluster unchanged");
    }

    #[test]
    fn kmp_finds_all_overlapping_matches() {
        let hits = kmp_search(b"aabaabaab", b"aab");
        assert_eq!(hits, vec![0, 3, 6]);
        let hits = kmp_search(b"aaaa", b"aa");
        assert_eq!(hits, vec![0, 1, 2]);
    }

    #[test]
    fn kmp_table_is_correct() {
        assert_eq!(kmp_table(b"abcabd"), vec![0, 0, 0, 1, 2, 0]);
        assert_eq!(kmp_table(b"aaaa"), vec![0, 1, 2, 3]);
    }

    #[test]
    fn kmp_edge_cases() {
        assert!(kmp_search(b"", b"x").is_empty());
        assert!(kmp_search(b"abc", b"").is_empty());
        assert!(kmp_search(b"ab", b"abc").is_empty());
        assert_eq!(kmp_search(b"x", b"x"), vec![0]);
    }

    #[test]
    fn rnc_connection_lifecycle() {
        let mut rnc = Rnc::new();
        rnc.handle(RncEvent::Setup { ue: 7 });
        assert_eq!(rnc.active(), 1);
        rnc.handle(RncEvent::Measurement { ue: 7, rssi: -5 });
        rnc.handle(RncEvent::Measurement { ue: 7, rssi: -30 });
        assert_eq!(rnc.handovers(), 1, "sharp drop triggers handover");
        rnc.handle(RncEvent::Release { ue: 7 });
        assert_eq!(rnc.active(), 0);
        rnc.handle(RncEvent::Release { ue: 7 });
        assert_eq!(rnc.rejected(), 1);
    }

    #[test]
    fn rnc_unknown_ue_rejected() {
        let mut rnc = Rnc::new();
        rnc.handle(RncEvent::Measurement { ue: 1, rssi: 0 });
        assert_eq!(rnc.rejected(), 1);
        assert_eq!(rnc.handovers(), 0);
    }
}
