//! The six HTC benchmarks as timing-model presets.
//!
//! Granularity mixes are calibrated to Fig. 8: KMP and RNC are dominated
//! by 1–2-byte accesses, WordCount/TeraSort/Search sit in the small-word
//! range, K-means is the outlier with mostly 8–32-byte vector accesses
//! ("K-means contains few 1 Byte or 2 Bytes memory access packets",
//! §4.2.2). Search carries the lowest memory-instruction fraction (the
//! §4.2.1 observation that it cannot exploit pairing as well). RNC is the
//! hard-real-time benchmark: a quarter of its accesses carry real-time
//! priority and bypass the MACT.

use smarco_isa::mix::{AddressModel, GranularityMix, OpMix};

use crate::generator::ThreadGenParams;

/// One of the paper's six HTC microbenchmarks.
///
/// # Examples
///
/// ```
/// use smarco_workloads::{Benchmark, HtcStream};
/// use smarco_isa::InstructionStream;
/// use smarco_sim::rng::SimRng;
///
/// // Thread 3 of a 64-thread team scanning a 16 MB slice.
/// let params = Benchmark::Kmp.thread_params(
///     0x100_0000, 16 << 20, 0x8000_0000, 3, 64, 1_000,
/// );
/// let mut stream = HtcStream::new(params, SimRng::new(7));
/// let mut n = 0;
/// while stream.next_instr().is_some() {
///     n += 1;
/// }
/// assert_eq!(n, 1_001); // requested ops + Exit
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Word frequency counting (Phoenix++ MapReduce).
    WordCount,
    /// Large-scale key sorting (Phoenix++ MapReduce).
    TeraSort,
    /// Web-search query serving (Xapian-style inverted index).
    Search,
    /// K-means clustering.
    KMeans,
    /// KMP string matching.
    Kmp,
    /// UMTS Radio Network Controller (hard real-time).
    Rnc,
}

/// Static per-benchmark behaviour profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchProfile {
    /// Fraction of instructions accessing memory.
    pub mem_frac: f64,
    /// Of memory accesses, fraction that are stores.
    pub store_frac: f64,
    /// Fraction of instructions that branch.
    pub branch_frac: f64,
    /// Branch misprediction probability.
    pub branch_miss: f64,
    /// Fraction of accesses with real-time priority.
    pub realtime_frac: f64,
    /// Fraction of accesses hitting the shared table.
    pub table_frac: f64,
    /// Of table accesses, fraction staying in the thread's hot window.
    pub table_hot_frac: f64,
    /// Per-thread hot-window size in bytes.
    pub table_hot_bytes: u64,
    /// Shared-table size in bytes.
    pub table_len: u64,
    /// Scan element stride in bytes (the benchmark's modal access size).
    pub scan_elem_bytes: u64,
    /// Consecutive stores per output-record emit.
    pub emit_run: u64,
    /// Instruction-segment size in bytes.
    pub segment_len: u64,
    /// Whether the scan is sequential (streaming) rather than random.
    pub streaming: bool,
}

impl Benchmark {
    /// All six, in the paper's order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::WordCount,
        Benchmark::TeraSort,
        Benchmark::Search,
        Benchmark::KMeans,
        Benchmark::Kmp,
        Benchmark::Rnc,
    ];

    /// Display name as the paper uses it.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::WordCount => "WordCount",
            Benchmark::TeraSort => "TeraSort",
            Benchmark::Search => "Search",
            Benchmark::KMeans => "K-means",
            Benchmark::Kmp => "KMP",
            Benchmark::Rnc => "RNC",
        }
    }

    /// Memory-access granularity distribution (Fig. 8 left).
    pub fn granularity(self) -> GranularityMix {
        // Weights for sizes [1, 2, 4, 8, 16, 32, 64].
        let w = match self {
            Benchmark::WordCount => [0.35, 0.30, 0.15, 0.15, 0.05, 0.0, 0.0],
            Benchmark::TeraSort => [0.05, 0.15, 0.30, 0.35, 0.10, 0.05, 0.0],
            Benchmark::Search => [0.10, 0.20, 0.30, 0.25, 0.10, 0.05, 0.0],
            Benchmark::KMeans => [0.0, 0.03, 0.12, 0.45, 0.25, 0.15, 0.0],
            Benchmark::Kmp => [0.55, 0.30, 0.10, 0.05, 0.0, 0.0, 0.0],
            Benchmark::Rnc => [0.30, 0.35, 0.25, 0.10, 0.0, 0.0, 0.0],
        };
        GranularityMix::new(w)
    }

    /// Behaviour profile.
    pub fn profile(self) -> BenchProfile {
        match self {
            Benchmark::WordCount => BenchProfile {
                mem_frac: 0.40,
                store_frac: 0.25,
                branch_frac: 0.15,
                branch_miss: 0.06,
                realtime_frac: 0.0,
                table_frac: 0.35,
                table_hot_frac: 0.90,
                table_hot_bytes: 4 << 10,
                table_len: 64 << 10,
                emit_run: 4,
                scan_elem_bytes: 2,
                segment_len: 8 << 10,
                streaming: true,
            },
            Benchmark::TeraSort => BenchProfile {
                mem_frac: 0.45,
                store_frac: 0.40,
                branch_frac: 0.12,
                branch_miss: 0.08,
                realtime_frac: 0.0,
                table_frac: 0.20,
                table_hot_frac: 0.90,
                table_hot_bytes: 4 << 10,
                table_len: 32 << 10,
                emit_run: 8,
                scan_elem_bytes: 8,
                segment_len: 6 << 10,
                streaming: true,
            },
            Benchmark::Search => BenchProfile {
                mem_frac: 0.22,
                store_frac: 0.10,
                branch_frac: 0.18,
                branch_miss: 0.05,
                realtime_frac: 0.0,
                table_frac: 0.50,
                table_hot_frac: 0.97,
                table_hot_bytes: 8 << 10,
                table_len: 256 << 10,
                emit_run: 2,
                scan_elem_bytes: 4,
                segment_len: 16 << 10,
                streaming: true,
            },
            Benchmark::KMeans => BenchProfile {
                mem_frac: 0.35,
                store_frac: 0.15,
                branch_frac: 0.08,
                branch_miss: 0.03,
                realtime_frac: 0.0,
                table_frac: 0.30,
                table_hot_frac: 0.92,
                table_hot_bytes: 2 << 10,
                table_len: 16 << 10,
                emit_run: 1,
                scan_elem_bytes: 16,
                segment_len: 4 << 10,
                streaming: true,
            },
            Benchmark::Kmp => BenchProfile {
                mem_frac: 0.45,
                store_frac: 0.02,
                branch_frac: 0.25,
                branch_miss: 0.07,
                realtime_frac: 0.0,
                table_frac: 0.15,
                table_hot_frac: 0.95,
                table_hot_bytes: 1 << 10,
                table_len: 4 << 10,
                emit_run: 2,
                scan_elem_bytes: 1,
                segment_len: 2 << 10,
                streaming: true,
            },
            Benchmark::Rnc => BenchProfile {
                mem_frac: 0.40,
                store_frac: 0.30,
                branch_frac: 0.20,
                branch_miss: 0.08,
                realtime_frac: 0.25,
                table_frac: 0.60,
                table_hot_frac: 0.88,
                table_hot_bytes: 4 << 10,
                table_len: 128 << 10,
                emit_run: 4,
                scan_elem_bytes: 2,
                segment_len: 8 << 10,
                streaming: false,
            },
        }
    }

    /// Structured generator parameters for one worker thread.
    ///
    /// `scan_base`/`scan_len` is the team's data slice, `table_base` the
    /// team's shared table; `thread_index`/`team_size` interleave the scan
    /// across the team as the MapReduce runtime slices data.
    pub fn thread_params(
        self,
        scan_base: u64,
        scan_len: u64,
        table_base: u64,
        thread_index: u64,
        team_size: u64,
        ops: u64,
    ) -> ThreadGenParams {
        let p = self.profile();
        ThreadGenParams {
            scan_base,
            scan_len,
            thread_index,
            team_size,
            scan_elem_bytes: p.scan_elem_bytes,
            emit_run: p.emit_run,
            // Private output buffer past the team's scan region.
            out_base: scan_base + scan_len + thread_index * (256 << 10),
            out_len: 256 << 10,
            granularity: self.granularity(),
            table_base,
            table_len: p.table_len,
            table_frac: p.table_frac,
            table_hot_frac: p.table_hot_frac,
            table_hot_bytes: p.table_hot_bytes,
            table_hot_base: None,
            mem_frac: p.mem_frac,
            store_frac: p.store_frac,
            branch_frac: p.branch_frac,
            branch_miss: p.branch_miss,
            realtime_frac: p.realtime_frac,
            ops,
            segment: (0x1_0000, p.segment_len),
        }
    }

    /// Statistical mix for the conventional baseline (same behaviour, flat
    /// address model: the baseline has no SPM or team interleaving).
    pub fn mix(self, base: u64, working_set: u64) -> OpMix {
        let p = self.profile();
        let addresses = if p.streaming {
            AddressModel::streaming(base, working_set)
        } else {
            AddressModel::random(base, working_set)
        };
        OpMix {
            mem_frac: p.mem_frac,
            load_frac: 1.0 - p.store_frac,
            branch_frac: p.branch_frac,
            branch_miss: p.branch_miss,
            realtime_frac: p.realtime_frac,
            granularity: self.granularity(),
            addresses,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_shapes_match_fig8() {
        // KMP and RNC dominated by ≤2-byte accesses.
        assert!(Benchmark::Kmp.granularity().fraction_le(2) > 0.8);
        assert!(Benchmark::Rnc.granularity().fraction_le(2) > 0.6);
        // K-means has almost no tiny accesses.
        assert!(Benchmark::KMeans.granularity().fraction_le(2) < 0.05);
        // Everyone's mean is far below the 64-byte line.
        for b in Benchmark::ALL {
            assert!(b.granularity().mean_bytes() < 24.0, "{b}");
        }
    }

    #[test]
    fn search_has_lowest_memory_fraction() {
        let search = Benchmark::Search.profile().mem_frac;
        for b in Benchmark::ALL {
            if b != Benchmark::Search {
                assert!(b.profile().mem_frac > search, "{b}");
            }
        }
    }

    #[test]
    fn only_rnc_is_realtime() {
        for b in Benchmark::ALL {
            let rt = b.profile().realtime_frac;
            if b == Benchmark::Rnc {
                assert!(rt > 0.0);
            } else {
                assert_eq!(rt, 0.0, "{b}");
            }
        }
    }

    #[test]
    fn thread_params_validate_for_all() {
        for b in Benchmark::ALL {
            let p = b.thread_params(0x100_0000, 1 << 20, 0x800_0000, 3, 64, 10_000);
            p.validate();
            assert_eq!(p.granularity, b.granularity());
        }
    }

    #[test]
    fn mixes_validate_for_all() {
        for b in Benchmark::ALL {
            b.mix(0x10_0000, 1 << 22).validate();
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Benchmark::KMeans.name(), "K-means");
        assert_eq!(Benchmark::Kmp.to_string(), "KMP");
        assert_eq!(Benchmark::ALL.len(), 6);
    }
}
