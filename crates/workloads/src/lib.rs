//! Workloads for the SmarCo reproduction (§4.1).
//!
//! The paper evaluates six microbenchmarks extracted from HTC
//! applications: **WordCount** and **TeraSort** (Phoenix++ MapReduce),
//! **Search** (Xapian), **K-means**, **KMP** string matching, and **RNC**
//! (the UMTS Radio Network Controller, a hard-real-time workload). Each
//! exists here in two forms:
//!
//! * a **functional kernel** ([`kernels`]) — real Rust code computing real
//!   answers, used for correctness tests and for deriving instruction/
//!   memory-mix parameters;
//! * a **thread-stream generator** ([`generator`], parameterized per
//!   benchmark by [`bench::Benchmark`]) — the timing model's view: an
//!   instruction stream whose memory-access granularity distribution
//!   matches Fig. 8 and whose address pattern (interleaved slice scans +
//!   shared tables) matches how the MapReduce runtime lays data out.
//!
//! [`splash`] supplies SPLASH2-like conventional mixes (Fig. 8 right) and
//! [`cdn`] the Nginx/CDN service model behind Fig. 2.

#![warn(missing_docs)]

pub mod bench;
pub mod cdn;
pub mod generator;
pub mod kernels;
pub mod splash;

pub use bench::Benchmark;
pub use generator::{HtcStream, ThreadGenParams};
