//! The structured HTC thread-stream generator.
//!
//! One configurable generator covers all six benchmarks: HTC kernels share
//! a common shape — scan your slice of the input (interleaved with the
//! other threads of the sub-ring, the MapReduce layout), consult shared
//! tables (pattern tables, centroids, hash buckets, connection state),
//! compute a little, branch a lot. The per-benchmark presets in
//! [`crate::bench`] differ in the access-granularity mix (Fig. 8), the
//! memory intensity, the table behaviour and the real-time fraction.

use smarco_isa::mix::GranularityMix;
use smarco_isa::op::{Instr, MemRef, Op, Priority, INSTR_BYTES};
use smarco_isa::stream::InstructionStream;
use smarco_sim::rng::SimRng;

/// Parameters of one HTC worker thread's stream.
#[derive(Debug, Clone)]
pub struct ThreadGenParams {
    /// Base address of the region this thread's *team* scans together.
    pub scan_base: u64,
    /// Length of the team's region in bytes.
    pub scan_len: u64,
    /// This thread's index within the team (interleaving offset).
    pub thread_index: u64,
    /// Team size (interleaving stride multiplier).
    pub team_size: u64,
    /// Byte stride between consecutive scan elements (typically the
    /// benchmark's modal access size); the whole team walks element
    /// indices `i × team + j`, so neighbouring threads touch neighbouring
    /// bytes — the cross-core spatial locality the MACT merges.
    pub scan_elem_bytes: u64,
    /// Access-size distribution for scan accesses.
    pub granularity: GranularityMix,
    /// Base address of a shared table (pattern/centroids/hash buckets).
    pub table_base: u64,
    /// Table length in bytes.
    pub table_len: u64,
    /// Probability a memory access targets the table instead of the scan.
    pub table_frac: f64,
    /// Probability a table access stays in the thread's hot window (the
    /// temporal locality real kernels exhibit on their working buckets).
    pub table_hot_frac: f64,
    /// Hot-window size in bytes (windows are per-thread, so co-resident
    /// threads contend for cache capacity as thread count grows).
    pub table_hot_bytes: u64,
    /// Overrides the hot window's location (e.g. staged into the thread's
    /// SPM share by the MapReduce runtime). `None` places it inside the
    /// table at a per-thread offset.
    pub table_hot_base: Option<u64>,
    /// Fraction of instructions that access memory.
    pub mem_frac: f64,
    /// Of memory accesses, fraction that are stores.
    pub store_frac: f64,
    /// Fraction of instructions that are branches.
    pub branch_frac: f64,
    /// Branch misprediction probability.
    pub branch_miss: f64,
    /// Fraction of memory accesses carrying real-time priority.
    pub realtime_frac: f64,
    /// Stores arrive in runs of this many consecutive writes to the
    /// thread's contiguous output buffer (a MapReduce emit writes a whole
    /// record: key, value, count, …). Runs of small stores land in the
    /// same 64-byte region within a few cycles — prime MACT fodder.
    pub emit_run: u64,
    /// Base address of this thread's private output buffer.
    pub out_base: u64,
    /// Output buffer length in bytes (the cursor wraps).
    pub out_len: u64,
    /// Dynamic instructions to emit (before the implicit `Exit`).
    pub ops: u64,
    /// Instruction-segment `(base, bytes)`; shared across the team so the
    /// cores can prefetch it (§3.1.2).
    pub segment: (u64, u64),
}

impl ThreadGenParams {
    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics when fractions leave `[0, 1]`, regions are empty, or the
    /// team is inconsistent.
    pub fn validate(&self) {
        for (n, v) in [
            ("table_frac", self.table_frac),
            ("table_hot_frac", self.table_hot_frac),
            ("mem_frac", self.mem_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("branch_miss", self.branch_miss),
            ("realtime_frac", self.realtime_frac),
        ] {
            assert!((0.0..=1.0).contains(&v), "{n} = {v} outside [0, 1]");
        }
        assert!(
            self.mem_frac + self.branch_frac <= 1.0,
            "instruction classes exceed 1"
        );
        assert!(
            self.scan_len > 0 && self.table_len > 0,
            "regions must be non-empty"
        );
        assert!(
            self.scan_elem_bytes > 0,
            "scan element stride must be positive"
        );
        assert!(self.emit_run > 0, "emit run must be positive");
        assert!(self.out_len >= 64, "output buffer too small");
        assert!(
            self.team_size > 0 && self.thread_index < self.team_size,
            "bad team"
        );
        assert!(self.ops > 0, "ops must be positive");
        assert!(
            self.segment.1 > 0 && self.segment.1.is_multiple_of(INSTR_BYTES),
            "bad segment"
        );
    }
}

/// The generator stream.
///
/// Two random streams drive it: the **class** stream (instruction kinds,
/// access sizes) is seeded identically for every thread with the same
/// parameters — a team runs the *same code*, so teammates issue the same
/// instruction sequence and stay naturally in lockstep, which is what
/// gives the MACT its cross-core merging window. The **data** stream
/// (table addresses, branch outcomes) is the caller's per-thread seed —
/// where real threads genuinely diverge.
#[derive(Debug)]
pub struct HtcStream {
    p: ThreadGenParams,
    /// Per-thread randomness (table addresses, branch outcomes).
    rng: SimRng,
    /// Team-uniform randomness (instruction classes, access sizes).
    class_rng: SimRng,
    /// Scan iteration counter (drives the interleaved address).
    i: u64,
    /// Output-buffer cursor (bytes written so far, wraps in `out_len`).
    out_cursor: u64,
    /// Stores left in the current emit run.
    pending_emits: u64,
    remaining: u64,
    exited: bool,
    pc: u64,
}

impl HtcStream {
    /// Creates a stream.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid.
    pub fn new(p: ThreadGenParams, rng: SimRng) -> Self {
        p.validate();
        let pc = p.segment.0;
        let remaining = p.ops;
        // Same program ⇒ same class sequence: seed from the shared shape,
        // not the thread.
        let class_seed = 0xC1A5_5EED ^ p.ops ^ p.scan_base ^ p.segment.1;
        Self {
            p,
            rng,
            class_rng: SimRng::new(class_seed),
            i: 0,
            out_cursor: 0,
            pending_emits: 0,
            remaining,
            exited: false,
            pc,
        }
    }

    fn scan_ref(&mut self, bytes: u8) -> MemRef {
        // Interleaved team scan: iteration i of thread j touches element
        // (i * team + j) at a fixed element stride; the access width is
        // sampled independently and the address aligned to it (so no
        // access straddles a 64-byte collection line).
        let elem = self.p.scan_elem_bytes;
        let idx = self.i * self.p.team_size + self.p.thread_index;
        self.i += 1;
        let span = (self.p.scan_len / elem).max(1);
        let mut addr = self.p.scan_base + (idx % span) * elem;
        addr -= addr % u64::from(bytes);
        // Keep the access inside the region.
        let last = self.p.scan_base + self.p.scan_len;
        if addr + u64::from(bytes) > last {
            addr = last - u64::from(bytes);
            addr -= addr % u64::from(bytes);
        }
        MemRef::new(addr, bytes)
    }

    fn table_ref(&mut self, bytes: u8) -> MemRef {
        let stride = u64::from(bytes);
        if self.p.table_hot_bytes >= stride && self.rng.chance(self.p.table_hot_frac) {
            let hot = self.p.table_hot_bytes;
            match self.p.table_hot_base {
                // Relocated window (e.g. SPM-staged): per-thread already.
                Some(base) => {
                    let span = (hot / stride).max(1);
                    let addr = base + self.rng.gen_range(span) * stride;
                    return MemRef::new(addr, bytes);
                }
                // Per-thread hot window wrapped into the table.
                None => {
                    let window_base =
                        self.p.table_base + (self.p.thread_index * hot) % self.p.table_len.max(1);
                    let span = (hot / stride).max(1);
                    let addr = window_base + self.rng.gen_range(span) * stride;
                    // Clamp inside the table.
                    let max = self.p.table_base + self.p.table_len - stride;
                    return MemRef::new(addr.min(max) - addr.min(max) % stride, bytes);
                }
            }
        }
        let span = (self.p.table_len / stride).max(1);
        let addr = self.p.table_base + self.rng.gen_range(span) * stride;
        MemRef::new(addr, bytes)
    }

    fn emit_store(&mut self, bytes: u8) -> Op {
        // Contiguous append to the thread's private output buffer,
        // aligning the cursor up to the field width.
        let w = u64::from(bytes);
        let mut at = self.out_cursor;
        if !at.is_multiple_of(w) {
            at += w - at % w;
        }
        if at + w > self.p.out_len {
            at = 0;
        }
        self.out_cursor = at + w;
        Op::Store(MemRef::new(self.p.out_base + at, bytes))
    }

    fn next_op(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.pending_emits > 0 {
            self.pending_emits -= 1;
            let bytes = self.p.granularity.sample(&mut self.class_rng);
            return Some(self.emit_store(bytes));
        }
        let roll = self.class_rng.gen_f64();
        Some(if roll < self.p.mem_frac {
            let bytes = self.p.granularity.sample(&mut self.class_rng);
            let is_table = self.class_rng.chance(self.p.table_frac);
            let rt = self.class_rng.chance(self.p.realtime_frac);
            let is_store = self.class_rng.chance(self.p.store_frac);
            if is_store {
                // Start an emit run: this store plus `emit_run - 1` more.
                self.pending_emits = self.p.emit_run - 1;
                return Some(self.emit_store(bytes));
            }
            let mut m = if is_table {
                self.table_ref(bytes)
            } else {
                self.scan_ref(bytes)
            };
            if rt {
                m.priority = Priority::Realtime;
            }
            Op::Load(m)
        } else if roll < self.p.mem_frac + self.p.branch_frac {
            Op::Branch {
                mispredicted: self.rng.chance(self.p.branch_miss),
            }
        } else {
            Op::compute()
        })
    }
}

impl InstructionStream for HtcStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.exited {
            return None;
        }
        let op = match self.next_op() {
            Some(op) => op,
            None => {
                self.exited = true;
                Op::Exit
            }
        };
        let pc = self.pc;
        self.pc += INSTR_BYTES;
        let (base, bytes) = self.p.segment;
        if self.pc >= base + bytes {
            self.pc = base;
        }
        Some(Instr { pc, op })
    }

    fn segment(&self) -> Option<(u64, u64)> {
        Some(self.p.segment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ThreadGenParams {
        ThreadGenParams {
            scan_base: 0x10_0000,
            scan_len: 1 << 20,
            thread_index: 3,
            team_size: 16,
            scan_elem_bytes: 2,
            emit_run: 1,
            out_base: 0x90_0000,
            out_len: 64 << 10,
            granularity: GranularityMix::new([0.5, 0.3, 0.1, 0.1, 0.0, 0.0, 0.0]),
            table_base: 0x80_0000,
            table_len: 4096,
            table_frac: 0.2,
            table_hot_frac: 0.0,
            table_hot_bytes: 1 << 10,
            table_hot_base: None,
            mem_frac: 0.4,
            store_frac: 0.3,
            branch_frac: 0.15,
            branch_miss: 0.05,
            realtime_frac: 0.0,
            ops: 10_000,
            segment: (0x1000, 2048),
        }
    }

    fn drain(mut s: HtcStream) -> Vec<Op> {
        std::iter::from_fn(move || s.next_instr())
            .map(|i| i.op)
            .collect()
    }

    #[test]
    fn emits_requested_ops_plus_exit() {
        let ops = drain(HtcStream::new(params(), SimRng::new(1)));
        assert_eq!(ops.len(), 10_001);
        assert_eq!(*ops.last().unwrap(), Op::Exit);
    }

    #[test]
    fn scan_addresses_interleave_by_team() {
        let mut p = params();
        p.mem_frac = 1.0;
        p.table_frac = 0.0;
        p.store_frac = 0.0;
        p.branch_frac = 0.0;
        p.granularity = GranularityMix::new([0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]); // all 2 B
        let ops = drain(HtcStream::new(p.clone(), SimRng::new(2)));
        let addrs: Vec<u64> = ops.iter().filter_map(Op::mem_ref).map(|m| m.addr).collect();
        // Thread 3 of 16 with 2-byte grain: addresses base + (16i + 3) * 2.
        assert_eq!(addrs[0], p.scan_base + 3 * 2);
        assert_eq!(addrs[1], p.scan_base + (16 + 3) * 2);
        assert_eq!(addrs[2], p.scan_base + (32 + 3) * 2);
    }

    #[test]
    fn table_loads_stay_in_table_and_stores_in_output() {
        let mut p = params();
        p.mem_frac = 1.0;
        p.table_frac = 1.0;
        p.branch_frac = 0.0;
        let ops = drain(HtcStream::new(p.clone(), SimRng::new(3)));
        for op in &ops {
            match op {
                Op::Load(m) => {
                    assert!(m.addr >= p.table_base);
                    assert!(m.end() <= p.table_base + p.table_len);
                }
                Op::Store(m) => {
                    assert!(m.addr >= p.out_base);
                    assert!(m.end() <= p.out_base + p.out_len);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn emit_runs_write_contiguously() {
        let mut p = params();
        p.mem_frac = 1.0;
        p.store_frac = 1.0;
        p.branch_frac = 0.0;
        p.emit_run = 4;
        let ops = drain(HtcStream::new(p.clone(), SimRng::new(9)));
        let stores: Vec<MemRef> = ops
            .iter()
            .filter_map(|o| if let Op::Store(m) = o { Some(*m) } else { None })
            .collect();
        assert!(stores.len() > 100);
        // Consecutive stores advance the cursor monotonically (mod wrap).
        let mut non_monotone = 0;
        for w in stores.windows(2) {
            if w[1].addr < w[0].addr {
                non_monotone += 1;
            }
        }
        // Only buffer wraps break monotonicity.
        assert!(
            non_monotone <= 1 + stores.len() / 1000,
            "{non_monotone} breaks"
        );
    }

    #[test]
    fn class_fractions_match() {
        let ops = drain(HtcStream::new(params(), SimRng::new(4)));
        let n = ops.len() as f64;
        let mem = ops.iter().filter(|o| o.is_mem()).count() as f64 / n;
        let br = ops
            .iter()
            .filter(|o| matches!(o, Op::Branch { .. }))
            .count() as f64
            / n;
        assert!((mem - 0.4).abs() < 0.03, "mem {mem}");
        assert!((br - 0.15).abs() < 0.02, "branch {br}");
    }

    #[test]
    fn realtime_fraction_applied_to_loads() {
        let mut p = params();
        p.realtime_frac = 0.5;
        let ops = drain(HtcStream::new(p, SimRng::new(5)));
        // Real-time priority applies to read requests (stores drain
        // through the non-blocking output path).
        let loads: Vec<MemRef> = ops
            .iter()
            .filter_map(|o| if let Op::Load(m) = o { Some(*m) } else { None })
            .collect();
        let rt = loads
            .iter()
            .filter(|m| m.priority == Priority::Realtime)
            .count() as f64
            / loads.len() as f64;
        assert!((rt - 0.5).abs() < 0.06, "rt fraction {rt}");
    }

    #[test]
    fn segment_reported_and_pcs_wrap() {
        let s = HtcStream::new(params(), SimRng::new(6));
        assert_eq!(s.segment(), Some((0x1000, 2048)));
        let mut s = s;
        for _ in 0..2000 {
            if let Some(i) = s.next_instr() {
                assert!((0x1000..0x1000 + 2048).contains(&i.pc));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = drain(HtcStream::new(params(), SimRng::new(7)));
        let b = drain(HtcStream::new(params(), SimRng::new(7)));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_params_rejected() {
        let mut p = params();
        p.table_frac = 2.0;
        let _ = HtcStream::new(p, SimRng::new(0));
    }
}
