//! Conventional (SPLASH2-like) workload mixes — Fig. 8's right panel.
//!
//! The paper contrasts HTC granularity against eleven SPLASH2
//! applications: scientific kernels move data in cache-line-sized and
//! larger chunks. We model a representative subset with granularity mixes
//! skewed toward 16–64-byte accesses and conventional locality.

use smarco_isa::mix::{AddressModel, GranularityMix, OpMix};

/// A conventional scientific workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplashApp {
    /// Hierarchical N-body simulation.
    Barnes,
    /// Complex 1-D FFT.
    Fft,
    /// Blocked dense LU factorization.
    Lu,
    /// Ocean current simulation (regular grids).
    Ocean,
    /// Radix sort.
    Radix,
    /// Water molecule dynamics.
    Water,
}

impl SplashApp {
    /// A representative subset of the eleven the paper plots.
    pub const ALL: [SplashApp; 6] = [
        SplashApp::Barnes,
        SplashApp::Fft,
        SplashApp::Lu,
        SplashApp::Ocean,
        SplashApp::Radix,
        SplashApp::Water,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SplashApp::Barnes => "Barnes",
            SplashApp::Fft => "FFT",
            SplashApp::Lu => "LU",
            SplashApp::Ocean => "Ocean",
            SplashApp::Radix => "Radix",
            SplashApp::Water => "Water",
        }
    }

    /// Granularity mix (weights for `[1, 2, 4, 8, 16, 32, 64]`): dominated
    /// by double-precision words, vectors and cache-line moves.
    pub fn granularity(self) -> GranularityMix {
        let w = match self {
            SplashApp::Barnes => [0.0, 0.0, 0.05, 0.35, 0.30, 0.20, 0.10],
            SplashApp::Fft => [0.0, 0.0, 0.0, 0.30, 0.35, 0.20, 0.15],
            SplashApp::Lu => [0.0, 0.0, 0.0, 0.40, 0.30, 0.20, 0.10],
            SplashApp::Ocean => [0.0, 0.0, 0.05, 0.35, 0.25, 0.20, 0.15],
            SplashApp::Radix => [0.0, 0.0, 0.10, 0.35, 0.30, 0.15, 0.10],
            SplashApp::Water => [0.0, 0.0, 0.05, 0.45, 0.30, 0.15, 0.05],
        };
        GranularityMix::new(w)
    }

    /// Statistical mix for running on either machine model.
    pub fn mix(self, base: u64, working_set: u64) -> OpMix {
        OpMix {
            mem_frac: 0.35,
            load_frac: 0.65,
            branch_frac: 0.1,
            branch_miss: 0.02,
            realtime_frac: 0.0,
            granularity: self.granularity(),
            addresses: AddressModel::streaming(base, working_set),
        }
    }
}

impl std::fmt::Display for SplashApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::Benchmark;

    #[test]
    fn conventional_granularity_is_coarser_than_htc() {
        // The Fig. 8 contrast: every SPLASH2-like app's mean access size
        // exceeds every HTC benchmark's.
        let max_htc = Benchmark::ALL
            .iter()
            .map(|b| b.granularity().mean_bytes())
            .fold(0.0f64, f64::max);
        for app in SplashApp::ALL {
            assert!(
                app.granularity().mean_bytes() > max_htc,
                "{app} mean {} vs max HTC {max_htc}",
                app.granularity().mean_bytes()
            );
        }
    }

    #[test]
    fn tiny_accesses_absent() {
        for app in SplashApp::ALL {
            assert!(app.granularity().fraction_le(2) < 0.06, "{app}");
        }
    }

    #[test]
    fn mixes_validate() {
        for app in SplashApp::ALL {
            app.mix(0x10_0000, 1 << 24).validate();
        }
    }
}
