//! Randomized (deterministically seeded) tests cross-validating the
//! functional kernels against naive reference implementations. Inputs come
//! from [`SimRng`] with fixed seeds so every run covers the same cases.

use smarco_sim::rng::SimRng;
use smarco_workloads::kernels::{
    kmeans_step, kmp_search, terasort, terasort_partition, wordcount, Rnc, RncEvent,
};

const TRIALS: u64 = 64;

/// Naive quadratic substring search, the reference for KMP.
fn naive_search(text: &[u8], pattern: &[u8]) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    (0..=text.len() - pattern.len())
        .filter(|&i| &text[i..i + pattern.len()] == pattern)
        .collect()
}

fn abc_string(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_index(max_len + 1);
    (0..len).map(|_| b"abc"[rng.gen_index(3)]).collect()
}

#[test]
fn kmp_matches_naive_search() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x004b_4d50 + trial);
        let text = abc_string(&mut rng, 199);
        let pattern = abc_string(&mut rng, 7);
        assert_eq!(
            kmp_search(&text, &pattern),
            naive_search(&text, &pattern),
            "trial {trial}"
        );
    }
}

#[test]
fn terasort_is_a_sorted_permutation() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x5445_5241 + trial);
        let keys: Vec<u64> = (0..rng.gen_index(300)).map(|_| rng.next_u64()).collect();
        let sorted = terasort(keys.clone());
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "trial {trial}");
        let mut a = keys;
        a.sort_unstable();
        assert_eq!(sorted, a, "trial {trial}");
    }
}

#[test]
fn terasort_partitions_conserve_and_order() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x5041_5254 + trial);
        let keys: Vec<u64> = (0..rng.gen_index(300)).map(|_| rng.next_u64()).collect();
        let buckets = 1 + rng.gen_index(15);
        let parts = terasort_partition(&keys, buckets);
        assert_eq!(parts.len(), buckets, "trial {trial}");
        assert_eq!(
            parts.iter().map(Vec::len).sum::<usize>(),
            keys.len(),
            "trial {trial}"
        );
        // Concatenating per-bucket sorted keys yields the global sort.
        let mut concat = Vec::new();
        for p in parts {
            let mut p = p;
            p.sort_unstable();
            concat.extend(p);
        }
        assert!(concat.windows(2).all(|w| w[0] <= w[1]), "trial {trial}");
    }
}

#[test]
fn wordcount_total_matches_token_count() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x574f_5244 + trial);
        let words: Vec<String> = (0..rng.gen_index(80))
            .map(|_| {
                let len = 1 + rng.gen_index(6);
                (0..len)
                    .map(|_| char::from(b'a' + rng.gen_range(26) as u8))
                    .collect()
            })
            .collect();
        let text = words.join(" ");
        let counts = wordcount(&text);
        let total: u64 = counts.values().sum();
        assert_eq!(total as usize, words.len(), "trial {trial}");
        for w in &words {
            assert!(counts[w] >= 1, "trial {trial}");
        }
    }
}

#[test]
fn kmeans_step_never_increases_distortion() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x4b4d_4541 + trial);
        let dim = 2 + rng.gen_index(2);
        let n = 4 + rng.gen_index(36);
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_f64() * 200.0 - 100.0).collect())
            .collect();
        let k = 1 + rng.gen_index(3);
        let centroids: Vec<Vec<f64>> = (0..k).map(|i| points[i % points.len()].clone()).collect();
        let distortion = |cents: &[Vec<f64>]| -> f64 {
            points
                .iter()
                .map(|p| {
                    cents
                        .iter()
                        .map(|c| p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum::<f64>())
                        .fold(f64::INFINITY, f64::min)
                })
                .sum()
        };
        let before = distortion(&centroids);
        let (next, assign) = kmeans_step(&points, &centroids);
        let after = distortion(&next);
        assert!(
            after <= before + 1e-6,
            "trial {trial}: distortion {before} -> {after}"
        );
        assert_eq!(assign.len(), points.len(), "trial {trial}");
        assert!(assign.iter().all(|&a| a < k), "trial {trial}");
    }
}

#[test]
fn rnc_active_count_is_setup_minus_release() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x0052_4e43 + trial);
        let events = rng.gen_index(200);
        let mut rnc = Rnc::new();
        let mut live = std::collections::HashSet::new();
        for _ in 0..events {
            let ue = rng.gen_range(8) as u32;
            match rng.gen_range(3) {
                0 => {
                    rnc.handle(RncEvent::Setup { ue });
                    live.insert(ue);
                }
                1 => {
                    let rssi = rng.gen_range(100) as i32 - 50;
                    rnc.handle(RncEvent::Measurement { ue, rssi });
                }
                _ => {
                    rnc.handle(RncEvent::Release { ue });
                    live.remove(&ue);
                }
            }
        }
        assert_eq!(rnc.active(), live.len(), "trial {trial}");
    }
}
