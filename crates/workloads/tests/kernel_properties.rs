//! Property tests cross-validating the functional kernels against naive
//! reference implementations.

use proptest::prelude::*;

use smarco_workloads::kernels::{
    kmeans_step, kmp_search, terasort, terasort_partition, wordcount, Rnc, RncEvent,
};

/// Naive quadratic substring search, the reference for KMP.
fn naive_search(text: &[u8], pattern: &[u8]) -> Vec<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return Vec::new();
    }
    (0..=text.len() - pattern.len())
        .filter(|&i| &text[i..i + pattern.len()] == pattern)
        .collect()
}

proptest! {
    #[test]
    fn kmp_matches_naive_search(
        text in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 0..200),
        pattern in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 0..8),
    ) {
        prop_assert_eq!(kmp_search(&text, &pattern), naive_search(&text, &pattern));
    }

    #[test]
    fn terasort_is_a_sorted_permutation(keys in prop::collection::vec(any::<u64>(), 0..300)) {
        let sorted = terasort(keys.clone());
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut a = keys;
        a.sort_unstable();
        prop_assert_eq!(sorted, a);
    }

    #[test]
    fn terasort_partitions_conserve_and_order(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        buckets in 1usize..16,
    ) {
        let parts = terasort_partition(&keys, buckets);
        prop_assert_eq!(parts.len(), buckets);
        prop_assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), keys.len());
        // Concatenating per-bucket sorted keys yields the global sort.
        let mut concat = Vec::new();
        for p in parts {
            let mut p = p;
            p.sort_unstable();
            concat.extend(p);
        }
        prop_assert!(concat.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn wordcount_total_matches_token_count(words in prop::collection::vec("[a-z]{1,6}", 0..80)) {
        let text = words.join(" ");
        let counts = wordcount(&text);
        let total: u64 = counts.values().sum();
        prop_assert_eq!(total as usize, words.len());
        for w in &words {
            prop_assert!(counts[w] >= 1);
        }
    }

    #[test]
    fn kmeans_step_never_increases_distortion(
        pts in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 2..4), 4..40),
        k in 1usize..4,
    ) {
        // All points share the dimension of the first.
        let dim = pts[0].len();
        let points: Vec<Vec<f64>> =
            pts.into_iter().map(|mut p| { p.resize(dim, 0.0); p }).collect();
        let centroids: Vec<Vec<f64>> =
            (0..k).map(|i| points[i % points.len()].clone()).collect();
        let distortion = |cents: &[Vec<f64>]| -> f64 {
            points
                .iter()
                .map(|p| {
                    cents
                        .iter()
                        .map(|c| p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum::<f64>())
                        .fold(f64::INFINITY, f64::min)
                })
                .sum()
        };
        let before = distortion(&centroids);
        let (next, assign) = kmeans_step(&points, &centroids);
        let after = distortion(&next);
        prop_assert!(after <= before + 1e-6, "distortion {before} -> {after}");
        prop_assert_eq!(assign.len(), points.len());
        prop_assert!(assign.iter().all(|&a| a < k));
    }

    #[test]
    fn rnc_active_count_is_setup_minus_release(
        events in prop::collection::vec((0u8..3, 0u32..8, -50i32..50), 0..200),
    ) {
        let mut rnc = Rnc::new();
        let mut live = std::collections::HashSet::new();
        for (kind, ue, rssi) in events {
            match kind {
                0 => {
                    rnc.handle(RncEvent::Setup { ue });
                    live.insert(ue);
                }
                1 => rnc.handle(RncEvent::Measurement { ue, rssi }),
                _ => {
                    rnc.handle(RncEvent::Release { ue });
                    live.remove(&ue);
                }
            }
        }
        prop_assert_eq!(rnc.active(), live.len());
    }
}
