//! Rack-scale serving sweep: balancing policies × offered-load points
//! on a multi-chip cluster, writing `BENCH_rack.json`.
//!
//! ```text
//! cargo run --release -p smarco-bench --bin rack
//! cargo run --release -p smarco-bench --bin rack -- --scale paper --chips 8
//! cargo run --release -p smarco-bench --bin rack -- --parallel 4 --faults 42
//! cargo run --release -p smarco-bench --bin rack -- --smoke
//! ```
//!
//! Flags (parsed by [`smarco_bench::BenchArgs`]):
//!
//! * `--scale quick|paper` — 3 vs 6 load points, 150 vs 1500 requests;
//! * `--chips N` — cluster size (default 4);
//! * `--parallel N` — PDES workers driving the chip shards (results are
//!   bit-identical for any N);
//! * `--faults <seed>` — inject a chaos fault plan into chip 0 and
//!   measure the degraded rack;
//! * `--json <path>` — where to write the report (default
//!   `BENCH_rack.json`);
//! * `--smoke` — CI mode: a 2-chip rack serves a short stream, the
//!   binary asserts it drains with a non-empty latency histogram and
//!   exits 0 without writing a report.

use smarco_bench::{harness, rack, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    if args.smoke {
        let report = harness::or_exit(rack::smoke());
        println!(
            "rack smoke ok: {} requests served on 2 chips, p50 {:.0} / p99 {:.0} cycles",
            report.completed,
            report.latency.p50(),
            report.latency.p99(),
        );
        return;
    }
    let report = rack::sweep(args.scale, args.chips, args.parallel, args.faults);
    print!("{report}");
    let path = match args.json {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            harness::or_exit(report.write(&path));
            path
        }
        None => harness::or_exit(report.write_default()),
    };
    println!("wrote {}", path.display());
}
