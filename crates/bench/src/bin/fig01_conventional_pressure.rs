//! Regenerates the paper's fig01 data. Pass `--scale paper` for the
//! fuller configuration.

fn main() {
    let scale = smarco_bench::Scale::from_args();
    println!("{}", smarco_bench::figures::fig01::run(scale));
}
