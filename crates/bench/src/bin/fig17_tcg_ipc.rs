//! Regenerates the paper's fig17 data. Pass `--scale paper` for the
//! fuller configuration.

fn main() {
    let scale = smarco_bench::Scale::from_args();
    println!("{}", smarco_bench::figures::fig17::run(scale));
}
