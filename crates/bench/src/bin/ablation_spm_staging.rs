//! SPM staging ablation (§3.6 data placement, §7 prefetch direction).

fn main() {
    let scale = smarco_bench::Scale::from_args();
    let rows = smarco_bench::figures::ablations::staging_ablation(scale);
    print!(
        "{}",
        smarco_bench::figures::ablations::format_staging(&rows)
    );
}
