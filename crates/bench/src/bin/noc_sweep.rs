//! NoC backend sweep: backends × HTC benchmarks × criticality routing.
//! Pass `--backend ring|mesh|buffered` to sweep one backend only and
//! `--json <path>` to choose the output file (default `BENCH_noc.json`).

use smarco_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let report = smarco_bench::noc_sweep::sweep_backend(args.scale, args.backend.as_deref());
    if report.entries.is_empty() {
        eprintln!(
            "smarco-bench: no such backend `{}` (known: ring, mesh, buffered)",
            args.backend.as_deref().unwrap_or(""),
        );
        std::process::exit(2);
    }
    for e in &report.entries {
        println!(
            "{}",
            smarco_bench::format_row(
                &format!(
                    "{}/{}{}",
                    e.backend,
                    e.bench,
                    if e.criticality_routing { "+" } else { "" }
                ),
                &[
                    ("ipc", e.ipc),
                    ("mem_lat", e.mem_latency),
                    ("main_util", e.main_ring_utilization),
                    ("sub_util", e.subring_utilization),
                ],
            )
        );
    }
    let outcome = match &args.json {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            report.write(&path).map(|()| path)
        }
        None => report.write_default(),
    };
    match outcome {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("smarco-bench: writing the sweep report failed: {e}");
            std::process::exit(2);
        }
    }
}
