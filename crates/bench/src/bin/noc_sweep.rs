//! NoC backend sweep: backends × HTC benchmarks × criticality routing.

fn main() {
    let scale = smarco_bench::Scale::from_args();
    let report = smarco_bench::noc_sweep::sweep(scale);
    for e in &report.entries {
        println!(
            "{}",
            smarco_bench::format_row(
                &format!(
                    "{}/{}{}",
                    e.backend,
                    e.bench,
                    if e.criticality_routing { "+" } else { "" }
                ),
                &[
                    ("ipc", e.ipc),
                    ("mem_lat", e.mem_latency),
                    ("main_util", e.main_ring_utilization),
                    ("sub_util", e.subring_utilization),
                ],
            )
        );
    }
    match report.write_default() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("smarco-bench: writing BENCH_noc.json failed: {e}");
            std::process::exit(2);
        }
    }
}
