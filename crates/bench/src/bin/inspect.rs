//! `inspect`: run the six HTC benchmarks on an observed chip and export
//! a Chrome-trace JSON plus a windowed metrics CSV per benchmark.
//!
//! The trace files load directly in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`, with cores, rings, MACTs, DDR channels and the
//! scheduler laid out as separate process groups. The CSVs hold one row
//! per sampling window: per-core and aggregate IPC, idle ratio, ring
//! payload utilization, MACT occupancy and batch rate, DRAM bandwidth,
//! scheduler queue depths and memory-latency p50/p90/p99.
//!
//! Usage: `inspect [out-dir] [--window N] [--ops N] [--threads N]`
//! (defaults: `target/inspect`, 10 000-cycle windows, 600 ops/thread,
//! 8 threads/core on the pressure-matched tiny chip).

use smarco_bench::harness::{pressure_matched_tiny, smarco_task_system};
use smarco_sim::obs::TraceConfig;
use smarco_workloads::Benchmark;

struct Args {
    out_dir: String,
    window: u64,
    ops: u64,
    threads: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        out_dir: "target/inspect".to_string(),
        window: 10_000,
        ops: 600,
        threads: 8,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--window" => {
                out.window = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(out.window);
                i += 2;
            }
            "--ops" => {
                out.ops = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(out.ops);
                i += 2;
            }
            "--threads" => {
                out.threads = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(out.threads);
                i += 2;
            }
            dir if !dir.starts_with("--") => {
                out.out_dir = dir.to_string();
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out_dir).expect("create output directory");
    println!(
        "{:<10} {:>9} {:>6} {:>8} {:>8} {:>7}  exports",
        "benchmark", "cycles", "ipc", "events", "windows", "lat p99"
    );
    for bench in Benchmark::ALL {
        let cfg = pressure_matched_tiny();
        // Threads arrive through the hardware dispatcher so the trace
        // covers the scheduler track too.
        let mut sys = smarco_task_system(bench, &cfg, args.ops, args.threads, 2_000_000);
        let trace_path = format!("{}/{}.trace.json", args.out_dir, bench.name());
        let csv_path = format!("{}/{}.windows.csv", args.out_dir, bench.name());
        sys.enable_tracing(TraceConfig::default());
        sys.sample_every(args.window);
        sys.trace_to(&trace_path);
        sys.metrics_to(&csv_path);
        let report = sys.run(500_000_000);
        let trace = sys.trace().expect("tracing enabled");
        let metrics = sys.metrics().expect("sampling enabled");
        println!(
            "{:<10} {:>9} {:>6.2} {:>8} {:>8} {:>7.0}  {} + {}",
            bench.name(),
            report.cycles,
            report.ipc(),
            trace.total(),
            metrics.windows().len(),
            metrics.run_latency().p99(),
            trace_path,
            csv_path,
        );
    }
    println!("\nOpen a .trace.json in https://ui.perfetto.dev or chrome://tracing.");
}
