//! `inspect`: run the six HTC benchmarks on an observed chip and export
//! a Chrome-trace JSON plus a windowed metrics CSV per benchmark.
//!
//! The trace files load directly in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`, with cores, rings, MACTs, DDR channels and the
//! scheduler laid out as separate process groups. The CSVs hold one row
//! per sampling window: per-core and aggregate IPC, idle ratio, ring
//! payload utilization, MACT occupancy and batch rate, DRAM bandwidth,
//! scheduler queue depths and memory-latency p50/p90/p99.
//!
//! Usage: `inspect [out-dir] [--window N] [--ops N] [--threads N]`
//! (defaults: `target/inspect`, 10 000-cycle windows, 600 ops/thread,
//! 8 threads/core on the pressure-matched tiny chip).

use smarco_bench::harness::{pressure_matched_tiny, smarco_task_system};
use smarco_bench::BenchArgs;
use smarco_sim::obs::TraceConfig;
use smarco_workloads::Benchmark;

fn main() {
    let args = BenchArgs::parse();
    let out_dir = args.out.as_deref().unwrap_or("target/inspect");
    std::fs::create_dir_all(out_dir).expect("create output directory");
    println!(
        "{:<10} {:>9} {:>6} {:>8} {:>8} {:>7}  exports",
        "benchmark", "cycles", "ipc", "events", "windows", "lat p99"
    );
    for bench in Benchmark::ALL {
        let cfg = pressure_matched_tiny();
        // Threads arrive through the hardware dispatcher so the trace
        // covers the scheduler track too.
        let mut sys = smarco_task_system(bench, &cfg, args.ops, args.threads, 2_000_000);
        let trace_path = format!("{}/{}.trace.json", out_dir, bench.name());
        let csv_path = format!("{}/{}.windows.csv", out_dir, bench.name());
        sys.enable_tracing(TraceConfig::default());
        sys.sample_every(args.window);
        sys.trace_to(&trace_path);
        sys.metrics_to(&csv_path);
        let report = sys.run(500_000_000);
        let trace = sys.trace().expect("tracing enabled");
        let metrics = sys.metrics().expect("sampling enabled");
        println!(
            "{:<10} {:>9} {:>6.2} {:>8} {:>8} {:>7.0}  {} + {}",
            bench.name(),
            report.cycles,
            report.ipc(),
            trace.total(),
            metrics.windows().len(),
            metrics.run_latency().p99(),
            trace_path,
            csv_path,
        );
    }
    println!("\nOpen a .trace.json in https://ui.perfetto.dev or chrome://tracing.");
}
