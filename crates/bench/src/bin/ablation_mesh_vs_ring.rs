//! Ring-vs-mesh ablation (§3.2's topology argument).

fn main() {
    let scale = smarco_bench::Scale::from_args();
    println!("{}", smarco_bench::figures::ablations::mesh_vs_ring(scale));
}
