//! Regenerates the paper's fig22 data. Pass `--scale paper` for the
//! fuller configuration and `--parallel N` to drive the chip's shards
//! with N host threads (bit-identical results). Parallel runs also
//! write their perf records to `BENCH_cycle_skip.json`.

use smarco_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    let fig = smarco_bench::figures::fig22::run_with(args.scale, args.parallel);
    println!("{fig}");
    if args.parallel > 1 {
        match fig.skip.write_default() {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write perf records: {e}"),
        }
    }
}
