//! In-memory string-matching ablation (the paper's §7 future work).

fn main() {
    let scale = smarco_bench::Scale::from_args();
    println!("{}", smarco_bench::figures::ablations::pim_matching(scale));
}
