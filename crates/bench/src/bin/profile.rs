//! Self-profile of the PDES engine: sweeps the six HTC benchmarks across
//! PDES worker counts with `smarco_sim::prof` enabled and writes the
//! per-run phase accounting to `BENCH_parallel.json` (pass `--scale paper`
//! for the full 256-core chip).
//!
//! CI modes:
//!
//! * `--gate <baseline.json>` — perf-regression gate: measure the gate
//!   workload (unprofiled sequential quick wordcount, min-of-3) and exit
//!   non-zero if it regressed more than 10% over the committed baseline.
//!   Set `SMARCO_PERF_GATE=skip` to bypass (e.g. on a loaded host).
//! * `--write-baseline <baseline.json>` — measure and (re)write the
//!   baseline file.

use smarco_bench::host::HostInfo;
use smarco_bench::profile::{
    gate_baseline_json, gate_baseline_seconds, gate_measure, GATE_TOLERANCE,
};

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|pair| pair[0] == flag)
        .map(|pair| pair[1].clone())
}

fn main() {
    if let Some(path) = arg_value("--write-baseline") {
        let seconds = gate_measure(3);
        let host = HostInfo::capture(&[1], true, smarco_bench::Scale::Quick);
        std::fs::write(&path, gate_baseline_json(seconds, &host)).expect("write baseline");
        println!("wrote {path}: gate workload at {seconds:.3}s");
        return;
    }
    if let Some(path) = arg_value("--gate") {
        if std::env::var("SMARCO_PERF_GATE").as_deref() == Ok("skip") {
            println!("perf gate skipped (SMARCO_PERF_GATE=skip)");
            return;
        }
        let json = std::fs::read_to_string(&path).expect("read perf baseline");
        let baseline = gate_baseline_seconds(&json).expect("parse perf baseline");
        let measured = gate_measure(3);
        let limit = baseline * GATE_TOLERANCE;
        println!(
            "perf gate: measured {measured:.3}s vs baseline {baseline:.3}s \
             (limit {limit:.3}s)"
        );
        if measured > limit {
            eprintln!(
                "perf gate FAILED: the sequential engine regressed \
                 {:.0}% over the committed baseline ({path}); if the \
                 slowdown is intentional, rerun with --write-baseline",
                (measured / baseline - 1.0) * 100.0
            );
            std::process::exit(4);
        }
        return;
    }

    let scale = smarco_bench::Scale::from_args();
    let report = smarco_bench::profile::run(scale, &[1, 2, 4]);
    println!("{report}");
    match report.write_default() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write profile records: {e}"),
    }
}
