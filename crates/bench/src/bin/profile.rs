//! Self-profile of the PDES engine: sweeps the six HTC benchmarks across
//! PDES worker counts with `smarco_sim::prof` enabled and writes the
//! per-run phase accounting to `BENCH_parallel.json` (pass `--scale paper`
//! for the full 256-core chip).
//!
//! CI modes:
//!
//! * `--gate <baseline.json>` — perf-regression gate: measure the gate
//!   workload (unprofiled sequential quick wordcount, min-of-3) and exit
//!   non-zero if it regressed more than 10% over the committed baseline.
//!   On hosts with >= 4 CPUs, also gate the 4-worker wordcount leg
//!   against the baseline's `wall_seconds_workers4` (auto-skipped on
//!   smaller hosts, or when the baseline was written by one). Set
//!   `SMARCO_PERF_GATE=skip` to bypass (e.g. on a loaded host).
//! * `--write-baseline <baseline.json>` — measure and (re)write the
//!   baseline file (the 4-worker leg only on hosts that can run it).

use smarco_bench::host::HostInfo;
use smarco_bench::profile::{
    gate_baseline_cpus, gate_baseline_json, gate_baseline_seconds, gate_baseline_workers4,
    gate_measure, gate_measure_at, GATE_TOLERANCE, GATE_TOLERANCE_W4,
};
use smarco_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    if let Some(path) = args.write_baseline {
        let host = HostInfo::capture(&[1], true, smarco_bench::Scale::Quick);
        let seconds = gate_measure(3);
        let w4 = if host.can_exercise(4) {
            Some(gate_measure_at(3, 4))
        } else {
            None
        };
        std::fs::write(&path, gate_baseline_json(seconds, w4, &host)).expect("write baseline");
        match w4 {
            Some(s4) => println!("wrote {path}: gate workload at {seconds:.3}s, 4w at {s4:.3}s"),
            None => println!(
                "wrote {path}: gate workload at {seconds:.3}s \
                 (no 4-worker leg: {} CPUs)",
                host.cpus
            ),
        }
        return;
    }
    if let Some(path) = args.gate {
        if std::env::var("SMARCO_PERF_GATE").as_deref() == Ok("skip") {
            println!("perf gate skipped (SMARCO_PERF_GATE=skip)");
            return;
        }
        let json = std::fs::read_to_string(&path).expect("read perf baseline");
        let baseline = gate_baseline_seconds(&json).expect("parse perf baseline");
        let measured = gate_measure(3);
        let limit = baseline * GATE_TOLERANCE;
        println!(
            "perf gate: measured {measured:.3}s vs baseline {baseline:.3}s \
             (limit {limit:.3}s)"
        );
        if measured > limit {
            eprintln!(
                "perf gate FAILED: the sequential engine regressed \
                 {:.0}% over the committed baseline ({path}); if the \
                 slowdown is intentional, rerun with --write-baseline",
                (measured / baseline - 1.0) * 100.0
            );
            std::process::exit(4);
        }
        // 4-worker leg: only meaningful when this host can actually run
        // four workers in parallel AND the baseline was measured on one
        // that could (cross-host wall-clock comparison is noise).
        let host = HostInfo::capture(&[1, 4], true, smarco_bench::Scale::Quick);
        if !host.can_exercise(4) {
            println!(
                "perf gate: 4-worker leg auto-skipped ({} CPUs < 4)",
                host.cpus
            );
            return;
        }
        let baseline_cpus = gate_baseline_cpus(&json).unwrap_or(1);
        let Some(base4) = gate_baseline_workers4(&json).filter(|_| baseline_cpus >= 4) else {
            println!(
                "perf gate: 4-worker leg skipped — baseline ({path}) has \
                 no 4-worker measurement from a >=4-CPU host; rerun with \
                 --write-baseline here to arm it"
            );
            return;
        };
        let measured4 = gate_measure_at(3, 4);
        let limit4 = base4 * GATE_TOLERANCE_W4;
        println!(
            "perf gate: 4-worker measured {measured4:.3}s vs baseline \
             {base4:.3}s (limit {limit4:.3}s)"
        );
        if measured4 > limit4 {
            eprintln!(
                "perf gate FAILED: the 4-worker engine regressed {:.0}% \
                 over the committed baseline ({path}); if the slowdown is \
                 intentional, rerun with --write-baseline",
                (measured4 / base4 - 1.0) * 100.0
            );
            std::process::exit(4);
        }
        return;
    }

    let report = smarco_bench::profile::run(args.scale, &[1, 2, 4]);
    println!("{report}");
    match report.write_default() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write profile records: {e}"),
    }
}
