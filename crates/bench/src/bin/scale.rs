//! Host-side scaling of the sharded simulator: wall-clock speedup of
//! parallel PDES runs over the sequential one on Fig. 22's workload,
//! plus the cycle-skip study on the memory-intensive benchmark.
//! Pass `--scale paper` for the full 256-core chip; `--parallel N` adds
//! another worker count to the default 1/2/4 sweep. Writes the per-run
//! perf records to `BENCH_cycle_skip.json`.
//!
//! Pass `--faults <seed>` to run chaos mode instead: TeraSort through the
//! hardware dispatcher, healthy and under a seeded fault plan, printing
//! the degradation counters and goodput retained. Exits non-zero if the
//! injected faults produced no recovery activity (the injection or
//! recovery path is then broken).

use smarco_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse();
    if let Some(seed) = args.faults {
        let out = smarco_bench::chaos::run_chaos(seed, args.scale);
        println!("{out}");
        let d = &out.degraded.degradation;
        if d.link_retries == 0 {
            eprintln!("chaos run saw zero link retries: fault injection is inert");
            std::process::exit(3);
        }
        return;
    }
    let mut counts = vec![1, 2, 4];
    if !counts.contains(&args.parallel) {
        counts.push(args.parallel);
    }
    let bench = smarco_bench::figures::speedup::run(args.scale, &counts);
    println!("{bench}");
    match bench.skip.write_default() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write perf records: {e}"),
    }
}
