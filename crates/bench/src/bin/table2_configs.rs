//! Regenerates the paper's table2 data. Pass `--scale paper` for the
//! fuller configuration.

fn main() {
    let scale = smarco_bench::Scale::from_args();
    println!("{}", smarco_bench::figures::table2::run(scale));
}
