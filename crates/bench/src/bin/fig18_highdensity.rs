//! Regenerates the paper's fig18 data. Pass `--scale paper` for the
//! fuller configuration.

fn main() {
    let scale = smarco_bench::Scale::from_args();
    println!("{}", smarco_bench::figures::fig18::run(scale));
}
