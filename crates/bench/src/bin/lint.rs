//! `lint`: sweep the shipped chip configurations, the six built-in HTC
//! benchmarks, and the MapReduce staging plan through the static
//! verifier (`smarco-lint`) and report every finding.
//!
//! One sub-ring team per benchmark is captured exactly as
//! `smarco_team_system` would attach it (the other sub-rings run the
//! same program shifted to disjoint regions, so one team is the whole
//! race surface), and the MapReduce plan mirrors `smarco_mapreduce`'s
//! sizing. The model passes (deadlock, horizon soundness, worst-case
//! bounds, partition hierarchy) then sweep every configuration and
//! benchmark under both a healthy and a chaos fault plan. Exits
//! non-zero on any deny finding — or any warning with
//! `--deny-warnings` — so CI can gate on it.
//!
//! Usage: `lint [--deny-warnings] [--json <path>] [--ops N] [--threads N]`
//! (defaults: 600 ops/thread, 8 threads/core, tiny topology for the
//! program passes).
//!
//! Two special modes:
//!
//! * `lint --explain SLxxxx` prints the documented rationale and fix
//!   hint for a diagnostic code (exit 2 on an unknown code).
//! * `lint --corpus [--json <path>]` runs the negative-config corpus:
//!   every seeded bad configuration must reproduce its expected codes.
//!   Exit 1 means the corpus behaved (diagnostics present, as seeded);
//!   exit 2 means a pass regressed and stopped catching its entry.

use smarco_bench::BenchArgs;
use smarco_core::config::SmarcoConfig;
use smarco_core::fault::FaultPlan;
use smarco_lint::{
    check_mapreduce_plan, corpus, lint_config, lint_model, lint_threads, Code, ModelInput, Report,
    Severity, ThreadProgram,
};
use smarco_mem::map::AddressSpace;
use smarco_mem::spm::Spm;
use smarco_runtime::MapReduceConfig;
use smarco_sched::Task;
use smarco_sim::rng::SimRng;
use smarco_workloads::{Benchmark, HtcStream};

/// `lint --explain SLxxxx`: the code's documented rationale and fix.
fn run_explain(raw: &str) -> ! {
    let Some(code) = Code::parse(raw) else {
        eprintln!("unknown diagnostic code `{raw}` (codes look like SL0420)");
        eprintln!("known codes:");
        for c in Code::ALL {
            eprintln!("  {} {} — {}", c.as_str(), c.default_severity(), c.title());
        }
        std::process::exit(2);
    };
    let (rationale, fix) = code.explain();
    println!(
        "{} ({}) — {}",
        code.as_str(),
        code.default_severity(),
        code.title()
    );
    println!();
    println!("{rationale}");
    println!();
    println!("fix: {fix}");
    std::process::exit(0);
}

/// `lint --corpus`: every seeded bad config must reproduce its codes.
fn run_corpus_mode(json: Option<&str>) -> ! {
    let mut total = Report::new();
    let mut regressed = false;
    println!("negative-config corpus:");
    for entry in corpus() {
        let report = lint_model(&(entry.build)());
        let missing: Vec<Code> = entry
            .expected
            .iter()
            .copied()
            .filter(|&code| !report.diagnostics().iter().any(|d| d.code == code))
            .collect();
        let produced: Vec<&str> = entry
            .expected
            .iter()
            .filter(|c| !missing.contains(c))
            .map(|c| c.as_str())
            .collect();
        if missing.is_empty() {
            println!(
                "  {}: caught ({}) — {}",
                entry.name,
                produced.join(", "),
                entry.why
            );
        } else {
            regressed = true;
            let lost: Vec<&str> = missing.iter().map(|c| c.as_str()).collect();
            println!(
                "  {}: REGRESSED — no longer produces {}",
                entry.name,
                lost.join(", ")
            );
            for line in report.render_text().lines() {
                println!("    {line}");
            }
        }
        total.absorb(report.diagnostics().to_vec());
    }
    total.sort();
    if let Some(path) = json {
        std::fs::write(path, total.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    if regressed {
        eprintln!("corpus regression: a verifier pass stopped catching its seeded config");
        std::process::exit(2);
    }
    println!("corpus sound: every entry reproduced its expected codes");
    // Exit 1 on purpose: diagnostics are present, exactly as seeded.
    std::process::exit(1);
}

/// Captures sub-ring 0's team for `bench` exactly as `smarco_team_system`
/// attaches it.
fn team_capture(bench: Benchmark, cfg: &SmarcoConfig, ops: u64, tpc: usize) -> Vec<ThreadProgram> {
    let cps = cfg.noc.cores_per_subring;
    let team = (cps * tpc) as u64;
    let (scan_base, table_base) = (0x100_0000, 0x8000_0000);
    let mut threads = Vec::with_capacity(cps * tpc);
    let mut seed = 1;
    for core in 0..cps {
        for t in 0..tpc {
            let j = (core * tpc + t) as u64;
            let p = bench.thread_params(scan_base, 16 << 20, table_base, j, team, ops);
            threads.push(ThreadProgram::from_stream(
                format!("{}:core{core}/slot{t}", bench.name()),
                core,
                t,
                HtcStream::new(p, SimRng::new(seed)),
                ops as usize + 16,
            ));
            seed += 1;
        }
    }
    threads
}

/// The MapReduce job `smarco_mapreduce` would launch on `cfg`.
fn mapreduce_plan(cfg: &SmarcoConfig, tpc: usize) -> MapReduceConfig {
    let subrings = cfg.noc.subrings;
    let reducers = (subrings / 4).max(1);
    let cps = cfg.noc.cores_per_subring;
    let map_tasks = ((subrings - reducers) * cps * tpc) as u64;
    let reduce_tasks = (reducers * cps * tpc) as u64;
    let share = Spm::data_bytes() / tpc as u64;
    let slice = share.saturating_sub(8 << 10).clamp(2 << 10, 8 << 10);
    MapReduceConfig {
        threads_per_core: tpc,
        shuffle_len: reduce_tasks * slice,
        ..MapReduceConfig::split(subrings, 0x100_0000, map_tasks * slice)
    }
}

fn section(total: &mut Report, name: &str, report: &Report) {
    match report.worst() {
        None => println!("  {name}: clean"),
        Some(worst) => {
            println!(
                "  {name}: {} finding(s), worst {}",
                report.len(),
                worst.name()
            );
            for line in report.render_text().lines() {
                println!("    {line}");
            }
        }
    }
    total.absorb(report.diagnostics().to_vec());
}

/// The task set `smarco_team_system` submits for one sub-ring team: one
/// task per resident thread, generously deadlined — any model-pass
/// finding on these is a false positive.
fn team_tasks(cfg: &SmarcoConfig, tpc: usize, work: u64) -> Vec<Task> {
    let team = cfg.noc.cores_per_subring * tpc;
    (0..team)
        .map(|i| Task::new(i as u64, 0, 2_000_000, work.max(1)))
        .collect()
}

fn main() {
    let args = BenchArgs::parse();
    if let Some(code) = &args.explain {
        run_explain(code);
    }
    if args.corpus {
        run_corpus_mode(args.json.as_deref());
    }
    let mut total = Report::new();

    println!("configurations:");
    for (name, cfg) in [
        ("smarco", SmarcoConfig::smarco()),
        ("tiny", SmarcoConfig::tiny()),
        ("prototype_40nm", SmarcoConfig::prototype_40nm()),
    ] {
        section(&mut total, name, &lint_config(&cfg));
    }

    let cfg = SmarcoConfig::tiny();
    let tpc = args.threads.min(cfg.tcg.resident_threads);
    let space = AddressSpace::new(cfg.noc.cores(), cfg.dram.channels);
    println!(
        "benchmarks ({} ops/thread, {tpc} threads/core, one sub-ring team):",
        args.ops
    );
    for bench in Benchmark::ALL {
        let threads = team_capture(bench, &cfg, args.ops, tpc);
        section(&mut total, bench.name(), &lint_threads(&space, &threads));
    }

    println!("mapreduce plan:");
    for (name, cfg) in [
        ("tiny", SmarcoConfig::tiny()),
        ("smarco", SmarcoConfig::smarco()),
    ] {
        let space = AddressSpace::new(cfg.noc.cores(), cfg.dram.channels);
        let mr = mapreduce_plan(&cfg, tpc.min(cfg.tcg.resident_threads));
        let mut report = Report::new();
        report.absorb(check_mapreduce_plan(&mr, &cfg, &space));
        report.sort();
        section(&mut total, name, &report);
    }

    println!("model passes (deadlock, horizon, bounds, hierarchy):");
    for (name, cfg) in [
        ("smarco", SmarcoConfig::smarco()),
        ("tiny", SmarcoConfig::tiny()),
        ("prototype_40nm", SmarcoConfig::prototype_40nm()),
    ] {
        let cfg_tpc = tpc.min(cfg.tcg.resident_threads);
        let tasks = team_tasks(&cfg, cfg_tpc, args.ops);
        let mr = mapreduce_plan(&cfg, cfg_tpc);
        for (plan_name, plan) in [
            ("healthy", None),
            ("chaos", Some(FaultPlan::chaos(7, &cfg))),
        ] {
            let mut input = ModelInput::new(cfg.clone())
                .with_tasks(tasks.clone())
                .with_mapreduce(mr.clone());
            if let Some(p) = plan {
                input = input.with_plan(p);
            }
            section(
                &mut total,
                &format!("{name}/{plan_name}"),
                &lint_model(&input),
            );
        }
    }
    println!("model passes per benchmark (tiny topology):");
    for bench in Benchmark::ALL {
        let tasks = team_tasks(&cfg, tpc, args.ops);
        for (plan_name, plan) in [
            ("healthy", None),
            ("chaos", Some(FaultPlan::chaos(11, &cfg))),
        ] {
            let mut input = ModelInput::new(cfg.clone()).with_tasks(tasks.clone());
            if let Some(p) = plan {
                input = input.with_plan(p);
            }
            section(
                &mut total,
                &format!("{}/{plan_name}", bench.name()),
                &lint_model(&input),
            );
        }
    }

    total.sort();
    if let Some(path) = &args.json {
        std::fs::write(path, total.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    let (deny, warn, note) = (
        total.count(Severity::Deny),
        total.count(Severity::Warn),
        total.count(Severity::Note),
    );
    println!("total: {deny} deny, {warn} warn, {note} note");
    if deny > 0 || (args.deny_warnings && warn > 0) {
        std::process::exit(1);
    }
}
