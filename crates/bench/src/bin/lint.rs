//! `lint`: sweep the shipped chip configurations, the six built-in HTC
//! benchmarks, and the MapReduce staging plan through the static
//! verifier (`smarco-lint`) and report every finding.
//!
//! One sub-ring team per benchmark is captured exactly as
//! `smarco_team_system` would attach it (the other sub-rings run the
//! same program shifted to disjoint regions, so one team is the whole
//! race surface), and the MapReduce plan mirrors `smarco_mapreduce`'s
//! sizing. Exits non-zero on any deny finding — or any warning with
//! `--deny-warnings` — so CI can gate on it.
//!
//! Usage: `lint [--deny-warnings] [--json <path>] [--ops N] [--threads N]`
//! (defaults: 600 ops/thread, 8 threads/core, tiny topology for the
//! program passes).

use smarco_core::config::SmarcoConfig;
use smarco_lint::{
    check_mapreduce_plan, lint_config, lint_threads, Report, Severity, ThreadProgram,
};
use smarco_mem::map::AddressSpace;
use smarco_mem::spm::Spm;
use smarco_runtime::MapReduceConfig;
use smarco_sim::rng::SimRng;
use smarco_workloads::{Benchmark, HtcStream};

struct Args {
    deny_warnings: bool,
    json: Option<String>,
    ops: u64,
    threads: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        deny_warnings: false,
        json: None,
        ops: 600,
        threads: 8,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--deny-warnings" => {
                out.deny_warnings = true;
                i += 1;
            }
            "--json" => {
                out.json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--ops" => {
                out.ops = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(out.ops);
                i += 2;
            }
            "--threads" => {
                out.threads = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(out.threads);
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: lint [--deny-warnings] [--json <path>] [--ops N] [--threads N]");
                std::process::exit(2);
            }
        }
    }
    out
}

/// Captures sub-ring 0's team for `bench` exactly as `smarco_team_system`
/// attaches it.
fn team_capture(bench: Benchmark, cfg: &SmarcoConfig, ops: u64, tpc: usize) -> Vec<ThreadProgram> {
    let cps = cfg.noc.cores_per_subring;
    let team = (cps * tpc) as u64;
    let (scan_base, table_base) = (0x100_0000, 0x8000_0000);
    let mut threads = Vec::with_capacity(cps * tpc);
    let mut seed = 1;
    for core in 0..cps {
        for t in 0..tpc {
            let j = (core * tpc + t) as u64;
            let p = bench.thread_params(scan_base, 16 << 20, table_base, j, team, ops);
            threads.push(ThreadProgram::from_stream(
                format!("{}:core{core}/slot{t}", bench.name()),
                core,
                t,
                HtcStream::new(p, SimRng::new(seed)),
                ops as usize + 16,
            ));
            seed += 1;
        }
    }
    threads
}

/// The MapReduce job `smarco_mapreduce` would launch on `cfg`.
fn mapreduce_plan(cfg: &SmarcoConfig, tpc: usize) -> MapReduceConfig {
    let subrings = cfg.noc.subrings;
    let reducers = (subrings / 4).max(1);
    let cps = cfg.noc.cores_per_subring;
    let map_tasks = ((subrings - reducers) * cps * tpc) as u64;
    let reduce_tasks = (reducers * cps * tpc) as u64;
    let share = Spm::data_bytes() / tpc as u64;
    let slice = share.saturating_sub(8 << 10).clamp(2 << 10, 8 << 10);
    MapReduceConfig {
        threads_per_core: tpc,
        shuffle_len: reduce_tasks * slice,
        ..MapReduceConfig::split(subrings, 0x100_0000, map_tasks * slice)
    }
}

fn section(total: &mut Report, name: &str, report: &Report) {
    match report.worst() {
        None => println!("  {name}: clean"),
        Some(worst) => {
            println!(
                "  {name}: {} finding(s), worst {}",
                report.len(),
                worst.name()
            );
            for line in report.render_text().lines() {
                println!("    {line}");
            }
        }
    }
    total.absorb(report.diagnostics().to_vec());
}

fn main() {
    let args = parse_args();
    let mut total = Report::new();

    println!("configurations:");
    for (name, cfg) in [
        ("smarco", SmarcoConfig::smarco()),
        ("tiny", SmarcoConfig::tiny()),
        ("prototype_40nm", SmarcoConfig::prototype_40nm()),
    ] {
        section(&mut total, name, &lint_config(&cfg));
    }

    let cfg = SmarcoConfig::tiny();
    let tpc = args.threads.min(cfg.tcg.resident_threads);
    let space = AddressSpace::new(cfg.noc.cores(), cfg.dram.channels);
    println!(
        "benchmarks ({} ops/thread, {tpc} threads/core, one sub-ring team):",
        args.ops
    );
    for bench in Benchmark::ALL {
        let threads = team_capture(bench, &cfg, args.ops, tpc);
        section(&mut total, bench.name(), &lint_threads(&space, &threads));
    }

    println!("mapreduce plan:");
    for (name, cfg) in [
        ("tiny", SmarcoConfig::tiny()),
        ("smarco", SmarcoConfig::smarco()),
    ] {
        let space = AddressSpace::new(cfg.noc.cores(), cfg.dram.channels);
        let mr = mapreduce_plan(&cfg, tpc.min(cfg.tcg.resident_threads));
        let mut report = Report::new();
        report.absorb(check_mapreduce_plan(&mr, &cfg, &space));
        report.sort();
        section(&mut total, name, &report);
    }

    total.sort();
    if let Some(path) = &args.json {
        std::fs::write(path, total.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    let (deny, warn, note) = (
        total.count(Severity::Deny),
        total.count(Severity::Warn),
        total.count(Severity::Note),
    );
    println!("total: {deny} deny, {warn} warn, {note} note");
    if deny > 0 || (args.deny_warnings && warn > 0) {
        std::process::exit(1);
    }
}
