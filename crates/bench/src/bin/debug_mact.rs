//! Diagnostic: MACT merging behaviour under the team workload (not a
//! paper figure; used to sanity-check collection dynamics).
//!
//! Built on the chip's observability layer: the run is traced and sampled,
//! and the diagnostics come from the event trace (per-kind counts) and the
//! windowed metrics recorder (latency percentiles, per-window batch rate)
//! instead of ad-hoc counters. Pass a fifth argument to also write the
//! Chrome-trace JSON for Perfetto.
//!
//! Usage: `debug_mact [bytes_per_cycle] [threads_per_core] [threshold]
//! [lines] [trace-out-dir]`

use smarco_bench::harness::smarco_team_system;
use smarco_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bw: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(22.75);
    let tpc: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let thr: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(16);
    let lines: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(32);
    let trace_dir = args.get(5).cloned();
    for bench in [Benchmark::Kmp, Benchmark::WordCount] {
        let mut cfg = smarco_bench::harness::pressure_matched_tiny();
        cfg.dram.bytes_per_cycle = bw;
        cfg.mact = Some(smarco_mem::mact::MactConfig {
            threshold: thr,
            lines,
            line_bytes: 64,
        });
        let mut sys = smarco_team_system(bench, &cfg, 600, tpc);
        sys.enable_tracing(smarco_sim::obs::TraceConfig::default());
        sys.sample_every(10_000);
        if let Some(dir) = &trace_dir {
            sys.trace_to(format!("{dir}/debug_mact_{}.trace.json", bench.name()));
        }
        let r = sys.run(500_000_000);
        println!(
            "{:<10} cycles={} instr={} reqs={} dram_reqs={} mact_coll={} batches={} red={:.2} \
             dram_util={:.3} lat={:.1}",
            bench.name(),
            r.cycles,
            r.instructions,
            r.requests,
            r.dram_requests,
            r.mact_collected,
            r.mact_batches,
            r.request_reduction(),
            r.dram_utilization,
            r.mem_latency.mean(),
        );
        for (sr, s) in sys.mact_stats().iter().enumerate() {
            println!(
                "  sr{sr}: collected={} bypassed={} batches={} rpb={:.2} flush[full,deadline,cap,drain]={:?} wait={:.1}",
                s.collected.get(),
                s.bypassed.get(),
                s.batches.get(),
                s.requests_per_batch.mean(),
                s.flush_causes,
                s.wait_cycles.mean(),
            );
        }
        let trace = sys.trace().expect("tracing enabled");
        let kinds = trace.counts_by_kind();
        print!(
            "  events (last {}, {} dropped):",
            trace.len(),
            trace.dropped()
        );
        for (kind, n) in kinds {
            print!(" {kind}={n}");
        }
        println!();
        let metrics = sys.metrics().expect("sampling enabled");
        let lat = metrics.run_latency();
        println!(
            "  mem latency p50={:.0} p90={:.0} p99={:.0} over {} samples",
            lat.p50(),
            lat.p90(),
            lat.p99(),
            lat.count(),
        );
        // Peak batching window: where the MACT was busiest.
        if let Some(peak) = metrics.windows().iter().max_by(|a, b| {
            let ra = a.stats.get("mact_batch_rate").unwrap_or(0.0);
            let rb = b.stats.get("mact_batch_rate").unwrap_or(0.0);
            ra.total_cmp(&rb)
        }) {
            println!(
                "  peak batching window [{}, {}): {:.4} batches/cycle, dram bw {:.2} B/cycle",
                peak.start,
                peak.end,
                peak.stats.get("mact_batch_rate").unwrap_or(0.0),
                peak.stats.get("dram_bandwidth_bpc").unwrap_or(0.0),
            );
        }
    }
}
