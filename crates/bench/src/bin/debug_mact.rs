//! Diagnostic: MACT merging behaviour under the team workload (not a
//! paper figure; used to sanity-check collection dynamics).

use smarco_bench::harness::smarco_team_system;
use smarco_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bw: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(22.75);
    let tpc: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let thr: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(16);
    let lines: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(32);
    for bench in [Benchmark::Kmp, Benchmark::WordCount] {
        let mut cfg = smarco_bench::harness::pressure_matched_tiny();
        cfg.dram.bytes_per_cycle = bw;
        cfg.mact = Some(smarco_mem::mact::MactConfig { threshold: thr, lines, line_bytes: 64 });
        let mut sys = smarco_team_system(bench, &cfg, 600, tpc);
        let r = sys.run(500_000_000);
        println!(
            "{:<10} cycles={} instr={} reqs={} dram_reqs={} mact_coll={} batches={} red={:.2} \
             dram_util={:.3} lat={:.1}",
            bench.name(),
            r.cycles,
            r.instructions,
            r.requests,
            r.dram_requests,
            r.mact_collected,
            r.mact_batches,
            r.request_reduction(),
            r.dram_utilization,
            r.mem_latency.mean(),
        );
        for (sr, s) in sys.mact_stats().iter().enumerate() {
            println!(
                "  sr{sr}: collected={} bypassed={} batches={} rpb={:.2} flush[full,deadline,cap,drain]={:?} wait={:.1}",
                s.collected.get(),
                s.bypassed.get(),
                s.batches.get(),
                s.requests_per_batch.mean(),
                s.flush_causes,
                s.wait_cycles.mean(),
            );
        }
    }
}
