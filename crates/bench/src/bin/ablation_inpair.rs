//! In-pair threads & shared-instruction-segment ablation (§3.1).

fn main() {
    let scale = smarco_bench::Scale::from_args();
    let rows = smarco_bench::figures::ablations::inpair_ablation(scale);
    print!("{}", smarco_bench::figures::ablations::format_inpair(&rows));
}
