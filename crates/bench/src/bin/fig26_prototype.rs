//! Regenerates the paper's fig26 data. Pass `--scale paper` for the
//! fuller configuration.

fn main() {
    let scale = smarco_bench::Scale::from_args();
    println!("{}", smarco_bench::figures::fig26::run(scale));
}
