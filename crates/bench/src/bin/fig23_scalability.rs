//! Regenerates the paper's fig23 data. Pass `--scale paper` for the
//! fuller configuration and `--parallel N` to drive the chip's shards
//! with N host threads (bit-identical results).

fn main() {
    let scale = smarco_bench::Scale::from_args();
    let workers = smarco_bench::scale::parallel_from_args();
    println!("{}", smarco_bench::figures::fig23::run_with(scale, workers));
}
