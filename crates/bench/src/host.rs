//! Host-machine context shared by the machine-readable bench writers.
//!
//! Wall-clock numbers are meaningless without knowing what they ran on:
//! a 4-worker sweep on a 2-CPU host *should* lose to the sequential run.
//! Both `BENCH_cycle_skip.json` and `BENCH_parallel.json` embed one
//! [`HostInfo`] block so the perf trajectory stays interpretable across
//! machines.

/// The host context of a bench run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// Logical CPUs available to the process.
    pub cpus: usize,
    /// PDES worker counts the run swept.
    pub worker_sweep: Vec<usize>,
    /// Whether event-horizon cycle skipping was enabled for the sweep.
    pub cycle_skip: bool,
    /// Experiment scale the run used (`"quick"` or `"paper"`).
    pub scale: String,
}

impl HostInfo {
    /// Captures the current host with the given sweep metadata.
    pub fn capture(worker_sweep: &[usize], cycle_skip: bool, scale: crate::Scale) -> Self {
        Self {
            cpus: std::thread::available_parallelism().map_or(1, usize::from),
            worker_sweep: worker_sweep.to_vec(),
            cycle_skip,
            scale: match scale {
                crate::Scale::Quick => "quick".to_string(),
                crate::Scale::Paper => "paper".to_string(),
            },
        }
    }

    /// Whether this host can genuinely run `workers` PDES workers in
    /// parallel. Below this, a multi-worker measurement exercises the
    /// oversubscribed barrier path and measures overhead, not speedup —
    /// the perf gate's 4-worker leg auto-skips on such hosts.
    pub fn can_exercise(&self, workers: usize) -> bool {
        self.cpus >= workers
    }

    /// Serialises the block as a JSON object (hand-rolled: the workspace
    /// is dependency-free).
    pub fn to_json(&self) -> String {
        let sweep: Vec<String> = self.worker_sweep.iter().map(usize::to_string).collect();
        format!(
            "{{\"cpus\":{},\"worker_sweep\":[{}],\"cycle_skip\":{},\"scale\":\"{}\"}}",
            self.cpus,
            sweep.join(","),
            self.cycle_skip,
            self.scale
        )
    }
}

impl Default for HostInfo {
    /// Captures the current host with no sweep metadata yet.
    fn default() -> Self {
        Self::capture(&[], true, crate::Scale::Quick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_carries_sweep_and_cpus() {
        let h = HostInfo::capture(&[1, 2, 4], true, crate::Scale::Quick);
        assert!(h.cpus >= 1);
        let j = h.to_json();
        assert!(j.contains("\"worker_sweep\":[1,2,4]"), "{j}");
        assert!(j.contains("\"cycle_skip\":true"), "{j}");
        assert!(j.contains("\"scale\":\"quick\""), "{j}");
        assert!(j.contains(&format!("\"cpus\":{}", h.cpus)), "{j}");
    }

    #[test]
    fn default_still_detects_cpus() {
        assert!(HostInfo::default().cpus >= 1);
        assert!(HostInfo::default().worker_sweep.is_empty());
    }

    #[test]
    fn can_exercise_compares_against_detected_cpus() {
        let h = HostInfo::default();
        assert!(h.can_exercise(1), "every host has at least one CPU");
        assert!(h.can_exercise(h.cpus));
        assert!(!h.can_exercise(h.cpus + 1));
    }
}
