//! Minimal self-contained wall-clock timing harness for the
//! `harness = false` bench targets — no external benchmarking crate, so it
//! works in fully offline builds.

use std::time::{Duration, Instant};

/// Times `f` and prints `name`, the iteration count and ns/iter.
///
/// Warms up for ~50 ms to estimate per-iteration cost, then sizes the
/// measured run to roughly `budget`. Coarse compared to a statistical
/// harness, but stable enough to spot order-of-magnitude regressions.
pub fn bench_with_budget(name: &str, budget: Duration, mut f: impl FnMut()) {
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < Duration::from_millis(50) && warm_iters < 1_000_000 {
        f();
        warm_iters += 1;
    }
    let per_iter_ns = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
    let iters = (budget.as_nanos() / per_iter_ns).clamp(1, 10_000_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() / u128::from(iters);
    println!("{name:<36} {iters:>9} iters  {ns:>12} ns/iter");
}

/// [`bench_with_budget`] with a default ~200 ms measurement budget.
pub fn bench(name: &str, f: impl FnMut()) {
    bench_with_budget(name, Duration::from_millis(200), f);
}
