//! Machine-readable NoC-backend sweep records.
//!
//! The `noc_sweep` binary runs every pluggable interconnect backend
//! (`ring`, `mesh`, `buffered`) across all six HTC benchmarks, once with
//! criticality-aware routing off and once with it on, and writes the
//! resulting latency/utilization matrix to [`BENCH_FILE`] in the working
//! directory. The file gives the repo a trajectory for the backend
//! comparison the same way `BENCH_cycle_skip.json` tracks the skipper.

use std::path::{Path, PathBuf};
use std::time::Instant;

use smarco_core::chip::SmarcoSystem;
use smarco_core::config::SmarcoConfig;
use smarco_noc::{BufferedNocConfig, NocBackendKind};
use smarco_sim::rng::SimRng;
use smarco_workloads::{Benchmark, HtcStream};

use crate::host::HostInfo;
use crate::Scale;

/// Default output filename, written to the working directory.
pub const BENCH_FILE: &str = "BENCH_noc.json";

/// Hardware threads loaded per core for the sweep chips.
const THREADS_PER_CORE: usize = 2;
/// Simulated-cycle ceiling; a drained chip stops well before it.
const MAX_CYCLES: u64 = 10_000_000;

/// The three backend contenders the sweep compares.
pub fn contenders() -> [NocBackendKind; 3] {
    [
        NocBackendKind::Ring,
        NocBackendKind::Mesh,
        NocBackendKind::Buffered(BufferedNocConfig::default()),
    ]
}

/// One (backend, benchmark, routing-mode) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct NocSweepEntry {
    /// Backend name (`ring`, `mesh`, `buffered`).
    pub backend: &'static str,
    /// HTC benchmark name.
    pub bench: &'static str,
    /// Whether criticality-aware routing was on.
    pub criticality_routing: bool,
    /// Simulated cycles to drain the chip.
    pub cycles: u64,
    /// Instructions per cycle over the run.
    pub ipc: f64,
    /// Mean memory-request round-trip latency in cycles.
    pub mem_latency: f64,
    /// Main-ring payload utilization over offered capacity.
    pub main_ring_utilization: f64,
    /// Sub-ring payload utilization over offered capacity.
    pub subring_utilization: f64,
    /// Host wall-clock seconds for the run.
    pub wall_seconds: f64,
}

impl NocSweepEntry {
    fn to_json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"bench\":\"{}\",\"criticality_routing\":{},\
             \"cycles\":{},\"ipc\":{:.6},\"mem_latency\":{:.4},\
             \"main_ring_utilization\":{:.6},\"subring_utilization\":{:.6},\
             \"wall_seconds\":{:.6}}}",
            self.backend,
            self.bench,
            self.criticality_routing,
            self.cycles,
            self.ipc,
            self.mem_latency,
            self.main_ring_utilization,
            self.subring_utilization,
            self.wall_seconds,
        )
    }
}

/// The full sweep destined for [`BENCH_FILE`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NocSweepReport {
    /// Host context of the sweep.
    pub host: HostInfo,
    /// Entries in run order (backend-major, then benchmark, then mode).
    pub entries: Vec<NocSweepEntry>,
}

impl NocSweepReport {
    /// Serialises the report as a JSON object with the host block first
    /// (hand-rolled: the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self.entries.iter().map(NocSweepEntry::to_json).collect();
        format!(
            "{{\"host\":{},\n \"entries\":[\n  {}\n]}}\n",
            self.host.to_json(),
            body.join(",\n  ")
        )
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes the report to [`BENCH_FILE`] in the working directory and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(BENCH_FILE);
        self.write(&path)?;
        Ok(path)
    }
}

/// A small chip on `backend` loaded with one benchmark's threads.
fn loaded(backend: NocBackendKind, bench: Benchmark, routing: bool, instrs: u64) -> SmarcoSystem {
    let mut cfg = SmarcoConfig::tiny();
    cfg.noc = cfg
        .noc
        .with_backend(backend)
        .with_criticality_routing(routing);
    let mut sys = crate::harness::build_system(&cfg);
    let teams = sys.cores_len() * THREADS_PER_CORE;
    let mut seed = 11u64;
    for core in 0..sys.cores_len() {
        for t in 0..THREADS_PER_CORE {
            let lane = (core * THREADS_PER_CORE + t) as u64;
            let p =
                bench.thread_params(0x100_0000, 1 << 22, 0x8000_0000, lane, teams as u64, instrs);
            sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed))))
                .expect("vacant slot");
            seed += 1;
        }
    }
    sys
}

/// Runs the full backends × benchmarks × routing-mode matrix.
///
/// A run that fails to drain within the cycle ceiling is a broken
/// backend contract; the sweep is a batch job, so it reports the failing
/// cell on stderr and exits non-zero rather than recording a lie.
pub fn sweep(scale: Scale) -> NocSweepReport {
    sweep_backend(scale, None)
}

/// Like [`sweep`], restricted to the backend named `only` (`--backend`
/// on the binary); `None` sweeps every contender. An unknown name
/// produces an empty report — the binary treats that as an error.
pub fn sweep_backend(scale: Scale, only: Option<&str>) -> NocSweepReport {
    let instrs = scale.scaled(300, 3_000);
    let mut report = NocSweepReport {
        host: HostInfo::capture(&[1], true, scale),
        entries: Vec::new(),
    };
    for backend in contenders() {
        if only.is_some_and(|o| o != backend.name()) {
            continue;
        }
        for bench in Benchmark::ALL {
            for routing in [false, true] {
                let mut sys = loaded(backend, bench, routing, instrs);
                let start = Instant::now();
                let r = sys.run(MAX_CYCLES);
                if !sys.is_done() {
                    eprintln!(
                        "smarco-bench: {} backend failed to drain {} (criticality {})",
                        backend.name(),
                        bench.name(),
                        if routing { "on" } else { "off" },
                    );
                    std::process::exit(3);
                }
                report.entries.push(NocSweepEntry {
                    backend: backend.name(),
                    bench: bench.name(),
                    criticality_routing: routing,
                    cycles: r.cycles,
                    ipc: r.ipc(),
                    mem_latency: r.mem_latency.mean(),
                    main_ring_utilization: r.main_ring_utilization,
                    subring_utilization: r.subring_utilization,
                    wall_seconds: start.elapsed().as_secs_f64(),
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> NocSweepEntry {
        NocSweepEntry {
            backend: "buffered",
            bench: "wordcount",
            criticality_routing: true,
            cycles: 1_000,
            ipc: 0.5,
            mem_latency: 42.25,
            main_ring_utilization: 0.125,
            subring_utilization: 0.25,
            wall_seconds: 0.5,
        }
    }

    #[test]
    fn json_shape_matches_the_other_bench_files() {
        let r = NocSweepReport {
            host: HostInfo::capture(&[1], true, Scale::Quick),
            entries: vec![entry()],
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"host\":{"), "{j}");
        assert!(j.contains("\"entries\":["), "{j}");
        assert!(j.contains("\"backend\":\"buffered\""), "{j}");
        assert!(j.contains("\"bench\":\"wordcount\""), "{j}");
        assert!(j.contains("\"criticality_routing\":true"), "{j}");
        assert!(j.contains("\"mem_latency\":42.2500"), "{j}");
    }

    #[test]
    fn the_contenders_cover_every_backend_name() {
        let names: Vec<_> = contenders().iter().map(NocBackendKind::name).collect();
        assert_eq!(names, ["ring", "mesh", "buffered"]);
    }

    #[test]
    fn backend_filter_prunes_the_matrix() {
        // An unknown name matches no contender: zero cells run.
        let r = sweep_backend(Scale::Quick, Some("token-ring"));
        assert!(r.entries.is_empty());
    }

    #[test]
    fn one_cell_of_the_matrix_runs_and_measures() {
        let mut sys = loaded(NocBackendKind::Mesh, Benchmark::WordCount, true, 50);
        let r = sys.run(MAX_CYCLES);
        assert!(sys.is_done(), "mesh wordcount cell drained");
        assert!(r.instructions > 0);
    }
}
