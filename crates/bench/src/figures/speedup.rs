//! `scale` bench: host-side scaling of the sharded simulator.
//!
//! Runs Fig. 22's SmarCo workload (a MapReduce job over the whole chip)
//! once per PDES worker count and reports the wall-clock time of each run
//! and its speedup over the sequential one. Every run must produce a
//! bit-identical [`smarco_core::SmarcoReport`] — the sweep asserts it, so
//! this bench doubles as a determinism check at full-chip scale.

use std::time::Instant;

use smarco_core::config::SmarcoConfig;
use smarco_workloads::Benchmark;

use crate::harness::smarco_mapreduce;
use crate::Scale;

/// One worker count's measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupRow {
    /// PDES worker threads driving the shards.
    pub workers: usize,
    /// Host wall-clock seconds for the run.
    pub seconds: f64,
    /// Sequential wall-clock over this run's (≥ 1.0 means faster).
    pub speedup: f64,
}

/// The bench's data.
#[derive(Debug, Clone)]
pub struct ScaleBench {
    /// One row per worker count, sequential first.
    pub rows: Vec<SpeedupRow>,
    /// Simulated cycles of the (identical) runs.
    pub cycles: u64,
    /// Host CPUs available to the sweep — speedup is bounded by this:
    /// on a single-core host every extra worker is pure overhead.
    pub host_cpus: usize,
}

impl ScaleBench {
    /// The measured speedup at `workers`, if that count was swept.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workers == workers)
            .map(|r| r.speedup)
    }
}

/// Runs Fig. 22's workload once per entry of `worker_counts`.
///
/// # Panics
///
/// Panics if any parallel run's report differs from the sequential one —
/// the determinism contract is part of what this bench measures.
pub fn run(scale: Scale, worker_counts: &[usize]) -> ScaleBench {
    let (cfg, map_ops, reduce_ops) = match scale {
        Scale::Quick => (SmarcoConfig::tiny(), 1_500, 500),
        Scale::Paper => (SmarcoConfig::smarco(), 4_000, 1_500),
    };
    let bench = Benchmark::WordCount;
    let mut rows = Vec::new();
    let mut baseline = None;
    let mut seq_seconds = 0.0;
    let mut cycles = 0;
    for &workers in worker_counts {
        let mut wcfg = cfg.clone();
        wcfg.workers = workers;
        let start = Instant::now();
        let run = smarco_mapreduce(bench, &wcfg, map_ops, reduce_ops, cfg.tcg.resident_threads);
        let seconds = start.elapsed().as_secs_f64();
        cycles = run.total_cycles();
        match &baseline {
            None => {
                baseline = Some(run.report);
                seq_seconds = seconds;
            }
            Some(seq) => assert_eq!(
                &run.report, seq,
                "run with {workers} workers diverged from the first"
            ),
        }
        rows.push(SpeedupRow {
            workers,
            seconds,
            speedup: seq_seconds / seconds,
        });
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    ScaleBench {
        rows,
        cycles,
        host_cpus,
    }
}

impl std::fmt::Display for ScaleBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "scale: wall-clock of Fig. 22's workload vs PDES workers \
             ({} simulated cycles, bit-identical reports, {} host CPUs)",
            self.cycles, self.host_cpus
        )?;
        writeln!(f, "  {:>8} {:>10} {:>9}", "workers", "seconds", "speedup")?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>8} {:>10.3} {:>8.2}x",
                r.workers, r.seconds, r.speedup
            )?;
        }
        Ok(())
    }
}
