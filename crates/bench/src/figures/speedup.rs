//! `scale` bench: host-side scaling of the sharded simulator.
//!
//! Runs Fig. 22's SmarCo workload (a MapReduce job over the whole chip)
//! once per PDES worker count and reports the wall-clock time of each run
//! and its speedup over the sequential one. Every run must produce a
//! bit-identical [`smarco_core::SmarcoReport`] — the sweep asserts it, so
//! this bench doubles as a determinism check at full-chip scale.
//!
//! A second study measures event-horizon cycle skipping on the
//! memory-intensive benchmark (TeraSort: the highest load fraction of the
//! HTC suite combined with a store-heavy mix, so its threads spend most
//! cycles stalled on DRAM): the same job runs with skipping off and on,
//! asserts bit-identical reports, and records both in the machine-readable
//! [`crate::cycle_skip::SkipReport`] the `scale` binary writes to
//! `BENCH_cycle_skip.json`.

use std::time::Instant;

use smarco_core::config::SmarcoConfig;
use smarco_workloads::Benchmark;

use crate::cycle_skip::{SkipEntry, SkipReport};
use crate::harness::smarco_mapreduce;
use crate::Scale;

/// One worker count's measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupRow {
    /// PDES worker threads driving the shards.
    pub workers: usize,
    /// Host wall-clock seconds for the run.
    pub seconds: f64,
    /// Sequential wall-clock over this run's (≥ 1.0 means faster).
    pub speedup: f64,
}

/// The bench's data.
#[derive(Debug, Clone)]
pub struct ScaleBench {
    /// One row per worker count, sequential first.
    pub rows: Vec<SpeedupRow>,
    /// Simulated cycles of the (identical) runs.
    pub cycles: u64,
    /// Host CPUs available to the sweep — speedup is bounded by this:
    /// on a single-core host every extra worker is pure overhead.
    pub host_cpus: usize,
    /// Machine-readable per-run records (the worker sweep plus the
    /// skip-off/skip-on study), destined for `BENCH_cycle_skip.json`.
    pub skip: SkipReport,
}

impl ScaleBench {
    /// The measured speedup at `workers`, if that count was swept.
    pub fn speedup_at(&self, workers: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.workers == workers)
            .map(|r| r.speedup)
    }

    /// The skip study's (off, on) pair.
    pub fn skip_study(&self) -> Option<(&SkipEntry, &SkipEntry)> {
        let off = self.skip.entries.iter().find(|e| !e.cycle_skip)?;
        let on = self
            .skip
            .entries
            .iter()
            .find(|e| e.cycle_skip && e.label == off.label && e.workers == off.workers)?;
        Some((off, on))
    }
}

/// Runs one MapReduce job and records it as a [`SkipEntry`].
fn measured(
    label: &str,
    bench: Benchmark,
    cfg: &SmarcoConfig,
    map_ops: u64,
    reduce_ops: u64,
) -> (smarco_runtime::MapReduceRun, SkipEntry) {
    let start = Instant::now();
    let run = smarco_mapreduce(bench, cfg, map_ops, reduce_ops, cfg.tcg.resident_threads);
    let wall_seconds = start.elapsed().as_secs_f64();
    let entry = SkipEntry {
        label: label.to_string(),
        workers: cfg.workers,
        cycle_skip: cfg.cycle_skip,
        wall_seconds,
        simulated_cycles: run.total_cycles(),
        stepped_cycles: run.stepped_cycles,
        skipped_cycles: run.skipped_cycles,
    };
    (run, entry)
}

/// Runs Fig. 22's workload once per entry of `worker_counts`, then the
/// TeraSort cycle-skip study.
///
/// # Panics
///
/// Panics if any parallel run's report differs from the sequential one,
/// if the skip-off run of the study differs from the skip-on run, or if
/// the skipper never engages on the memory-intensive study (a zero skip
/// ratio there means the event horizons are dead) — the determinism and
/// liveness contracts are part of what this bench measures.
pub fn run(scale: Scale, worker_counts: &[usize]) -> ScaleBench {
    let (cfg, map_ops, reduce_ops) = match scale {
        Scale::Quick => (SmarcoConfig::tiny(), 1_500, 500),
        Scale::Paper => (SmarcoConfig::smarco(), 4_000, 1_500),
    };
    let bench = Benchmark::WordCount;
    let mut rows = Vec::new();
    let mut skip = SkipReport::default();
    let mut baseline = None;
    let mut seq_seconds = 0.0;
    let mut cycles = 0;
    for &workers in worker_counts {
        let mut wcfg = cfg.clone();
        wcfg.workers = workers;
        let (run, entry) = measured("wordcount", bench, &wcfg, map_ops, reduce_ops);
        let seconds = entry.wall_seconds;
        cycles = run.total_cycles();
        skip.entries.push(entry);
        match &baseline {
            None => {
                baseline = Some(run.report);
                seq_seconds = seconds;
            }
            Some(seq) => assert_eq!(
                &run.report, seq,
                "run with {workers} workers diverged from the first"
            ),
        }
        rows.push(SpeedupRow {
            workers,
            seconds,
            speedup: seq_seconds / seconds,
        });
    }

    // Cycle-skip study: the memory-intensive benchmark, skipping off vs on
    // at the same worker count.
    let study = Benchmark::TeraSort;
    let mut off_cfg = cfg.clone();
    off_cfg.cycle_skip = false;
    let (off_run, off_entry) = measured("terasort", study, &off_cfg, map_ops, reduce_ops);
    let (on_run, on_entry) = measured("terasort", study, &cfg, map_ops, reduce_ops);
    assert_eq!(
        on_run.report, off_run.report,
        "cycle skipping changed the study's report"
    );
    assert!(
        on_entry.skip_ratio() > 0.0,
        "skipper never engaged on the memory-intensive study"
    );
    skip.entries.push(off_entry);
    skip.entries.push(on_entry);

    skip.host = crate::host::HostInfo::capture(worker_counts, cfg.cycle_skip, scale);
    let host_cpus = skip.host.cpus;
    ScaleBench {
        rows,
        cycles,
        host_cpus,
        skip,
    }
}

impl std::fmt::Display for ScaleBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "scale: wall-clock of Fig. 22's workload vs PDES workers \
             ({} simulated cycles, bit-identical reports, {} host CPUs)",
            self.cycles, self.host_cpus
        )?;
        writeln!(f, "  {:>8} {:>10} {:>9}", "workers", "seconds", "speedup")?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>8} {:>10.3} {:>8.2}x",
                r.workers, r.seconds, r.speedup
            )?;
        }
        if let Some((off, on)) = self.skip_study() {
            let speedup = off.wall_seconds / on.wall_seconds.max(1e-12);
            let stepped_cut = 1.0 - on.stepped_cycles as f64 / off.stepped_cycles.max(1) as f64;
            writeln!(
                f,
                "cycle skipping on {} ({} workers): {:.2}x wall-clock, \
                 {:.0}% fewer stepped cycles, skip ratio {:.2}",
                off.label,
                off.workers,
                speedup,
                stepped_cut * 100.0,
                on.skip_ratio()
            )?;
        }
        Ok(())
    }
}
