//! Fig. 26: the taped-out 40 nm prototype's energy efficiency over the
//! Xeon.
//!
//! The prototype supports 256 threads (32 cores here) at a lower clock on
//! the older node; efficiency gains land at 2.05–6.84× (avg 3.85×) —
//! roughly half the full chip's, with the same per-benchmark ordering.

use smarco_baseline::XeonConfig;
use smarco_core::config::SmarcoConfig;
use smarco_power::TechNode;
use smarco_workloads::Benchmark;

use crate::figures::fig22::{compare_one, CompareRow};
use crate::Scale;

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig26 {
    /// One row per benchmark (the `speedup` field is informational; the
    /// paper's Fig. 26 reports efficiency).
    pub rows: Vec<CompareRow>,
}

impl Fig26 {
    /// Average energy-efficiency improvement.
    pub fn avg_efficiency(&self) -> f64 {
        self.rows.iter().map(|r| r.energy_efficiency).sum::<f64>() / self.rows.len() as f64
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig26 {
    let scfg = SmarcoConfig::prototype_40nm();
    let (xcfg, map_ops, reduce_ops) = match scale {
        Scale::Quick => (XeonConfig::small(), 1_500, 500),
        Scale::Paper => (XeonConfig::e7_8890v4(), 4_000, 1_500),
    };
    let rows = Benchmark::ALL
        .iter()
        .map(|&b| compare_one(b, &scfg, &xcfg, TechNode::n40(), map_ops, reduce_ops))
        .collect();
    Fig26 { rows }
}

impl std::fmt::Display for Fig26 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 26: 40 nm prototype energy efficiency over Xeon")?;
        for r in &self.rows {
            writeln!(f, "  {:<12} {:>8.2}x", r.bench.name(), r.energy_efficiency)?;
        }
        writeln!(
            f,
            "  {:<12} {:>8.2}x   (paper: 3.85x avg)",
            "average",
            self.avg_efficiency()
        )
    }
}
