//! Fig. 22: SmarCo vs Xeon — performance and energy efficiency.
//!
//! Each benchmark runs the same total instruction count on both machines:
//! on SmarCo as a MapReduce job across the chip, on the Xeon model as one
//! software thread per hardware context. Speedup is wall-clock time ratio
//! (cycles ÷ clock); energy efficiency is throughput-per-watt ratio from
//! the activity-based power models. The paper reports 4.86–18.57×
//! speedup (avg 10.11×) and 3.34–12.77× efficiency (avg 6.95×).

use std::time::Instant;

use smarco_baseline::XeonConfig;
use smarco_core::config::SmarcoConfig;
use smarco_power::{efficiency_ratio, run_energy, TechNode};
use smarco_workloads::Benchmark;

use crate::cycle_skip::{SkipEntry, SkipReport};
use crate::harness::{smarco_mapreduce, xeon_system};
use crate::Scale;

/// One benchmark's comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareRow {
    /// Which benchmark.
    pub bench: Benchmark,
    /// Wall-clock speedup (Xeon time / SmarCo time at equal work).
    pub speedup: f64,
    /// Energy-efficiency ratio (SmarCo perf/W over Xeon perf/W).
    pub energy_efficiency: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig22 {
    /// One row per benchmark.
    pub rows: Vec<CompareRow>,
    /// Per-benchmark SmarCo-run perf records (wall clock + cycle-skip
    /// counters), written to `BENCH_cycle_skip.json` by the binary.
    pub skip: SkipReport,
}

impl Fig22 {
    /// Geometric-mean-free average speedup, as the paper reports.
    pub fn avg_speedup(&self) -> f64 {
        self.rows.iter().map(|r| r.speedup).sum::<f64>() / self.rows.len() as f64
    }

    /// Average energy-efficiency improvement.
    pub fn avg_efficiency(&self) -> f64 {
        self.rows.iter().map(|r| r.energy_efficiency).sum::<f64>() / self.rows.len() as f64
    }
}

/// Runs one benchmark's comparison at the given configs and node.
pub fn compare_one(
    bench: Benchmark,
    scfg: &SmarcoConfig,
    xcfg: &XeonConfig,
    node: TechNode,
    map_ops: u64,
    reduce_ops: u64,
) -> CompareRow {
    compare_one_timed(bench, scfg, xcfg, node, map_ops, reduce_ops).0
}

/// [`compare_one`] plus the SmarCo run's perf record.
pub fn compare_one_timed(
    bench: Benchmark,
    scfg: &SmarcoConfig,
    xcfg: &XeonConfig,
    node: TechNode,
    map_ops: u64,
    reduce_ops: u64,
) -> (CompareRow, SkipEntry) {
    let start = Instant::now();
    let run = smarco_mapreduce(bench, scfg, map_ops, reduce_ops, scfg.tcg.resident_threads);
    let wall_seconds = start.elapsed().as_secs_f64();
    let smarco_seconds = run.total_cycles() as f64 / (scfg.freq_ghz * 1e9);
    let total_work = run.report.instructions;
    // Xeon: one software thread per context, equal total work.
    let threads = xcfg.contexts();
    let ops = (total_work / threads as u64).max(1);
    let mut xeon = xeon_system(bench, xcfg, threads, ops);
    let xr = xeon.run(u64::MAX / 2);
    let xeon_seconds = xr.cycles as f64 / (xcfg.freq_ghz * 1e9);
    // Normalize to per-instruction time in case rounding skewed totals.
    let s_time_pi = smarco_seconds / run.report.instructions as f64;
    let x_time_pi = xeon_seconds / xr.instructions as f64;
    let speedup = x_time_pi / s_time_pi;
    let se = run_energy(&run.report, scfg, node);
    let xe = smarco_power::energy::xeon_run_energy(&xr, xcfg);
    if std::env::var_os("SMARCO_FIG22_DEBUG").is_some() {
        eprintln!(
            "{:<10} smarco: cyc={} ipc={:.2} instr={} dramutil={:.2} lat={:.0} | xeon: cyc={} ipc={:.2} idle={:.2} l1={:.2} dramutil={:.2}",
            bench.name(),
            run.report.cycles,
            run.report.ipc(),
            run.report.instructions,
            run.report.dram_utilization,
            run.report.mem_latency.mean(),
            xr.cycles,
            xr.ipc(),
            xr.idle_ratio(),
            1.0 - xr.l1d.ratio(),
            xr.dram_utilization,
        );
    }
    let row = CompareRow {
        bench,
        speedup,
        energy_efficiency: efficiency_ratio(&se, &xe),
    };
    let entry = SkipEntry {
        label: bench.name().to_ascii_lowercase(),
        workers: scfg.workers,
        cycle_skip: scfg.cycle_skip,
        wall_seconds,
        simulated_cycles: run.total_cycles(),
        stepped_cycles: run.stepped_cycles,
        skipped_cycles: run.skipped_cycles,
    };
    (row, entry)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig22 {
    run_with(scale, 1)
}

/// [`run`] with the SmarCo side simulated by `workers` PDES threads
/// (`--parallel N`). Results are bit-identical to the sequential run.
pub fn run_with(scale: Scale, workers: usize) -> Fig22 {
    let (mut scfg, xcfg, map_ops, reduce_ops) = match scale {
        Scale::Quick => (SmarcoConfig::tiny(), XeonConfig::small(), 1_500, 500),
        Scale::Paper => (
            SmarcoConfig::smarco(),
            XeonConfig::e7_8890v4(),
            4_000,
            1_500,
        ),
    };
    scfg.workers = workers.max(1);
    let mut rows = Vec::new();
    let mut skip = SkipReport::default();
    for &b in &Benchmark::ALL {
        let (row, entry) = compare_one_timed(b, &scfg, &xcfg, TechNode::n32(), map_ops, reduce_ops);
        rows.push(row);
        skip.entries.push(entry);
    }
    Fig22 { rows, skip }
}

impl std::fmt::Display for Fig22 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 22: SmarCo over Xeon (equal work)")?;
        writeln!(f, "  {:<12} {:>9} {:>12}", "bench", "speedup", "energy-eff")?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<12} {:>8.2}x {:>11.2}x",
                r.bench.name(),
                r.speedup,
                r.energy_efficiency
            )?;
        }
        writeln!(
            f,
            "  {:<12} {:>8.2}x {:>11.2}x   (paper: 10.11x / 6.95x)",
            "average",
            self.avg_speedup(),
            self.avg_efficiency()
        )
    }
}
