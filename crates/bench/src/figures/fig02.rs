//! Fig. 2: a CDN node on a conventional processor.
//!
//! As connections approach the 10 Gbps NIC limit (~400 streams at
//! 25 Mbps), CPU utilization stays under ~10 % while branch misses exceed
//! 10 % and the L1 miss ratio reaches ~40 % — the machine is simultaneously
//! under-utilized and cache-hostile.

use smarco_baseline::{ConventionalSystem, XeonConfig};
use smarco_sim::rng::SimRng;
use smarco_workloads::cdn::CdnConfig;
use smarco_workloads::HtcStream;

use crate::Scale;

/// One point of the client sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdnRow {
    /// Concurrent client connections.
    pub clients: usize,
    /// Fraction of total issue capacity used over the service window.
    pub cpu_utilization: f64,
    /// Branch misprediction ratio.
    pub branch_miss: f64,
    /// L1 data miss ratio.
    pub l1_miss: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig02 {
    /// Sweep rows.
    pub rows: Vec<CdnRow>,
    /// The NIC-imposed client cap.
    pub max_clients: usize,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig02 {
    let cdn = CdnConfig::paper();
    let cfg = match scale {
        Scale::Quick => XeonConfig::small(),
        Scale::Paper => XeonConfig::e7_8890v4(),
    };
    // Service window in seconds of simulated machine time.
    let window_s = match scale {
        Scale::Quick => 0.0002,
        Scale::Paper => 0.002,
    };
    let window_cycles = (window_s * cfg.freq_ghz * 1e9) as u64;
    let sweep = [50usize, 100, 200, 300, 400];
    let mut rows = Vec::new();
    for &clients in &sweep {
        let mut sys = ConventionalSystem::new(cfg);
        for c in 0..clients {
            let params = cdn.connection_params(c, window_s);
            sys.spawn(Box::new(HtcStream::new(params, SimRng::new(77 + c as u64))));
        }
        let r = sys.run(window_cycles * 4);
        // Utilization over the service *window*: the NIC fixes how much
        // work exists per window, however fast the CPU finishes it.
        let capacity = (cfg.cores * cfg.issue_width) as f64 * window_cycles as f64;
        rows.push(CdnRow {
            clients,
            cpu_utilization: (r.issue_used as f64 / capacity).min(1.0),
            branch_miss: 1.0 - r.branches.ratio(),
            l1_miss: 1.0 - r.l1d.ratio(),
        });
    }
    Fig02 {
        rows,
        max_clients: cdn.max_clients(),
    }
}

impl std::fmt::Display for Fig02 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 2: CDN on a conventional CPU (NIC cap = {} clients)",
            self.max_clients
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  clients={:<4} cpu_util={:.3} branch_miss={:.3} l1_miss={:.3}",
                r.clients, r.cpu_utilization, r.branch_miss, r.l1_miss
            )?;
        }
        Ok(())
    }
}
