//! One module per paper table/figure; each exposes `run(Scale)` returning
//! structured rows that the `src/bin/` binaries print and the integration
//! tests assert shapes on.

pub mod ablations;
pub mod fig01;
pub mod fig02;
pub mod fig08;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig26;
pub mod speedup;
pub mod table1;
pub mod table2;
