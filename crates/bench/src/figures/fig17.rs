//! Fig. 17: per-core IPC vs resident thread count (1–8).
//!
//! IPC grows near-linearly to 4 threads (each new thread claims its own
//! pair slot), then sub-linearly from 5 to 8 (new threads arrive as
//! friends, adding only latency hiding); Search benefits least because it
//! has the fewest memory instructions to hide.

use smarco_workloads::Benchmark;

use crate::harness::tcg_ipc;
use crate::Scale;

/// One benchmark's IPC curve.
#[derive(Debug, Clone, PartialEq)]
pub struct IpcRow {
    /// Which benchmark.
    pub bench: Benchmark,
    /// IPC at 1..=8 resident threads.
    pub ipc: [f64; 8],
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig17 {
    /// One row per benchmark.
    pub rows: Vec<IpcRow>,
}

/// Memory latency the single-core harness models (ring + DRAM round
/// trip).
pub const MEM_LATENCY: u64 = 80;

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig17 {
    let window = scale.scaled(20_000, 200_000);
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let mut ipc = [0.0; 8];
        for (i, slot) in ipc.iter_mut().enumerate() {
            *slot = tcg_ipc(bench, i + 1, window, MEM_LATENCY);
        }
        rows.push(IpcRow { bench, ipc });
    }
    Fig17 { rows }
}

impl std::fmt::Display for Fig17 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 17: core IPC vs resident threads")?;
        writeln!(
            f,
            "  {:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "bench", "1", "2", "3", "4", "5", "6", "7", "8"
        )?;
        for r in &self.rows {
            write!(f, "  {:<12}", r.bench.name())?;
            for v in r.ipc {
                write!(f, " {v:>6.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
