//! Fig. 21: task exit times under the software Deadline Scheduler vs the
//! hardware laxity-aware scheduler.
//!
//! One sub-ring holds 128 resident RNC thread tasks but only 64 run at any
//! instant; the scheduler decides, every quantum, which 64 make progress.
//! All tasks share a 340 000-cycle deadline and each needs ≈ half the
//! deadline of solo work, so under processor sharing everything exits
//! near the deadline. The software Deadline Scheduler (coarse OS quantum)
//! leaves quantum-sized progress offsets: exits spread wide and some miss
//! the deadline. The hardware laxity-aware scheduler re-decides at a fine
//! grain, always running the least-laxity tasks: progress equalizes and
//! the exit window tightens — the earliest exit is *later*, the success
//! rate higher, exactly the paper's observation.
//!
//! The figure is built on the observability layer: each run executes
//! under [`run_tasks_preemptive_traced`] with an [`EventTrace`] sink, and
//! the exit-time/laxity distributions are derived from the captured
//! `task_dispatch` / `task_exit` events.

use smarco_sched::executor::run_tasks_preemptive_traced;
use smarco_sched::{DeadlineScheduler, ExecutorReport, LaxityAwareScheduler, Task, TaskScheduler};
use smarco_sim::obs::{EventKind, EventTrace};
use smarco_sim::rng::SimRng;
use smarco_sim::stats::Percentiles;
use smarco_sim::Cycle;

use crate::Scale;

/// The common deadline (cycles), as in the paper.
pub const DEADLINE: Cycle = 340_000;
/// Tasks per sub-ring (16 cores × 8 resident threads).
pub const TASKS: u64 = 128;
/// Running slots per sub-ring (16 cores × 4 running threads).
pub const SLOTS: usize = 64;
/// OS scheduling quantum for the software scheduler.
pub const SW_QUANTUM: Cycle = 20_000;
/// Hardware re-decision interval.
pub const HW_QUANTUM: Cycle = 4_000;

/// Observability summary of one scheduler run, derived from its event
/// trace rather than the executor's records.
#[derive(Debug, Clone)]
pub struct SchedObs {
    /// The captured scheduler-track events.
    pub trace: EventTrace,
    /// Exit-cycle distribution (p50/p90/p99 of `task_exit` timestamps).
    pub exits: Percentiles,
    /// Laxity (cycles of slack) at each task's first dispatch, clamped
    /// at zero.
    pub dispatch_laxity: Percentiles,
    /// Deadline misses counted from `task_exit` events.
    pub misses: u64,
}

impl SchedObs {
    fn from_trace(trace: EventTrace) -> Self {
        let mut exits = Percentiles::new();
        let mut dispatch_laxity = Percentiles::new();
        let mut misses = 0;
        for ev in trace.iter() {
            match ev.kind {
                EventKind::TaskExit { deadline_met, .. } => {
                    exits.record(ev.cycle as f64);
                    if !deadline_met {
                        misses += 1;
                    }
                }
                EventKind::TaskDispatch { laxity, .. } => {
                    dispatch_laxity.record(laxity.max(0) as f64);
                }
                _ => {}
            }
        }
        Self {
            trace,
            exits,
            dispatch_laxity,
            misses,
        }
    }
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig21 {
    /// Software Deadline Scheduler run (left panel).
    pub software: ExecutorReport,
    /// Hardware laxity-aware run (right panel).
    pub hardware: ExecutorReport,
    /// Trace-derived summary of the software run.
    pub software_obs: SchedObs,
    /// Trace-derived summary of the hardware run.
    pub hardware_obs: SchedObs,
}

/// RNC task set: equal deadlines; solo work ≈ half the deadline (two
/// tasks share each running slot) with a few percent variation.
pub fn rnc_tasks(seed: u64) -> Vec<Task> {
    let mut rng = SimRng::new(seed);
    let mean = DEADLINE / 2 - DEADLINE / 50;
    (0..TASKS)
        .map(|i| {
            let spread = mean / 12;
            let work = mean - spread / 2 + rng.gen_range(spread);
            Task::new(i, 0, DEADLINE, work)
        })
        .collect()
}

fn traced_run(
    scheduler: &mut dyn TaskScheduler,
    tasks: Vec<Task>,
    quantum: Cycle,
) -> (ExecutorReport, SchedObs) {
    // 128 dispatches + 128 exits fit comfortably; headroom for reuse.
    let mut trace = EventTrace::new(1 << 12);
    let report =
        run_tasks_preemptive_traced(scheduler, tasks, SLOTS, quantum, 100_000_000, &mut trace);
    (report, SchedObs::from_trace(trace))
}

/// Runs the experiment (the task geometry is the paper's; `scale` is
/// accepted for interface uniformity).
pub fn run(_scale: Scale) -> Fig21 {
    let tasks = rnc_tasks(21);
    let mut sw = DeadlineScheduler::with_overhead(200);
    let (software, software_obs) = traced_run(&mut sw, tasks.clone(), SW_QUANTUM);
    let mut hw = LaxityAwareScheduler::subring();
    let (hardware, hardware_obs) = traced_run(&mut hw, tasks, HW_QUANTUM);
    Fig21 {
        software,
        hardware,
        software_obs,
        hardware_obs,
    }
}

impl std::fmt::Display for Fig21 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 21: exit times of {TASKS} tasks, deadline {DEADLINE} cycles"
        )?;
        for (label, r, o) in [
            ("software deadline", &self.software, &self.software_obs),
            ("hardware laxity", &self.hardware, &self.hardware_obs),
        ] {
            let (min, max) = r.exit_range();
            writeln!(
                f,
                "  {:<18} exits {:>7}..{:<7} spread={:<7} success={:.1}%",
                label,
                min,
                max,
                r.exit_spread(),
                r.success_rate() * 100.0
            )?;
            writeln!(
                f,
                "  {:<18}   exit p50={:.0} p90={:.0} p99={:.0}  dispatch-laxity p50={:.0}  misses={}",
                "",
                o.exits.p50(),
                o.exits.p90(),
                o.exits.p99(),
                o.dispatch_laxity.p50(),
                o.misses,
            )?;
        }
        Ok(())
    }
}
