//! Fig. 21: task exit times under the software Deadline Scheduler vs the
//! hardware laxity-aware scheduler.
//!
//! One sub-ring holds 128 resident RNC thread tasks but only 64 run at any
//! instant; the scheduler decides, every quantum, which 64 make progress.
//! All tasks share a 340 000-cycle deadline and each needs ≈ half the
//! deadline of solo work, so under processor sharing everything exits
//! near the deadline. The software Deadline Scheduler (coarse OS quantum)
//! leaves quantum-sized progress offsets: exits spread wide and some miss
//! the deadline. The hardware laxity-aware scheduler re-decides at a fine
//! grain, always running the least-laxity tasks: progress equalizes and
//! the exit window tightens — the earliest exit is *later*, the success
//! rate higher, exactly the paper's observation.

use smarco_sched::executor::run_tasks_preemptive;
use smarco_sched::{DeadlineScheduler, ExecutorReport, LaxityAwareScheduler, Task};
use smarco_sim::rng::SimRng;
use smarco_sim::Cycle;

use crate::Scale;

/// The common deadline (cycles), as in the paper.
pub const DEADLINE: Cycle = 340_000;
/// Tasks per sub-ring (16 cores × 8 resident threads).
pub const TASKS: u64 = 128;
/// Running slots per sub-ring (16 cores × 4 running threads).
pub const SLOTS: usize = 64;
/// OS scheduling quantum for the software scheduler.
pub const SW_QUANTUM: Cycle = 20_000;
/// Hardware re-decision interval.
pub const HW_QUANTUM: Cycle = 4_000;

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig21 {
    /// Software Deadline Scheduler run (left panel).
    pub software: ExecutorReport,
    /// Hardware laxity-aware run (right panel).
    pub hardware: ExecutorReport,
}

/// RNC task set: equal deadlines; solo work ≈ half the deadline (two
/// tasks share each running slot) with a few percent variation.
pub fn rnc_tasks(seed: u64) -> Vec<Task> {
    let mut rng = SimRng::new(seed);
    let mean = DEADLINE / 2 - DEADLINE / 50;
    (0..TASKS)
        .map(|i| {
            let spread = mean / 12;
            let work = mean - spread / 2 + rng.gen_range(spread);
            Task::new(i, 0, DEADLINE, work)
        })
        .collect()
}

/// Runs the experiment (the task geometry is the paper's; `scale` is
/// accepted for interface uniformity).
pub fn run(_scale: Scale) -> Fig21 {
    let tasks = rnc_tasks(21);
    let mut sw = DeadlineScheduler::with_overhead(200);
    let software = run_tasks_preemptive(&mut sw, tasks.clone(), SLOTS, SW_QUANTUM, 100_000_000);
    let mut hw = LaxityAwareScheduler::subring();
    let hardware = run_tasks_preemptive(&mut hw, tasks, SLOTS, HW_QUANTUM, 100_000_000);
    Fig21 { software, hardware }
}

impl std::fmt::Display for Fig21 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 21: exit times of {TASKS} tasks, deadline {DEADLINE} cycles")?;
        for (label, r) in [("software deadline", &self.software), ("hardware laxity", &self.hardware)] {
            let (min, max) = r.exit_range();
            writeln!(
                f,
                "  {:<18} exits {:>7}..{:<7} spread={:<7} success={:.1}%",
                label,
                min,
                max,
                r.exit_spread(),
                r.success_rate() * 100.0
            )?;
        }
        Ok(())
    }
}
