//! Fig. 18: high-density NoC throughput vs channel slice width.
//!
//! Slicing the ring links from 16-byte down to 2-byte self-governed
//! channels raises delivered packets/cycle for every HTC benchmark;
//! KMP and RNC (dominated by 1–2-byte packets) keep gaining all the way
//! to 2 bytes, while K-means (few tiny packets) flattens below 8 bytes.

use smarco_noc::link::LinkConfig;
use smarco_noc::traffic::{Pattern, Testbench, TrafficConfig};
use smarco_noc::NocConfig;
use smarco_workloads::Benchmark;

use crate::harness::size_mix_of;
use crate::Scale;

/// Slice widths swept, in bytes (paper's 16 → 2).
pub const SLICES: [u32; 4] = [16, 8, 4, 2];

/// One benchmark's throughput curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Which benchmark.
    pub bench: Benchmark,
    /// `(slice_bytes, packets/cycle)` per swept width.
    pub by_slice: Vec<(u32, f64)>,
}

impl ThroughputRow {
    /// Throughput at a slice width.
    pub fn at(&self, slice: u32) -> f64 {
        self.by_slice
            .iter()
            .find(|&&(s, _)| s == slice)
            .map(|&(_, t)| t)
            .unwrap_or(0.0)
    }

    /// Improvement of `slice` over the 16-byte baseline.
    pub fn improvement(&self, slice: u32) -> f64 {
        let base = self.at(16);
        if base == 0.0 {
            0.0
        } else {
            self.at(slice) / base
        }
    }
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig18 {
    /// One row per benchmark.
    pub rows: Vec<ThroughputRow>,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig18 {
    let (noc, cycles, drain) = match scale {
        Scale::Quick => (NocConfig::tiny(), 3_000u64, 6_000u64),
        Scale::Paper => (NocConfig::smarco(), 10_000, 20_000),
    };
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let mut by_slice = Vec::new();
        for &slice in &SLICES {
            let mut cfg = noc;
            cfg.main_link = LinkConfig::main_ring().sliced(slice);
            cfg.sub_link =
                LinkConfig::sub_ring().sliced(slice.min(LinkConfig::sub_ring().max_capacity()));
            let traffic = TrafficConfig {
                rate: 4.0, // saturating injection: measure network capacity
                pattern: Pattern::ToMemory,
                sizes: size_mix_of(bench),
            };
            let report = Testbench::new(cfg, traffic, 18).run(cycles, drain);
            by_slice.push((slice, report.throughput));
        }
        rows.push(ThroughputRow { bench, by_slice });
    }
    Fig18 { rows }
}

impl std::fmt::Display for Fig18 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 18: throughput (pkts/cycle) and improvement over 16 B slices"
        )?;
        writeln!(
            f,
            "  {:<12} {:>8} {:>8} {:>8} {:>8}  impr@2B",
            "bench", "16B", "8B", "4B", "2B"
        )?;
        for r in &self.rows {
            write!(f, "  {:<12}", r.bench.name())?;
            for &s in &SLICES {
                write!(f, " {:>8.3}", r.at(s))?;
            }
            writeln!(f, "  {:>6.2}x", r.improvement(2))?;
        }
        Ok(())
    }
}
