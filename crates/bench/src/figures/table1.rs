//! Table 1: area and power of SmarCo at 32 nm.

use smarco_core::config::SmarcoConfig;
use smarco_power::{estimate_smarco, ChipEstimate, TechNode};

use crate::Scale;

/// Runs the estimate (scale-independent: the table is analytic).
pub fn run(_scale: Scale) -> ChipEstimate {
    estimate_smarco(&SmarcoConfig::smarco(), TechNode::n32())
}
