//! Table 2: configuration comparison of the two machines.

use smarco_baseline::XeonConfig;
use smarco_core::config::SmarcoConfig;
use smarco_power::{estimate_smarco, TechNode};

use crate::Scale;

/// The rendered table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// `(parameter, xeon value, smarco value)` rows.
    pub rows: Vec<(&'static str, String, String)>,
}

/// Builds the table from the two default configurations.
pub fn run(_scale: Scale) -> Table2 {
    let s = SmarcoConfig::smarco();
    let x = XeonConfig::e7_8890v4();
    let est = estimate_smarco(&s, TechNode::n32());
    let rows = vec![
        (
            "Core",
            format!("{} cores, {} threads", x.cores, x.contexts()),
            format!("{} cores, {} threads", s.noc.cores(), s.total_threads()),
        ),
        (
            "Clock",
            format!("{:.1} GHz", x.freq_ghz),
            format!("{:.1} GHz", s.freq_ghz),
        ),
        (
            "L1",
            format!(
                "{:.2} MB I$ + {:.2} MB D$",
                x.cores as f64 * x.l1i.size_bytes as f64 / (1 << 20) as f64,
                x.cores as f64 * x.l1d.size_bytes as f64 / (1 << 20) as f64
            ),
            format!(
                "{} MB I$ + {} MB D$",
                (s.noc.cores() as u64 * s.tcg.l1i.size_bytes) >> 20,
                (s.noc.cores() as u64 * s.tcg.l1d.size_bytes) >> 20
            ),
        ),
        (
            "L2/LLC or SPM",
            format!(
                "{} MB L2 + {} MB LLC",
                (x.cores as u64 * x.l2.size_bytes) >> 20,
                x.llc.size_bytes >> 20
            ),
            format!("{} MB SPM", (s.noc.cores() as u64 * (128 << 10)) >> 20),
        ),
        (
            "NoC",
            "QPI 9.6 GT/s".to_owned(),
            format!(
                "hierarchical ring, {}-bit main / {}-bit sub",
                (s.noc.main_link.lanes_fixed_per_dir * 2 + s.noc.main_link.lanes_bidir) as u32
                    * s.noc.main_link.lane_bytes
                    * 8,
                (s.noc.sub_link.lanes_fixed_per_dir * 2 + s.noc.sub_link.lanes_bidir) as u32
                    * s.noc.sub_link.lane_bytes
                    * 8
            ),
        ),
        (
            "Memory",
            format!(
                "{:.1} GB/s",
                x.dram.bytes_per_cycle * x.dram.channels as f64 * x.freq_ghz
            ),
            format!(
                "{:.1} GB/s",
                s.dram.bytes_per_cycle * s.dram.channels as f64 * s.freq_ghz
            ),
        ),
        ("Process", "14 nm".to_owned(), "32 nm".to_owned()),
        (
            "Power",
            "165 W".to_owned(),
            format!("{:.0} W", est.total_power_w()),
        ),
        (
            "Die area",
            "-".to_owned(),
            format!("{:.0} mm2", est.total_area_mm2()),
        ),
    ];
    Table2 { rows }
}

impl std::fmt::Display for Table2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 2: Xeon E7-8890 v4 vs SmarCo")?;
        writeln!(
            f,
            "  {:<14} {:<28} {:<30}",
            "parameter", "Xeon E7-8890v4", "SmarCo"
        )?;
        for (p, x, s) in &self.rows {
            writeln!(f, "  {p:<14} {x:<28} {s:<30}")?;
        }
        Ok(())
    }
}
