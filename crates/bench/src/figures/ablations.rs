//! Ablations of the design choices DESIGN.md calls out — experiments the
//! paper argues qualitatively (§3.2's ring-vs-mesh case, §3.1's in-pair
//! threads, §3.6/§7's SPM staging) but does not plot.

use smarco_core::config::SmarcoConfig;
use smarco_noc::link::{LinkConfig, Transmittable};
use smarco_noc::mesh::Mesh;
use smarco_noc::traffic::{Pattern, SizeMix, Testbench, TrafficConfig};
use smarco_noc::NocConfig;
use smarco_sim::rng::SimRng;
use smarco_workloads::{Benchmark, HtcStream};

use crate::harness::{smarco_mapreduce, smarco_team_system};
use crate::Scale;

// ---------------------------------------------------------------- mesh --

/// Ring-vs-mesh comparison under the same HTC traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshVsRing {
    /// Ring mean / max latency (cycles).
    pub ring_mean: f64,
    /// Ring maximum observed latency.
    pub ring_max: f64,
    /// Mesh mean latency.
    pub mesh_mean: f64,
    /// Mesh maximum observed latency.
    pub mesh_max: f64,
    /// Ring delivered packets per cycle.
    pub ring_throughput: f64,
    /// Mesh delivered packets per cycle.
    pub mesh_throughput: f64,
}

#[derive(Debug)]
struct Payload {
    bytes: u32,
}

impl Transmittable for Payload {
    fn bytes(&self) -> u32 {
        self.bytes
    }
}

/// Runs HTC traffic through the hierarchical ring and a same-node-count
/// mesh; the paper's claim is the ring's simpler, more *predictable*
/// latency (§3.2).
pub fn mesh_vs_ring(scale: Scale) -> MeshVsRing {
    let (noc_cfg, side, cycles) = match scale {
        Scale::Quick => (NocConfig::tiny(), 4usize, 4_000u64),
        Scale::Paper => (NocConfig::smarco(), 16, 10_000),
    };
    let rate = 0.25;
    // --- Ring: the standard testbench.
    let traffic = TrafficConfig {
        rate,
        pattern: Pattern::ToMemory,
        sizes: SizeMix::htc(),
    };
    let mut tb = Testbench::new(noc_cfg, traffic, 99);
    let ring = tb.run(cycles, cycles * 4);

    // --- Mesh: same core count, memory at the four edge midpoints.
    let mut mesh: Mesh<Payload> = Mesh::new(side, side, LinkConfig::sub_ring());
    let mems = [
        (side / 2, 0),
        (side - 1, side / 2),
        (side / 2, side - 1),
        (0, side / 2),
    ];
    let mut rng = SimRng::new(99);
    let sizes = SizeMix::htc();
    for now in 0..cycles {
        for x in 0..side {
            for y in 0..side {
                if rng.chance(rate) {
                    let dst = mems[rng.gen_index(mems.len())];
                    let bytes = sizes.sample(&mut rng);
                    let _ = mesh.inject((x, y), dst, bytes, now, Payload { bytes });
                }
            }
        }
        let _ = mesh.tick(now);
    }
    let mut now = cycles;
    while !mesh.is_idle() && now < cycles * 5 {
        let _ = mesh.tick(now);
        now += 1;
    }
    MeshVsRing {
        ring_mean: ring.mean_latency,
        ring_max: ring.max_latency,
        mesh_mean: mesh.stats().latency.mean(),
        mesh_max: mesh.stats().latency.max(),
        ring_throughput: ring.throughput,
        mesh_throughput: mesh.stats().delivered as f64 / cycles as f64,
    }
}

impl std::fmt::Display for MeshVsRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Ablation: hierarchical ring vs 2-D mesh (HTC traffic)")?;
        writeln!(
            f,
            "  ring: mean={:.1} max={:.0} thr={:.2} pkts/cy",
            self.ring_mean, self.ring_max, self.ring_throughput
        )?;
        writeln!(
            f,
            "  mesh: mean={:.1} max={:.0} thr={:.2} pkts/cy",
            self.mesh_mean, self.mesh_max, self.mesh_throughput
        )?;
        writeln!(
            f,
            "  latency spread (max/mean): ring {:.1}x vs mesh {:.1}x",
            self.ring_max / self.ring_mean.max(1e-9),
            self.mesh_max / self.mesh_mean.max(1e-9)
        )
    }
}

// ------------------------------------------------------------- in-pair --

/// In-pair / shared-iseg ablation of one benchmark (steady-state core
/// IPC at 8 resident threads against an 80-cycle memory).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InPairRow {
    /// Which benchmark.
    pub bench: Benchmark,
    /// IPC with both mechanisms on (the shipped design).
    pub full: f64,
    /// IPC without the in-pair friend switch (coarse-grained blocking).
    pub no_inpair: f64,
    /// IPC without the shared-instruction-segment prefetch.
    pub no_iseg: f64,
}

/// Runs every benchmark on one TCG core with each mechanism disabled in
/// turn — the latency-bound regime where the mechanisms matter.
pub fn inpair_ablation(scale: Scale) -> Vec<InPairRow> {
    use smarco_core::config::TcgConfig;
    let window = scale.scaled(20_000, 100_000);
    let run = |bench: Benchmark, in_pair: bool, shared_iseg: bool| {
        let cfg = TcgConfig {
            in_pair,
            shared_iseg,
            ..TcgConfig::smarco()
        };
        crate::harness::tcg_ipc_with(bench, cfg, window, 80)
    };
    Benchmark::ALL
        .iter()
        .map(|&bench| InPairRow {
            bench,
            full: run(bench, true, true),
            no_inpair: run(bench, false, true),
            no_iseg: run(bench, true, false),
        })
        .collect()
}

// --------------------------------------------------------- spm staging --

/// SPM staging ablation: the same MapReduce job with slices DMA-staged
/// into SPM vs addressed in DRAM (the §7 "data penetration and prefetch"
/// direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagingRow {
    /// Which benchmark.
    pub bench: Benchmark,
    /// Job cycles with SPM staging.
    pub staged_cycles: u64,
    /// Job cycles without.
    pub unstaged_cycles: u64,
    /// DRAM requests with staging.
    pub staged_requests: u64,
    /// DRAM requests without.
    pub unstaged_requests: u64,
}

/// Runs the MapReduce job both ways. "Unstaged" simply sizes slices past
/// the SPM share, so the framework leaves them in DRAM.
pub fn staging_ablation(scale: Scale) -> Vec<StagingRow> {
    let (map_ops, reduce_ops) = match scale {
        Scale::Quick => (1_000, 400),
        Scale::Paper => (4_000, 1_500),
    };
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let staged = smarco_mapreduce(bench, &SmarcoConfig::tiny(), map_ops, reduce_ops, 8);
            // Oversized slices: same ops, data stays in DRAM.
            let cfg = SmarcoConfig::tiny();
            let mut sys = crate::harness::build_system(&cfg);
            let cps = cfg.noc.cores_per_subring;
            let mut seed = 1;
            for core in 0..sys.cores_len() {
                let sr = (core / cps) as u64;
                for _t in 0..8 {
                    let p = bench.thread_params(
                        0x100_0000 + sr * (256 << 20),
                        64 << 20,
                        0x3000_0000 + sr * (1 << 20),
                        0,
                        1,
                        map_ops + reduce_ops / 4,
                    );
                    crate::harness::or_exit(
                        sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed)))),
                    );
                    seed += 1;
                }
            }
            let unstaged = sys.run(500_000_000);
            StagingRow {
                bench,
                staged_cycles: staged.total_cycles(),
                unstaged_cycles: unstaged.cycles,
                staged_requests: staged.report.dram_requests,
                unstaged_requests: unstaged.dram_requests,
            }
        })
        .collect()
}

/// Formats the in-pair rows.
pub fn format_inpair(rows: &[InPairRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("Ablation: in-pair threads & shared instruction segment (core IPC)\n");
    let _ = writeln!(
        s,
        "  {:<12} {:>6} {:>10} {:>8}  {:>11} {:>9}",
        "bench", "full", "no-inpair", "no-iseg", "inpair gain", "iseg gain"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "  {:<12} {:>6.2} {:>10.2} {:>8.2}  {:>10.2}x {:>8.2}x",
            r.bench.name(),
            r.full,
            r.no_inpair,
            r.no_iseg,
            r.full / r.no_inpair.max(1e-9),
            r.full / r.no_iseg.max(1e-9),
        );
    }
    s
}

/// Formats the staging rows.
pub fn format_staging(rows: &[StagingRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("Ablation: SPM staging for MapReduce tasks\n");
    let _ = writeln!(
        s,
        "  {:<12} {:>10} {:>10} {:>8}  {:>10} {:>10}",
        "bench", "staged", "unstaged", "speedup", "dram(st)", "dram(un)"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "  {:<12} {:>10} {:>10} {:>7.2}x  {:>10} {:>10}",
            r.bench.name(),
            r.staged_cycles,
            r.unstaged_cycles,
            r.unstaged_cycles as f64 / r.staged_cycles as f64,
            r.staged_requests,
            r.unstaged_requests,
        );
    }
    s
}

// ---------------------------------------------------------------- pim --

/// On-core vs in-memory string matching over the same text volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PimResult {
    /// Text volume scanned, in bytes.
    pub text_bytes: u64,
    /// Cycles for TCG cores to stream and match the text (KMP teams).
    pub core_cycles: u64,
    /// DRAM requests the core path issued.
    pub core_dram_requests: u64,
    /// Cycles for the PIM scan units to sweep the same text.
    pub pim_cycles: u64,
    /// Channel-crossing commands the PIM path issued.
    pub pim_commands: u64,
}

impl PimResult {
    /// Speedup of offloading the match to memory.
    pub fn speedup(&self) -> f64 {
        self.core_cycles as f64 / self.pim_cycles.max(1) as f64
    }
}

/// Runs the §7 future-work experiment: match a pattern over `text_bytes`
/// of DRAM-resident text, once by streaming it through KMP threads on the
/// cores and once by issuing PIM scan commands (64 KB per command,
/// striped over the channels).
pub fn pim_matching(scale: Scale) -> PimResult {
    use smarco_mem::pim::{PimConfig, PimUnit};

    let text_bytes: u64 = match scale {
        Scale::Quick => 2 << 20,
        Scale::Paper => 32 << 20,
    };
    // --- Core path: every text byte must cross the channel and the ring.
    // KMP threads read ~1 byte per scan access; with KMP's instruction mix
    // that is mem_frac × (1 − table_frac) scan reads per instruction.
    let cfg = crate::harness::pressure_matched_tiny();
    let p = Benchmark::Kmp.profile();
    let scan_reads_per_instr = p.mem_frac * (1.0 - p.table_frac);
    let threads = cfg.noc.cores() * 4;
    let bytes_per_thread = text_bytes / threads as u64;
    let ops_per_thread = ((bytes_per_thread as f64
        / Benchmark::Kmp.profile().scan_elem_bytes as f64)
        / scan_reads_per_instr) as u64;
    let mut sys = smarco_team_system(Benchmark::Kmp, &cfg, ops_per_thread.max(1), 4);
    let report = sys.run(2_000_000_000);

    // --- PIM path: 64 KB scan commands striped over the channels; the
    // channels never carry the text itself.
    let mut pim: PimUnit<u64> = PimUnit::new(PimConfig {
        channels: cfg.dram.channels,
        ..PimConfig::smarco()
    });
    let chunk = 64 << 10;
    let mut submitted = 0u64;
    let mut chan = 0;
    while submitted < text_bytes {
        let bytes = chunk.min(text_bytes - submitted);
        pim.submit(chan, bytes, 0, submitted);
        chan = (chan + 1) % cfg.dram.channels;
        submitted += bytes;
    }
    let mut pim_cycles = 0;
    for now in 0..u64::MAX / 2 {
        let _ = pim.tick(now);
        if pim.is_idle() {
            pim_cycles = now;
            break;
        }
    }
    PimResult {
        text_bytes,
        core_cycles: report.cycles,
        core_dram_requests: report.dram_requests,
        pim_cycles,
        pim_commands: pim.commands(),
    }
}

impl std::fmt::Display for PimResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation: in-memory string matching (the paper's §7 direction), {} MB of text",
            self.text_bytes >> 20
        )?;
        writeln!(
            f,
            "  on-core KMP : {} cycles, {} DRAM requests",
            self.core_cycles, self.core_dram_requests
        )?;
        writeln!(
            f,
            "  PIM scan    : {} cycles, {} channel commands",
            self.pim_cycles, self.pim_commands
        )?;
        writeln!(f, "  offload speedup: {:.1}x", self.speedup())
    }
}
