//! Fig. 23: scalability of KMP with thread count.
//!
//! Fixed total work split across N threads. The Xeon model's throughput
//! peaks near its hardware context count (creation and scheduling overhead
//! then eat the gains) while SmarCo starts far below — one simple in-order
//! thread is slow — but keeps rising with its 8-per-core hardware threads
//! and crosses the Xeon curve.

use std::time::Instant;

use smarco_baseline::XeonConfig;
use smarco_core::config::SmarcoConfig;
use smarco_sim::rng::SimRng;
use smarco_workloads::{Benchmark, HtcStream};

use crate::cycle_skip::{SkipEntry, SkipReport};
use crate::harness::xeon_system;
use crate::Scale;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleRow {
    /// Thread count.
    pub threads: usize,
    /// Xeon throughput in instructions/second (0 when not run at this
    /// point).
    pub xeon_ips: f64,
    /// SmarCo throughput in instructions/second.
    pub smarco_ips: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig23 {
    /// Sweep rows in thread order.
    pub rows: Vec<ScaleRow>,
    /// Per-sweep-point SmarCo-run perf records (wall clock + cycle-skip
    /// counters), written to `BENCH_cycle_skip.json` by the binary.
    pub skip: SkipReport,
}

impl Fig23 {
    /// Thread count where the Xeon curve peaks.
    pub fn xeon_peak_threads(&self) -> usize {
        self.rows
            .iter()
            .max_by(|a, b| a.xeon_ips.partial_cmp(&b.xeon_ips).expect("finite"))
            .map(|r| r.threads)
            .unwrap_or(0)
    }

    /// First thread count where SmarCo overtakes the Xeon.
    pub fn crossover_threads(&self) -> Option<usize> {
        self.rows
            .iter()
            .find(|r| r.smarco_ips > r.xeon_ips && r.xeon_ips > 0.0)
            .map(|r| r.threads)
    }
}

/// Shrinks the chip to the smallest sub-ring count that holds `threads`
/// (power of two, ≤ the requested chip). Idle cores change nothing about
/// a run's simulated outcome but cost host time, and memory channels are
/// scaled with the sub-rings so per-core resources stay the chip's.
fn sized_for(cfg: &SmarcoConfig, threads: usize) -> SmarcoConfig {
    let per_subring = cfg.noc.cores_per_subring * cfg.tcg.resident_threads;
    let needed = threads.div_ceil(per_subring).next_power_of_two();
    let subrings = needed.clamp(1, cfg.noc.subrings);
    let mut out = cfg.clone();
    out.noc.subrings = subrings;
    out.noc.mem_ctrls = cfg.noc.mem_ctrls.min(subrings);
    out.dram.channels = out.noc.mem_ctrls;
    if let Some(d) = out.direct.as_mut() {
        d.subrings = subrings;
    }
    out
}

fn smarco_ips(cfg: &SmarcoConfig, threads: usize, total_work: u64) -> (f64, SkipEntry) {
    let cfg = &sized_for(cfg, threads);
    let mut sys = crate::harness::build_system(cfg);
    let ops = (total_work / threads as u64).max(1);
    let bench = Benchmark::Kmp;
    let tpc = cfg.tcg.resident_threads;
    for t in 0..threads {
        let core = (t / tpc) % cfg.noc.cores();
        let sr = core / cfg.noc.cores_per_subring;
        let p = bench.thread_params(
            0x100_0000 + sr as u64 * (64 << 20),
            16 << 20,
            0x8000_0000 + sr as u64 * (1 << 20),
            (t % (cfg.noc.cores_per_subring * tpc)) as u64,
            (cfg.noc.cores_per_subring * tpc) as u64,
            ops,
        );
        crate::harness::or_exit(sys.attach(
            core,
            Box::new(HtcStream::new(p, SimRng::new(500 + t as u64))),
        ));
    }
    let start = Instant::now();
    let r = sys.run(u64::MAX / 2);
    let entry = SkipEntry {
        label: format!("kmp-{threads}t"),
        workers: cfg.workers,
        cycle_skip: cfg.cycle_skip,
        wall_seconds: start.elapsed().as_secs_f64(),
        simulated_cycles: r.cycles,
        stepped_cycles: sys.stepped_cycles(),
        skipped_cycles: sys.skipped_cycles(),
    };
    (r.instructions as f64 / r.seconds(cfg.freq_ghz), entry)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig23 {
    run_with(scale, 1)
}

/// [`run`] with the SmarCo side simulated by `workers` PDES threads
/// (`--parallel N`). Results are bit-identical to the sequential run.
pub fn run_with(scale: Scale, workers: usize) -> Fig23 {
    let (mut scfg, xcfg, sweep, total_work): (_, _, &[usize], u64) = match scale {
        Scale::Quick => (
            SmarcoConfig::tiny(),
            XeonConfig::small(),
            &[1, 2, 4, 8, 16, 32, 64, 128],
            200_000,
        ),
        Scale::Paper => (
            SmarcoConfig::smarco(),
            XeonConfig::e7_8890v4(),
            &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048],
            2_000_000,
        ),
    };
    scfg.workers = workers.max(1);
    let mut rows = Vec::new();
    let mut skip = SkipReport::default();
    for &threads in sweep {
        let ops = (total_work / threads as u64).max(1);
        let mut xeon = xeon_system(Benchmark::Kmp, &xcfg, threads, ops);
        let xr = xeon.run(u64::MAX / 2);
        let xeon_ips = xr.instructions as f64 / (xr.cycles as f64 / (xcfg.freq_ghz * 1e9));
        let (smarco, entry) = smarco_ips(&scfg, threads, total_work);
        skip.entries.push(entry);
        rows.push(ScaleRow {
            threads,
            xeon_ips,
            smarco_ips: smarco,
        });
    }
    Fig23 { rows, skip }
}

impl std::fmt::Display for Fig23 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 23: KMP throughput vs thread count (instructions/second)"
        )?;
        writeln!(f, "  {:>8} {:>14} {:>14}", "threads", "xeon", "smarco")?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>8} {:>14.3e} {:>14.3e}",
                r.threads, r.xeon_ips, r.smarco_ips
            )?;
        }
        writeln!(f, "  xeon peak at {} threads", self.xeon_peak_threads())?;
        match self.crossover_threads() {
            Some(t) => writeln!(f, "  smarco crosses above at {t} threads"),
            None => writeln!(f, "  no crossover observed in this sweep"),
        }
    }
}
