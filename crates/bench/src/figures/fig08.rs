//! Fig. 8: memory-access granularity — HTC apps (left) vs conventional
//! SPLASH2-like apps (right).
//!
//! Rendered both from the calibrated mixes and empirically, by sampling
//! the actual generators (verifying the streams honour the calibration).

use smarco_isa::mix::GRANULARITY_SIZES;
use smarco_isa::InstructionStream;
use smarco_sim::rng::SimRng;
use smarco_sim::stats::Histogram;
use smarco_workloads::splash::SplashApp;
use smarco_workloads::{Benchmark, HtcStream};

use crate::Scale;

/// One application's granularity distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct GranRow {
    /// Application name.
    pub name: &'static str,
    /// HTC (left panel) or conventional (right panel).
    pub htc: bool,
    /// Fraction of accesses per size in [`GRANULARITY_SIZES`] order,
    /// sampled empirically from the generator.
    pub fractions: [f64; 7],
    /// Mean access size in bytes.
    pub mean_bytes: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig08 {
    /// All rows, HTC first.
    pub rows: Vec<GranRow>,
}

fn sample_htc(bench: Benchmark, samples: u64) -> [f64; 7] {
    let p = bench.thread_params(0x100_0000, 1 << 22, 0x8000_0000, 0, 1, samples);
    let mut s = HtcStream::new(p, SimRng::new(8));
    let mut h = Histogram::new();
    while let Some(i) = s.next_instr() {
        if let Some(m) = i.op.mem_ref() {
            h.record(u64::from(m.bytes));
        }
    }
    fractions_of(&h)
}

fn fractions_of(h: &Histogram) -> [f64; 7] {
    let mut out = [0.0; 7];
    for (i, &s) in GRANULARITY_SIZES.iter().enumerate() {
        // Access sizes are exact powers of two, so each size owns its
        // power-of-two bucket and the bucket-exact fraction is precise.
        out[i] = h.fraction_in_bucket_of(u64::from(s));
    }
    out
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig08 {
    let samples = scale.scaled(30_000, 300_000);
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        rows.push(GranRow {
            name: b.name(),
            htc: true,
            fractions: sample_htc(b, samples),
            mean_bytes: b.granularity().mean_bytes(),
        });
    }
    for app in SplashApp::ALL {
        // Conventional apps: report the calibrated mix directly (they run
        // through SyntheticStream whose sampling tests live in smarco-isa).
        let g = app.granularity();
        let total: f64 = g.weights().iter().sum();
        let mut fr = [0.0; 7];
        for (i, &w) in g.weights().iter().enumerate() {
            fr[i] = w / total;
        }
        rows.push(GranRow {
            name: app.name(),
            htc: false,
            fractions: fr,
            mean_bytes: g.mean_bytes(),
        });
    }
    Fig08 { rows }
}

impl std::fmt::Display for Fig08 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 8: access-granularity distribution (fractions per size)"
        )?;
        writeln!(
            f,
            "  {:<12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  mean",
            "app", "1B", "2B", "4B", "8B", "16B", "32B", "64B"
        )?;
        for r in &self.rows {
            write!(f, "  {:<12}", r.name)?;
            for v in r.fractions {
                write!(f, " {v:>6.3}")?;
            }
            writeln!(
                f,
                "  {:>5.1}B {}",
                r.mean_bytes,
                if r.htc { "(HTC)" } else { "(conv)" }
            )?;
        }
        Ok(())
    }
}
