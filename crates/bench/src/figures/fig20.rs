//! Fig. 20: MACT vs the conventional structure.
//!
//! Four metrics per benchmark, MACT (16-cycle threshold) relative to no
//! collection: execution speedup, memory-request latency, NoC bandwidth
//! utilization, and memory-request count. Small-granularity benchmarks
//! (KMP, RNC) speed up most; K-means — large accesses, little to merge —
//! pays the collection delay for nothing and lands at or below 1×.

use smarco_core::config::SmarcoConfig;
use smarco_core::report::SmarcoReport;
use smarco_workloads::Benchmark;

use crate::harness::smarco_team_system;
use crate::Scale;

/// One benchmark's MACT-vs-conventional ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MactRow {
    /// Which benchmark.
    pub bench: Benchmark,
    /// Execution speedup (conventional cycles / MACT cycles).
    pub speedup: f64,
    /// Memory-request latency ratio (MACT / conventional).
    pub latency_ratio: f64,
    /// NoC bandwidth-utilization ratio (MACT / conventional).
    pub bandwidth_ratio: f64,
    /// DRAM request-count ratio (MACT / conventional).
    pub request_ratio: f64,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig20 {
    /// One row per benchmark.
    pub rows: Vec<MactRow>,
}

fn run_one(bench: Benchmark, cfg: &SmarcoConfig, ops: u64) -> SmarcoReport {
    let mut sys = smarco_team_system(bench, cfg, ops, 4);
    sys.run(500_000_000)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig20 {
    let base = match scale {
        Scale::Quick => crate::harness::pressure_matched_tiny(),
        Scale::Paper => SmarcoConfig::smarco(),
    };
    let ops = scale.scaled(600, 4_000);
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let with = run_one(bench, &base, ops);
        let mut cfg = base.clone();
        cfg.mact = None;
        let without = run_one(bench, &cfg, ops);
        let noc_util = |r: &SmarcoReport| (r.main_ring_utilization + r.subring_utilization) / 2.0;
        rows.push(MactRow {
            bench,
            speedup: without.cycles as f64 / with.cycles as f64,
            latency_ratio: with.mem_latency.mean() / without.mem_latency.mean().max(1e-9),
            bandwidth_ratio: noc_util(&with) / noc_util(&without).max(1e-9),
            request_ratio: with.dram_requests as f64 / without.dram_requests.max(1) as f64,
        });
    }
    Fig20 { rows }
}

impl std::fmt::Display for Fig20 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 20: MACT vs conventional structure (ratios)")?;
        writeln!(
            f,
            "  {:<12} {:>8} {:>10} {:>10} {:>10}",
            "bench", "speedup", "latency", "noc_util", "requests"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<12} {:>8.3} {:>10.3} {:>10.3} {:>10.3}",
                r.bench.name(),
                r.speedup,
                r.latency_ratio,
                r.bandwidth_ratio,
                r.request_ratio
            )?;
        }
        Ok(())
    }
}
