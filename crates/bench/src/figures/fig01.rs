//! Fig. 1: HTC kernels stress a conventional processor.
//!
//! (a) idle ratio of issue resources and (b) instruction-starvation ratio
//! grow with the per-context thread count; (c)/(d) the cache hierarchy
//! misses badly and its effective access latency balloons.
//!
//! Mechanisms (all emergent from the model): every software thread carries
//! its own instruction segment, so oversubscription thrashes the L1I
//! (starvation rises); every thread's hot data region is ~1 MB, so the
//! aggregate working set outgrows L2 immediately and the LLC as threads
//! multiply (misses and idle rise); thread creation is cheap here to keep
//! the focus on pipeline/cache pressure (Fig. 23 covers creation costs).

use smarco_baseline::{ConventionalSystem, XeonConfig};
use smarco_isa::mix::{AddressModel, OpMix, SyntheticStream};
use smarco_sim::rng::SimRng;
use smarco_workloads::Benchmark;

use crate::Scale;

/// One point of the thread sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureRow {
    /// Which benchmark.
    pub bench: Benchmark,
    /// Software threads per hardware context.
    pub threads_per_context: usize,
    /// Fraction of issue slots idle (Fig. 1a).
    pub idle_ratio: f64,
    /// Fraction of context-cycles starved for instructions (Fig. 1b).
    pub starvation_ratio: f64,
}

/// Cache behaviour of one benchmark (Figs. 1c/1d).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheRow {
    /// Which benchmark.
    pub bench: Benchmark,
    /// Miss ratios per level: [L1, L2, LLC].
    pub miss_ratio: [f64; 3],
    /// Effective average access latency per level in cycles: [L1, L2, LLC]
    /// (hit time plus miss-ratio-weighted lower-level latency).
    pub avg_latency: [f64; 3],
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig01 {
    /// Thread-sweep rows (Figs. 1a/1b).
    pub pressure: Vec<PressureRow>,
    /// Cache rows at the ×4 oversubscription point (Figs. 1c/1d).
    pub cache: Vec<CacheRow>,
}

/// The three kernels the paper plots.
pub const KERNELS: [Benchmark; 3] = [Benchmark::Kmp, Benchmark::WordCount, Benchmark::KMeans];

fn htc_on_xeon(bench: Benchmark, cfg: &XeonConfig, threads: usize, ops: u64) -> ConventionalSystem {
    let mut sys = ConventionalSystem::new(*cfg);
    let p = bench.profile();
    for i in 0..threads {
        let base = 0x10_0000 + i as u64 * (4 << 20);
        let mix = OpMix {
            mem_frac: p.mem_frac,
            load_frac: 1.0 - p.store_frac,
            branch_frac: p.branch_frac,
            branch_miss: p.branch_miss,
            realtime_frac: 0.0,
            granularity: bench.granularity(),
            // A ~1 MB per-thread hot region inside a 4 MB slice: far
            // beyond L1/L2; the LLC holds it only while few threads run.
            addresses: AddressModel {
                base,
                working_set: 4 << 20,
                seq_frac: 0.4,
                hot_frac: 0.8,
                hot_bytes: 1 << 20,
            },
        };
        let stream = SyntheticStream::new(mix, ops, SimRng::new(100 + i as u64))
            // Per-thread code segment: oversubscription thrashes the L1I.
            .with_segment(0x4000_0000 + i as u64 * (64 << 10), p.segment_len);
        sys.spawn(Box::new(stream));
    }
    sys
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig01 {
    let mut cfg = match scale {
        Scale::Quick => XeonConfig::small(),
        Scale::Paper => XeonConfig::e7_8890v4(),
    };
    // Isolate pipeline/cache pressure from thread-creation costs, and
    // time-slice aggressively: HTC service threads are long-lived, so a
    // returning thread finds its cache state evicted by the other threads
    // that ran meanwhile — the pollution that grows with oversubscription.
    cfg.spawn_cost = 1;
    cfg.quantum = 5_000;
    cfg.switch_cost = 500;
    let ops = scale.scaled(10_000, 30_000);
    let sweeps = [1usize, 2, 4, 8, 16];
    let mut pressure = Vec::new();
    let mut cache = Vec::new();
    for bench in KERNELS {
        for &t in &sweeps {
            let threads = t * cfg.contexts();
            let mut sys = htc_on_xeon(bench, &cfg, threads, ops);
            let r = sys.run(2_000_000_000);
            pressure.push(PressureRow {
                bench,
                threads_per_context: t,
                idle_ratio: r.idle_ratio(),
                starvation_ratio: r.starvation_ratio(),
            });
            if t == 4 {
                let miss = [1.0 - r.l1d.ratio(), 1.0 - r.l2.ratio(), 1.0 - r.llc.ratio()];
                let llc_eff = 40.0 + miss[2] * r.dram_latency.max(120.0);
                let l2_eff = 12.0 + miss[1] * llc_eff;
                let l1_eff = 4.0 + miss[0] * l2_eff;
                cache.push(CacheRow {
                    bench,
                    miss_ratio: miss,
                    avg_latency: [l1_eff, l2_eff, llc_eff],
                });
            }
        }
    }
    Fig01 { pressure, cache }
}

impl std::fmt::Display for Fig01 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 1a/1b: idle & instruction-starvation ratio vs threads/context"
        )?;
        for r in &self.pressure {
            writeln!(
                f,
                "  {:<10} x{:<3} idle={:.3} starve={:.3}",
                r.bench.name(),
                r.threads_per_context,
                r.idle_ratio,
                r.starvation_ratio
            )?;
        }
        writeln!(
            f,
            "Fig. 1c/1d: cache miss ratio and effective latency (at x4 threads)"
        )?;
        for r in &self.cache {
            writeln!(
                f,
                "  {:<10} miss L1={:.3} L2={:.3} LLC={:.3}  lat L1={:.1} L2={:.1} LLC={:.1}",
                r.bench.name(),
                r.miss_ratio[0],
                r.miss_ratio[1],
                r.miss_ratio[2],
                r.avg_latency[0],
                r.avg_latency[1],
                r.avg_latency[2]
            )?;
        }
        Ok(())
    }
}
