//! Fig. 19: MACT time-threshold sweep.
//!
//! A line waits at most `threshold` cycles before being packed off to
//! memory. Too short (4–8) and little merging happens; too long (32–64)
//! and request latency grows. 16 cycles is the best point for most
//! benchmarks — the value every other experiment uses.

use smarco_core::config::SmarcoConfig;
use smarco_mem::mact::MactConfig;
use smarco_sim::Cycle;
use smarco_workloads::Benchmark;

use crate::harness::smarco_team_system;
use crate::Scale;

/// Thresholds swept (cycles).
pub const THRESHOLDS: [Cycle; 5] = [4, 8, 16, 32, 64];

/// One benchmark's speedup curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdRow {
    /// Which benchmark.
    pub bench: Benchmark,
    /// `(threshold, run cycles)` per swept value.
    pub cycles: Vec<(Cycle, u64)>,
}

impl ThresholdRow {
    /// Speedup at `threshold`, normalized to the 8-cycle run (as the
    /// paper normalizes).
    pub fn speedup_norm8(&self, threshold: Cycle) -> f64 {
        let at = |t: Cycle| {
            self.cycles
                .iter()
                .find(|&&(x, _)| x == t)
                .map(|&(_, c)| c as f64)
                .unwrap_or(0.0)
        };
        let base = at(8);
        let v = at(threshold);
        if v == 0.0 {
            0.0
        } else {
            base / v
        }
    }
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig19 {
    /// One row per benchmark.
    pub rows: Vec<ThresholdRow>,
}

impl Fig19 {
    /// The threshold with the best mean speedup across benchmarks.
    pub fn best_threshold(&self) -> Cycle {
        THRESHOLDS
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let ma: f64 = self.rows.iter().map(|r| r.speedup_norm8(a)).sum::<f64>();
                let mb: f64 = self.rows.iter().map(|r| r.speedup_norm8(b)).sum::<f64>();
                ma.partial_cmp(&mb).expect("finite speedups")
            })
            .expect("non-empty sweep")
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig19 {
    let base_cfg = match scale {
        Scale::Quick => crate::harness::pressure_matched_tiny(),
        Scale::Paper => SmarcoConfig::smarco(),
    };
    let ops = scale.scaled(600, 4_000);
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let mut cycles = Vec::new();
        for &t in &THRESHOLDS {
            let mut cfg = base_cfg.clone();
            cfg.mact = Some(MactConfig {
                threshold: t,
                ..cfg.mact.unwrap_or_default()
            });
            let mut sys = smarco_team_system(bench, &cfg, ops, 4);
            let r = sys.run(500_000_000);
            cycles.push((t, r.cycles));
        }
        rows.push(ThresholdRow { bench, cycles });
    }
    Fig19 { rows }
}

impl std::fmt::Display for Fig19 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 19: speedup vs MACT time threshold (normalized to 8 cycles)"
        )?;
        writeln!(
            f,
            "  {:<12} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "bench", "4", "8", "16", "32", "64"
        )?;
        for r in &self.rows {
            write!(f, "  {:<12}", r.bench.name())?;
            for &t in &THRESHOLDS {
                write!(f, " {:>7.3}", r.speedup_norm8(t))?;
            }
            writeln!(f)?;
        }
        writeln!(f, "  best threshold: {} cycles", self.best_threshold())
    }
}
