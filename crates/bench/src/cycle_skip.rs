//! Machine-readable cycle-skip performance records.
//!
//! The `scale` bench and the `--parallel` figure runs append one
//! [`SkipEntry`] per chip run and write the set to
//! [`FILE`](BENCH_FILE) in the working directory, giving the repo a
//! perf trajectory to track across changes: wall-clock seconds,
//! simulated cycles, and how much of the shard-cycle grid the
//! event-horizon skipper fast-forwarded instead of stepping.

use std::path::{Path, PathBuf};

use crate::host::HostInfo;

/// Default output filename, written to the working directory.
pub const BENCH_FILE: &str = "BENCH_cycle_skip.json";

/// One chip run's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SkipEntry {
    /// What ran (benchmark / study name).
    pub label: String,
    /// PDES worker threads driving the shards.
    pub workers: usize,
    /// Whether event-horizon cycle skipping was enabled.
    pub cycle_skip: bool,
    /// Host wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Simulated cycles of the run.
    pub simulated_cycles: u64,
    /// Shard-cycles stepped one by one.
    pub stepped_cycles: u64,
    /// Shard-cycles fast-forwarded past via event horizons.
    pub skipped_cycles: u64,
}

impl SkipEntry {
    /// Fraction of shard-cycles skipped rather than stepped.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.stepped_cycles + self.skipped_cycles;
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"workers\":{},\"cycle_skip\":{},\
             \"wall_seconds\":{:.6},\"simulated_cycles\":{},\
             \"stepped_cycles\":{},\"skipped_cycles\":{},\
             \"skip_ratio\":{:.6}}}",
            self.label,
            self.workers,
            self.cycle_skip,
            self.wall_seconds,
            self.simulated_cycles,
            self.stepped_cycles,
            self.skipped_cycles,
            self.skip_ratio()
        )
    }
}

/// A set of runs destined for [`BENCH_FILE`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkipReport {
    /// Host context of the sweep — without it the wall-clock columns are
    /// uninterpretable across machines.
    pub host: HostInfo,
    /// Entries in run order.
    pub entries: Vec<SkipEntry>,
}

impl SkipReport {
    /// Serialises the report as a JSON object with the host block first
    /// (hand-rolled: the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self.entries.iter().map(SkipEntry::to_json).collect();
        format!(
            "{{\"host\":{},\n \"entries\":[\n  {}\n]}}\n",
            self.host.to_json(),
            body.join(",\n  ")
        )
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes the report to [`BENCH_FILE`] in the working directory and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(BENCH_FILE);
        self.write(&path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> SkipEntry {
        SkipEntry {
            label: "terasort".into(),
            workers: 1,
            cycle_skip: true,
            wall_seconds: 1.25,
            simulated_cycles: 1000,
            stepped_cycles: 600,
            skipped_cycles: 2400,
        }
    }

    #[test]
    fn ratio_and_json_shape() {
        let e = entry();
        assert!((e.skip_ratio() - 0.8).abs() < 1e-12);
        let r = SkipReport {
            host: HostInfo::capture(&[1], true, crate::Scale::Quick),
            entries: vec![e],
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"host\":{"), "{j}");
        assert!(j.contains("\"entries\":["), "{j}");
        assert!(j.contains("\"cpus\":"), "{j}");
        assert!(j.contains("\"label\":\"terasort\""), "{j}");
        assert!(j.contains("\"skip_ratio\":0.800000"), "{j}");
        assert!(j.contains("\"skipped_cycles\":2400"), "{j}");
    }

    #[test]
    fn empty_run_has_zero_ratio() {
        let mut e = entry();
        e.stepped_cycles = 0;
        e.skipped_cycles = 0;
        assert_eq!(e.skip_ratio(), 0.0);
    }
}
