//! Shared experiment runners.

use smarco_baseline::{ConventionalSystem, XeonConfig};
use smarco_core::chip::SmarcoSystem;
use smarco_core::config::{SmarcoConfig, TcgConfig};
use smarco_core::tcg::TcgCore;
use smarco_isa::InstructionStream;
use smarco_mem::map::AddressSpace;
use smarco_noc::traffic::SizeMix;
use smarco_runtime::{MapReduceApp, MapReduceConfig, MapReduceRun, MapTask, ReduceTask};
use smarco_sim::rng::SimRng;
use smarco_sim::Cycle;
use smarco_workloads::{Benchmark, HtcStream};

/// Per-thread working-set size used for baseline runs.
pub const XEON_WS: u64 = 1 << 22;

/// Unwraps a fallible step or terminates the benchmark process — the
/// bench crate's one error surface, for chip-side
/// [`SmarcoError`](smarco_core::error::SmarcoError)s and
/// flag-parse errors alike.
///
/// The bench binaries are batch jobs: a rejected config, a full chip, or
/// a bad command line is an operator error, so it surfaces as a message
/// on stderr and a non-zero exit code rather than a panic backtrace.
pub fn or_exit<T, E: std::fmt::Display>(result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("smarco-bench: {e}");
            std::process::exit(2);
        }
    }
}

/// Builds a chip from `cfg`, exiting the process on a rejected config.
pub fn build_system(cfg: &SmarcoConfig) -> SmarcoSystem {
    or_exit(SmarcoSystem::builder().config(cfg.clone()).build())
}

/// MapReduce adapter over a benchmark's structured generator.
pub struct BenchmarkMapReduce {
    /// Which benchmark.
    pub bench: Benchmark,
    /// Instructions per map task.
    pub map_ops: u64,
    /// Instructions per reduce task.
    pub reduce_ops: u64,
    /// Base of the per-sub-ring shared tables.
    pub table_base: u64,
}

impl BenchmarkMapReduce {
    /// Creates the adapter with a default table placement.
    pub fn new(bench: Benchmark, map_ops: u64, reduce_ops: u64) -> Self {
        Self {
            bench,
            map_ops,
            reduce_ops,
            table_base: 0x3000_0000,
        }
    }
}

impl BenchmarkMapReduce {
    /// Generator parameters for a task at `(base, len)`, staged or not.
    ///
    /// For SPM-staged tasks the runtime lays out the thread's SPM share as
    /// `[scan slice][output buffer][hot table window]` — the paper's §3.6
    /// flow where datasets, intermediate results and working tables all
    /// live in scratchpad, with only cold shared-table traffic and final
    /// spills reaching DRAM.
    fn params(
        &self,
        core: usize,
        base: u64,
        len: u64,
        in_spm: bool,
        ops: u64,
    ) -> smarco_workloads::ThreadGenParams {
        let table = self.table_base + (core as u64 / 16) * (1 << 20);
        let mut p = self.bench.thread_params(base, len, table, 0, 1, ops);
        if in_spm {
            // The hot table shard is part of the staged slice (the DMA
            // prologue covers it); the output buffer needs no staging —
            // stores define their bytes.
            let hot = p.table_hot_bytes.min(4 << 10).min(len / 2);
            p.out_len = 4 << 10;
            p.out_base = base + len;
            p.table_hot_bytes = hot.max(64);
            p.table_hot_base = Some(base);
        }
        p
    }
}

impl MapReduceApp for BenchmarkMapReduce {
    fn map_stream(&self, t: &MapTask) -> Box<dyn InstructionStream + Send> {
        let p = self.params(t.core, t.slice_base, t.slice_len, t.in_spm, self.map_ops);
        Box::new(HtcStream::new(p, SimRng::new(t.seed)))
    }
    fn reduce_stream(&self, t: &ReduceTask) -> Box<dyn InstructionStream + Send> {
        let p = self.params(
            t.core,
            t.partition_base,
            t.partition_len,
            t.in_spm,
            self.reduce_ops,
        );
        Box::new(HtcStream::new(p, SimRng::new(t.seed)))
    }
}

/// Runs `bench` as a MapReduce job on a fresh chip with `cfg`.
///
/// The input is sized so each map task's slice (plus its output buffer and
/// hot table window) fits its SPM share and gets DMA-staged, as the
/// paper's framework does whenever capacity allows.
pub fn smarco_mapreduce(
    bench: Benchmark,
    cfg: &SmarcoConfig,
    map_ops: u64,
    reduce_ops: u64,
    threads_per_core: usize,
) -> MapReduceRun {
    let mut sys = build_system(cfg);
    let app = BenchmarkMapReduce::new(bench, map_ops, reduce_ops);
    let subrings = cfg.noc.subrings;
    let reducers = (subrings / 4).max(1);
    let cps = cfg.noc.cores_per_subring;
    let map_tasks = ((subrings - reducers) * cps * threads_per_core) as u64;
    let reduce_tasks = (reducers * cps * threads_per_core) as u64;
    // Slice + 4 KB output + 4 KB hot window must fit the SPM share.
    let share = smarco_mem::spm::Spm::data_bytes() / threads_per_core as u64;
    let slice = share.saturating_sub(8 << 10).clamp(2 << 10, 8 << 10);
    let mr = MapReduceConfig {
        threads_per_core,
        phase_budget: 500_000_000,
        shuffle_len: reduce_tasks * slice,
        ..MapReduceConfig::split(subrings, 0x100_0000, map_tasks * slice)
    };
    or_exit(smarco_runtime::mapreduce::run_mapreduce(
        &mut sys, &app, &mr,
    ))
}

/// Builds a chip where each sub-ring's threads cooperatively scan a shared
/// region in an interleaved pattern (the MACT-relevant traffic shape) with
/// `bench`'s granularity and behaviour.
pub fn smarco_team_system(
    bench: Benchmark,
    cfg: &SmarcoConfig,
    ops_per_thread: u64,
    threads_per_core: usize,
) -> SmarcoSystem {
    let mut sys = build_system(cfg);
    let cps = cfg.noc.cores_per_subring;
    let team = (cps * threads_per_core) as u64;
    let mut seed = 1;
    for core in 0..cfg.noc.cores() {
        let sr = core / cps;
        let scan_base = 0x100_0000 + sr as u64 * (64 << 20);
        let table_base = 0x8000_0000 + sr as u64 * (1 << 20);
        for t in 0..threads_per_core {
            let j = ((core % cps) * threads_per_core + t) as u64;
            let p = bench.thread_params(scan_base, 16 << 20, table_base, j, team, ops_per_thread);
            or_exit(sys.attach(core, Box::new(HtcStream::new(p, SimRng::new(seed)))));
            seed += 1;
        }
    }
    sys
}

/// Like [`smarco_team_system`] but the threads arrive as deadline-tagged
/// tasks through the two-level hardware dispatcher (§3.7): the main
/// scheduler load-balances them across sub-rings and each chain table
/// binds them to slots by laxity. The lane interleave spans the whole
/// chip (placement is the dispatcher's call), and the run exercises the
/// scheduler observability track (`task_dispatch` / `task_exit`).
pub fn smarco_task_system(
    bench: Benchmark,
    cfg: &SmarcoConfig,
    ops_per_thread: u64,
    threads_per_core: usize,
    deadline: Cycle,
) -> SmarcoSystem {
    let mut sys = build_system(cfg);
    let total = (cfg.noc.cores() * threads_per_core) as u64;
    for j in 0..total {
        let p = bench.thread_params(0x100_0000, 16 << 20, 0x8000_0000, j, total, ops_per_thread);
        sys.submit_task(
            Box::new(HtcStream::new(p, SimRng::new(1 + j))),
            deadline,
            ops_per_thread * 4,
            smarco_sched::TaskPriority::Normal,
        );
    }
    sys
}

/// Builds a conventional system running `threads` instances of `bench`.
pub fn xeon_system(
    bench: Benchmark,
    cfg: &XeonConfig,
    threads: usize,
    ops_per_thread: u64,
) -> ConventionalSystem {
    let mut sys = ConventionalSystem::new(*cfg);
    for i in 0..threads {
        let mix = bench.mix(0x10_0000 + i as u64 * XEON_WS, XEON_WS);
        sys.spawn(Box::new(smarco_isa::mix::SyntheticStream::new(
            mix,
            ops_per_thread,
            SimRng::new(1000 + i as u64),
        )));
    }
    sys
}

/// Runs one TCG core with `threads` resident threads of `bench` against a
/// fixed-latency memory stub for a fixed `window` of cycles and returns
/// the steady-state IPC (the Fig. 17 axis).
///
/// Per the paper's methodology, each thread's data slice is staged in the
/// core's SPM (the MapReduce layout), so scans run at SPM speed while the
/// shared-table accesses still reach memory — the latency the in-pair
/// mechanism exists to hide. Streams are effectively endless, so no
/// end-of-run tail skews the measurement.
pub fn tcg_ipc(bench: Benchmark, threads: usize, window: Cycle, mem_latency: Cycle) -> f64 {
    tcg_ipc_with(
        bench,
        TcgConfig::smarco().with_threads(threads),
        window,
        mem_latency,
    )
}

/// [`tcg_ipc`] with an explicit core configuration (ablation hook: disable
/// `in_pair` or `shared_iseg`).
pub fn tcg_ipc_with(bench: Benchmark, config: TcgConfig, window: Cycle, mem_latency: Cycle) -> f64 {
    let threads = config.resident_threads;
    let space = AddressSpace::new(4, 2);
    let mut core = TcgCore::new(0, config, space);
    let spm_bytes = smarco_mem::spm::Spm::data_bytes();
    core.spm_mut().make_resident(0, spm_bytes);
    let slice = spm_bytes / 8; // one resident slice per potential thread
    for t in 0..threads {
        let p = bench.thread_params(
            space.spm_base(0) + t as u64 * slice,
            slice,
            0x1000_0000,
            0,
            1,
            u64::MAX / 2, // endless within any window
        );
        core.attach(Box::new(HtcStream::new(p, SimRng::new(t as u64 + 1))))
            .expect("slot");
    }
    let mut out = Vec::new();
    let mut pending: Vec<(Cycle, usize)> = Vec::new();
    for now in 0..window {
        pending.retain(|&(due, t)| {
            if due <= now {
                core.complete(t, now);
                false
            } else {
                true
            }
        });
        out.clear();
        core.tick(now, &mut out);
        for r in &out {
            if r.blocking {
                pending.push((now + mem_latency, r.thread));
            }
        }
    }
    core.stats().ipc()
}

/// A quick-scale chip whose *per-core* memory pressure matches the full
/// 256-core machine (64 cores per DDR channel): 16 cores in 2 sub-rings
/// with each channel scaled to a quarter of its full-chip bandwidth.
/// Used by the MACT studies (Figs. 19/20), where the collection benefit
/// depends on cores-per-channel pressure and cores-per-sub-ring merging
/// partners.
pub fn pressure_matched_tiny() -> SmarcoConfig {
    let mut cfg = SmarcoConfig::tiny();
    cfg.noc.subrings = 2;
    cfg.noc.cores_per_subring = 8;
    cfg.noc.mem_ctrls = 2;
    cfg.dram.channels = 2;
    // 16 cores on 2 channels at double per-channel bandwidth: the system
    // sits near (not past) saturation once the MACT merges requests, so
    // both sides of the collection trade-off (merging vs added read
    // latency) are visible. 16 MACT lines per sub-ring.
    cfg.dram.bytes_per_cycle = 45.5;
    cfg.mact = Some(smarco_mem::mact::MactConfig {
        lines: 16,
        line_bytes: 64,
        threshold: 16,
    });
    if let Some(d) = cfg.direct.as_mut() {
        d.subrings = 2;
    }
    cfg
}

/// Converts a benchmark's access-granularity mix to NoC packet sizes.
pub fn size_mix_of(bench: Benchmark) -> SizeMix {
    let g = bench.granularity();
    let sizes = smarco_isa::mix::GRANULARITY_SIZES;
    SizeMix::new(
        g.weights()
            .iter()
            .zip(sizes)
            .filter(|&(&w, _)| w > 0.0)
            .map(|(&w, s)| (u32::from(s), w))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcg_ipc_scales_with_threads() {
        let one = tcg_ipc(Benchmark::Kmp, 1, 20_000, 60);
        let four = tcg_ipc(Benchmark::Kmp, 4, 20_000, 60);
        assert!(four > one * 2.5, "4 threads {four:.2} vs 1 {one:.2}");
    }

    #[test]
    fn size_mix_preserves_weights() {
        let m = size_mix_of(Benchmark::KMeans);
        assert!(m.mean_bytes() > 8.0);
        let kmp = size_mix_of(Benchmark::Kmp);
        assert!(kmp.mean_bytes() < 4.0);
    }

    #[test]
    fn xeon_system_runs_benchmark() {
        let mut s = xeon_system(Benchmark::WordCount, &XeonConfig::small(), 4, 500);
        let r = s.run(50_000_000);
        assert!(s.is_done());
        assert_eq!(r.instructions, 4 * 501);
    }

    #[test]
    fn team_system_exercises_mact() {
        let mut sys = smarco_team_system(Benchmark::Kmp, &SmarcoConfig::tiny(), 300, 2);
        let r = sys.run(10_000_000);
        assert!(sys.is_done());
        assert!(r.mact_collected > 0);
    }
}
