//! Experiment scale selection.

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Seconds-scale runs: small chip configurations and short streams.
    /// Used by tests and CI; preserves every qualitative shape.
    #[default]
    Quick,
    /// Fuller configurations closer to the paper's setup (full 256-core
    /// chip where feasible). Minutes-scale.
    Paper,
}

impl Scale {
    /// Parses `--scale quick|paper` style arguments (any position).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        for pair in args.windows(2) {
            if pair[0] == "--scale" {
                return match pair[1].as_str() {
                    "paper" => Scale::Paper,
                    _ => Scale::Quick,
                };
            }
        }
        Scale::Quick
    }

    /// Multiplies a quick-scale quantity up for paper scale.
    pub fn scaled(&self, quick: u64, paper: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_picks_by_variant() {
        assert_eq!(Scale::Quick.scaled(10, 100), 10);
        assert_eq!(Scale::Paper.scaled(10, 100), 100);
        assert_eq!(Scale::default(), Scale::Quick);
    }
}
