//! Experiment scale selection.

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Seconds-scale runs: small chip configurations and short streams.
    /// Used by tests and CI; preserves every qualitative shape.
    #[default]
    Quick,
    /// Fuller configurations closer to the paper's setup (full 256-core
    /// chip where feasible). Minutes-scale.
    Paper,
}

impl Scale {
    /// Parses `--scale quick|paper` style arguments (any position),
    /// ignoring everything else on the line — binaries with positional
    /// grammars of their own call this; the seven flag-only binaries
    /// use [`crate::cli::BenchArgs::parse`] instead.
    pub fn from_args() -> Self {
        crate::cli::BenchArgs::scan(&std::env::args().collect::<Vec<_>>()).scale
    }

    /// Multiplies a quick-scale quantity up for paper scale.
    pub fn scaled(&self, quick: u64, paper: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Parses `--parallel N` style arguments (any position): the PDES worker
/// count the bench binaries write into `SmarcoConfig::workers`. Defaults
/// to `1` (sequential); results are bit-identical either way.
pub fn parallel_from_args() -> usize {
    parallel_from(&std::env::args().collect::<Vec<_>>())
}

/// The testable core of [`parallel_from_args`]: scans an argument list
/// with [`crate::cli::BenchArgs::scan`]'s lenient rules.
pub fn parallel_from(args: &[String]) -> usize {
    crate::cli::BenchArgs::scan(args).parallel
}

/// Parses `--faults <seed>` (any position): the seed for a chaos run with
/// [`smarco_core::fault::FaultPlan::chaos`]. `None` when absent or
/// unparsable — the binaries then run healthy as before.
pub fn faults_from_args() -> Option<u64> {
    faults_from(&std::env::args().collect::<Vec<_>>())
}

/// The testable core of [`faults_from_args`]: scans an argument list
/// with [`crate::cli::BenchArgs::scan`]'s lenient rules.
pub fn faults_from(args: &[String]) -> Option<u64> {
    crate::cli::BenchArgs::scan(args).faults
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_picks_by_variant() {
        assert_eq!(Scale::Quick.scaled(10, 100), 10);
        assert_eq!(Scale::Paper.scaled(10, 100), 100);
        assert_eq!(Scale::default(), Scale::Quick);
    }

    #[test]
    fn parallel_flag_parsed() {
        let args = |s: &[&str]| s.iter().map(|a| (*a).to_string()).collect::<Vec<_>>();
        assert_eq!(parallel_from(&args(&["bin"])), 1);
        assert_eq!(parallel_from(&args(&["bin", "--parallel", "4"])), 4);
        assert_eq!(
            parallel_from(&args(&["bin", "--scale", "paper", "--parallel", "2"])),
            2
        );
        // Garbage and zero fall back to sequential.
        assert_eq!(parallel_from(&args(&["bin", "--parallel", "zero"])), 1);
        assert_eq!(parallel_from(&args(&["bin", "--parallel", "0"])), 1);
    }

    #[test]
    fn faults_flag_parsed() {
        let args = |s: &[&str]| s.iter().map(|a| (*a).to_string()).collect::<Vec<_>>();
        assert_eq!(faults_from(&args(&["bin"])), None);
        assert_eq!(faults_from(&args(&["bin", "--faults", "42"])), Some(42));
        assert_eq!(
            faults_from(&args(&["bin", "--scale", "quick", "--faults", "7"])),
            Some(7)
        );
        assert_eq!(faults_from(&args(&["bin", "--faults", "nope"])), None);
    }
}
