//! Rack-scale serving sweep: balancing policies × offered-load points
//! over a multi-chip [`Cluster`], written to [`BENCH_FILE`].
//!
//! Each cell builds a fresh cluster of tiny chips behind the datacenter
//! fabric, offers an open-loop Poisson stream at a target utilization
//! (the arrival rate is derived from the size distribution's mean and
//! the cluster's aggregate issue width, so `1.0` means offered work
//! equals capacity), runs it to completion, and records the end-to-end
//! latency tail (p50/p99/p99.9) plus the SLO miss rate. The JSON file
//! follows the other bench writers: one shared [`HostInfo`] block, then
//! one entry per cell.
//!
//! Everything simulated is bit-deterministic — reruns differ only in
//! the `wall_seconds` columns.

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

use smarco_core::cluster::{
    BalancePolicy, Cluster, ClusterReport, FabricConfig, SizeDistribution, TrafficProfile,
};
use smarco_core::config::SmarcoConfig;
use smarco_core::fault::FaultPlan;
use smarco_sim::Cycle;

use crate::host::HostInfo;
use crate::Scale;

/// Default output filename, written to the working directory.
pub const BENCH_FILE: &str = "BENCH_rack.json";

/// Simulated-cycle ceiling; the finite request stream drains far
/// earlier on every sane cell.
const MAX_CYCLES: Cycle = 50_000_000;

/// End-to-end SLO every cell scores against, in cycles: roughly ten
/// times the tiny chip's median service latency, so the miss column
/// stays clean at low load and comes alive past saturation.
pub const SLO: Cycle = 5_000;

/// Simulated stream length per cell, in cycles. The request count is
/// derived from this (`rate × duration`), so every cell serves the same
/// interval and the overload points accumulate enough backlog for the
/// queueing delay — `duration × (utilization − 1)` at the tail — to
/// cross [`SLO`].
pub fn stream_cycles(scale: Scale) -> Cycle {
    scale.scaled(40_000, 160_000)
}

/// Seed for every cell's traffic stream: identical arrivals and sizes
/// across policies, so columns differ only by routing.
const TRAFFIC_SEED: u64 = 97;

/// The offered-load points of the sweep, as fractions of the cluster's
/// aggregate issue width. The last point exceeds 1.0 on purpose: an
/// open-loop stream past saturation is where the policies separate and
/// the SLO miss column comes alive (lint SL0461 warns on exactly this
/// shape when it is unintentional).
pub fn utilizations(scale: Scale) -> &'static [f64] {
    match scale {
        Scale::Quick => &[0.2, 0.6, 1.2],
        Scale::Paper => &[0.2, 0.4, 0.6, 0.8, 1.0, 1.2],
    }
}

/// The arrival rate (requests per 1000 cycles) that offers
/// `utilization` of a `chips`-chip cluster's aggregate width.
pub fn rate_for(utilization: f64, chips: usize, chip: &SmarcoConfig) -> f64 {
    let width = (chip.noc.cores() * chip.tcg.pairs) as f64;
    utilization * chips as f64 * width * 1000.0 / SizeDistribution::serving().mean_work()
}

/// One (policy, load point) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RackEntry {
    /// Balancing policy name (`round_robin`, `shortest_queue`, ...).
    pub policy: &'static str,
    /// Target fraction of aggregate cluster capacity.
    pub utilization: f64,
    /// Offered arrival rate in requests per 1000 cycles.
    pub per_kcycle: f64,
    /// Requests the frontend generated and routed.
    pub offered: u64,
    /// Requests whose completion reached the frontend.
    pub completed: u64,
    /// Completions later than `arrival + slo`.
    pub slo_misses: u64,
    /// `slo_misses / completed` (0 when nothing completed).
    pub slo_miss_rate: f64,
    /// Median end-to-end latency in cycles.
    pub p50: f64,
    /// 99th-percentile end-to-end latency in cycles.
    pub p99: f64,
    /// 99.9th-percentile end-to-end latency in cycles.
    pub p999: f64,
    /// Simulated cycles to drain the cell.
    pub cycles: Cycle,
    /// Host wall-clock seconds for the cell.
    pub wall_seconds: f64,
}

impl RackEntry {
    fn to_json(&self) -> String {
        format!(
            "{{\"policy\":\"{}\",\"utilization\":{:.2},\"per_kcycle\":{:.4},\
             \"offered\":{},\"completed\":{},\"slo_misses\":{},\
             \"slo_miss_rate\":{:.6},\"p50\":{:.1},\"p99\":{:.1},\
             \"p999\":{:.1},\"cycles\":{},\"wall_seconds\":{:.6}}}",
            self.policy,
            self.utilization,
            self.per_kcycle,
            self.offered,
            self.completed,
            self.slo_misses,
            self.slo_miss_rate,
            self.p50,
            self.p99,
            self.p999,
            self.cycles,
            self.wall_seconds,
        )
    }
}

/// The full sweep destined for [`BENCH_FILE`].
#[derive(Debug, Clone, PartialEq)]
pub struct RackReport {
    /// Host context of the sweep.
    pub host: HostInfo,
    /// Chips in the cluster every cell ran on.
    pub chips: usize,
    /// End-to-end SLO the miss columns score against, in cycles.
    pub slo: Cycle,
    /// Chaos seed injected into chip 0, when the sweep ran degraded.
    pub faults: Option<u64>,
    /// Entries in run order (policy-major, then load point).
    pub entries: Vec<RackEntry>,
}

impl RackReport {
    /// Serialises the report as a JSON object with the host block first
    /// (hand-rolled: the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self.entries.iter().map(RackEntry::to_json).collect();
        let faults = self
            .faults
            .map_or_else(|| "null".to_string(), |s| s.to_string());
        format!(
            "{{\"host\":{},\n \"chips\":{},\"slo\":{},\"faults\":{},\n \
             \"entries\":[\n  {}\n]}}\n",
            self.host.to_json(),
            self.chips,
            self.slo,
            faults,
            body.join(",\n  ")
        )
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes the report to [`BENCH_FILE`] in the working directory and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(BENCH_FILE);
        self.write(&path)?;
        Ok(path)
    }
}

impl fmt::Display for RackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}-chip rack, SLO {} cycles{}:",
            self.chips,
            self.slo,
            match self.faults {
                Some(seed) => format!(", chaos seed {seed} on chip 0"),
                None => String::new(),
            }
        )?;
        writeln!(
            f,
            "{:<16} {:>5} {:>9} {:>7} {:>8} {:>8} {:>8} {:>9}",
            "policy", "util", "offered", "missed", "p50", "p99", "p99.9", "cycles"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<16} {:>5.2} {:>9} {:>6.1}% {:>8.0} {:>8.0} {:>8.0} {:>9}",
                e.policy,
                e.utilization,
                e.offered,
                e.slo_miss_rate * 100.0,
                e.p50,
                e.p99,
                e.p999,
                e.cycles,
            )?;
        }
        Ok(())
    }
}

/// One cell: a fresh cluster of `chips` tiny chips serving the shared
/// traffic stream at `utilization` under `policy`, run to completion.
fn run_cell(
    policy: BalancePolicy,
    utilization: f64,
    chips: usize,
    workers: usize,
    stream: Cycle,
    faults: Option<u64>,
) -> (f64, ClusterReport, f64) {
    let cfg = SmarcoConfig::tiny();
    let per_kcycle = rate_for(utilization, chips, &cfg);
    let requests = ((per_kcycle * stream as f64 / 1000.0).round() as u64).max(1);
    let traffic = TrafficProfile::poisson(TRAFFIC_SEED, per_kcycle)
        .slo(SLO)
        .requests(requests);
    let mut builder = Cluster::builder()
        .chips(chips)
        .chip(cfg.clone())
        .fabric(FabricConfig::datacenter())
        .traffic(traffic)
        .policy(policy)
        .workers(workers);
    if let Some(seed) = faults {
        builder = builder.fault_plan(0, FaultPlan::chaos(seed, &cfg));
    }
    let mut cluster = crate::harness::or_exit(builder.build());
    let start = Instant::now();
    let report = cluster.run(MAX_CYCLES);
    if !cluster.is_done() {
        eprintln!(
            "smarco-bench: {}-chip rack failed to drain {} at utilization {:.2}",
            chips,
            policy.name(),
            utilization,
        );
        std::process::exit(3);
    }
    (per_kcycle, report, start.elapsed().as_secs_f64())
}

/// Runs the policies × load-points matrix on a `chips`-chip cluster.
/// Every cell sees the identical arrival/size stream (same seed), so
/// rows differ only by routing and load.
pub fn sweep(scale: Scale, chips: usize, workers: usize, faults: Option<u64>) -> RackReport {
    let stream = stream_cycles(scale);
    let mut report = RackReport {
        host: HostInfo::capture(&[workers], true, scale),
        chips,
        slo: SLO,
        faults,
        entries: Vec::new(),
    };
    for policy in BalancePolicy::ALL {
        for &utilization in utilizations(scale) {
            let (per_kcycle, r, wall_seconds) =
                run_cell(policy, utilization, chips, workers, stream, faults);
            report.entries.push(RackEntry {
                policy: policy.name(),
                utilization,
                per_kcycle,
                offered: r.offered,
                completed: r.completed,
                slo_misses: r.slo_misses,
                slo_miss_rate: r.slo_miss_rate(),
                p50: r.latency.p50(),
                p99: r.latency.p99(),
                p999: r.latency.p999(),
                cycles: r.cycles,
                wall_seconds,
            });
        }
    }
    report
}

/// CI smoke: a 2-chip rack serving a short stream must drain with a
/// non-empty latency histogram.
///
/// # Errors
///
/// Returns a message describing the liveness violation — an undrained
/// request or an empty histogram means the cluster plumbing broke.
pub fn smoke() -> Result<ClusterReport, String> {
    let traffic = TrafficProfile::poisson(TRAFFIC_SEED, 4.0)
        .slo(SLO)
        .requests(40);
    let mut cluster = crate::harness::or_exit(
        Cluster::builder()
            .chips(2)
            .chip(SmarcoConfig::tiny())
            .traffic(traffic)
            .build(),
    );
    let report = cluster.run(MAX_CYCLES);
    if report.completed != report.offered || report.offered == 0 {
        return Err(format!(
            "rack smoke: {} of {} requests completed",
            report.completed, report.offered
        ));
    }
    if report.latency.count() == 0 {
        return Err("rack smoke: latency histogram is empty".to_string());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_points_bracket_saturation() {
        for scale in [Scale::Quick, Scale::Paper] {
            let u = utilizations(scale);
            assert!(u.len() >= 3);
            assert!(u.first().unwrap() < &1.0);
            assert!(u.last().unwrap() > &1.0, "sweep must cross saturation");
        }
    }

    #[test]
    fn rate_converts_utilization_to_arrivals() {
        let cfg = SmarcoConfig::tiny();
        // rate × mean size == utilization × chips × width × 1000.
        let rate = rate_for(0.5, 4, &cfg);
        let width = (cfg.noc.cores() * cfg.tcg.pairs) as f64;
        let offered = rate * SizeDistribution::serving().mean_work();
        assert!((offered - 0.5 * 4.0 * width * 1000.0).abs() < 1e-6);
    }

    #[test]
    fn json_shape_matches_the_other_bench_files() {
        let r = RackReport {
            host: HostInfo::capture(&[4], true, Scale::Quick),
            chips: 4,
            slo: SLO,
            faults: Some(42),
            entries: vec![RackEntry {
                policy: "laxity_aware",
                utilization: 0.6,
                per_kcycle: 241.5,
                offered: 150,
                completed: 150,
                slo_misses: 3,
                slo_miss_rate: 0.02,
                p50: 120.0,
                p99: 900.0,
                p999: 1800.0,
                cycles: 40_000,
                wall_seconds: 0.25,
            }],
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"host\":{"), "{j}");
        assert!(j.contains("\"chips\":4,\"slo\":5000,\"faults\":42"), "{j}");
        assert!(j.contains("\"policy\":\"laxity_aware\""), "{j}");
        assert!(j.contains("\"slo_miss_rate\":0.020000"), "{j}");
        assert!(j.contains("\"p999\":1800.0"), "{j}");
        let healthy = RackReport { faults: None, ..r };
        assert!(healthy.to_json().contains("\"faults\":null"));
    }

    #[test]
    fn smoke_drains_and_fills_the_histogram() {
        let report = smoke().expect("smoke cluster must drain");
        assert_eq!(report.completed, 40);
        assert!(report.latency.p50() > 0.0);
    }
}
