//! `profile` bench: host-side self-profile of the PDES engine itself.
//!
//! Sweeps the six HTC benchmarks across PDES worker counts with
//! [`smarco_sim::prof`] enabled and writes one machine-readable record per
//! run to [`BENCH_FILE`] — ROADMAP item 1's `BENCH_parallel.json`. Each
//! record embeds the full [`ProfileReport`] (per-shard/per-worker phase
//! buckets, window telemetry, barrier-arrival spread), so the file answers
//! *where the simulator's wall-clock goes*: on a 2-cycle-lookahead chip
//! the `barrier_wait` bucket is what makes the 4-worker wordcount run
//! slower than the sequential one.
//!
//! Every profiled run is asserted bit-identical to an unprofiled
//! sequential baseline of the same job — the sweep doubles as the
//! result-neutrality contract at full-job scale.
//!
//! The module also hosts the CI perf-regression gate: a min-of-N
//! unprofiled sequential wordcount measurement compared against a
//! committed baseline (`scripts/perf_baseline.json`).

use std::path::{Path, PathBuf};
use std::time::Instant;

use smarco_core::config::SmarcoConfig;
use smarco_sim::prof::{HostPhase, ProfConfig, ProfileReport};
use smarco_workloads::Benchmark;

use crate::harness::smarco_mapreduce;
use crate::host::HostInfo;
use crate::Scale;

/// Default output filename, written to the working directory.
pub const BENCH_FILE: &str = "BENCH_parallel.json";

/// Wall-clock slack the perf gate tolerates over its committed baseline.
pub const GATE_TOLERANCE: f64 = 1.10;

/// Wall-clock slack the 4-worker gate tolerates — wider than the
/// sequential gate because multi-threaded timing shares the host
/// scheduler with everything else running on it.
pub const GATE_TOLERANCE_W4: f64 = 1.25;

/// One profiled run's record.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelEntry {
    /// Benchmark that ran.
    pub label: String,
    /// PDES worker threads driving the shards.
    pub workers: usize,
    /// Host wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Wall-clock of this benchmark's workers=1 run divided by this
    /// run's — >1 means parallelism actually paid off (the ROADMAP
    /// target is >=2 at 4 workers). Exactly 1 for workers=1 entries; 0
    /// when the sweep had no workers=1 run to compare against.
    pub speedup_vs_workers1: f64,
    /// Simulated cycles of the run.
    pub simulated_cycles: u64,
    /// The engine's self-profile for the run.
    pub profile: ProfileReport,
}

impl ParallelEntry {
    /// Fraction of measured host time spent waiting at the window barrier.
    pub fn barrier_share(&self) -> f64 {
        let total = self.profile.total_ns();
        if total == 0 {
            0.0
        } else {
            self.profile.phases().get(HostPhase::Barrier) as f64 / total as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"workers\":{},\"wall_seconds\":{:.6},\
             \"speedup_vs_workers1\":{:.3},\
             \"simulated_cycles\":{},\"barrier_share\":{:.6},\"profile\":{}}}",
            self.label,
            self.workers,
            self.wall_seconds,
            self.speedup_vs_workers1,
            self.simulated_cycles,
            self.barrier_share(),
            self.profile.to_json()
        )
    }
}

/// The sweep's records, destined for [`BENCH_FILE`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelReport {
    /// Host context of the sweep.
    pub host: HostInfo,
    /// One record per benchmark × worker count, in run order.
    pub entries: Vec<ParallelEntry>,
}

impl ParallelReport {
    /// Serialises the report (hand-rolled: the workspace is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self.entries.iter().map(ParallelEntry::to_json).collect();
        format!(
            "{{\"host\":{},\n \"entries\":[\n  {}\n]}}\n",
            self.host.to_json(),
            body.join(",\n  ")
        )
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Writes the report to [`BENCH_FILE`] in the working directory and
    /// returns the path.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write_default(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(BENCH_FILE);
        self.write(&path)?;
        Ok(path)
    }

    /// The entry for `(label, workers)`, if swept.
    pub fn entry(&self, label: &str, workers: usize) -> Option<&ParallelEntry> {
        self.entries
            .iter()
            .find(|e| e.label == label && e.workers == workers)
    }
}

/// The sweep's workload knobs per scale.
fn workload(scale: Scale) -> (SmarcoConfig, u64, u64) {
    match scale {
        Scale::Quick => (SmarcoConfig::tiny(), 1_500, 500),
        Scale::Paper => (SmarcoConfig::smarco(), 4_000, 1_500),
    }
}

/// Runs every HTC benchmark once per entry of `worker_counts` with
/// profiling enabled.
///
/// # Panics
///
/// Panics if any profiled run's [`smarco_core::SmarcoReport`] differs from
/// the benchmark's unprofiled sequential baseline (profiling must be
/// result-neutral and worker counts bit-identical), or if a profiled run
/// comes back without a profile.
pub fn run(scale: Scale, worker_counts: &[usize]) -> ParallelReport {
    let (cfg, map_ops, reduce_ops) = workload(scale);
    let tpc = cfg.tcg.resident_threads;
    let mut entries = Vec::new();
    for bench in Benchmark::ALL {
        // Unprofiled sequential baseline: the reference report every
        // profiled run must reproduce bit-for-bit.
        let mut base_cfg = cfg.clone();
        base_cfg.workers = 1;
        let baseline = smarco_mapreduce(bench, &base_cfg, map_ops, reduce_ops, tpc);
        assert!(
            baseline.profile.is_none(),
            "unprofiled baseline produced a profile"
        );
        for &workers in worker_counts {
            let mut wcfg = cfg.clone();
            wcfg.workers = workers;
            wcfg.prof = ProfConfig::on();
            let start = Instant::now();
            let run = smarco_mapreduce(bench, &wcfg, map_ops, reduce_ops, tpc);
            let wall_seconds = start.elapsed().as_secs_f64();
            assert_eq!(
                run.report,
                baseline.report,
                "{} with {workers} profiled workers diverged from the \
                 unprofiled sequential baseline",
                bench.name()
            );
            let simulated_cycles = run.total_cycles();
            let profile = run.profile.expect("profiled run must carry a profile");
            entries.push(ParallelEntry {
                label: bench.name().to_string(),
                workers,
                wall_seconds,
                speedup_vs_workers1: 0.0, // filled in below, post-sweep
                simulated_cycles,
                profile,
            });
        }
    }
    // Post-hoc speedups: each entry against its benchmark's workers=1
    // run from the same (profiled) sweep, so the comparison is
    // apples-to-apples.
    let w1: Vec<(String, f64)> = entries
        .iter()
        .filter(|e| e.workers == 1)
        .map(|e| (e.label.clone(), e.wall_seconds))
        .collect();
    for e in &mut entries {
        if let Some((_, base)) = w1.iter().find(|(label, _)| *label == e.label) {
            if e.wall_seconds > 0.0 {
                e.speedup_vs_workers1 = base / e.wall_seconds;
            }
        }
    }
    ParallelReport {
        host: HostInfo::capture(worker_counts, cfg.cycle_skip, scale),
        entries,
    }
}

impl std::fmt::Display for ParallelReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "profile: host-side phase accounting of the PDES engine \
             ({} host CPUs, sweep {:?})",
            self.host.cpus, self.host.worker_sweep
        )?;
        writeln!(
            f,
            "  {:>10} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "bench", "workers", "seconds", "step%", "skip%", "route%", "barr%", "spread"
        )?;
        for e in &self.entries {
            let p = e.profile.phases();
            let total = e.profile.total_ns().max(1) as f64;
            let pct = |ph: HostPhase| p.get(ph) as f64 / total * 100.0;
            writeln!(
                f,
                "  {:>10} {:>7} {:>9.3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.0}ns",
                e.label,
                e.workers,
                e.wall_seconds,
                pct(HostPhase::Step),
                pct(HostPhase::Skip),
                pct(HostPhase::Route),
                pct(HostPhase::Barrier),
                e.profile.telemetry.spread.p99(),
            )?;
        }
        // One-line speedup table: the ROADMAP target (>=2x at 4 workers)
        // should be readable at a glance, not reverse-engineered from
        // wall-clock columns.
        let cells: Vec<String> = self
            .entries
            .iter()
            .filter(|e| e.workers != 1 && e.speedup_vs_workers1 > 0.0)
            .map(|e| format!("{} {}w={:.2}x", e.label, e.workers, e.speedup_vs_workers1))
            .collect();
        if !cells.is_empty() {
            writeln!(f, "speedup vs workers=1: {}", cells.join(" | "))?;
        }
        Ok(())
    }
}

// ---- CI perf-regression gate ----

/// Measures the gate workload at a given worker count: an unprofiled
/// quick-scale wordcount job, min-of-`runs` wall-clock seconds (the
/// minimum is the least noisy location statistic for wall-clock on a
/// shared host).
pub fn gate_measure_at(runs: usize, workers: usize) -> f64 {
    let (mut cfg, map_ops, reduce_ops) = workload(Scale::Quick);
    cfg.workers = workers.max(1);
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        let _ = smarco_mapreduce(
            Benchmark::WordCount,
            &cfg,
            map_ops,
            reduce_ops,
            cfg.tcg.resident_threads,
        );
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The sequential gate workload: [`gate_measure_at`] with one worker.
pub fn gate_measure(runs: usize) -> f64 {
    gate_measure_at(runs, 1)
}

/// Renders a gate baseline file. `wall_seconds_workers4` is recorded
/// when the writing host measured the 4-worker leg (hosts with >= 4
/// CPUs); smaller hosts omit it and the 4-worker gate auto-skips.
pub fn gate_baseline_json(
    wall_seconds: f64,
    wall_seconds_workers4: Option<f64>,
    host: &HostInfo,
) -> String {
    let w4 = wall_seconds_workers4
        .map(|s| format!("\"wall_seconds_workers4\":{s:.6},"))
        .unwrap_or_default();
    format!(
        "{{\"gate\":\"wordcount quick workers=1 min-of-3\",\
         \"wall_seconds\":{wall_seconds:.6},{w4}\"host\":{}}}\n",
        host.to_json()
    )
}

/// Extracts the float after `key` (hand-rolled parse: the workspace is
/// dependency-free). Returns `None` when absent or malformed.
fn json_f64_after(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `wall_seconds` from a gate baseline file. Returns `None` on
/// malformed input.
pub fn gate_baseline_seconds(json: &str) -> Option<f64> {
    json_f64_after(json, "\"wall_seconds\":")
}

/// Extracts the optional 4-worker leg from a gate baseline file.
pub fn gate_baseline_workers4(json: &str) -> Option<f64> {
    json_f64_after(json, "\"wall_seconds_workers4\":")
}

/// Extracts the writing host's CPU count from a gate baseline file.
pub fn gate_baseline_cpus(json: &str) -> Option<usize> {
    let at = json.find("\"cpus\":")? + "\"cpus\":".len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_sim::prof::{PathStats, Telemetry};

    fn report(barrier_ns: u64, busy_ns: u64) -> ProfileReport {
        let w = smarco_sim::prof::WorkerProfile {
            busy_ns,
            barrier_ns,
            ..Default::default()
        };
        ProfileReport {
            sample_every: 1,
            shards: Vec::new(),
            shard_names: Vec::new(),
            workers: vec![w],
            telemetry: Telemetry::default(),
            inline: PathStats::default(),
            parallel: PathStats::default(),
            slices: Vec::new(),
            dropped_slices: 0,
            obs_ns: 0,
        }
    }

    #[test]
    fn entry_json_embeds_profile_share_and_speedup() {
        let e = ParallelEntry {
            label: "wordcount".into(),
            workers: 4,
            wall_seconds: 0.25,
            speedup_vs_workers1: 0.5,
            simulated_cycles: 1000,
            profile: report(750, 1000),
        };
        assert!((e.barrier_share() - 0.75).abs() < 1e-12);
        let r = ParallelReport {
            host: HostInfo::capture(&[4], true, Scale::Quick),
            entries: vec![e],
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"host\":{"), "{j}");
        assert!(j.contains("\"barrier_share\":0.750000"), "{j}");
        assert!(j.contains("\"speedup_vs_workers1\":0.500"), "{j}");
        assert!(j.contains("\"phases\":{"), "{j}");
        assert!(j.contains("\"barrier_wait\":750"), "{j}");
        let text = r.to_string();
        assert!(
            text.contains("speedup vs workers=1: wordcount 4w=0.50x"),
            "{text}"
        );
    }

    #[test]
    fn baseline_roundtrips() {
        let h = HostInfo::capture(&[1], true, Scale::Quick);
        let j = gate_baseline_json(0.123456, None, &h);
        let s = gate_baseline_seconds(&j).expect("parse");
        assert!((s - 0.123456).abs() < 1e-9, "{s}");
        assert_eq!(gate_baseline_workers4(&j), None, "no 4-worker leg: {j}");
        assert_eq!(gate_baseline_cpus(&j), Some(h.cpus), "{j}");
        assert_eq!(gate_baseline_seconds("{}"), None);
        assert_eq!(gate_baseline_seconds("{\"wall_seconds\":oops}"), None);
    }

    #[test]
    fn baseline_with_4worker_leg_roundtrips() {
        let h = HostInfo::capture(&[1, 4], true, Scale::Quick);
        let j = gate_baseline_json(0.04, Some(0.02), &h);
        let s4 = gate_baseline_workers4(&j).expect("parse w4");
        assert!((s4 - 0.02).abs() < 1e-9, "{s4}");
        // The plain key must still parse to the sequential leg, not the
        // 4-worker one.
        let s1 = gate_baseline_seconds(&j).expect("parse w1");
        assert!((s1 - 0.04).abs() < 1e-9, "{s1}");
    }
}
