//! One flag parser for every bench binary.
//!
//! Seven binaries (`scale`, `fig22_comparison`, `fig23_scalability`,
//! `profile`, `noc_sweep`, `lint`, `inspect`) used to hand-roll the same
//! `std::env::args()` window-scanning, each with slightly different
//! fallback rules. [`BenchArgs`] is the union of their flags with one
//! set of rules, parsed once:
//!
//! * value flags keep the legacy *lenient value* semantics — an
//!   unparsable `--parallel zero` falls back to the default instead of
//!   erroring, exactly as the old per-binary scanners did, so scripted
//!   invocations keep working byte for byte;
//! * unknown `--flags` are an error in [`BenchArgs::parse`] (exit 2 via
//!   [`crate::harness::or_exit`], the bench crate's one error surface);
//! * one bare (non-`--`) token is accepted as the output path, for
//!   `inspect <out-dir>` style invocations;
//! * [`BenchArgs::scan`] is the lenient variant that skips unknown
//!   tokens — it backs the legacy helpers in [`crate::scale`], which
//!   binaries with positional grammars of their own still use.
//!
//! The `rack` binary consumes [`BenchArgs`] wholesale; the older
//! binaries read the subset of fields they document.

use crate::Scale;

/// Parsed bench-binary arguments: the union of every binary's flags,
/// with per-binary defaults where the old scanners had them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// `--scale quick|paper` (any other value falls back to quick).
    pub scale: Scale,
    /// `--parallel N`: PDES workers; zero/garbage falls back to 1.
    pub parallel: usize,
    /// `--faults <seed>`: chaos-plan seed; unparsable means absent.
    pub faults: Option<u64>,
    /// `--backend <name>`: restrict a sweep to one NoC backend.
    pub backend: Option<String>,
    /// `--json <path>`: machine-readable report destination.
    pub json: Option<String>,
    /// `--deny-warnings`: treat warn findings as fatal (lint).
    pub deny_warnings: bool,
    /// `--corpus`: run the negative-config corpus (lint).
    pub corpus: bool,
    /// `--explain SLxxxx`: print a diagnostic code's rationale (lint).
    pub explain: Option<String>,
    /// `--gate <baseline.json>`: perf-regression gate mode (profile).
    pub gate: Option<String>,
    /// `--write-baseline <path>`: (re)write the perf baseline (profile).
    pub write_baseline: Option<String>,
    /// `--smoke`: CI smoke mode — tiny run, assert liveness, exit 0.
    pub smoke: bool,
    /// `--chips N`: cluster size for the rack bench; zero/garbage
    /// falls back to 4.
    pub chips: usize,
    /// `--ops N`: instructions per thread (lint/inspect workloads).
    pub ops: u64,
    /// `--threads N`: threads per core (lint/inspect workloads).
    pub threads: usize,
    /// `--window N`: metrics sampling window in cycles (inspect).
    pub window: u64,
    /// One bare token: an output path/directory, when the binary takes
    /// one (`inspect target/out`).
    pub out: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            parallel: 1,
            faults: None,
            backend: None,
            json: None,
            deny_warnings: false,
            corpus: false,
            explain: None,
            gate: None,
            write_baseline: None,
            smoke: false,
            chips: 4,
            ops: 600,
            threads: 8,
            window: 10_000,
            out: None,
        }
    }
}

impl BenchArgs {
    /// Parses the process arguments, exiting with code 2 (through
    /// [`crate::harness::or_exit`]) on an unknown flag or a flag missing
    /// its value.
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        crate::harness::or_exit(Self::parse_from(&argv))
    }

    /// The testable core of [`BenchArgs::parse`]: strict about unknown
    /// flags, lenient about unparsable values (legacy fallback rules).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown flag, or the flag left
    /// without its value.
    pub fn parse_from(argv: &[String]) -> Result<Self, String> {
        Self::parse_impl(argv, true)
    }

    /// Lenient scan: unknown tokens are skipped instead of rejected.
    /// Backs the legacy helpers ([`Scale::from_args`],
    /// [`crate::scale::parallel_from`], [`crate::scale::faults_from`])
    /// that binaries with their own positional grammars still use.
    pub fn scan(argv: &[String]) -> Self {
        Self::parse_impl(argv, false).unwrap_or_default()
    }

    fn parse_impl(argv: &[String], strict: bool) -> Result<Self, String> {
        let mut out = Self::default();
        let mut i = 0;
        // A flag's value; in lenient mode a flag at the end of the line
        // is simply ignored, as the old windows(2) scanners did.
        macro_rules! value {
            ($flag:expr) => {
                match argv.get(i + 1) {
                    Some(v) => v,
                    None if strict => return Err(format!("{} needs a value", $flag)),
                    None => {
                        i += 1;
                        continue;
                    }
                }
            };
        }
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    out.scale = match value!("--scale").as_str() {
                        "paper" => Scale::Paper,
                        _ => Scale::Quick,
                    };
                    i += 2;
                }
                "--parallel" => {
                    out.parallel = value!("--parallel")
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or(1);
                    i += 2;
                }
                "--faults" => {
                    out.faults = value!("--faults").parse().ok();
                    i += 2;
                }
                "--backend" => {
                    out.backend = Some(value!("--backend").clone());
                    i += 2;
                }
                "--json" => {
                    out.json = Some(value!("--json").clone());
                    i += 2;
                }
                "--explain" => {
                    out.explain = Some(value!("--explain").clone());
                    i += 2;
                }
                "--gate" => {
                    out.gate = Some(value!("--gate").clone());
                    i += 2;
                }
                "--write-baseline" => {
                    out.write_baseline = Some(value!("--write-baseline").clone());
                    i += 2;
                }
                "--chips" => {
                    out.chips = value!("--chips")
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or(out.chips);
                    i += 2;
                }
                "--ops" => {
                    out.ops = value!("--ops").parse().ok().unwrap_or(out.ops);
                    i += 2;
                }
                "--threads" => {
                    out.threads = value!("--threads").parse().ok().unwrap_or(out.threads);
                    i += 2;
                }
                "--window" => {
                    out.window = value!("--window").parse().ok().unwrap_or(out.window);
                    i += 2;
                }
                "--deny-warnings" => {
                    out.deny_warnings = true;
                    i += 1;
                }
                "--corpus" => {
                    out.corpus = true;
                    i += 1;
                }
                "--smoke" => {
                    out.smoke = true;
                    i += 1;
                }
                bare if !bare.starts_with("--") => {
                    out.out = Some(bare.to_string());
                    i += 1;
                }
                other => {
                    if strict {
                        return Err(format!(
                            "unknown argument `{other}` (see the binary's \
                             doc comment for its flags)"
                        ));
                    }
                    i += 1;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_string()).collect()
    }

    #[test]
    fn defaults_match_the_old_per_binary_scanners() {
        let a = BenchArgs::parse_from(&argv(&[])).unwrap();
        assert_eq!(a, BenchArgs::default());
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.parallel, 1);
        assert_eq!(a.chips, 4);
        assert_eq!(a.ops, 600);
        assert_eq!(a.threads, 8);
        assert_eq!(a.window, 10_000);
    }

    #[test]
    fn the_union_of_flags_parses_in_any_order() {
        let a = BenchArgs::parse_from(&argv(&[
            "--parallel",
            "4",
            "--scale",
            "paper",
            "--faults",
            "42",
            "--backend",
            "mesh",
            "--json",
            "out.json",
            "--deny-warnings",
            "--corpus",
            "--smoke",
            "--chips",
            "8",
            "--ops",
            "100",
            "--threads",
            "2",
            "--window",
            "5000",
        ]))
        .unwrap();
        assert_eq!(a.parallel, 4);
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.faults, Some(42));
        assert_eq!(a.backend.as_deref(), Some("mesh"));
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert!(a.deny_warnings && a.corpus && a.smoke);
        assert_eq!(a.chips, 8);
        assert_eq!(a.ops, 100);
        assert_eq!(a.threads, 2);
        assert_eq!(a.window, 5_000);
    }

    #[test]
    fn legacy_value_fallbacks_survive_the_consolidation() {
        // Exactly the old scanners' behavior: garbage values fall back,
        // they do not error.
        let a = BenchArgs::parse_from(&argv(&[
            "--parallel",
            "zero",
            "--faults",
            "nope",
            "--scale",
            "huge",
            "--chips",
            "0",
        ]))
        .unwrap();
        assert_eq!(a.parallel, 1);
        assert_eq!(a.faults, None);
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.chips, 4);
    }

    #[test]
    fn strict_mode_rejects_unknown_flags_and_dangling_values() {
        assert!(BenchArgs::parse_from(&argv(&["--bogus"])).is_err());
        assert!(BenchArgs::parse_from(&argv(&["--json"])).is_err());
        let e = BenchArgs::parse_from(&argv(&["--explai", "SL0420"])).unwrap_err();
        assert!(e.contains("--explai"), "{e}");
    }

    #[test]
    fn a_bare_token_is_the_output_path() {
        let a = BenchArgs::parse_from(&argv(&["target/inspect", "--window", "100"])).unwrap();
        assert_eq!(a.out.as_deref(), Some("target/inspect"));
        assert_eq!(a.window, 100);
    }

    #[test]
    fn lenient_scan_skips_what_it_does_not_know() {
        let a = BenchArgs::scan(&argv(&["bin", "--weird", "--parallel", "2", "--scale"]));
        assert_eq!(a.parallel, 2);
        // The dangling --scale is ignored, as windows(2) used to.
        assert_eq!(a.scale, Scale::Quick);
    }

    #[test]
    fn explain_and_profile_modes_carry_their_values() {
        let a = BenchArgs::parse_from(&argv(&["--explain", "SL0460"])).unwrap();
        assert_eq!(a.explain.as_deref(), Some("SL0460"));
        let b = BenchArgs::parse_from(&argv(&["--gate", "b.json"])).unwrap();
        assert_eq!(b.gate.as_deref(), Some("b.json"));
        let c = BenchArgs::parse_from(&argv(&["--write-baseline", "b.json"])).unwrap();
        assert_eq!(c.write_baseline.as_deref(), Some("b.json"));
    }
}
