//! Chaos runs: the same dispatcher-driven workload run healthy and under
//! a seeded [`FaultPlan`], reporting what degraded and what recovery cost.
//!
//! This is the `scale --faults <seed>` entry point: TeraSort tasks go
//! through the two-level hardware dispatcher so a killed core's work is
//! visibly re-dispatched, ring noise exercises the bounded-retransmit
//! path, and the DDR faults exercise stall absorption and channel
//! quarantine. The degraded run's report — including its degradation
//! section — is deterministic for a given seed: bit-identical across
//! PDES worker counts and with cycle skipping on or off.

use smarco_core::chip::SmarcoSystem;
use smarco_core::config::SmarcoConfig;
use smarco_core::fault::FaultPlan;
use smarco_core::report::SmarcoReport;
use smarco_sim::rng::SimRng;
use smarco_workloads::{Benchmark, HtcStream};

use crate::harness::or_exit;
use crate::Scale;

/// A healthy/degraded pair from one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The fault seed the degraded run used.
    pub seed: u64,
    /// The fault-free baseline.
    pub healthy: SmarcoReport,
    /// The same workload under [`FaultPlan::chaos`] with `seed`.
    pub degraded: SmarcoReport,
}

impl ChaosOutcome {
    /// Throughput the degraded run retained, as a fraction of healthy.
    pub fn goodput(&self) -> f64 {
        self.degraded.goodput_vs(&self.healthy)
    }
}

fn run_one(cfg: &SmarcoConfig, plan: FaultPlan, ops: u64, threads_per_core: usize) -> SmarcoReport {
    let mut sys = or_exit(
        SmarcoSystem::builder()
            .config(cfg.clone())
            .fault_plan(plan)
            .build(),
    );
    let bench = Benchmark::TeraSort;
    let total = (cfg.noc.cores() * threads_per_core) as u64;
    for j in 0..total {
        let p = bench.thread_params(0x100_0000, 16 << 20, 0x8000_0000, j, total, ops);
        sys.submit_task(
            Box::new(HtcStream::new(p, SimRng::new(1 + j))),
            4_000_000,
            ops * 4,
            smarco_sched::TaskPriority::Normal,
        );
    }
    sys.run(100_000_000)
}

/// Runs TeraSort healthy, then under [`FaultPlan::chaos`] with `seed`.
pub fn run_chaos(seed: u64, scale: Scale) -> ChaosOutcome {
    let cfg = SmarcoConfig::tiny();
    let ops = scale.scaled(1_500, 6_000);
    let threads_per_core = 4;
    let healthy = run_one(&cfg, FaultPlan::none(), ops, threads_per_core);
    let degraded = run_one(&cfg, FaultPlan::chaos(seed, &cfg), ops, threads_per_core);
    ChaosOutcome {
        seed,
        healthy,
        degraded,
    }
}

impl std::fmt::Display for ChaosOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = &self.degraded.degradation;
        writeln!(f, "Chaos run (TeraSort, fault seed {})", self.seed)?;
        writeln!(
            f,
            "  healthy:  {} cycles, ipc {:.3}",
            self.healthy.cycles,
            self.healthy.ipc()
        )?;
        writeln!(
            f,
            "  degraded: {} cycles, ipc {:.3}",
            self.degraded.cycles,
            self.degraded.ipc()
        )?;
        writeln!(f, "  goodput vs healthy: {:.1}%", self.goodput() * 100.0)?;
        writeln!(f, "  link_retries          {}", d.link_retries)?;
        writeln!(f, "  redispatches          {}", d.redispatches)?;
        writeln!(f, "  quarantined_cores     {}", d.quarantined_cores)?;
        writeln!(f, "  quarantined_channels  {}", d.quarantined_channels)?;
        writeln!(f, "  redirected_requests   {}", d.redirected_requests)?;
        writeln!(f, "  dropped_replies       {}", d.dropped_replies)?;
        writeln!(f, "  lost_threads          {}", d.lost_threads)?;
        writeln!(f, "  dram_stalled_requests {}", d.dram_stalled_requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_degrades_and_recovers() {
        let out = run_chaos(42, Scale::Quick);
        let d = &out.degraded.degradation;
        assert!(out.healthy.degradation.is_clean());
        assert!(d.link_retries > 0, "ring noise never fired: {d:?}");
        assert!(d.quarantined_cores > 0, "no core died: {d:?}");
        assert!(
            out.degraded.instructions > 0 && out.goodput() > 0.0,
            "degraded run did no work"
        );
    }
}
