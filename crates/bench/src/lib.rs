//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§4).
//!
//! Each experiment is a library function returning structured rows (so the
//! integration tests can assert the paper's *shapes*) plus a binary in
//! `src/bin/` that prints them. Run them all with:
//!
//! ```text
//! cargo run --release -p smarco-bench --bin fig17_tcg_ipc
//! cargo run --release -p smarco-bench --bin fig22_comparison -- --scale quick
//! ...
//! ```
//!
//! The [`Scale`] knob switches between `Quick` (seconds; CI and tests) and
//! `Paper` (minutes; fuller configurations).

#![warn(missing_docs)]

pub mod chaos;
pub mod cli;
pub mod cycle_skip;
pub mod figures;
pub mod harness;
pub mod host;
pub mod noc_sweep;
pub mod profile;
pub mod rack;
pub mod scale;
pub mod timing;

pub use cli::BenchArgs;
pub use scale::Scale;

/// Formats a row of `(label, value)` pairs the way the binaries print.
pub fn format_row(label: &str, values: &[(&str, f64)]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{label:<14}");
    for (name, v) in values {
        let _ = write!(s, " {name}={v:<10.4}");
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn row_formatting() {
        let s = super::format_row("KMP", &[("speedup", 1.5), ("ee", 2.0)]);
        assert!(s.starts_with("KMP"));
        assert!(s.contains("speedup=1.5"));
        assert!(s.contains("ee=2.0"));
    }
}
