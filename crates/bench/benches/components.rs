//! Microbenchmarks of the simulator's hot components: how fast the models
//! themselves run (host-side performance, not simulated time).

use std::hint::black_box;

use smarco_bench::timing::bench;
use smarco_core::config::SmarcoConfig;
use smarco_mem::cache::{Cache, CacheConfig};
use smarco_mem::mact::{Mact, MactConfig};
use smarco_mem::request::{MemRequest, RequestIdAllocator};
use smarco_noc::link::LinkConfig;
use smarco_noc::traffic::{Pattern, SizeMix, Testbench, TrafficConfig};
use smarco_noc::NocConfig;
use smarco_sched::{run_tasks, LaxityAwareScheduler, Task};
use smarco_sim::engine::CycleModel;
use smarco_sim::rng::SimRng;

fn bench_cache() {
    let mut cache = Cache::new(CacheConfig::smarco_l1());
    let mut rng = SimRng::new(1);
    bench("cache_access_stream", || {
        let addr = rng.gen_range(1 << 20);
        black_box(cache.access(addr, false));
    });
}

fn bench_mact() {
    let mut mact = Mact::new(MactConfig::default());
    let mut ids = RequestIdAllocator::new();
    let mut rng = SimRng::new(2);
    let mut now = 0;
    bench("mact_offer_and_flush", || {
        let addr = rng.gen_range(1 << 16) & !1;
        let req = MemRequest {
            id: ids.next_id(),
            core: 0,
            mem: smarco_isa::MemRef::new(addr, 2),
            is_write: false,
            issued_at: now,
        };
        black_box(mact.offer(req, now));
        now += 1;
        black_box(mact.tick(now));
    });
}

fn bench_noc() {
    bench("noc_tiny_1k_cycles", || {
        let traffic = TrafficConfig {
            rate: 0.3,
            pattern: Pattern::ToMemory,
            sizes: SizeMix::htc(),
        };
        let mut cfg = NocConfig::tiny();
        cfg.main_link = LinkConfig::main_ring();
        let mut tb = Testbench::new(cfg, traffic, 3);
        black_box(tb.run(1_000, 1_000));
    });
}

fn bench_chip_tick() {
    let mut sys = smarco_bench::harness::build_system(&SmarcoConfig::tiny());
    for core in 0..sys.cores_len() {
        for _ in 0..4 {
            smarco_bench::harness::or_exit(
                sys.attach(core, Box::new(smarco_isa::mix::compute_only(u64::MAX / 2))),
            );
        }
    }
    let mut now = 0;
    bench("chip_tiny_tick", || {
        sys.tick(now);
        now += 1;
    });
}

fn bench_scheduler() {
    bench("laxity_scheduler_128_tasks", || {
        let tasks: Vec<Task> = (0..128)
            .map(|i| Task::new(i, 0, 340_000, 100_000 + i * 100))
            .collect();
        let mut s = LaxityAwareScheduler::subring();
        black_box(run_tasks(&mut s, tasks, 64, 10_000_000));
    });
}

fn main() {
    bench_cache();
    bench_mact();
    bench_noc();
    bench_chip_tick();
    bench_scheduler();
}
