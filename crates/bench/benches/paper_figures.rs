//! Criterion wrappers that regenerate each paper figure at quick scale —
//! `cargo bench` therefore re-derives every experiment end to end and
//! times how long the reproduction takes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use smarco_bench::figures;
use smarco_bench::Scale;

fn figure_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_figures");
    g.sample_size(10);
    g.bench_function("fig01_conventional_pressure", |b| {
        b.iter(|| black_box(figures::fig01::run(Scale::Quick)))
    });
    g.bench_function("fig02_cdn", |b| b.iter(|| black_box(figures::fig02::run(Scale::Quick))));
    g.bench_function("fig08_granularity", |b| {
        b.iter(|| black_box(figures::fig08::run(Scale::Quick)))
    });
    g.bench_function("fig17_tcg_ipc", |b| {
        b.iter(|| black_box(figures::fig17::run(Scale::Quick)))
    });
    g.bench_function("fig18_highdensity", |b| {
        b.iter(|| black_box(figures::fig18::run(Scale::Quick)))
    });
    g.bench_function("fig19_mact_threshold", |b| {
        b.iter(|| black_box(figures::fig19::run(Scale::Quick)))
    });
    g.bench_function("fig20_mact_vs_conventional", |b| {
        b.iter(|| black_box(figures::fig20::run(Scale::Quick)))
    });
    g.bench_function("fig21_scheduler", |b| {
        b.iter(|| black_box(figures::fig21::run(Scale::Quick)))
    });
    g.bench_function("fig22_comparison", |b| {
        b.iter(|| black_box(figures::fig22::run(Scale::Quick)))
    });
    g.bench_function("fig23_scalability", |b| {
        b.iter(|| black_box(figures::fig23::run(Scale::Quick)))
    });
    g.bench_function("fig26_prototype", |b| {
        b.iter(|| black_box(figures::fig26::run(Scale::Quick)))
    });
    g.bench_function("table1_area_power", |b| {
        b.iter(|| black_box(figures::table1::run(Scale::Quick)))
    });
    g.bench_function("table2_configs", |b| {
        b.iter(|| black_box(figures::table2::run(Scale::Quick)))
    });
    g.finish();
}

criterion_group!(benches, figure_benches);
criterion_main!(benches);
