//! Wall-clock timing wrappers that regenerate each paper figure at quick
//! scale — `cargo bench` therefore re-derives every experiment end to end
//! and times how long the reproduction takes.

use std::hint::black_box;
use std::time::Duration;

use smarco_bench::figures;
use smarco_bench::timing::bench_with_budget;
use smarco_bench::Scale;

fn main() {
    let budget = Duration::from_millis(500);
    bench_with_budget("fig01_conventional_pressure", budget, || {
        black_box(figures::fig01::run(Scale::Quick));
    });
    bench_with_budget("fig02_cdn", budget, || {
        black_box(figures::fig02::run(Scale::Quick));
    });
    bench_with_budget("fig08_granularity", budget, || {
        black_box(figures::fig08::run(Scale::Quick));
    });
    bench_with_budget("fig17_tcg_ipc", budget, || {
        black_box(figures::fig17::run(Scale::Quick));
    });
    bench_with_budget("fig18_highdensity", budget, || {
        black_box(figures::fig18::run(Scale::Quick));
    });
    bench_with_budget("fig19_mact_threshold", budget, || {
        black_box(figures::fig19::run(Scale::Quick));
    });
    bench_with_budget("fig20_mact_vs_conventional", budget, || {
        black_box(figures::fig20::run(Scale::Quick));
    });
    bench_with_budget("fig21_scheduler", budget, || {
        black_box(figures::fig21::run(Scale::Quick));
    });
    bench_with_budget("fig22_comparison", budget, || {
        black_box(figures::fig22::run(Scale::Quick));
    });
    bench_with_budget("fig23_scalability", budget, || {
        black_box(figures::fig23::run(Scale::Quick));
    });
    bench_with_budget("fig26_prototype", budget, || {
        black_box(figures::fig26::run(Scale::Quick));
    });
    bench_with_budget("table1_area_power", budget, || {
        black_box(figures::table1::run(Scale::Quick));
    });
    bench_with_budget("table2_configs", budget, || {
        black_box(figures::table2::run(Scale::Quick));
    });
}
