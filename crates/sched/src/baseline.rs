//! Software scheduler baselines.
//!
//! Fig. 21's left panel uses the **Deadline Scheduler** (Polo et al.,
//! NOMS 2010): a software scheduler that dynamically orders tasks by the
//! remaining time to their deadline. Running in software it pays a
//! kernel-scale dispatch cost, and with one shared deadline it degenerates
//! to arrival order — which is exactly why its exit times spread wide. We
//! also provide a plain FIFO scheduler as the no-QoS floor.

use smarco_sim::Cycle;

use crate::task::{Task, TaskScheduler};

/// Software EDF-style scheduler ordered by earliest deadline, with
/// OS-scale per-dispatch overhead.
#[derive(Debug, Clone)]
pub struct DeadlineScheduler {
    queue: Vec<Task>,
    overhead: Cycle,
}

impl DeadlineScheduler {
    /// Creates a scheduler with the default software dispatch cost
    /// (~1200 cycles: run-queue lock, context setup, migration).
    pub fn new() -> Self {
        Self::with_overhead(1200)
    }

    /// Creates a scheduler with an explicit per-dispatch cost.
    pub fn with_overhead(overhead: Cycle) -> Self {
        Self {
            queue: Vec::new(),
            overhead,
        }
    }
}

impl Default for DeadlineScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskScheduler for DeadlineScheduler {
    fn name(&self) -> &'static str {
        "deadline (software)"
    }

    fn enqueue(&mut self, task: Task, _now: Cycle) {
        self.queue.push(task);
    }

    fn dispatch(&mut self, _now: Cycle) -> Option<Task> {
        if self.queue.is_empty() {
            return None;
        }
        // Earliest deadline; high priority first; ties keep arrival order
        // (stable scan).
        let mut best = 0;
        for i in 1..self.queue.len() {
            let (a, b) = (&self.queue[i], &self.queue[best]);
            let better = (
                a.priority,
                std::cmp::Reverse(a.deadline),
                std::cmp::Reverse(a.arrival),
            ) > (
                b.priority,
                std::cmp::Reverse(b.deadline),
                std::cmp::Reverse(b.arrival),
            );
            if better {
                best = i;
            }
        }
        Some(self.queue.remove(best))
    }

    fn overhead(&self) -> Cycle {
        self.overhead
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// First-in-first-out scheduler (no QoS awareness), with the same software
/// dispatch cost as [`DeadlineScheduler`].
#[derive(Debug, Clone)]
pub struct FifoScheduler {
    queue: std::collections::VecDeque<Task>,
    overhead: Cycle,
}

impl FifoScheduler {
    /// Creates a FIFO scheduler with the default software dispatch cost.
    pub fn new() -> Self {
        Self {
            queue: std::collections::VecDeque::new(),
            overhead: 1200,
        }
    }
}

impl Default for FifoScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl TaskScheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo (software)"
    }

    fn enqueue(&mut self, task: Task, _now: Cycle) {
        self.queue.push_back(task);
    }

    fn dispatch(&mut self, _now: Cycle) -> Option<Task> {
        self.queue.pop_front()
    }

    fn overhead(&self) -> Cycle {
        self.overhead
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_scheduler_orders_by_deadline() {
        let mut s = DeadlineScheduler::with_overhead(10);
        s.enqueue(Task::new(1, 0, 300, 10), 0);
        s.enqueue(Task::new(2, 0, 100, 10), 0);
        s.enqueue(Task::new(3, 0, 200, 10), 0);
        assert_eq!(s.dispatch(0).unwrap().id, 2);
        assert_eq!(s.dispatch(0).unwrap().id, 3);
        assert_eq!(s.dispatch(0).unwrap().id, 1);
    }

    #[test]
    fn equal_deadlines_degenerate_to_arrival_order() {
        let mut s = DeadlineScheduler::new();
        for i in 0..5 {
            s.enqueue(Task::new(i, i, 1000, 10), i);
        }
        for i in 0..5 {
            assert_eq!(s.dispatch(10).unwrap().id, i);
        }
    }

    #[test]
    fn high_priority_preferred() {
        let mut s = DeadlineScheduler::new();
        s.enqueue(Task::new(1, 0, 100, 10), 0);
        s.enqueue(Task::new(2, 0, 900, 10).with_high_priority(), 0);
        assert_eq!(s.dispatch(0).unwrap().id, 2);
    }

    #[test]
    fn software_overhead_dwarfs_hardware() {
        let s = DeadlineScheduler::new();
        let h = crate::laxity::LaxityAwareScheduler::subring();
        assert!(s.overhead() > 50 * h.overhead());
    }

    #[test]
    fn fifo_is_fifo() {
        let mut s = FifoScheduler::new();
        s.enqueue(Task::new(1, 0, 100, 10), 0);
        s.enqueue(Task::new(2, 0, 50, 10), 0);
        assert_eq!(s.dispatch(0).unwrap().id, 1);
        assert_eq!(s.pending(), 1);
    }
}
