//! A thread-slot executor for scheduler studies (Fig. 21).
//!
//! One sub-ring offers 16 cores × 4 running threads = 64 execution slots
//! and 128 resident thread tasks. The executor drives any
//! [`TaskScheduler`] over a task set: the dispatcher hands a ready task to
//! a free slot, charging the scheduler's dispatch overhead (serialized —
//! one dispatcher), and each task then runs to completion. Exit-time
//! distributions and deadline success rates fall out.

use smarco_sim::obs::{EventKind, NullSink, TraceEvent, TraceSink, Track};
use smarco_sim::Cycle;

use crate::task::{Task, TaskScheduler};

/// Completion record of one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitRecord {
    /// The task.
    pub task: Task,
    /// Cycle execution began.
    pub start: Cycle,
    /// Cycle the task exited.
    pub exit: Cycle,
}

impl ExitRecord {
    /// Whether the task met its deadline.
    pub fn met_deadline(&self) -> bool {
        self.exit <= self.task.deadline
    }
}

/// Results of one executor run.
#[derive(Debug, Clone)]
pub struct ExecutorReport {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// One record per completed task.
    pub records: Vec<ExitRecord>,
}

impl ExecutorReport {
    /// Fraction of tasks that met their deadline.
    pub fn success_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.met_deadline()).count() as f64 / self.records.len() as f64
    }

    /// `(earliest, latest)` exit cycles.
    pub fn exit_range(&self) -> (Cycle, Cycle) {
        let min = self.records.iter().map(|r| r.exit).min().unwrap_or(0);
        let max = self.records.iter().map(|r| r.exit).max().unwrap_or(0);
        (min, max)
    }

    /// Latest exit (total completion time).
    pub fn makespan(&self) -> Cycle {
        self.exit_range().1
    }

    /// Width of the exit-time window — the QoS "tightness" Fig. 21 shows.
    pub fn exit_spread(&self) -> Cycle {
        let (min, max) = self.exit_range();
        max - min
    }
}

/// Runs `tasks` on `slots` parallel execution slots under `scheduler`.
///
/// Non-preemptive: a dispatched task holds its slot until completion. The
/// dispatcher makes at most one decision at a time; each decision costs
/// `scheduler.overhead()` cycles before the task starts.
///
/// # Panics
///
/// Panics if `slots` is zero or the run exceeds `max_cycles` with tasks
/// still outstanding (a scheduling deadlock in the model).
pub fn run_tasks(
    scheduler: &mut dyn TaskScheduler,
    mut tasks: Vec<Task>,
    slots: usize,
    max_cycles: Cycle,
) -> ExecutorReport {
    assert!(slots > 0, "need at least one execution slot");
    let total = tasks.len();
    tasks.sort_by_key(|t| t.arrival);
    let mut next_arrival = 0usize;
    let mut running: Vec<Option<(Task, Cycle, Cycle)>> = vec![None; slots]; // (task, start, done)
    let mut records = Vec::with_capacity(total);
    let mut dispatcher_free_at: Cycle = 0;
    let mut now: Cycle = 0;
    while records.len() < total {
        assert!(now < max_cycles, "executor exceeded {max_cycles} cycles");
        // Arrivals.
        while next_arrival < tasks.len() && tasks[next_arrival].arrival <= now {
            scheduler.enqueue(tasks[next_arrival], now);
            next_arrival += 1;
        }
        // Completions.
        for slot in &mut running {
            if let Some((task, start, done)) = *slot {
                if done <= now {
                    records.push(ExitRecord {
                        task,
                        start,
                        exit: done,
                    });
                    *slot = None;
                }
            }
        }
        // Dispatch: one decision at a time, charged with overhead.
        if dispatcher_free_at <= now && scheduler.pending() > 0 {
            if let Some(free_idx) = running.iter().position(Option::is_none) {
                if let Some(task) = scheduler.dispatch(now) {
                    let overhead = scheduler.overhead();
                    let start = now + overhead;
                    running[free_idx] = Some((task, start, start + task.work));
                    dispatcher_free_at = now + overhead;
                }
            }
        }
        now += 1;
    }
    ExecutorReport {
        scheduler: scheduler.name(),
        records,
    }
}

/// Runs `tasks` on `slots` slots with **preemptive quantum scheduling** —
/// the Fig. 21 setting: all 128 of a sub-ring's resident thread tasks make
/// concurrent progress, but only 64 run at any instant, and every
/// `quantum` cycles the scheduler re-decides who runs. The hardware
/// laxity-aware scheduler re-decides at a fine grain and always boosts the
/// tasks with the least laxity (most remaining work), equalizing progress
/// so exits cluster tightly; a software scheduler's coarse quantum leaves
/// progress offsets of a quantum or more between tasks.
///
/// Re-enqueued (preempted) tasks carry their *remaining* work, so laxity
/// stays meaningful, and an updated arrival so deadline-ties rotate
/// round-robin as an OS run queue does.
///
/// # Panics
///
/// Panics if `slots` or `quantum` is zero, or the run exceeds
/// `max_cycles`.
pub fn run_tasks_preemptive(
    scheduler: &mut dyn TaskScheduler,
    tasks: Vec<Task>,
    slots: usize,
    quantum: Cycle,
    max_cycles: Cycle,
) -> ExecutorReport {
    run_tasks_preemptive_traced(scheduler, tasks, slots, quantum, max_cycles, &mut NullSink)
}

/// [`run_tasks_preemptive`] with scheduler observability: emits a
/// [`EventKind::TaskDispatch`] on [`Track::Scheduler`] the first time each
/// task is granted a slot (carrying its laxity at that instant and the
/// queue depth left behind) and a [`EventKind::TaskExit`] when it
/// completes.
///
/// # Panics
///
/// Panics under the same conditions as [`run_tasks_preemptive`].
pub fn run_tasks_preemptive_traced(
    scheduler: &mut dyn TaskScheduler,
    mut tasks: Vec<Task>,
    slots: usize,
    quantum: Cycle,
    max_cycles: Cycle,
    sink: &mut dyn TraceSink,
) -> ExecutorReport {
    assert!(slots > 0, "need at least one execution slot");
    assert!(quantum > 0, "quantum must be positive");
    let total = tasks.len();
    let mut first_start: std::collections::HashMap<u64, Cycle> = std::collections::HashMap::new();
    tasks.sort_by_key(|t| t.arrival);
    let mut next_arrival = 0usize;
    let mut records = Vec::with_capacity(total);
    let mut now: Cycle = 0;
    while records.len() < total {
        assert!(
            now < max_cycles,
            "preemptive executor exceeded {max_cycles} cycles"
        );
        while next_arrival < tasks.len() && tasks[next_arrival].arrival <= now {
            scheduler.enqueue(tasks[next_arrival], now);
            next_arrival += 1;
        }
        // Pick this quantum's runners.
        let mut running = Vec::with_capacity(slots);
        while running.len() < slots {
            match scheduler.dispatch(now) {
                Some(t) => running.push(t),
                None => break,
            }
        }
        for t in &running {
            if let std::collections::hash_map::Entry::Vacant(e) = first_start.entry(t.id) {
                e.insert(now);
                sink.emit(TraceEvent {
                    cycle: now,
                    track: Track::Scheduler,
                    kind: EventKind::TaskDispatch {
                        task: t.id,
                        laxity: t.laxity(now),
                        queued: scheduler.pending() as u64,
                    },
                });
            }
        }
        let end = now + quantum;
        for t in running {
            if t.work <= quantum {
                let exit = now + t.work;
                sink.emit(TraceEvent {
                    cycle: exit,
                    track: Track::Scheduler,
                    kind: EventKind::TaskExit {
                        task: t.id,
                        deadline_met: exit <= t.deadline,
                    },
                });
                records.push(ExitRecord {
                    task: t,
                    start: first_start[&t.id],
                    exit,
                });
            } else {
                // Preempt with remaining work; arrival moves to the tail
                // of this quantum so equal-deadline orders rotate.
                let mut rest = t;
                rest.work = t.work - quantum;
                rest.arrival = end;
                scheduler.enqueue(rest, end);
            }
        }
        now = end;
    }
    // Note: a record's task carries the *final-quantum* remaining work;
    // its id and deadline (what met_deadline needs) are original.
    ExecutorReport {
        scheduler: scheduler.name(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{DeadlineScheduler, FifoScheduler};
    use crate::laxity::LaxityAwareScheduler;
    use smarco_sim::rng::SimRng;

    fn equal_deadline_tasks(n: u64, deadline: Cycle, seed: u64) -> Vec<Task> {
        // Work varies ±40% around a mean chosen so two waves roughly fill
        // the deadline.
        let mut rng = SimRng::new(seed);
        let mean = deadline / 2 - deadline / 8;
        (0..n)
            .map(|i| {
                let spread = (mean as f64 * 0.4) as u64;
                let work = mean - spread / 2 + rng.gen_range(spread);
                Task::new(i, 0, deadline, work)
            })
            .collect()
    }

    #[test]
    fn all_tasks_complete_exactly_once() {
        let tasks = equal_deadline_tasks(128, 340_000, 1);
        let mut s = LaxityAwareScheduler::subring();
        let r = run_tasks(&mut s, tasks, 64, 10_000_000);
        assert_eq!(r.records.len(), 128);
        let mut ids: Vec<u64> = r.records.iter().map(|x| x.task.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 128);
    }

    #[test]
    fn laxity_aware_tightens_exit_spread_versus_deadline_scheduler() {
        let tasks = equal_deadline_tasks(128, 340_000, 2);
        let mut hw = LaxityAwareScheduler::subring();
        let hw_report = run_tasks(&mut hw, tasks.clone(), 64, 10_000_000);
        let mut sw = DeadlineScheduler::with_overhead(200);
        let sw_report = run_tasks(&mut sw, tasks, 64, 10_000_000);
        assert!(
            hw_report.exit_spread() < sw_report.exit_spread(),
            "hw spread {} vs sw spread {}",
            hw_report.exit_spread(),
            sw_report.exit_spread()
        );
        assert!(hw_report.success_rate() >= sw_report.success_rate());
    }

    #[test]
    fn single_slot_serializes() {
        let tasks = vec![Task::new(1, 0, 1000, 100), Task::new(2, 0, 1000, 100)];
        let mut s = FifoScheduler::new();
        let r = run_tasks(&mut s, tasks, 1, 100_000);
        let mut starts: Vec<Cycle> = r.records.iter().map(|x| x.start).collect();
        starts.sort_unstable();
        assert!(starts[1] >= starts[0] + 100);
    }

    #[test]
    fn overhead_delays_start() {
        let tasks = vec![Task::new(1, 0, 10_000, 10)];
        let mut s = DeadlineScheduler::with_overhead(500);
        let r = run_tasks(&mut s, tasks, 4, 100_000);
        assert_eq!(r.records[0].start, 500);
    }

    #[test]
    fn deadline_misses_detected() {
        let tasks = vec![Task::new(1, 0, 50, 100)];
        let mut s = FifoScheduler::new();
        let r = run_tasks(&mut s, tasks, 1, 100_000);
        assert!(!r.records[0].met_deadline());
        assert_eq!(r.success_rate(), 0.0);
    }

    #[test]
    fn staggered_arrivals_respected() {
        let tasks = vec![Task::new(1, 1000, 10_000, 10), Task::new(2, 0, 10_000, 10)];
        let mut s = FifoScheduler::new();
        let r = run_tasks(&mut s, tasks, 2, 100_000);
        let rec1 = r.records.iter().find(|x| x.task.id == 1).unwrap();
        assert!(rec1.start >= 1000);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn budget_overrun_panics() {
        let tasks = vec![Task::new(1, 0, 10, 1_000_000)];
        let mut s = FifoScheduler::new();
        let _ = run_tasks(&mut s, tasks, 1, 100);
    }
}
