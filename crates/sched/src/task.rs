//! Task model and the scheduler interface.

use smarco_sim::Cycle;

/// Scheduling class of a thread task (Fig. 16's normal vs high-priority
/// chain tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum TaskPriority {
    /// Ordinary thread task.
    #[default]
    Normal,
    /// Hard-real-time task; always dispatched before normal tasks.
    High,
}

/// A schedulable thread task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Unique id.
    pub id: u64,
    /// Cycle the task became ready.
    pub arrival: Cycle,
    /// Absolute deadline (cycle by which it must exit).
    pub deadline: Cycle,
    /// Estimated execution time in cycles.
    pub work: Cycle,
    /// Scheduling class.
    pub priority: TaskPriority,
}

impl Task {
    /// Creates a normal-priority task.
    ///
    /// # Panics
    ///
    /// Panics if `work` is zero.
    pub fn new(id: u64, arrival: Cycle, deadline: Cycle, work: Cycle) -> Self {
        assert!(work > 0, "tasks must have positive work");
        Self {
            id,
            arrival,
            deadline,
            work,
            priority: TaskPriority::Normal,
        }
    }

    /// Upgrades to high priority.
    pub fn with_high_priority(mut self) -> Self {
        self.priority = TaskPriority::High;
        self
    }

    /// Execution laxity at `now`: deadline − now − remaining work. Negative
    /// laxity means the task can no longer meet its deadline even if it
    /// starts immediately.
    pub fn laxity(&self, now: Cycle) -> i64 {
        self.deadline as i64 - now as i64 - self.work as i64
    }
}

/// A task scheduler: accepts ready tasks and picks which runs next.
///
/// Implementations also report their per-dispatch `overhead` — the cycles
/// the dispatch decision itself consumes (tiny for the hardware chain
/// tables, large for a software scheduler making a kernel-level decision),
/// which the [`crate::executor`] charges before the task starts.
pub trait TaskScheduler {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Accepts a ready task at cycle `now`.
    fn enqueue(&mut self, task: Task, now: Cycle);

    /// Picks the next task to run at cycle `now`, or `None` when idle.
    fn dispatch(&mut self, now: Cycle) -> Option<Task>;

    /// Cycles one dispatch decision costs.
    fn overhead(&self) -> Cycle;

    /// Tasks waiting.
    fn pending(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laxity_decreases_with_time() {
        let t = Task::new(1, 0, 1000, 300);
        assert_eq!(t.laxity(0), 700);
        assert_eq!(t.laxity(700), 0);
        assert_eq!(t.laxity(800), -100);
    }

    #[test]
    fn priority_upgrade() {
        let t = Task::new(1, 0, 10, 5).with_high_priority();
        assert_eq!(t.priority, TaskPriority::High);
        assert!(TaskPriority::Normal < TaskPriority::High);
    }

    #[test]
    #[should_panic(expected = "positive work")]
    fn zero_work_rejected() {
        let _ = Task::new(1, 0, 10, 0);
    }
}
