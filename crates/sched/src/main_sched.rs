//! The main scheduler on the main ring (§3.7).
//!
//! Tasks arrive from the host CPU; the main scheduler spreads them over
//! sub-rings so "the whole SmarCo chip is running with good load-balance",
//! tracking each sub-ring's outstanding estimated work.

use crate::task::Task;

/// Load-balancing dispatcher over `n` sub-ring schedulers.
///
/// # Examples
///
/// ```
/// use smarco_sched::MainScheduler;
/// use smarco_sched::Task;
///
/// let mut m = MainScheduler::new(4);
/// let a = m.assign(&Task::new(1, 0, 100, 60));
/// let b = m.assign(&Task::new(2, 0, 100, 10));
/// assert_ne!(a, b, "second task avoids the loaded sub-ring");
/// ```
#[derive(Debug, Clone)]
pub struct MainScheduler {
    loads: Vec<u64>,
    assigned: u64,
}

impl MainScheduler {
    /// Creates a balancer over `subrings` targets.
    ///
    /// # Panics
    ///
    /// Panics if `subrings` is zero.
    pub fn new(subrings: usize) -> Self {
        assert!(subrings > 0, "need at least one sub-ring");
        Self {
            loads: vec![0; subrings],
            assigned: 0,
        }
    }

    /// Number of managed sub-rings.
    pub fn subrings(&self) -> usize {
        self.loads.len()
    }

    /// Picks the least-loaded sub-ring for `task` and records its work.
    pub fn assign(&mut self, task: &Task) -> usize {
        let idx = self
            .loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, &l)| (l, i))
            .map(|(i, _)| i)
            .expect("at least one sub-ring");
        self.loads[idx] += task.work;
        self.assigned += 1;
        idx
    }

    /// Records `work` on a caller-chosen sub-ring (used when placement is
    /// constrained, e.g. the least-loaded sub-ring had no vacant thread
    /// slot).
    ///
    /// # Panics
    ///
    /// Panics if `subring` is out of range.
    pub fn assign_to(&mut self, subring: usize, work: u64) {
        assert!(
            subring < self.loads.len(),
            "sub-ring {subring} out of range"
        );
        self.loads[subring] += work;
        self.assigned += 1;
    }

    /// Sub-rings ordered by current load, least first (ties by index).
    pub fn by_load(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.loads.len()).collect();
        idx.sort_by_key(|&i| (self.loads[i], i));
        idx
    }

    /// Reports completion of `work` cycles on `subring`.
    ///
    /// # Panics
    ///
    /// Panics if `subring` is out of range.
    pub fn complete(&mut self, subring: usize, work: u64) {
        assert!(
            subring < self.loads.len(),
            "sub-ring {subring} out of range"
        );
        self.loads[subring] = self.loads[subring].saturating_sub(work);
    }

    /// Current outstanding work per sub-ring.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Tasks assigned so far.
    pub fn assigned(&self) -> u64 {
        self.assigned
    }

    /// Load imbalance: (max − min) / mean outstanding work, 0 when idle.
    pub fn imbalance(&self) -> f64 {
        let max = *self.loads.iter().max().expect("non-empty");
        let min = *self.loads.iter().min().expect("non-empty");
        let sum: u64 = self.loads.iter().sum();
        if sum == 0 {
            0.0
        } else {
            (max - min) as f64 / (sum as f64 / self.loads.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreads_equal_tasks_evenly() {
        let mut m = MainScheduler::new(4);
        for i in 0..8 {
            m.assign(&Task::new(i, 0, 100, 10));
        }
        assert_eq!(m.loads(), &[20, 20, 20, 20]);
        assert_eq!(m.assigned(), 8);
        assert_eq!(m.imbalance(), 0.0);
    }

    #[test]
    fn prefers_least_loaded() {
        let mut m = MainScheduler::new(2);
        m.assign(&Task::new(1, 0, 100, 100)); // → 0
        let s = m.assign(&Task::new(2, 0, 100, 10)); // → 1
        assert_eq!(s, 1);
        let s = m.assign(&Task::new(3, 0, 100, 10)); // loads 100 vs 10 → 1
        assert_eq!(s, 1);
    }

    #[test]
    fn completion_rebalances() {
        let mut m = MainScheduler::new(2);
        m.assign(&Task::new(1, 0, 100, 100));
        m.complete(0, 100);
        assert_eq!(m.loads(), &[0, 0]);
        let s = m.assign(&Task::new(2, 0, 100, 10));
        assert_eq!(s, 0, "ties go to the lowest index");
    }

    #[test]
    fn imbalance_metric() {
        let mut m = MainScheduler::new(2);
        m.assign(&Task::new(1, 0, 100, 30));
        assert!(m.imbalance() > 1.9, "all load on one side");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_subring_rejected() {
        MainScheduler::new(2).complete(5, 1);
    }
}
