//! The hardware laxity-aware sub-scheduler (§3.7).

use smarco_sim::Cycle;

use crate::chain::ChainTable;
use crate::task::{Task, TaskScheduler};

/// Hardware sub-ring scheduler: chain tables + least-laxity-first dispatch.
///
/// Dispatch overhead is the RAM walk: the hardware scans `SCAN_PER_CYCLE`
/// entries per cycle plus a fixed pipeline cost — single-digit cycles even
/// with a hundred queued tasks, versus hundreds–thousands for a software
/// scheduler.
///
/// # Examples
///
/// ```
/// use smarco_sched::{LaxityAwareScheduler, Task, TaskScheduler};
///
/// let mut s = LaxityAwareScheduler::subring();
/// s.enqueue(Task::new(1, 0, 1_000, 100), 0); // laxity 900
/// s.enqueue(Task::new(2, 0, 500, 100), 0);   // laxity 400 — runs first
/// assert_eq!(s.dispatch(0).unwrap().id, 2);
/// ```
#[derive(Debug, Clone)]
pub struct LaxityAwareScheduler {
    table: ChainTable,
    /// Tasks that arrived while the table was full (backpressure queue,
    /// drained opportunistically).
    overflow: Vec<Task>,
    last_overhead: Cycle,
}

/// Fixed dispatch pipeline cost in cycles.
const BASE_CYCLES: Cycle = 2;
/// Chain entries the RAM scan covers per cycle.
const SCAN_PER_CYCLE: usize = 16;

impl LaxityAwareScheduler {
    /// Creates a scheduler whose chain table holds `capacity` tasks
    /// (SmarCo: 128 = one sub-ring's resident threads).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self {
            table: ChainTable::new(capacity),
            overflow: Vec::new(),
            last_overhead: BASE_CYCLES,
        }
    }

    /// SmarCo sub-ring default: 128 entries.
    pub fn subring() -> Self {
        Self::new(128)
    }

    fn refill_from_overflow(&mut self) {
        while !self.overflow.is_empty() && self.table.free() > 0 {
            let t = self.overflow.remove(0);
            self.table.insert(t).expect("free entry available");
        }
    }

    /// Earliest cycle at which any queued task — chain table or overflow —
    /// runs out of laxity. Dispatch *order* is unaffected by fast-forwarding
    /// across this point (laxities shift uniformly with time), so shards use
    /// it for deadline-pressure observability, not as a wakeup horizon.
    pub fn next_laxity_deadline(&self) -> Option<Cycle> {
        let table = self.table.earliest_zero_laxity();
        let overflow = self
            .overflow
            .iter()
            .map(|t| t.deadline.saturating_sub(t.work))
            .min();
        match (table, overflow) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, None) | (None, x) => x,
        }
    }
}

impl TaskScheduler for LaxityAwareScheduler {
    fn name(&self) -> &'static str {
        "laxity-aware (hardware)"
    }

    fn enqueue(&mut self, task: Task, _now: Cycle) {
        if let Err(t) = self.table.insert(task) {
            self.overflow.push(t);
        }
    }

    fn dispatch(&mut self, now: Cycle) -> Option<Task> {
        let task = self.table.pop_min_laxity(now);
        self.last_overhead =
            BASE_CYCLES + (self.table.last_scan_len().div_ceil(SCAN_PER_CYCLE)) as Cycle;
        self.refill_from_overflow();
        task
    }

    fn overhead(&self) -> Cycle {
        self.last_overhead
    }

    fn pending(&self) -> usize {
        self.table.len() + self.overflow.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_laxity_first() {
        let mut s = LaxityAwareScheduler::new(8);
        s.enqueue(Task::new(1, 0, 1000, 100), 0);
        s.enqueue(Task::new(2, 0, 500, 100), 0);
        s.enqueue(Task::new(3, 0, 800, 700), 0);
        // Laxities at 0: t1=900, t2=400, t3=100.
        assert_eq!(s.dispatch(0).unwrap().id, 3);
        assert_eq!(s.dispatch(0).unwrap().id, 2);
        assert_eq!(s.dispatch(0).unwrap().id, 1);
        assert_eq!(s.dispatch(0), None);
    }

    #[test]
    fn overhead_is_small_and_scales_with_scan() {
        let mut s = LaxityAwareScheduler::new(128);
        for i in 0..100 {
            s.enqueue(Task::new(i, 0, 10_000, 100), 0);
        }
        let _ = s.dispatch(0);
        assert!(
            s.overhead() <= 2 + 100_u64.div_ceil(16),
            "overhead {}",
            s.overhead()
        );
        assert!(s.overhead() >= 2);
    }

    #[test]
    fn overflow_spills_and_refills() {
        let mut s = LaxityAwareScheduler::new(2);
        for i in 0..5 {
            s.enqueue(Task::new(i, 0, 1000, 10), 0);
        }
        assert_eq!(s.pending(), 5);
        let mut got = Vec::new();
        while let Some(t) = s.dispatch(0) {
            got.push(t.id);
        }
        assert_eq!(got.len(), 5);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn laxity_deadline_spans_table_and_overflow() {
        let mut s = LaxityAwareScheduler::new(2);
        assert_eq!(s.next_laxity_deadline(), None);
        s.enqueue(Task::new(1, 0, 1000, 100), 0); // zero laxity at 900
        s.enqueue(Task::new(2, 0, 600, 100), 0); // at 500
        s.enqueue(Task::new(3, 0, 300, 100), 0); // overflows; at 200
        assert_eq!(s.next_laxity_deadline(), Some(200));
        let _ = s.dispatch(0);
        let _ = s.dispatch(0);
        let _ = s.dispatch(0);
        assert_eq!(s.next_laxity_deadline(), None);
    }

    #[test]
    fn high_priority_tasks_jump_normal() {
        let mut s = LaxityAwareScheduler::new(8);
        s.enqueue(Task::new(1, 0, 100, 90), 0); // laxity 10
        s.enqueue(Task::new(2, 0, 100_000, 10).with_high_priority(), 0);
        assert_eq!(s.dispatch(0).unwrap().id, 2);
    }
}
