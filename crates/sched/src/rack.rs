//! Laxity at cluster scope: the rack-level load balancer's view of
//! per-chip slack.
//!
//! Inside a chip, [`crate::laxity`] orders *admitted* tasks by execution
//! laxity. At rack scale the question is different — *which chip should
//! this request go to so its laxity survives the chip's queue?* — and the
//! balancer only sees aggregate state: how much work it has routed to
//! each chip that has not come back yet. [`chip_slack`] turns that into
//! the same deadline − now − time-to-finish shape as
//! [`Task::laxity`](crate::Task::laxity), with time-to-finish estimated
//! as the chip's backlog plus the candidate request, drained at the
//! chip's issue width (one instruction per pair slot per cycle).
//!
//! The arithmetic is pure-integer so every policy decision is
//! bit-reproducible across hosts.

use smarco_sim::Cycle;

/// Estimated laxity of a request on a candidate chip: `deadline − now −
/// ceil((backlog + work) / width)`, where `backlog` is the work-cycles
/// already routed to the chip and still outstanding, `work` is the
/// candidate request's size, and `width` is the chip's aggregate issue
/// width (cores × pairs; clamped to at least 1). Negative slack means the
/// request would likely miss its deadline behind that chip's queue.
///
/// ```
/// use smarco_sched::rack::chip_slack;
///
/// // Empty chip, 64-wide: a 640-cycle request drains in 10 cycles.
/// assert_eq!(chip_slack(1_000, 0, 0, 640, 64), 990);
/// // 64k cycles of backlog push the same request 1000 cycles out.
/// assert_eq!(chip_slack(1_000, 0, 64_000, 640, 64), -10);
/// ```
pub fn chip_slack(deadline: Cycle, now: Cycle, backlog: Cycle, work: Cycle, width: u64) -> i64 {
    let width = width.max(1);
    let drain = backlog.saturating_add(work).div_ceil(width);
    let headroom = i64::try_from(deadline.saturating_sub(now)).unwrap_or(i64::MAX);
    headroom.saturating_sub(i64::try_from(drain).unwrap_or(i64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_matches_task_laxity_on_an_empty_unit_width_chip() {
        // With no backlog and width 1 the drain estimate is exactly the
        // task's own work, so chip_slack collapses to Task::laxity.
        let t = crate::Task::new(1, 0, 1_000, 300);
        assert_eq!(chip_slack(1_000, 0, 0, 300, 1), t.laxity(0));
    }

    #[test]
    fn backlog_reduces_slack_monotonically() {
        let base = chip_slack(10_000, 0, 0, 500, 64);
        let loaded = chip_slack(10_000, 0, 32_000, 500, 64);
        let swamped = chip_slack(10_000, 0, 640_000, 500, 64);
        assert!(base > loaded);
        assert!(loaded > swamped);
        assert!(swamped < 0);
    }

    #[test]
    fn drain_estimate_rounds_up() {
        // 65 work-cycles on a 64-wide chip take 2 cycles, not 1.
        assert_eq!(chip_slack(100, 0, 0, 65, 64), 98);
    }

    #[test]
    fn zero_width_is_clamped_not_divided() {
        assert_eq!(chip_slack(100, 0, 0, 10, 0), 90);
    }
}
