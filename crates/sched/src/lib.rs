//! Task scheduling for the SmarCo reproduction (§3.7, Figs. 16 & 21).
//!
//! SmarCo guarantees QoS with a two-level **laxity-aware task scheduler**:
//! a main scheduler on the main ring balances load across sub-rings, and a
//! hardware sub-scheduler per sub-ring dispatches thread tasks by
//! *execution laxity* (deadline − now − remaining work). The hardware
//! scheduler is built from three RAM chain tables — null (free), normal,
//! and high-priority — because RAM is far cheaper than CAM in area and
//! power at the cost of linear traversal, which we model as per-entry scan
//! cycles.
//!
//! Baselines: the software **Deadline Scheduler** (Fig. 21 left; EDF-style
//! with OS dispatch overhead) and a plain FIFO.

#![warn(missing_docs)]

pub mod baseline;
pub mod chain;
pub mod executor;
pub mod laxity;
pub mod main_sched;
pub mod rack;
pub mod task;

pub use baseline::{DeadlineScheduler, FifoScheduler};
pub use executor::{run_tasks, ExecutorReport, ExitRecord};
pub use laxity::LaxityAwareScheduler;
pub use main_sched::MainScheduler;
pub use task::{Task, TaskPriority, TaskScheduler};
