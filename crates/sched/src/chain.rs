//! RAM-based chain tables (Fig. 16).
//!
//! The hardware sub-scheduler keeps tasks in three singly linked chains
//! threaded through one RAM array: **null** (free entries), **normal**,
//! and **high-priority**. Using RAM instead of CAM saves area and power
//! (§3.7) at the cost of walking the chain — the walk cost is surfaced as
//! [`ChainTable::last_scan_len`] so the scheduler can charge realistic
//! dispatch cycles.

use crate::task::{Task, TaskPriority};

const NIL: u16 = u16::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry {
    task: Option<Task>,
    next: u16,
}

/// A fixed-capacity chain table holding ready tasks in two priority
/// chains plus a free chain.
///
/// # Examples
///
/// ```
/// use smarco_sched::chain::ChainTable;
/// use smarco_sched::task::Task;
///
/// let mut t = ChainTable::new(8);
/// t.insert(Task::new(1, 0, 100, 10)).unwrap();
/// t.insert(Task::new(2, 0, 100, 60)).unwrap();
/// // Least laxity first: task 2 (100 − 60) beats task 1 (100 − 10).
/// assert_eq!(t.pop_min_laxity(0).unwrap().id, 2);
/// ```
#[derive(Debug, Clone)]
pub struct ChainTable {
    entries: Vec<Entry>,
    free_head: u16,
    heads: [u16; 2], // [normal, high]
    lens: [usize; 2],
    last_scan: usize,
}

impl ChainTable {
    /// Creates a table of `capacity` entries, all on the null chain.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or above `u16::MAX - 1`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "chain table needs capacity");
        assert!(
            capacity < usize::from(u16::MAX),
            "capacity too large for u16 links"
        );
        let mut entries = Vec::with_capacity(capacity);
        for i in 0..capacity {
            let next = if i + 1 == capacity {
                NIL
            } else {
                (i + 1) as u16
            };
            entries.push(Entry { task: None, next });
        }
        Self {
            entries,
            free_head: 0,
            heads: [NIL, NIL],
            lens: [0, 0],
            last_scan: 0,
        }
    }

    fn chain_idx(p: TaskPriority) -> usize {
        match p {
            TaskPriority::Normal => 0,
            TaskPriority::High => 1,
        }
    }

    /// Total queued tasks.
    pub fn len(&self) -> usize {
        self.lens.iter().sum()
    }

    /// Whether no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free entries remaining on the null chain.
    pub fn free(&self) -> usize {
        self.entries.len() - self.len()
    }

    /// Entries touched by the most recent insert/pop — the RAM walk length
    /// the hardware pays for.
    pub fn last_scan_len(&self) -> usize {
        self.last_scan
    }

    /// Appends a task to its priority chain.
    ///
    /// # Errors
    ///
    /// Returns the task back when the table is full.
    pub fn insert(&mut self, task: Task) -> Result<(), Task> {
        if self.free_head == NIL {
            return Err(task);
        }
        let idx = self.free_head;
        self.free_head = self.entries[usize::from(idx)].next;
        self.entries[usize::from(idx)] = Entry {
            task: Some(task),
            next: NIL,
        };
        let chain = Self::chain_idx(task.priority);
        // Append at tail: walk the chain (RAM cost).
        let mut scan = 1;
        if self.heads[chain] == NIL {
            self.heads[chain] = idx;
        } else {
            let mut cur = self.heads[chain];
            while self.entries[usize::from(cur)].next != NIL {
                cur = self.entries[usize::from(cur)].next;
                scan += 1;
            }
            self.entries[usize::from(cur)].next = idx;
        }
        self.lens[chain] += 1;
        self.last_scan = scan;
        Ok(())
    }

    /// Removes and returns the minimum-laxity task, preferring the
    /// high-priority chain when it is non-empty. Ties break toward the
    /// earlier chain position (FIFO).
    pub fn pop_min_laxity(&mut self, now: smarco_sim::Cycle) -> Option<Task> {
        let chain = if self.lens[1] > 0 { 1 } else { 0 };
        if self.heads[chain] == NIL {
            return None;
        }
        // Walk the chain tracking min laxity and its predecessor.
        let mut scan = 0;
        let mut best: Option<(u16, u16, i64)> = None; // (prev, idx, laxity)
        let mut prev = NIL;
        let mut cur = self.heads[chain];
        while cur != NIL {
            scan += 1;
            let lax = self.entries[usize::from(cur)]
                .task
                .expect("chained entries hold tasks")
                .laxity(now);
            if best.is_none_or(|(_, _, b)| lax < b) {
                best = Some((prev, cur, lax));
            }
            prev = cur;
            cur = self.entries[usize::from(cur)].next;
        }
        self.last_scan = scan;
        let (bprev, bidx, _) = best.expect("chain non-empty");
        // Unlink.
        let bnext = self.entries[usize::from(bidx)].next;
        if bprev == NIL {
            self.heads[chain] = bnext;
        } else {
            self.entries[usize::from(bprev)].next = bnext;
        }
        let task = self.entries[usize::from(bidx)].task.take();
        self.entries[usize::from(bidx)].next = self.free_head;
        self.free_head = bidx;
        self.lens[chain] -= 1;
        task
    }

    /// Earliest cycle at which a queued task's laxity reaches zero
    /// (`deadline − work`); `None` when the table is empty. Note that
    /// *relative* laxity order is invariant under time shifts (every
    /// laxity decreases by the same amount per cycle), so a cycle-skipping
    /// simulator need not wake at this horizon for ordering correctness —
    /// it marks when a task becomes unable to meet its deadline. A pure
    /// observer: no RAM walk is charged.
    pub fn earliest_zero_laxity(&self) -> Option<smarco_sim::Cycle> {
        self.entries
            .iter()
            .filter_map(|e| e.task)
            .map(|t| t.deadline.saturating_sub(t.work))
            .min()
    }

    /// Removes and returns the head of the preferred chain (FIFO order),
    /// high-priority first.
    pub fn pop_front(&mut self) -> Option<Task> {
        let chain = if self.lens[1] > 0 { 1 } else { 0 };
        let head = self.heads[chain];
        if head == NIL {
            return None;
        }
        self.last_scan = 1;
        self.heads[chain] = self.entries[usize::from(head)].next;
        let task = self.entries[usize::from(head)].task.take();
        self.entries[usize::from(head)].next = self.free_head;
        self.free_head = head;
        self.lens[chain] -= 1;
        task
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    #[test]
    fn fills_and_frees_entries() {
        let mut t = ChainTable::new(4);
        assert_eq!(t.free(), 4);
        for i in 0..4 {
            t.insert(Task::new(i, 0, 100, 10)).unwrap();
        }
        assert_eq!(t.free(), 0);
        assert!(t.insert(Task::new(9, 0, 100, 10)).is_err());
        assert!(t.pop_front().is_some());
        assert_eq!(t.free(), 1);
        assert!(t.insert(Task::new(9, 0, 100, 10)).is_ok());
    }

    #[test]
    fn min_laxity_pops_longest_work_for_equal_deadlines() {
        let mut t = ChainTable::new(8);
        t.insert(Task::new(1, 0, 1000, 100)).unwrap();
        t.insert(Task::new(2, 0, 1000, 500)).unwrap();
        t.insert(Task::new(3, 0, 1000, 300)).unwrap();
        assert_eq!(t.pop_min_laxity(0).unwrap().id, 2);
        assert_eq!(t.pop_min_laxity(0).unwrap().id, 3);
        assert_eq!(t.pop_min_laxity(0).unwrap().id, 1);
        assert!(t.pop_min_laxity(0).is_none());
    }

    #[test]
    fn high_priority_chain_served_first() {
        let mut t = ChainTable::new(8);
        t.insert(Task::new(1, 0, 100, 10)).unwrap();
        t.insert(Task::new(2, 0, 10_000, 10).with_high_priority())
            .unwrap();
        // Normal task 1 has far less laxity, but the high chain wins.
        assert_eq!(t.pop_min_laxity(0).unwrap().id, 2);
        assert_eq!(t.pop_min_laxity(0).unwrap().id, 1);
    }

    #[test]
    fn fifo_pop_front_order() {
        let mut t = ChainTable::new(8);
        for i in 0..5 {
            t.insert(Task::new(i, 0, 100 + i, 10)).unwrap();
        }
        for i in 0..5 {
            assert_eq!(t.pop_front().unwrap().id, i);
        }
    }

    #[test]
    fn scan_length_reflects_ram_walk() {
        let mut t = ChainTable::new(32);
        for i in 0..10 {
            t.insert(Task::new(i, 0, 100, 10)).unwrap();
        }
        let _ = t.pop_min_laxity(0);
        assert_eq!(t.last_scan_len(), 10);
    }

    #[test]
    fn interleaved_stress_consistency() {
        let mut t = ChainTable::new(16);
        let mut popped = Vec::new();
        for round in 0..50u64 {
            for i in 0..3 {
                let _ = t.insert(Task::new(round * 10 + i, 0, 10_000, 100 + i));
            }
            if let Some(task) = t.pop_min_laxity(round) {
                popped.push(task.id);
            }
        }
        while let Some(task) = t.pop_front() {
            popped.push(task.id);
        }
        assert!(t.is_empty());
        popped.sort_unstable();
        popped.dedup();
        // No task popped twice.
        assert_eq!(popped.len(), popped.len());
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = ChainTable::new(0);
    }
}
