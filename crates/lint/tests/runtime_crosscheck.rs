//! Static-to-runtime cross-check: a lint-clean thread set's certified
//! SPM footprint is enforced by `Spm::certify` in debug builds, so any
//! divergence between the linter's access model and the simulated
//! execution panics instead of passing silently.

use smarco_core::chip::SmarcoSystem;
use smarco_core::config::SmarcoConfig;
use smarco_isa::op::Op;
use smarco_isa::program::{Program, ProgramBuilder};
use smarco_lint::{certified_spm_footprint, lint_threads, ThreadProgram};

/// Two threads per core, each looping over its own SPM slice plus a
/// shared read-only DRAM table.
fn guest(space_base: u64, slot: usize) -> Program {
    let slice = space_base + slot as u64 * 4096;
    ProgramBuilder::at(0x1000 + slot as u64 * 0x400)
        .op(Op::load(0x10_0000, 8))
        .op(Op::store(slice, 8))
        .op(Op::compute())
        .op(Op::load(slice + 8, 8))
        .op(Op::store(slice + 1024, 64))
        .repeat(50)
        .build()
}

#[test]
fn certified_run_stays_inside_the_footprint() {
    let mut sys = SmarcoSystem::builder()
        .config(SmarcoConfig::tiny())
        .build()
        .expect("valid config");
    let space = sys.address_space();
    let cores = 2;
    let slots = 2;

    let mut threads = Vec::new();
    let mut programs = Vec::new();
    for core in 0..cores {
        for slot in 0..slots {
            let prog = guest(space.spm_base(core), slot);
            threads.push(ThreadProgram::from_stream(
                format!("core{core}/slot{slot}"),
                core,
                slot,
                prog.stream(),
                2048,
            ));
            programs.push((core, prog));
        }
    }

    let report = lint_threads(&space, &threads);
    assert!(
        report.is_empty(),
        "guests must lint clean:\n{}",
        report.render_text()
    );

    for core in 0..cores {
        let footprint = certified_spm_footprint(&space, &threads, core);
        assert!(!footprint.is_empty(), "core {core} touches its SPM");
        let spm = sys.core_mut(core).spm_mut();
        spm.make_resident(0, 16384);
        spm.certify(&footprint);
    }
    for (core, prog) in programs {
        sys.attach(core, Box::new(prog.into_stream()))
            .expect("vacant slot");
    }
    let report = sys.run(1_000_000);
    assert!(sys.is_done(), "run completed under the certified footprint");
    assert!(report.instructions > 0);
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "escapes the statically certified footprint")]
fn escaping_access_panics_under_certification() {
    let mut sys = SmarcoSystem::builder()
        .config(SmarcoConfig::tiny())
        .build()
        .expect("valid config");
    let space = sys.address_space();
    let prog = guest(space.spm_base(0), 1); // touches offsets 4096..=5184
    {
        let spm = sys.core_mut(0).spm_mut();
        spm.make_resident(0, 16384);
        spm.certify(&[(0, 64)]); // certified footprint misses the program's slice
    }
    sys.attach(0, Box::new(prog.into_stream()))
        .expect("vacant slot");
    sys.run(1_000_000);
}
