//! `smarco-lint` — static verifier for guest programs, DMA plans, and
//! chip configurations.
//!
//! The simulator's runtime checks (asserts in `Spm::access`, config
//! `validate()` panics, MACT debug invariants) catch a defect only on
//! the cycle it executes. This crate finds the same classes of defect
//! *statically*, from a bounded capture of each thread's instruction
//! stream and the plain config structs, before a chip is ever built:
//!
//! * [`addr`] — **SL01xx** address-map analysis: every memory reference
//!   and DMA endpoint must resolve wholly inside one mapped region of
//!   the unified address space.
//! * [`race`] — **SL02xx** cross-thread race detection: the ISA has no
//!   inter-thread barrier, so overlapping write/write or read/write
//!   footprints of co-scheduled threads are races; so is touching your
//!   own DMA destination before `Sync`.
//! * [`dma`] — **SL03xx** DMA/overlap analysis: self-overlapping
//!   copies, conflicting destinations, and MapReduce staging plans whose
//!   SPM buffers collide (mirroring `run_mapreduce`'s placement).
//! * [`config`] — **SL04xx** configuration validation: the structural
//!   invariants of [`SmarcoConfig`] and friends as diagnostics instead
//!   of panics, plus soft heuristics (slice widths, MACT deadlines,
//!   infeasible tasks).
//! * [`model`] — the **ChipModel IR**: a typed component/channel graph
//!   of the whole chip (cores, ring segments, junctions, MACTs, spokes,
//!   DDR channels, the retry wheel) extracted purely from config, plus
//!   the shard-partition hierarchy pass (**SL0423**) and the rack-scale
//!   cluster pass (**SL0460/SL0461**: fabric hops shorter than a chip's
//!   internal boundary, open-loop load beyond aggregate capacity).
//! * [`deadlock`] — **SL0420/SL0422** static deadlock analysis: blocking
//!   cycles and resource-class extinction over the model graph.
//! * [`horizon`] — **SL0421** horizon-soundness: evaluates the *same*
//!   [`HorizonContract`](smarco_core::contract::HorizonContract) object
//!   the PDES engine enforces in debug builds.
//! * [`schedbound`] — **SL0430/SL0431** worst-case latency bounds: the
//!   fault plan's composed worst-case delay against MACT deadlines,
//!   task laxities, and MapReduce phase budgets.
//! * [`corpus`] — the negative-config corpus: one seeded bad config per
//!   model-pass trigger, self-verifying in tests and in CI.
//!
//! Every finding is a [`Diagnostic`] with a stable `SLxxxx` code, a
//! severity (deny / warn / note), a span, and usually a help line;
//! [`Report`] renders them as text or JSON. The `lint` binary in
//! `smarco-bench` sweeps the built-in benchmarks and configs.
//!
//! Statically certified footprints can be cross-checked at runtime:
//! [`certified_spm_footprint`] converts a thread set's verdict into the
//! ranges `Spm::certify` enforces under `debug_assertions`.

#![warn(missing_docs)]

pub mod access;
pub mod addr;
pub mod config;
pub mod corpus;
pub mod deadlock;
pub mod diag;
pub mod dma;
pub mod horizon;
pub mod model;
pub mod race;
pub mod schedbound;

pub use access::{Interval, IntervalSet, ThreadAccesses, ThreadProgram};
pub use addr::{check_addresses, check_thread_addresses};
pub use config::{
    check_backend, check_config, check_link, check_mact, check_noc, check_task, check_tcg,
};
pub use corpus::{corpus, run_corpus, CorpusEntry};
pub use deadlock::check_deadlock;
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use dma::{check_dma, check_mapreduce_plan, check_staging, StagedBuffer};
pub use horizon::check_horizon;
pub use model::{
    check_cluster, check_partition_hierarchy, Channel, ChannelKind, ChipModel, ClusterGeometry,
    PartitionLevel,
};
pub use race::{check_races, check_unsynced_dma};
pub use schedbound::{check_schedbound, fault_slack};

use smarco_core::config::SmarcoConfig;
use smarco_core::fault::FaultPlan;
use smarco_mem::map::{AddressSpace, RangeClass, Region};
use smarco_runtime::MapReduceConfig;
use smarco_sched::Task;

/// Runs the address, race, and DMA passes over a co-scheduled thread
/// set and returns the sorted report.
pub fn lint_threads(space: &AddressSpace, threads: &[ThreadProgram]) -> Report {
    let mut report = Report::new();
    report.absorb(addr::check_addresses(space, threads));
    report.absorb(race::check_races(threads));
    report.absorb(dma::check_dma(threads));
    report.sort();
    report
}

/// Runs the configuration pass over a whole-chip config and returns the
/// sorted report.
pub fn lint_config(cfg: &SmarcoConfig) -> Report {
    let mut report = Report::new();
    report.absorb(config::check_config(cfg));
    report.sort();
    report
}

/// Everything the model passes analyse together: a chip configuration,
/// the task set headed for the dispatcher, an optional fault plan
/// override (the config's own plan otherwise), an optional MapReduce
/// plan, and any outer partition levels beyond the chip's own.
#[derive(Debug, Clone)]
pub struct ModelInput {
    /// The chip configuration.
    pub cfg: SmarcoConfig,
    /// Tasks headed for the dispatcher.
    pub tasks: Vec<Task>,
    /// Fault plan override; `cfg.fault` is used when `None`.
    pub plan: Option<FaultPlan>,
    /// MapReduce plan whose phase budget joins the deadline checks.
    pub mr: Option<MapReduceConfig>,
    /// Partition levels enclosing the chip level, innermost first.
    pub outer_levels: Vec<PartitionLevel>,
    /// Rack-scale cluster geometry, when the chip is one of many on an
    /// inter-chip fabric serving an open-loop request stream.
    pub cluster: Option<ClusterGeometry>,
}

impl ModelInput {
    /// An input with no tasks, no plan override, and no outer levels.
    pub fn new(cfg: SmarcoConfig) -> Self {
        Self {
            cfg,
            tasks: Vec::new(),
            plan: None,
            mr: None,
            outer_levels: Vec::new(),
            cluster: None,
        }
    }

    /// Overrides the fault plan under analysis.
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Sets the task set under analysis.
    #[must_use]
    pub fn with_tasks(mut self, tasks: Vec<Task>) -> Self {
        self.tasks = tasks;
        self
    }

    /// Adds a MapReduce plan whose phase budget joins the checks.
    #[must_use]
    pub fn with_mapreduce(mut self, mr: MapReduceConfig) -> Self {
        self.mr = Some(mr);
        self
    }

    /// Appends an enclosing partition level (e.g. an inter-chip fabric).
    #[must_use]
    pub fn with_outer_level(mut self, level: PartitionLevel) -> Self {
        self.outer_levels.push(level);
        self
    }

    /// Attaches a rack-scale cluster geometry: the cluster pass
    /// ([`check_cluster`], SL0460/SL0461) runs and the geometry's fabric
    /// level joins the partition hierarchy (SL0423 and friends).
    #[must_use]
    pub fn with_cluster(mut self, cluster: ClusterGeometry) -> Self {
        self.cluster = Some(cluster);
        self
    }
}

/// Runs all four model passes — deadlock, horizon soundness,
/// schedulability bounds, and partition-hierarchy soundness — over one
/// [`ModelInput`] and returns the sorted report. This is the entry
/// point the `lint` CLI sweep, the CI corpus gate, and the corpus's own
/// tests all share.
pub fn lint_model(input: &ModelInput) -> Report {
    let mut model = ChipModel::extract(
        &input.cfg,
        &input.tasks,
        input.plan.as_ref(),
        input.mr.as_ref(),
    );
    model.levels.extend(input.outer_levels.iter().cloned());
    let mut report = Report::new();
    if let Some(cluster) = &input.cluster {
        model.levels.push(cluster.level());
        report.absorb(model::check_cluster(cluster));
    }
    report.absorb(deadlock::check_deadlock(&model));
    report.absorb(horizon::check_horizon(&input.cfg));
    report.absorb(schedbound::check_schedbound(&model));
    report.absorb(check_partition_hierarchy(&model.levels));
    report.absorb(config::check_backend(&input.cfg.noc));
    report.sort();
    report
}

/// The union of `core`'s SPM-data ranges touched by `threads`, as
/// `(offset, len)` pairs relative to the data region — the exact shape
/// `Spm::certify` takes. Feed a lint-clean thread set's footprint to the
/// SPM and every debug-build access outside it will panic, catching any
/// divergence between the static model and the actual execution.
pub fn certified_spm_footprint(
    space: &AddressSpace,
    threads: &[ThreadProgram],
    core: usize,
) -> Vec<(u64, u64)> {
    let mut intervals = Vec::new();
    for t in threads {
        for (index, instr) in t.instrs.iter().enumerate() {
            for e in instr.op.effects() {
                if e.start >= e.end {
                    continue;
                }
                if let RangeClass::Within(Region::Spm { core: c, offset }) =
                    space.classify_range(e.start, e.end - e.start)
                {
                    if c == core {
                        intervals.push(Interval {
                            start: offset,
                            end: offset + (e.end - e.start),
                            pc: instr.pc,
                            index,
                        });
                    }
                }
            }
        }
    }
    IntervalSet::build(intervals)
        .intervals()
        .iter()
        .map(|iv| (iv.start, iv.end - iv.start))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_isa::op::{Instr, Op};
    use smarco_mem::map::{DRAM_BYTES, SPM_BASE};

    fn prog(name: &str, core: usize, slot: usize, ops: Vec<Op>) -> ThreadProgram {
        let instrs = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| Instr {
                pc: 0x4000 + i as u64 * 4,
                op,
            })
            .collect();
        ThreadProgram::new(name, core, slot, instrs)
    }

    #[test]
    fn seeded_violations_surface_in_text_and_json() {
        let space = AddressSpace::new(4, 2);
        let threads = vec![
            // SL0101: load from the unmapped hole above DRAM.
            prog("core0/slot0", 0, 0, vec![Op::load(DRAM_BYTES + 64, 8)]),
            // SL0201: both threads store the same DRAM word.
            prog("core0/slot2", 0, 2, vec![Op::store(0x9000, 8)]),
            prog("core1/slot0", 1, 0, vec![Op::store(0x9000, 8)]),
        ];
        let report = lint_threads(&space, &threads);
        assert!(report.has_deny());
        let text = report.render_text();
        assert!(text.contains("SL0101"), "{text}");
        assert!(text.contains("SL0201"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"code\":\"SL0101\""), "{json}");
        assert!(json.contains("\"code\":\"SL0201\""), "{json}");
    }

    #[test]
    fn clean_threads_and_configs_produce_empty_reports() {
        let space = AddressSpace::new(4, 2);
        let threads = vec![
            prog("a", 0, 0, vec![Op::load(0x1000, 8), Op::store(SPM_BASE, 8)]),
            prog("b", 1, 0, vec![Op::load(0x1000, 8), Op::store(0x2000, 8)]),
        ];
        assert!(lint_threads(&space, &threads).is_empty());
        assert!(lint_config(&SmarcoConfig::tiny()).is_empty());
    }

    #[test]
    fn config_violations_surface_in_both_renderings() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.dram.channels = 9;
        let report = lint_config(&cfg);
        assert!(report.has_deny());
        assert!(report.render_text().contains("SL0403"));
        assert!(report.to_json().contains("\"code\":\"SL0403\""));
    }

    #[test]
    fn footprint_covers_spm_effects_and_ignores_the_rest() {
        let space = AddressSpace::new(4, 2);
        let threads = vec![prog(
            "t",
            0,
            0,
            vec![
                Op::store(SPM_BASE + 128, 8),
                Op::load(SPM_BASE + 132, 4), // merges with the store
                Op::load(0x1000, 8),         // DRAM: not part of the SPM footprint
                Op::Dma {
                    src: 0x1_0000,
                    dst: SPM_BASE + 4096,
                    bytes: 1024,
                },
                Op::Sync,
            ],
        )];
        let fp = certified_spm_footprint(&space, &threads, 0);
        assert_eq!(fp, vec![(128, 8), (4096, 1024)]);
        assert!(certified_spm_footprint(&space, &threads, 1).is_empty());
    }
}
