//! Static access model: captured thread programs and merged interval
//! sets over their memory effects.
//!
//! Every pass works on [`ThreadProgram`]s — finite instruction captures
//! with a placement (core, slot). Read/write footprints are reduced to
//! [`IntervalSet`]s: sorted, merged byte ranges, each keeping a
//! representative instruction so diagnostics can point somewhere
//! concrete. Overlap queries are a linear two-pointer sweep.

use smarco_isa::op::{Instr, Op};
use smarco_isa::trace::Trace;
use smarco_isa::InstructionStream;

/// A finite instruction capture of one thread, placed on the chip.
#[derive(Debug, Clone)]
pub struct ThreadProgram {
    /// Display label, e.g. `core0/slot2`.
    pub name: String,
    /// Core the thread runs on.
    pub core: usize,
    /// Resident-thread slot on that core (pairs are `slot / 2`).
    pub slot: usize,
    /// The captured instructions.
    pub instrs: Vec<Instr>,
}

impl ThreadProgram {
    /// Wraps an explicit instruction list.
    pub fn new(name: impl Into<String>, core: usize, slot: usize, instrs: Vec<Instr>) -> Self {
        Self {
            name: name.into(),
            core,
            slot,
            instrs,
        }
    }

    /// Captures at most `limit` instructions from a stream (the standard
    /// way to lint generator-backed workloads).
    pub fn from_stream<S: InstructionStream>(
        name: impl Into<String>,
        core: usize,
        slot: usize,
        stream: S,
        limit: usize,
    ) -> Self {
        let trace = Trace::record_bounded(stream, limit);
        Self::new(name, core, slot, trace.instrs().to_vec())
    }

    /// The in-pair index: threads with equal `pair()` on the same core
    /// are friends sharing one dispatcher slice.
    pub fn pair(&self) -> usize {
        self.slot / 2
    }
}

/// A byte range with a representative instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First byte.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
    /// Program counter of a representative instruction touching it.
    pub pc: u64,
    /// Stream index of that instruction.
    pub index: usize,
}

/// Sorted, merged intervals supporting linear overlap sweeps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    items: Vec<Interval>,
}

impl IntervalSet {
    /// Builds a set, sorting and merging overlapping or adjacent input
    /// intervals (the earliest representative wins, so diagnostics point
    /// at the first instruction that touched the range).
    pub fn build(mut intervals: Vec<Interval>) -> Self {
        intervals.retain(|iv| iv.start < iv.end);
        intervals.sort_by_key(|iv| (iv.start, iv.index));
        let mut merged: Vec<Interval> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match merged.last_mut() {
                Some(last) if iv.start <= last.end => {
                    last.end = last.end.max(iv.end);
                    if iv.index < last.index {
                        last.pc = iv.pc;
                        last.index = iv.index;
                    }
                }
                _ => merged.push(iv),
            }
        }
        Self { items: merged }
    }

    /// The merged intervals, ascending by start.
    pub fn intervals(&self) -> &[Interval] {
        &self.items
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total bytes covered.
    pub fn bytes(&self) -> u64 {
        self.items.iter().map(|iv| iv.end - iv.start).sum()
    }

    /// First strict overlap between this set and `other`, if any
    /// (two-pointer sweep; adjacency is not overlap).
    pub fn first_overlap(&self, other: &IntervalSet) -> Option<(Interval, Interval)> {
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            let a = self.items[i];
            let b = other.items[j];
            if a.start < b.end && b.start < a.end {
                return Some((a, b));
            }
            if a.end <= b.start {
                i += 1;
            } else {
                j += 1;
            }
        }
        None
    }
}

/// A thread's static footprint: merged read and write interval sets
/// (DMA sources count as reads, DMA destinations as writes).
#[derive(Debug, Clone, Default)]
pub struct ThreadAccesses {
    /// Bytes the thread reads.
    pub reads: IntervalSet,
    /// Bytes the thread writes.
    pub writes: IntervalSet,
}

impl ThreadAccesses {
    /// Collects the footprint of a captured program via [`Op::effects`].
    pub fn collect(prog: &ThreadProgram) -> Self {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for (index, instr) in prog.instrs.iter().enumerate() {
            for e in instr.op.effects() {
                let iv = Interval {
                    start: e.start,
                    end: e.end,
                    pc: instr.pc,
                    index,
                };
                if e.write {
                    writes.push(iv);
                } else {
                    reads.push(iv);
                }
            }
        }
        Self {
            reads: IntervalSet::build(reads),
            writes: IntervalSet::build(writes),
        }
    }
}

/// Collects the merged destination ranges of a thread's DMA transfers.
pub fn dma_destinations(prog: &ThreadProgram) -> IntervalSet {
    let mut dsts = Vec::new();
    for (index, instr) in prog.instrs.iter().enumerate() {
        if let Op::Dma { dst, bytes, .. } = instr.op {
            if bytes > 0 {
                dsts.push(Interval {
                    start: dst,
                    end: dst.saturating_add(u64::from(bytes)),
                    pc: instr.pc,
                    index,
                });
            }
        }
    }
    IntervalSet::build(dsts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: u64, end: u64, index: usize) -> Interval {
        Interval {
            start,
            end,
            pc: 0x1000 + index as u64 * 4,
            index,
        }
    }

    #[test]
    fn build_merges_overlapping_and_adjacent() {
        let s = IntervalSet::build(vec![
            iv(10, 20, 1),
            iv(0, 10, 0),
            iv(15, 30, 2),
            iv(40, 50, 3),
        ]);
        let got: Vec<(u64, u64)> = s.intervals().iter().map(|i| (i.start, i.end)).collect();
        assert_eq!(got, vec![(0, 30), (40, 50)]);
        assert_eq!(s.intervals()[0].index, 0, "earliest representative kept");
        assert_eq!(s.bytes(), 40);
    }

    #[test]
    fn overlap_sweep_finds_first_intersection() {
        let a = IntervalSet::build(vec![iv(0, 8, 0), iv(100, 120, 1)]);
        let b = IntervalSet::build(vec![iv(8, 16, 0), iv(110, 112, 1)]);
        let (x, y) = a.first_overlap(&b).expect("overlap at 110");
        assert_eq!((x.start, y.start), (100, 110));
        // Adjacency ([0,8) vs [8,16)) is not overlap.
        let c = IntervalSet::build(vec![iv(8, 16, 0)]);
        let d = IntervalSet::build(vec![iv(0, 8, 0)]);
        assert!(c.first_overlap(&d).is_none());
    }

    #[test]
    fn collect_splits_reads_and_writes() {
        let prog = ThreadProgram::new(
            "t",
            0,
            0,
            vec![
                Instr {
                    pc: 0x100,
                    op: Op::load(0x1000, 8),
                },
                Instr {
                    pc: 0x104,
                    op: Op::store(0x2000, 4),
                },
                Instr {
                    pc: 0x108,
                    op: Op::Dma {
                        src: 0x3000,
                        dst: 0x4000,
                        bytes: 64,
                    },
                },
            ],
        );
        let acc = ThreadAccesses::collect(&prog);
        assert_eq!(acc.reads.bytes(), 8 + 64);
        assert_eq!(acc.writes.bytes(), 4 + 64);
        let dsts = dma_destinations(&prog);
        assert_eq!(dsts.bytes(), 64);
        assert_eq!(dsts.intervals()[0].start, 0x4000);
    }

    #[test]
    fn pair_is_slot_over_two() {
        let p = ThreadProgram::new("t", 0, 5, Vec::new());
        assert_eq!(p.pair(), 2);
    }
}
