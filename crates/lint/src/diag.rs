//! The structured diagnostics engine: stable codes, severities, spans,
//! and text/JSON rendering shared by every lint pass.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: legal but worth knowing (e.g. remote-SPM traffic).
    Note,
    /// Suspicious: almost always a performance bug or a latent
    /// correctness bug.
    Warn,
    /// Certain defect: the program, plan, or configuration will corrupt
    /// data, panic, or violate an architectural invariant.
    Deny,
}

impl Severity {
    /// Stable lowercase name (`deny` / `warn` / `note`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable diagnostic codes, grouped by pass:
///
/// * `SL01xx` — address-map analysis
/// * `SL02xx` — cross-thread race detection
/// * `SL03xx` — DMA / staging-plan overlap analysis
/// * `SL04xx` — configuration validation
///
/// Codes never change meaning once shipped; new findings get new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// SL0101: memory reference resolves to no mapped region.
    UnmappedRef,
    /// SL0102: memory reference straddles a region boundary.
    StraddlingRef,
    /// SL0103: naturally-alignable reference is misaligned for its width.
    MisalignedRef,
    /// SL0104: guest load/store hits the SPM control-register window.
    CtrlRef,
    /// SL0105: DMA endpoint range is unmapped, straddling, or empty.
    BadDmaRange,
    /// SL0106: access to another core's SPM window (legal but remote).
    RemoteSpmRef,
    /// SL0201: two threads write overlapping ranges with no ordering.
    WriteWriteRace,
    /// SL0202: one thread writes a range another reads with no ordering.
    ReadWriteRace,
    /// SL0203: thread touches its own in-flight DMA destination before
    /// the `Sync` that completes the transfer.
    UnsyncedDmaAccess,
    /// SL0301: a DMA op's source and destination ranges overlap.
    DmaSrcDstOverlap,
    /// SL0302: DMA destinations of different threads overlap.
    DmaDstConflict,
    /// SL0303: SPM staging buffers collide or escape their core's window.
    StagingCollision,
    /// SL0304: MapReduce plan shape is invalid (ranges, regions, threads).
    PlanShape,
    /// SL0305: slice rounding makes trailing tasks read past the input.
    SliceBeyondInput,
    /// SL0401: a structurally required field is zero (or non-positive).
    ZeroField,
    /// SL0402: resident threads exceed 2 × thread pairs.
    ThreadsExceedPairs,
    /// SL0403: DRAM channel count differs from NoC memory controllers.
    DramChannelMismatch,
    /// SL0404: direct-datapath spokes differ from sub-ring count.
    DirectSpokeMismatch,
    /// SL0405: memory controllers do not divide sub-rings evenly.
    CtrlSpacing,
    /// SL0406: link slice width is zero, oversized, or does not tile the
    /// guaranteed link capacity.
    SliceWidth,
    /// SL0407: MACT geometry is invalid (lines, line bytes).
    MactGeometry,
    /// SL0408: MACT collection deadline exceeds the line capacity.
    MactThreshold,
    /// SL0409: task deadline is infeasible (negative laxity at arrival).
    InfeasibleTask,
    /// SL0410: shard lookahead (the junction latency) exceeds a
    /// boundary-crossing path latency, so a shard would have to deliver
    /// a message into a window the engine already simulated.
    ShardLookahead,
    /// SL0411: core count does not split into whole sub-ring shards.
    ShardPartition,
    /// SL0412: more PDES workers than shards — the excess host threads
    /// never run.
    ShardWorkers,
    /// SL0413: the configuration makes event horizons degenerate (e.g. a
    /// 1-cycle MACT threshold keeps every open line's deadline at the
    /// next cycle), so the cycle skipper can rarely fast-forward.
    DegenerateHorizon,
    /// SL0414: a fault-plan entry targets a unit outside the chip's
    /// geometry (core, DDR channel, or sub-ring index out of range) and
    /// can never fire.
    FaultTargetOutOfRange,
    /// SL0415: the NoC retransmission budget (retries × exponential
    /// backoff) can delay a request past the MACT collection deadline, so
    /// every retried request blows its batching window.
    RetryExceedsDeadline,
    /// SL0416: self-profiling is enabled with a telemetry sampling stride
    /// so sparse that short runs close few or no sampled windows — the
    /// histograms and barrier-spread percentiles come back empty while
    /// the run still pays the profiling overhead.
    DegenerateProfileSampling,
    /// SL0420: the chip model contains a blocking cycle — a wait-for
    /// loop through ring junctions, MACT open-line windows, direct-path
    /// request/reply pairs, or fault-retry wheels with no live sink, so
    /// backpressure can livelock the configuration.
    BlockingCycle,
    /// SL0421: a component's static horizon contract is violated — its
    /// config lets `next_event` under-promise (e.g. zero-latency links,
    /// a zero minimum boundary floor), so the cycle skipper could jump
    /// past a real event.
    HorizonContract,
    /// SL0422: the fault plan permanently removes every unit of a
    /// resource class the workload needs (all DDR channels, all cores),
    /// leaving requests with no live sink.
    ResourceClassDead,
    /// SL0423: in a multi-level shard hierarchy, an outer level's
    /// lookahead is shorter than an inner level's — the outer barrier
    /// would have to deliver into windows the inner engine already
    /// retired.
    HierarchyLookahead,
    /// SL0430: the symbolic worst path through the model (retry backoff
    /// under injected noise) pushes even a clean final attempt past the
    /// MACT collection deadline.
    WorstPathExceedsDeadline,
    /// SL0431: a laxity-scheduled task's slack at arrival is smaller
    /// than the plan's worst-case fault stall (retry budget + DDR stall
    /// window + channel-death remap), so injected faults can starve it.
    TaskStarvable,
    /// SL0440: the selected NoC backend promises a boundary latency
    /// below the topology's junction latency, so the PDES lookahead the
    /// engine would otherwise use overshoots what the backend can
    /// honor and windows degenerate.
    BackendBoundaryLatency,
    /// SL0441: the buffered backend's per-exit buffer depth is zero or
    /// one — the switch serializes on its input buffer and loses
    /// exactly the absorption a buffered NoC pays area for.
    DegenerateBufferDepth,
    /// SL0450: a shard level asks for more PDES workers than the host
    /// has CPUs — the extra workers time-slice, the lockstep barrier
    /// degrades to yield-on-every-check, and the run measures scheduler
    /// overhead instead of speedup.
    HostOversubscribed,
    /// SL0460: the inter-chip fabric latency (the cluster engine's outer
    /// lookahead) is below a member chip's internal boundary latency —
    /// the cluster-specific instance of SL0423, caught from the fabric
    /// config alone.
    FabricBelowChipBoundary,
    /// SL0461: the open-loop traffic profile offers more work per cycle
    /// than the cluster's aggregate issue width can retire, so queues
    /// grow without bound and tail latency diverges.
    OfferedLoadExceedsCapacity,
}

impl Code {
    /// Every code, in numeric order (for docs and exhaustive tests).
    pub const ALL: [Code; 41] = [
        Code::UnmappedRef,
        Code::StraddlingRef,
        Code::MisalignedRef,
        Code::CtrlRef,
        Code::BadDmaRange,
        Code::RemoteSpmRef,
        Code::WriteWriteRace,
        Code::ReadWriteRace,
        Code::UnsyncedDmaAccess,
        Code::DmaSrcDstOverlap,
        Code::DmaDstConflict,
        Code::StagingCollision,
        Code::PlanShape,
        Code::SliceBeyondInput,
        Code::ZeroField,
        Code::ThreadsExceedPairs,
        Code::DramChannelMismatch,
        Code::DirectSpokeMismatch,
        Code::CtrlSpacing,
        Code::SliceWidth,
        Code::MactGeometry,
        Code::MactThreshold,
        Code::InfeasibleTask,
        Code::ShardLookahead,
        Code::ShardPartition,
        Code::ShardWorkers,
        Code::DegenerateHorizon,
        Code::FaultTargetOutOfRange,
        Code::RetryExceedsDeadline,
        Code::DegenerateProfileSampling,
        Code::BlockingCycle,
        Code::HorizonContract,
        Code::ResourceClassDead,
        Code::HierarchyLookahead,
        Code::WorstPathExceedsDeadline,
        Code::TaskStarvable,
        Code::BackendBoundaryLatency,
        Code::DegenerateBufferDepth,
        Code::HostOversubscribed,
        Code::FabricBelowChipBoundary,
        Code::OfferedLoadExceedsCapacity,
    ];

    /// The stable `SLxxxx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnmappedRef => "SL0101",
            Code::StraddlingRef => "SL0102",
            Code::MisalignedRef => "SL0103",
            Code::CtrlRef => "SL0104",
            Code::BadDmaRange => "SL0105",
            Code::RemoteSpmRef => "SL0106",
            Code::WriteWriteRace => "SL0201",
            Code::ReadWriteRace => "SL0202",
            Code::UnsyncedDmaAccess => "SL0203",
            Code::DmaSrcDstOverlap => "SL0301",
            Code::DmaDstConflict => "SL0302",
            Code::StagingCollision => "SL0303",
            Code::PlanShape => "SL0304",
            Code::SliceBeyondInput => "SL0305",
            Code::ZeroField => "SL0401",
            Code::ThreadsExceedPairs => "SL0402",
            Code::DramChannelMismatch => "SL0403",
            Code::DirectSpokeMismatch => "SL0404",
            Code::CtrlSpacing => "SL0405",
            Code::SliceWidth => "SL0406",
            Code::MactGeometry => "SL0407",
            Code::MactThreshold => "SL0408",
            Code::InfeasibleTask => "SL0409",
            Code::ShardLookahead => "SL0410",
            Code::ShardPartition => "SL0411",
            Code::ShardWorkers => "SL0412",
            Code::DegenerateHorizon => "SL0413",
            Code::FaultTargetOutOfRange => "SL0414",
            Code::RetryExceedsDeadline => "SL0415",
            Code::DegenerateProfileSampling => "SL0416",
            Code::BlockingCycle => "SL0420",
            Code::HorizonContract => "SL0421",
            Code::ResourceClassDead => "SL0422",
            Code::HierarchyLookahead => "SL0423",
            Code::WorstPathExceedsDeadline => "SL0430",
            Code::TaskStarvable => "SL0431",
            Code::BackendBoundaryLatency => "SL0440",
            Code::DegenerateBufferDepth => "SL0441",
            Code::HostOversubscribed => "SL0450",
            Code::FabricBelowChipBoundary => "SL0460",
            Code::OfferedLoadExceedsCapacity => "SL0461",
        }
    }

    /// Parses a stable `SLxxxx` identifier back into its code.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// The severity a finding of this code carries unless the pass
    /// overrides it.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::UnmappedRef
            | Code::StraddlingRef
            | Code::BadDmaRange
            | Code::WriteWriteRace
            | Code::ReadWriteRace
            | Code::UnsyncedDmaAccess
            | Code::DmaSrcDstOverlap
            | Code::DmaDstConflict
            | Code::StagingCollision
            | Code::PlanShape
            | Code::ZeroField
            | Code::ThreadsExceedPairs
            | Code::DramChannelMismatch
            | Code::DirectSpokeMismatch
            | Code::CtrlSpacing
            | Code::MactGeometry
            | Code::ShardLookahead
            | Code::ShardPartition
            | Code::FaultTargetOutOfRange
            | Code::BlockingCycle
            | Code::HorizonContract
            | Code::ResourceClassDead
            | Code::HierarchyLookahead
            | Code::BackendBoundaryLatency
            | Code::DegenerateBufferDepth
            | Code::FabricBelowChipBoundary => Severity::Deny,
            Code::MisalignedRef
            | Code::CtrlRef
            | Code::SliceBeyondInput
            | Code::SliceWidth
            | Code::MactThreshold
            | Code::InfeasibleTask
            | Code::ShardWorkers
            | Code::DegenerateHorizon
            | Code::RetryExceedsDeadline
            | Code::DegenerateProfileSampling
            | Code::WorstPathExceedsDeadline
            | Code::TaskStarvable
            | Code::HostOversubscribed
            | Code::OfferedLoadExceedsCapacity => Severity::Warn,
            Code::RemoteSpmRef => Severity::Note,
        }
    }

    /// One-line description for the code table.
    pub fn title(self) -> &'static str {
        match self {
            Code::UnmappedRef => "reference outside every mapped region",
            Code::StraddlingRef => "reference straddles a region boundary",
            Code::MisalignedRef => "misaligned reference",
            Code::CtrlRef => "guest access to SPM control registers",
            Code::BadDmaRange => "invalid DMA endpoint range",
            Code::RemoteSpmRef => "access to a remote core's SPM",
            Code::WriteWriteRace => "cross-thread write/write race",
            Code::ReadWriteRace => "cross-thread read/write race",
            Code::UnsyncedDmaAccess => "access to own in-flight DMA destination",
            Code::DmaSrcDstOverlap => "DMA source/destination overlap",
            Code::DmaDstConflict => "DMA destinations of two threads overlap",
            Code::StagingCollision => "SPM staging buffers collide",
            Code::PlanShape => "invalid MapReduce plan shape",
            Code::SliceBeyondInput => "task slices extend past the input",
            Code::ZeroField => "structurally required field is zero",
            Code::ThreadsExceedPairs => "resident threads exceed 2 x pairs",
            Code::DramChannelMismatch => "DRAM channels != NoC memory controllers",
            Code::DirectSpokeMismatch => "direct spokes != sub-rings",
            Code::CtrlSpacing => "controllers do not divide sub-rings",
            Code::SliceWidth => "bad link slice width",
            Code::MactGeometry => "invalid MACT geometry",
            Code::MactThreshold => "MACT deadline exceeds line capacity",
            Code::InfeasibleTask => "task deadline infeasible at arrival",
            Code::ShardLookahead => "shard lookahead exceeds a boundary latency",
            Code::ShardPartition => "cores do not split into sub-ring shards",
            Code::ShardWorkers => "more PDES workers than shards",
            Code::DegenerateHorizon => "config makes event horizons degenerate",
            Code::FaultTargetOutOfRange => "fault plan targets a unit outside the chip",
            Code::RetryExceedsDeadline => "retry budget can outlast the MACT deadline",
            Code::DegenerateProfileSampling => "profiling stride starves window telemetry",
            Code::BlockingCycle => "chip model has a blocking cycle with no live sink",
            Code::HorizonContract => "config lets a component's next_event under-promise",
            Code::ResourceClassDead => "fault plan kills every unit of a needed resource",
            Code::HierarchyLookahead => "outer shard level has shorter lookahead than inner",
            Code::WorstPathExceedsDeadline => "worst retry path blows the MACT deadline",
            Code::TaskStarvable => "task slack smaller than worst-case fault stall",
            Code::BackendBoundaryLatency => "backend boundary latency below junction latency",
            Code::DegenerateBufferDepth => "buffered backend has degenerate buffer depth",
            Code::HostOversubscribed => "more PDES workers than host CPUs",
            Code::FabricBelowChipBoundary => "fabric latency below a chip's boundary latency",
            Code::OfferedLoadExceedsCapacity => "offered load exceeds cluster service capacity",
        }
    }

    /// Documented rationale and fix hint, for `lint --explain`.
    ///
    /// Returns `(rationale, fix_hint)`: why the finding matters for the
    /// chip's guarantees, and the usual way out.
    pub fn explain(self) -> (&'static str, &'static str) {
        match self {
            Code::UnmappedRef => (
                "A load or store resolves to no mapped region, so the access \
                 would fault or silently read garbage on hardware.",
                "Map the buffer in the address space or fix the base address \
                 the thread computes.",
            ),
            Code::StraddlingRef => (
                "A single access crosses a region boundary; the two halves \
                 would take different paths through the memory system.",
                "Align the buffer or split the access so each piece stays \
                 inside one region.",
            ),
            Code::MisalignedRef => (
                "A naturally-alignable access is misaligned for its width, \
                 costing extra memory transactions.",
                "Align the address to the access width.",
            ),
            Code::CtrlRef => (
                "Guest code touches the SPM control-register window, which \
                 is reserved for the runtime.",
                "Use the runtime's DMA/staging API instead of poking control \
                 registers directly.",
            ),
            Code::BadDmaRange => (
                "A DMA endpoint range is unmapped, straddling, or empty, so \
                 the transfer cannot complete as written.",
                "Fix the endpoint base/length so the range sits inside one \
                 mapped region.",
            ),
            Code::RemoteSpmRef => (
                "The access lands in another core's SPM window. Legal, but \
                 it rides the ring and is an order of magnitude slower.",
                "Stage the data locally via DMA if the access is hot.",
            ),
            Code::WriteWriteRace => (
                "Two threads write overlapping bytes with no ordering edge; \
                 the final contents depend on scheduling.",
                "Partition the buffer or order the writers with a Sync.",
            ),
            Code::ReadWriteRace => (
                "One thread writes bytes another reads with no ordering \
                 edge, so the reader may see either version.",
                "Order the pair with a Sync, or give the reader its own \
                 copy.",
            ),
            Code::UnsyncedDmaAccess => (
                "A thread touches its own in-flight DMA destination before \
                 the completing Sync; the DMA may land before or after.",
                "Move the access after the Sync that completes the \
                 transfer.",
            ),
            Code::DmaSrcDstOverlap => (
                "A DMA op's source and destination overlap; the copy \
                 direction makes the result undefined.",
                "Use disjoint ranges or copy through a bounce buffer.",
            ),
            Code::DmaDstConflict => (
                "DMA destinations of different threads overlap, so transfer \
                 completion order decides the contents.",
                "Give each thread a disjoint destination window.",
            ),
            Code::StagingCollision => (
                "SPM staging buffers collide or escape their core's window, \
                 corrupting a neighbour's working set.",
                "Shrink the staged slices or re-tile the per-core SPM \
                 budget.",
            ),
            Code::PlanShape => (
                "The MapReduce plan's ranges, regions, or thread counts are \
                 structurally invalid; execution would index out of range.",
                "Regenerate the plan from the actual config geometry.",
            ),
            Code::SliceBeyondInput => (
                "Slice rounding makes trailing tasks read past the input's \
                 end.",
                "Clamp the last slice or pad the input to a slice multiple.",
            ),
            Code::ZeroField => (
                "A structurally required field is zero or non-positive; the \
                 component cannot be constructed.",
                "Set the field to a positive value.",
            ),
            Code::ThreadsExceedPairs => (
                "Resident threads exceed 2 x thread pairs, so some threads \
                 can never be scheduled onto a pair.",
                "Raise tcg.thread_pairs or lower tcg.threads.",
            ),
            Code::DramChannelMismatch => (
                "DRAM channel count differs from the NoC's memory \
                 controllers; some controllers have no backing channel.",
                "Set dram.channels == noc.mem_ctrls.",
            ),
            Code::DirectSpokeMismatch => (
                "Direct-datapath spokes differ from the sub-ring count, so \
                 some sub-rings have no direct path.",
                "Set direct.subrings == noc.subrings.",
            ),
            Code::CtrlSpacing => (
                "Memory controllers do not divide the sub-rings evenly, so \
                 controller placement on the main ring is irregular.",
                "Pick mem_ctrls that divides noc.subrings.",
            ),
            Code::SliceWidth => (
                "A link slice width is zero, oversized, or does not tile \
                 the guaranteed link capacity, wasting bandwidth.",
                "Pick a slice width that tiles the link's guaranteed \
                 bytes-per-cycle.",
            ),
            Code::MactGeometry => (
                "MACT geometry (lines, line bytes) is invalid; the \
                 collection table cannot be built.",
                "Give the MACT at least one line of a positive, bounded \
                 line size.",
            ),
            Code::MactThreshold => (
                "The MACT collection deadline exceeds what one line can \
                 absorb, so the deadline never fires before the line fills.",
                "Lower mact.threshold or raise mact.line_bytes.",
            ),
            Code::InfeasibleTask => (
                "The task's deadline is already infeasible at arrival \
                 (negative laxity): deadline < arrival + work.",
                "Extend the deadline or shrink the task's work estimate.",
            ),
            Code::ShardLookahead => (
                "The PDES lookahead (junction latency) exceeds a \
                 boundary-crossing path latency, so a shard would deliver a \
                 message into a window the engine already simulated.",
                "Lower the lookahead or raise the shortest boundary \
                 latency (e.g. direct.latency).",
            ),
            Code::ShardPartition => (
                "The core count does not split into whole sub-ring shards; \
                 the chip cannot be sharded as configured.",
                "Make cores a multiple of cores_per_subring x subrings.",
            ),
            Code::ShardWorkers => (
                "More PDES worker threads than shards; the excess host \
                 threads spin on the barrier and never run a shard.",
                "Clamp workers to subrings + 1.",
            ),
            Code::DegenerateHorizon => (
                "The config pins event horizons to the next cycle (e.g. a \
                 1-cycle MACT threshold), so the cycle skipper can rarely \
                 fast-forward and the skip machinery is pure overhead.",
                "Raise the threshold or disable cycle_skip.",
            ),
            Code::FaultTargetOutOfRange => (
                "A fault-plan entry targets a core, DDR channel, or \
                 sub-ring outside the chip's geometry and can never fire — \
                 the chaos coverage you asked for silently does not exist.",
                "Fix the unit index or regenerate the plan against this \
                 config.",
            ),
            Code::RetryExceedsDeadline => (
                "The NoC retransmission budget (retries x exponential \
                 backoff) can delay a request past the MACT collection \
                 deadline, so every retried request blows its batching \
                 window.",
                "Shorten the retry budget or raise mact.threshold.",
            ),
            Code::DegenerateProfileSampling => (
                "Profiling is enabled with a sampling stride so sparse that \
                 short runs close no sampled windows; telemetry comes back \
                 empty while the run still pays the overhead.",
                "Lower prof.sample_every or disable profiling.",
            ),
            Code::BlockingCycle => (
                "The chip model contains a wait-for cycle — through ring \
                 junctions, MACT open-line windows, direct request/reply \
                 pairs, or retry wheels — with no live sink to drain it, so \
                 backpressure can livelock the config. The canonical case \
                 is a MACT lockup window that never ends: open lines stop \
                 flushing forever and every core behind them blocks.",
                "Give every blocking path a live sink: bound MACT lockup \
                 windows, keep at least one live DDR channel, and keep \
                 retry wheels finite.",
            ),
            Code::HorizonContract => (
                "A component's config lets its next_event horizon \
                 under-promise (zero-latency links, zero bandwidth, a zero \
                 boundary floor). The cycle skipper trusts horizons; an \
                 under-promise here means skipped cycles that contained \
                 real events. The same floors are asserted at runtime by \
                 the debug-build cross-checker, so this finding is the \
                 static twin of a debug panic.",
                "Make every latency and bandwidth field positive so each \
                 boundary class has a non-zero floor.",
            ),
            Code::ResourceClassDead => (
                "The fault plan permanently removes every unit of a \
                 resource class the workload needs (every DDR channel, or \
                 every core). Channel death remaps to the next live \
                 channel; with none live, requests black-hole and the run \
                 never drains.",
                "Leave at least one unit of each class alive, or bound the \
                 outage with a stall window instead of a death.",
            ),
            Code::HierarchyLookahead => (
                "In a shard hierarchy, an outer level's lookahead is \
                 shorter than an inner level's. The outer barrier would \
                 have to deliver messages into windows the inner engine \
                 already retired — the conservative-window invariant \
                 breaks across levels.",
                "Order lookaheads outward: each enclosing level at least \
                 as long as the levels it contains.",
            ),
            Code::WorstPathExceedsDeadline => (
                "With ring noise actually injected, the symbolic worst \
                 path (full retry backoff before the clean final attempt) \
                 reaches the MACT collection deadline, so every retried \
                 request misses its batching window — sharpened from \
                 SL0415, which fires on the budget alone.",
                "Shorten retries/backoff or raise mact.threshold above the \
                 worst-case retry delay.",
            ),
            Code::TaskStarvable => (
                "A laxity-scheduled task's slack at arrival is smaller \
                 than the plan's worst-case fault stall (retry budget plus \
                 the longest DDR stall window plus a channel-death remap \
                 penalty), so injected faults alone can push it past its \
                 deadline.",
                "Extend the task deadline past the plan's worst-case \
                 stall, or soften the fault plan.",
            ),
            Code::BackendBoundaryLatency => (
                "The selected NoC backend promises boundary crossings \
                 faster than the topology's junction crossing. The \
                 boundary latency is the PDES lookahead and the junction \
                 class floor; promising below the junction latency makes \
                 the conservative windows degenerate and the horizon \
                 contract unsatisfiable by the real topology.",
                "Raise the backend's boundary_latency to at least \
                 noc.junction_latency.",
            ),
            Code::DegenerateBufferDepth => (
                "The buffered backend's per-exit output buffers hold at \
                 most one packet, so the central switch serializes on its \
                 shared input buffer — head-of-line pressure returns and \
                 the configuration measures a buffered NoC that has no \
                 usable buffering.",
                "Set the buffered backend's depth to at least 2 (8 is \
                 the shipped default).",
            ),
            Code::HostOversubscribed => (
                "A shard level asks for more PDES worker threads than the \
                 host has logical CPUs. The workers time-slice on the same \
                 cores, the lockstep barrier degrades to \
                 yield-on-every-check, and the run measures scheduler \
                 overhead instead of speedup. Results stay bit-identical — \
                 this is purely a performance finding.",
                "Clamp workers to the host's CPU count (or move the run to \
                 a larger host).",
            ),
            Code::FabricBelowChipBoundary => (
                "The inter-chip fabric latency is the cluster engine's \
                 outer PDES lookahead, and a member chip's NoC boundary \
                 latency is its inner lookahead. A fabric hop shorter than \
                 the chip's internal boundary inverts the hierarchy — the \
                 outer barrier would deliver into windows the chip's own \
                 engine already retired. This is the cluster-specific \
                 instance of SL0423, caught from the fabric config alone.",
                "Raise the fabric latency to at least the chip's NoC \
                 boundary_latency().",
            ),
            Code::OfferedLoadExceedsCapacity => (
                "The open-loop traffic profile's mean offered work per \
                 cycle (arrival rate x mean request size) exceeds the \
                 cluster's aggregate issue width (chips x cores x thread \
                 pairs). Open-loop arrivals do not slow down when the \
                 system backs up, so queues grow without bound, latency \
                 percentiles diverge with the horizon, and the SLO miss \
                 rate trends to one.",
                "Lower the arrival rate, shrink the request sizes, or add \
                 chips until offered work fits under aggregate capacity.",
            ),
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a finding points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// An instruction in a thread's captured stream.
    Pc {
        /// Thread label, e.g. `core0/slot2`.
        thread: String,
        /// Program counter of the instruction.
        pc: u64,
        /// Index in the captured stream.
        index: usize,
    },
    /// A configuration field path, e.g. `noc.sub_link.slice_bytes`.
    Field(String),
    /// An element of a staging/MapReduce plan, e.g. `map task 3`.
    Plan(String),
    /// The whole artifact under analysis.
    Whole,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Pc { thread, pc, index } => write!(f, "{thread} pc {pc:#x} #{index}"),
            Span::Field(path) => write!(f, "config `{path}`"),
            Span::Plan(what) => write!(f, "plan {what}"),
            Span::Whole => f.write_str("<whole>"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (usually the code's default).
    pub severity: Severity,
    /// Location.
    pub span: Span,
    /// What is wrong, with concrete addresses/values.
    pub message: String,
    /// How to fix it, when the pass knows.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates a finding at the code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: code.default_severity(),
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Overrides the severity.
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Attaches a fix suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

/// An ordered collection of findings with counting and rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Absorbs a pass's findings.
    pub fn absorb(&mut self, ds: Vec<Diagnostic>) {
        self.diags.extend(ds);
    }

    /// The findings, in insertion order (or severity order after
    /// [`Report::sort`]).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Whether the report is clean.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// Whether any deny-level finding is present.
    pub fn has_deny(&self) -> bool {
        self.count(Severity::Deny) > 0
    }

    /// The most severe finding present.
    pub fn worst(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// Orders findings most severe first (stable within a severity).
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.code.as_str().cmp(b.code.as_str()))
        });
    }

    /// Human-readable rendering: one line per finding plus indented help,
    /// ending with a severity summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
            if let Some(h) = &d.help {
                out.push_str("    help: ");
                out.push_str(h);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "{} deny, {} warn, {} note\n",
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Note),
        ));
        out
    }

    /// Machine-readable JSON rendering (no external dependencies; same
    /// hand-rolled style as the observability exporter).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counts\":{");
        out.push_str(&format!(
            "\"deny\":{},\"warn\":{},\"note\":{}",
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Note),
        ));
        out.push_str("},\"diagnostics\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"span\":{},\"message\":\"{}\"",
                d.code,
                d.severity,
                span_json(&d.span),
                escape(&d.message),
            ));
            match &d.help {
                Some(h) => out.push_str(&format!(",\"help\":\"{}\"}}", escape(h))),
                None => out.push_str(",\"help\":null}"),
            }
        }
        out.push_str("]}");
        out
    }
}

fn span_json(span: &Span) -> String {
    match span {
        Span::Pc { thread, pc, index } => format!(
            "{{\"kind\":\"pc\",\"thread\":\"{}\",\"pc\":{pc},\"index\":{index}}}",
            escape(thread)
        ),
        Span::Field(path) => format!("{{\"kind\":\"field\",\"path\":\"{}\"}}", escape(path)),
        Span::Plan(what) => format!("{{\"kind\":\"plan\",\"element\":\"{}\"}}", escape(what)),
        Span::Whole => String::from("{\"kind\":\"whole\"}"),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(c.as_str().starts_with("SL"));
            assert_eq!(c.as_str().len(), 6);
        }
    }

    #[test]
    fn parse_and_explain_cover_every_code() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.as_str()), Some(c), "round-trip {c}");
            let (rationale, fix) = c.explain();
            assert!(!rationale.is_empty() && !fix.is_empty(), "explain {c}");
        }
        assert_eq!(Code::parse("SL9999"), None);
        assert_eq!(Code::parse("sl0101"), None, "parse is case-sensitive");
    }

    #[test]
    fn severity_orders_note_warn_deny() {
        assert!(Severity::Note < Severity::Warn);
        assert!(Severity::Warn < Severity::Deny);
    }

    #[test]
    fn report_counts_and_sorts() {
        let mut r = Report::new();
        r.push(Diagnostic::new(Code::RemoteSpmRef, Span::Whole, "remote"));
        r.push(Diagnostic::new(Code::UnmappedRef, Span::Whole, "bad"));
        r.push(Diagnostic::new(Code::MisalignedRef, Span::Whole, "odd"));
        assert_eq!(r.len(), 3);
        assert_eq!(r.count(Severity::Deny), 1);
        assert!(r.has_deny());
        assert_eq!(r.worst(), Some(Severity::Deny));
        r.sort();
        assert_eq!(r.diagnostics()[0].code, Code::UnmappedRef);
        assert_eq!(r.diagnostics()[2].code, Code::RemoteSpmRef);
    }

    #[test]
    fn text_rendering_carries_code_and_help() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(
                Code::UnmappedRef,
                Span::Pc {
                    thread: "core0/slot1".into(),
                    pc: 0x1004,
                    index: 7,
                },
                "load of 8 bytes at 0xdead hits no region",
            )
            .with_help("map the buffer or fix the base address"),
        );
        let text = r.render_text();
        assert!(text.contains("deny[SL0101] core0/slot1 pc 0x1004 #7"));
        assert!(text.contains("help: map the buffer"));
        assert!(text.contains("1 deny, 0 warn, 0 note"));
    }

    #[test]
    fn json_rendering_is_escaped_and_structured() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Code::SliceWidth,
            Span::Field("noc.sub_link.slice_bytes".into()),
            "slice \"3\" does not tile 8",
        ));
        let json = r.to_json();
        assert!(json.contains("\"code\":\"SL0406\""));
        assert!(json.contains("\"severity\":\"warn\""));
        assert!(json.contains("\"kind\":\"field\""));
        assert!(json.contains("slice \\\"3\\\" does not tile 8"));
        assert!(json.contains("\"warn\":1"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
