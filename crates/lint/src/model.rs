//! The **ChipModel IR**: a typed component/channel graph of the whole
//! chip, extracted purely from configuration — no simulation.
//!
//! Every structural fact the model passes reason about is reified here:
//! TCG cores, sub-ring and main-ring segments, junctions, MACTs,
//! direct-path spokes, DDR channels, the retransmission wheel, the
//! fault plan's scheduled outages, the task set, and the shard
//! partition hierarchy. The passes ([`crate::deadlock`],
//! [`crate::horizon`], [`crate::schedbound`], and
//! [`check_partition_hierarchy`]) are graph algorithms and interval
//! arithmetic over this IR; none of them ever constructs a chip.
//!
//! Extraction is total: any [`SmarcoConfig`] yields a model, including
//! invalid ones — that is the point, since the passes exist to report
//! on configurations the simulator would refuse to build (or build and
//! then livelock).

use smarco_core::config::SmarcoConfig;
use smarco_core::fault::FaultPlan;
use smarco_runtime::MapReduceConfig;
use smarco_sched::Task;
use smarco_sim::Cycle;

use crate::diag::{Code, Diagnostic, Span};

/// Index of a component in [`ChipModel::components`].
pub type CompId = usize;

/// A chip component, with the fault-plan outages that apply to it.
#[derive(Debug, Clone, PartialEq)]
pub enum Component {
    /// One TCG core.
    TcgCore {
        /// Global core index.
        core: usize,
        /// Owning sub-ring.
        subring: usize,
        /// Cycle a scheduled `CoreDeath` kills it, if any.
        killed_at: Option<Cycle>,
    },
    /// One sub-ring's link segment (plus its injection ports).
    SubRingSeg {
        /// Sub-ring index.
        subring: usize,
        /// Injection corruption probability (‰ per attempt).
        noise_permille: u32,
        /// Backend realizing the segment (`ring`, `mesh`, `buffered`).
        backend: &'static str,
    },
    /// The junction between one sub-ring and the main ring.
    Junction {
        /// Sub-ring index.
        subring: usize,
        /// Crossing latency (the engine lookahead).
        latency: Cycle,
    },
    /// The main ring's link segment.
    MainRingSeg {
        /// Injection corruption probability (‰ per attempt).
        noise_permille: u32,
        /// Backend realizing the segment (`ring`, `mesh`, `buffered`).
        backend: &'static str,
    },
    /// One sub-ring's memory-access collection table.
    Mact {
        /// Sub-ring index.
        subring: usize,
        /// Collection deadline in cycles.
        threshold: Cycle,
        /// Scheduled lockup windows `[from, to)`; `to == u64::MAX` is a
        /// lockup that never ends.
        lockups: Vec<(Cycle, Cycle)>,
    },
    /// One sub-ring's direct-datapath spoke.
    DirectSpoke {
        /// Sub-ring index.
        subring: usize,
        /// Fixed traversal latency.
        latency: Cycle,
    },
    /// One DDR channel.
    DdrChannel {
        /// Channel index.
        channel: usize,
        /// Cycle a scheduled `DramChannelDeath` kills it, if any.
        dead_at: Option<Cycle>,
        /// Scheduled stall windows `[from, to)`.
        stalls: Vec<(Cycle, Cycle)>,
    },
    /// The retransmission wheel retried NoC packets park on.
    RetryWheel {
        /// Retry budget.
        max_retries: u32,
        /// First backoff in cycles (doubles per attempt).
        base_backoff: Cycle,
        /// Total worst-case retransmit delay.
        worst_delay: Cycle,
    },
}

impl Component {
    /// Whether the component is permanently out of service under the
    /// extracted fault plan: a dead DDR channel, a killed core, or a
    /// MACT whose lockup window never ends. Finite outages (stalls,
    /// bounded lockups) do not count — they delay, they don't block.
    pub fn permanently_blocked(&self) -> bool {
        match self {
            Component::DdrChannel { dead_at, .. } => dead_at.is_some(),
            Component::TcgCore { killed_at, .. } => killed_at.is_some(),
            Component::Mact { lockups, .. } => lockups.iter().any(|&(_, to)| to == u64::MAX),
            _ => false,
        }
    }

    /// Short label for diagnostics.
    pub fn label(&self) -> String {
        match self {
            Component::TcgCore { core, .. } => format!("core{core}"),
            Component::SubRingSeg { subring, .. } => format!("sub-ring{subring}"),
            Component::Junction { subring, .. } => format!("junction{subring}"),
            Component::MainRingSeg { .. } => "main-ring".to_string(),
            Component::Mact { subring, .. } => format!("mact{subring}"),
            Component::DirectSpoke { subring, .. } => format!("spoke{subring}"),
            Component::DdrChannel { channel, .. } => format!("ddr{channel}"),
            Component::RetryWheel { .. } => "retry-wheel".to_string(),
        }
    }
}

/// What a channel between two components carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Core → sub-ring injection (and the reply delivery back).
    Inject,
    /// Sub-ring → MACT: a collectable request entering an open line.
    Collect,
    /// MACT → junction: a flushed batch heading for the main ring.
    Flush,
    /// Junction ↔ main ring crossing.
    Ring,
    /// Core → spoke or spoke → DDR: direct-datapath traversal.
    Spoke,
    /// Main ring → DDR channel port (and the reply back).
    Port,
    /// A blocked sender parking on the retry wheel and re-entering.
    Retry,
}

/// A directed channel in the component graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// Source component.
    pub from: CompId,
    /// Destination component.
    pub to: CompId,
    /// Traffic class.
    pub kind: ChannelKind,
    /// Minimum traversal latency in cycles.
    pub latency: Cycle,
}

/// The extracted chip model.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipModel {
    /// All components.
    pub components: Vec<Component>,
    /// All directed channels (the request direction; replies retrace the
    /// same channels backwards and are not duplicated).
    pub channels: Vec<Channel>,
    /// MACT collection deadline, when a MACT is configured.
    pub mact_threshold: Option<Cycle>,
    /// Sub-ring injection noise (‰), 0 when the plan injects none.
    pub sub_noise_permille: u32,
    /// Main-ring injection noise (‰).
    pub main_noise_permille: u32,
    /// Worst-case retransmit delay of the retry wheel.
    pub retry_worst_delay: Cycle,
    /// Retry budget (for diagnostics).
    pub retry_max: u32,
    /// First backoff (for diagnostics).
    pub retry_base: Cycle,
    /// Longest scheduled DDR stall window, in cycles.
    pub max_dram_stall: Cycle,
    /// Whether any DDR channel death is scheduled (remap penalty).
    pub any_channel_death: bool,
    /// DDR base latency (the remap re-issue penalty).
    pub dram_base_latency: Cycle,
    /// The laxity-scheduled task set under analysis.
    pub tasks: Vec<Task>,
    /// Per-phase cycle budget of the MapReduce plan, when one is given.
    pub phase_budget: Option<Cycle>,
    /// The shard-partition hierarchy (innermost level first).
    pub levels: Vec<PartitionLevel>,
}

impl ChipModel {
    /// Extracts the model from a configuration, a task set, a fault plan
    /// (defaulting to the config's own plan when `None`), and an
    /// optional MapReduce plan.
    pub fn extract(
        cfg: &SmarcoConfig,
        tasks: &[Task],
        plan: Option<&FaultPlan>,
        mr: Option<&MapReduceConfig>,
    ) -> Self {
        let healthy = FaultPlan::none();
        let plan = plan.or(cfg.fault.as_ref()).unwrap_or(&healthy);
        let subrings = cfg.noc.subrings;
        let cps = cfg.noc.cores_per_subring;
        let jl = cfg.noc.boundary_latency();
        let backend = cfg.noc.backend.name();

        let mut components = Vec::new();
        let mut channels = Vec::new();
        let main_seg = {
            components.push(Component::MainRingSeg {
                noise_permille: plan.main_noise_permille(),
                backend,
            });
            components.len() - 1
        };
        let retry = plan.retry();
        let wheel = {
            components.push(Component::RetryWheel {
                max_retries: retry.max_retries,
                base_backoff: retry.base_backoff,
                worst_delay: retry.worst_case_delay(),
            });
            components.len() - 1
        };
        let mut ddr_ids = Vec::new();
        let deaths = plan.channel_deaths();
        let stalls = plan.dram_stalls();
        for channel in 0..cfg.dram.channels {
            let id = components.len();
            components.push(Component::DdrChannel {
                channel,
                dead_at: deaths
                    .iter()
                    .find(|&&(c, _)| c == channel)
                    .map(|&(_, at)| at),
                stalls: stalls
                    .iter()
                    .filter(|&&(c, _, _)| c == channel)
                    .map(|&(_, from, to)| (from, to))
                    .collect(),
            });
            ddr_ids.push(id);
            channels.push(Channel {
                from: main_seg,
                to: id,
                kind: ChannelKind::Port,
                latency: cfg.noc.main_link.hop_latency,
            });
        }
        for sr in 0..subrings {
            let seg = components.len();
            components.push(Component::SubRingSeg {
                subring: sr,
                noise_permille: plan.sub_noise_permille(),
                backend,
            });
            let junction = components.len();
            components.push(Component::Junction {
                subring: sr,
                latency: jl,
            });
            channels.push(Channel {
                from: junction,
                to: main_seg,
                kind: ChannelKind::Ring,
                latency: jl,
            });
            if let Some(mact) = &cfg.mact {
                let m = components.len();
                components.push(Component::Mact {
                    subring: sr,
                    threshold: mact.threshold,
                    lockups: plan.mact_lockups(sr),
                });
                channels.push(Channel {
                    from: seg,
                    to: m,
                    kind: ChannelKind::Collect,
                    latency: cfg.noc.sub_link.hop_latency,
                });
                channels.push(Channel {
                    from: m,
                    to: junction,
                    kind: ChannelKind::Flush,
                    latency: mact.threshold,
                });
            } else {
                channels.push(Channel {
                    from: seg,
                    to: junction,
                    kind: ChannelKind::Ring,
                    latency: cfg.noc.sub_link.hop_latency,
                });
            }
            let spoke = cfg.direct.as_ref().map(|d| {
                let s = components.len();
                components.push(Component::DirectSpoke {
                    subring: sr,
                    latency: d.latency,
                });
                // The spoke lands directly at memory: one Port channel
                // per DDR channel (the address decides which).
                for &ddr in &ddr_ids {
                    channels.push(Channel {
                        from: s,
                        to: ddr,
                        kind: ChannelKind::Spoke,
                        latency: d.latency,
                    });
                }
                s
            });
            // Noise on this sub-ring parks blocked senders on the wheel,
            // which re-injects into the same segment: the retry cycle.
            if plan.sub_noise_permille() > 0 {
                channels.push(Channel {
                    from: seg,
                    to: wheel,
                    kind: ChannelKind::Retry,
                    latency: retry.backoff(0),
                });
                channels.push(Channel {
                    from: wheel,
                    to: seg,
                    kind: ChannelKind::Retry,
                    latency: 0,
                });
            }
            let kills = plan.core_kills_in(sr * cps, (sr + 1) * cps);
            for c in 0..cps {
                let core = sr * cps + c;
                let id = components.len();
                components.push(Component::TcgCore {
                    core,
                    subring: sr,
                    killed_at: kills.iter().find(|&&(_, k)| k == core).map(|&(at, _)| at),
                });
                channels.push(Channel {
                    from: id,
                    to: seg,
                    kind: ChannelKind::Inject,
                    latency: cfg.noc.sub_link.hop_latency,
                });
                if let Some(s) = spoke {
                    channels.push(Channel {
                        from: id,
                        to: s,
                        kind: ChannelKind::Spoke,
                        latency: cfg.direct.as_ref().map_or(0, |d| d.latency),
                    });
                }
            }
        }
        if plan.main_noise_permille() > 0 {
            channels.push(Channel {
                from: main_seg,
                to: wheel,
                kind: ChannelKind::Retry,
                latency: retry.backoff(0),
            });
            channels.push(Channel {
                from: wheel,
                to: main_seg,
                kind: ChannelKind::Retry,
                latency: 0,
            });
        }

        let max_dram_stall = stalls
            .iter()
            .map(|&(_, from, to)| to.saturating_sub(from))
            .max()
            .unwrap_or(0);
        Self {
            components,
            channels,
            mact_threshold: cfg.mact.as_ref().map(|m| m.threshold),
            sub_noise_permille: plan.sub_noise_permille(),
            main_noise_permille: plan.main_noise_permille(),
            retry_worst_delay: retry.worst_case_delay(),
            retry_max: retry.max_retries,
            retry_base: retry.base_backoff,
            max_dram_stall,
            any_channel_death: !deaths.is_empty(),
            dram_base_latency: cfg.dram.base_latency,
            tasks: tasks.to_vec(),
            phase_budget: mr.map(|m| m.phase_budget),
            levels: vec![PartitionLevel::subring(cfg)],
        }
    }

    /// Components matching `pred`, as ids.
    pub fn find(&self, pred: impl Fn(&Component) -> bool) -> Vec<CompId> {
        (0..self.components.len())
            .filter(|&i| pred(&self.components[i]))
            .collect()
    }

    /// Every component reachable from `start` along request-direction
    /// channels, refusing to *leave* a permanently blocked component (a
    /// request may arrive at a dead unit; it never comes out).
    pub fn reachable(&self, start: CompId) -> Vec<CompId> {
        let mut seen = vec![false; self.components.len()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(c) = stack.pop() {
            if self.components[c].permanently_blocked() {
                continue;
            }
            for ch in self.channels.iter().filter(|ch| ch.from == c) {
                if !seen[ch.to] {
                    seen[ch.to] = true;
                    stack.push(ch.to);
                }
            }
        }
        (0..self.components.len()).filter(|&i| seen[i]).collect()
    }
}

/// One level of the shard-partition hierarchy, innermost first: today's
/// chip has a single level (cores partitioned into sub-ring shards plus
/// the hub); a multi-chip fabric adds an outer level (chips partitioned
/// across cluster shards). The same soundness rules apply at every
/// level, plus a cross-level rule: lookahead must not shrink outward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionLevel {
    /// Human-readable level name for spans (e.g. `sub-ring`, `chip`).
    pub label: String,
    /// Units being partitioned at this level (cores, chips, ...).
    pub units: usize,
    /// Units per shard.
    pub per_shard: usize,
    /// Total shards at this level (including any hub/coordinator shard).
    pub shards: usize,
    /// The level's PDES lookahead in cycles.
    pub lookahead: Cycle,
    /// The shortest boundary-crossing path latency at this level.
    pub min_boundary_latency: Cycle,
    /// Host threads driving this level.
    pub workers: usize,
    /// Logical CPUs on the host expected to drive this level, when
    /// known. `None` disables the oversubscription check (SL0450) —
    /// e.g. a hypothetical fabric whose host is not yet chosen.
    pub host_cpus: Option<usize>,
}

impl PartitionLevel {
    /// Today's chip level: cores into sub-ring shards plus the hub,
    /// junction-latency lookahead, with the direct-path spoke as the
    /// shortest possible boundary crossing.
    pub fn subring(cfg: &SmarcoConfig) -> Self {
        let jl = cfg.noc.boundary_latency();
        Self {
            label: "sub-ring".to_string(),
            units: cfg.noc.cores(),
            per_shard: cfg.noc.cores_per_subring,
            shards: cfg.noc.subrings + 1,
            lookahead: jl,
            min_boundary_latency: cfg.direct.as_ref().map_or(jl, |d| d.latency.min(jl)),
            workers: cfg.workers,
            host_cpus: Some(detected_host_cpus()),
        }
    }

    /// An outer chip-as-shard fabric level (ROADMAP item 2): `chips`
    /// chips, one per shard, crossed by an inter-chip fabric with the
    /// given `lookahead` (= its minimum hop latency), driven by
    /// `workers` host threads.
    pub fn fabric(chips: usize, lookahead: Cycle, workers: usize) -> Self {
        Self {
            label: "chip".to_string(),
            units: chips,
            per_shard: 1,
            shards: chips,
            lookahead,
            min_boundary_latency: lookahead,
            workers,
            host_cpus: None,
        }
    }

    /// Pins the level to a host with `cpus` logical CPUs, arming the
    /// oversubscription check (SL0450).
    pub fn with_host_cpus(mut self, cpus: usize) -> Self {
        self.host_cpus = Some(cpus);
        self
    }
}

/// Logical CPUs available to this process (1 when detection fails).
pub fn detected_host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The rack-scale facts the cluster pass reasons about: the member
/// chip's shape, the inter-chip fabric, and the open-loop offered load.
/// Extracted from plain config values — no cluster is ever built, in
/// the same spirit as [`ChipModel::extract`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterGeometry {
    /// Chips on the fabric.
    pub chips: usize,
    /// Inter-chip fabric hop latency — the cluster engine's outer PDES
    /// lookahead.
    pub fabric_latency: Cycle,
    /// A member chip's internal boundary latency — its inner lookahead.
    pub chip_boundary_latency: Cycle,
    /// One chip's aggregate issue width in work-cycles per cycle
    /// (cores × thread pairs; each pair retires one instruction per
    /// cycle when busy).
    pub chip_width: u64,
    /// Mean offered work in work-cycles per 1000 cycles (arrival rate ×
    /// mean request size). `None` disables the load check (SL0461) —
    /// e.g. a closed-loop or replayed workload.
    pub offered_work_per_kcycle: Option<f64>,
    /// Host threads driving the cluster level.
    pub workers: usize,
}

impl ClusterGeometry {
    /// Geometry of `chips` copies of `chip` on a fabric with the given
    /// hop latency, driven by `workers` host threads, with no offered
    /// load attached yet.
    pub fn new(chips: usize, fabric_latency: Cycle, workers: usize, chip: &SmarcoConfig) -> Self {
        Self {
            chips,
            fabric_latency,
            chip_boundary_latency: chip.noc.boundary_latency(),
            chip_width: (chip.noc.cores() * chip.tcg.pairs) as u64,
            offered_work_per_kcycle: None,
            workers,
        }
    }

    /// Attaches an open-loop offered load (work-cycles per 1000 cycles),
    /// arming the capacity check (SL0461).
    #[must_use]
    pub fn with_offered_load(mut self, per_kcycle: f64) -> Self {
        self.offered_work_per_kcycle = Some(per_kcycle);
        self
    }

    /// This geometry as an outer partition level, for
    /// [`check_partition_hierarchy`].
    pub fn level(&self) -> PartitionLevel {
        PartitionLevel::fabric(self.chips, self.fabric_latency, self.workers)
    }

    /// Aggregate service capacity in work-cycles per 1000 cycles.
    pub fn capacity_per_kcycle(&self) -> f64 {
        self.chips as f64 * self.chip_width as f64 * 1000.0
    }
}

/// Pass (e) — cluster-geometry soundness. SL0460: the fabric hop (the
/// outer lookahead) is below a member chip's internal boundary latency,
/// the cluster-specific instance of SL0423 caught from the fabric
/// config alone. SL0461: the open-loop offered load exceeds the
/// cluster's aggregate issue width, so queues grow without bound.
/// [`lint_model`](crate::lint_model) also folds the geometry's
/// [`level`](ClusterGeometry::level) into the partition hierarchy, so
/// the per-level shard rules fire alongside these.
pub fn check_cluster(g: &ClusterGeometry) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if g.fabric_latency < g.chip_boundary_latency {
        out.push(
            Diagnostic::new(
                Code::FabricBelowChipBoundary,
                Span::Field("fabric.latency".to_string()),
                format!(
                    "fabric hop of {} cycles is below the chip's {}-cycle \
                     internal boundary latency: the outer barrier would \
                     deliver into windows the chip's own engine already \
                     retired",
                    g.fabric_latency, g.chip_boundary_latency,
                ),
            )
            .with_help("raise the fabric latency to at least the chip's boundary latency"),
        );
    }
    if let Some(offered) = g.offered_work_per_kcycle {
        let capacity = g.capacity_per_kcycle();
        if offered > capacity {
            out.push(
                Diagnostic::new(
                    Code::OfferedLoadExceedsCapacity,
                    Span::Field("traffic.arrivals".to_string()),
                    format!(
                        "open-loop traffic offers {offered:.1} work-cycles per \
                         kcycle but {} chip(s) of width {} retire at most \
                         {capacity:.1}: queues grow without bound and tail \
                         latency diverges",
                        g.chips, g.chip_width,
                    ),
                )
                .with_help("lower the arrival rate, shrink request sizes, or add chips"),
            );
        }
    }
    out
}

/// Pass (d) — shard-partition soundness over a whole hierarchy, levels
/// ordered innermost first. Per level: positive worker count (SL0401),
/// whole-shard partition (SL0411), lookahead within the shortest
/// boundary latency (SL0410), worker-count sanity (SL0412), and host
/// oversubscription when the level's host is known (SL0450). Across
/// levels: an outer lookahead shorter than an inner one (SL0423) breaks
/// the conservative-window invariant — the outer barrier would deliver
/// into windows the inner engine already retired.
pub fn check_partition_hierarchy(levels: &[PartitionLevel]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for level in levels {
        let l = &level.label;
        if level.workers == 0 {
            out.push(Diagnostic::new(
                Code::ZeroField,
                Span::Field(format!("{l}.workers")),
                "PDES worker count must be positive".to_string(),
            ));
        }
        if level.per_shard > 0 && !level.units.is_multiple_of(level.per_shard) {
            out.push(
                Diagnostic::new(
                    Code::ShardPartition,
                    Span::Field(format!("{l}.per_shard")),
                    format!(
                        "{} units do not split into {l} shards of {}",
                        level.units, level.per_shard,
                    ),
                )
                .with_help("every shard owns exactly the same number of whole units"),
            );
        }
        if level.lookahead > level.min_boundary_latency {
            out.push(
                Diagnostic::new(
                    Code::ShardLookahead,
                    Span::Field(format!("{l}.lookahead")),
                    format!(
                        "{l} lookahead {} exceeds the {}-cycle shortest boundary \
                         path: a message would be delivered inside a window the \
                         engine already simulated",
                        level.lookahead, level.min_boundary_latency,
                    ),
                )
                .with_help("keep every boundary-crossing latency at or above the lookahead"),
            );
        }
        if level.workers > level.shards {
            out.push(
                Diagnostic::new(
                    Code::ShardWorkers,
                    Span::Field(format!("{l}.workers")),
                    format!(
                        "{} workers for {} {l} shards: the engine clamps, so the \
                         extra host threads never run",
                        level.workers, level.shards,
                    ),
                )
                .with_help("workers beyond the shard count add no parallelism"),
            );
        }
        // Oversubscription is judged on the threads the engine actually
        // spawns (workers clamp to the shard count), so SL0412 and
        // SL0450 stay independent findings.
        let spawned = level.workers.min(level.shards);
        if let Some(cpus) = level.host_cpus {
            if spawned > cpus {
                out.push(
                    Diagnostic::new(
                        Code::HostOversubscribed,
                        Span::Field(format!("{l}.workers")),
                        format!(
                            "{spawned} {l} workers on a {cpus}-CPU host: the \
                             workers time-slice and the lockstep barrier \
                             degrades to yield-on-every-check, so the run \
                             measures scheduler overhead, not speedup",
                        ),
                    )
                    .with_help("clamp workers to the host's CPU count"),
                );
            }
        }
    }
    for pair in levels.windows(2) {
        let (inner, outer) = (&pair[0], &pair[1]);
        if outer.lookahead < inner.lookahead {
            out.push(
                Diagnostic::new(
                    Code::HierarchyLookahead,
                    Span::Field(format!("{}.lookahead", outer.label)),
                    format!(
                        "outer `{}` level lookahead {} is shorter than inner \
                         `{}` level lookahead {}: the outer barrier would have \
                         to deliver into inner windows that were already retired",
                        outer.label, outer.lookahead, inner.label, inner.lookahead,
                    ),
                )
                .with_help("order lookaheads outward: each enclosing level at least as long"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarco_core::fault::Fault;

    #[test]
    fn tiny_model_has_the_papers_components() {
        let cfg = SmarcoConfig::tiny();
        let m = ChipModel::extract(&cfg, &[], None, None);
        let count = |pred: fn(&Component) -> bool| m.find(pred).len();
        assert_eq!(count(|c| matches!(c, Component::TcgCore { .. })), 16);
        assert_eq!(count(|c| matches!(c, Component::SubRingSeg { .. })), 4);
        assert_eq!(count(|c| matches!(c, Component::Junction { .. })), 4);
        assert_eq!(count(|c| matches!(c, Component::Mact { .. })), 4);
        assert_eq!(count(|c| matches!(c, Component::DirectSpoke { .. })), 4);
        assert_eq!(count(|c| matches!(c, Component::DdrChannel { .. })), 2);
        assert_eq!(count(|c| matches!(c, Component::MainRingSeg { .. })), 1);
        assert_eq!(count(|c| matches!(c, Component::RetryWheel { .. })), 1);
        // Healthy plan: no retry channels, nothing blocked.
        assert!(m.channels.iter().all(|ch| ch.kind != ChannelKind::Retry));
        assert!(m.components.iter().all(|c| !c.permanently_blocked()));
    }

    #[test]
    fn every_core_reaches_a_live_ddr_channel() {
        let cfg = SmarcoConfig::tiny();
        let m = ChipModel::extract(&cfg, &[], None, None);
        for core in m.find(|c| matches!(c, Component::TcgCore { .. })) {
            let reach = m.reachable(core);
            assert!(
                reach
                    .iter()
                    .any(|&i| matches!(m.components[i], Component::DdrChannel { .. })),
                "{} cannot reach memory",
                m.components[core].label()
            );
        }
    }

    #[test]
    fn fault_plan_outages_land_on_their_components() {
        let cfg = SmarcoConfig::tiny();
        let plan = FaultPlan::new(3)
            .with_fault(Fault::DramChannelDeath { channel: 1, at: 50 })
            .with_fault(Fault::CoreDeath { core: 5, at: 70 })
            .with_fault(Fault::MactLockup {
                subring: 2,
                at: 10,
                cycles: 100,
            })
            .with_fault(Fault::SubRingNoise { permille: 25 });
        let m = ChipModel::extract(&cfg, &[], Some(&plan), None);
        let blocked: Vec<String> = m
            .components
            .iter()
            .filter(|c| c.permanently_blocked())
            .map(Component::label)
            .collect();
        assert_eq!(blocked, vec!["ddr1", "core5"], "finite lockup not blocked");
        assert!(m.channels.iter().any(|ch| ch.kind == ChannelKind::Retry));
        assert_eq!(m.sub_noise_permille, 25);
        assert_eq!(m.retry_worst_delay, 14);
    }

    #[test]
    fn hierarchy_pass_accepts_todays_chip_and_a_sane_fabric() {
        let cfg = SmarcoConfig::tiny();
        let one = vec![PartitionLevel::subring(&cfg)];
        assert!(check_partition_hierarchy(&one).is_empty());
        let two = vec![
            PartitionLevel::subring(&cfg),
            PartitionLevel::fabric(4, 20, 4),
        ];
        assert!(check_partition_hierarchy(&two).is_empty());
    }

    #[test]
    fn inverted_hierarchy_denied_with_sl0423() {
        let cfg = SmarcoConfig::tiny();
        let two = vec![
            PartitionLevel::subring(&cfg), // lookahead 2
            PartitionLevel::fabric(4, 1, 4),
        ];
        let ds = check_partition_hierarchy(&two);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::HierarchyLookahead);
    }

    #[test]
    fn per_level_rules_still_fire_in_a_hierarchy() {
        let mut level = PartitionLevel::fabric(4, 10, 9);
        level.units = 5;
        level.per_shard = 2;
        let ds = check_partition_hierarchy(&[level]);
        assert!(ds.iter().any(|d| d.code == Code::ShardPartition));
        assert!(ds.iter().any(|d| d.code == Code::ShardWorkers));
    }

    #[test]
    fn oversubscribed_host_warns_with_sl0450() {
        // 64 chips, 64 workers, but the level is pinned to a 2-CPU host.
        let level = PartitionLevel::fabric(64, 20, 64).with_host_cpus(2);
        let ds = check_partition_hierarchy(&[level]);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::HostOversubscribed);
        assert_eq!(ds[0].severity, crate::diag::Severity::Warn);
        // Unknown host → the check stays silent on the same shape.
        let unpinned = PartitionLevel::fabric(64, 20, 64);
        assert!(check_partition_hierarchy(&[unpinned]).is_empty());
    }

    #[test]
    fn oversubscription_judges_spawned_workers_not_requested() {
        // 40 requested workers clamp to 4 shards; on a 8-CPU host the
        // 4 spawned threads fit, so only SL0412 fires — the excess
        // *requested* workers never exist as runnable threads.
        let level = PartitionLevel::fabric(4, 20, 40).with_host_cpus(8);
        let ds = check_partition_hierarchy(&[level]);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::ShardWorkers);
    }

    #[test]
    fn sane_cluster_geometry_is_clean() {
        let cfg = SmarcoConfig::tiny();
        // tiny: boundary latency 2, width 16 cores x 4 pairs = 64.
        let g = ClusterGeometry::new(4, 32, 4, &cfg).with_offered_load(1000.0);
        assert_eq!(g.chip_boundary_latency, 2);
        assert_eq!(g.chip_width, 64);
        assert!(check_cluster(&g).is_empty());
        assert!(check_partition_hierarchy(&[PartitionLevel::subring(&cfg), g.level()]).is_empty());
    }

    #[test]
    fn short_fabric_hop_denied_with_sl0460() {
        let cfg = SmarcoConfig::tiny();
        let g = ClusterGeometry::new(4, 1, 4, &cfg);
        let ds = check_cluster(&g);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::FabricBelowChipBoundary);
        assert_eq!(ds[0].severity, crate::diag::Severity::Deny);
        // The same inversion also fires SL0423 through the hierarchy
        // pass — SL0460 is its cluster-specific sharpening.
        let hier = check_partition_hierarchy(&[PartitionLevel::subring(&cfg), g.level()]);
        assert!(hier.iter().any(|d| d.code == Code::HierarchyLookahead));
    }

    #[test]
    fn overload_warns_with_sl0461_and_scales_with_chips() {
        let cfg = SmarcoConfig::tiny();
        // 4 chips x width 64 retire 256k work-cycles per kcycle.
        let over = ClusterGeometry::new(4, 32, 4, &cfg).with_offered_load(300_000.0);
        let ds = check_cluster(&over);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::OfferedLoadExceedsCapacity);
        assert_eq!(ds[0].severity, crate::diag::Severity::Warn);
        // Adding chips absorbs the same load.
        let wider = ClusterGeometry::new(8, 32, 4, &cfg).with_offered_load(300_000.0);
        assert!(check_cluster(&wider).is_empty());
        // No offered load attached: the check stays silent.
        let closed = ClusterGeometry::new(1, 32, 1, &cfg);
        assert!(check_cluster(&closed).is_empty());
    }

    #[test]
    fn subring_level_pins_the_detected_host() {
        let cfg = SmarcoConfig::tiny();
        let level = PartitionLevel::subring(&cfg);
        assert_eq!(level.host_cpus, Some(detected_host_cpus()));
        assert!(detected_host_cpus() >= 1);
    }
}
