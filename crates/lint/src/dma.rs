//! Pass 3 — DMA and staging-plan overlap analysis.
//!
//! Three families of defect: a single DMA whose source and destination
//! ranges intersect (the engine copies front-to-back, so the overlap
//! reads already-overwritten bytes), destination ranges of *different*
//! threads' DMAs landing on the same bytes, and MapReduce staging plans
//! whose per-task SPM buffers collide or escape their core's window.
//! The plan check mirrors the placement arithmetic of
//! `smarco_runtime::mapreduce::run_mapreduce` exactly, so a clean plan
//! here certifies the buffers the runtime will actually program.

use smarco_core::config::SmarcoConfig;
use smarco_isa::op::Op;
use smarco_mem::map::{AddressSpace, RangeClass, Region};
use smarco_mem::spm::Spm;
use smarco_runtime::MapReduceConfig;

use crate::access::{dma_destinations, ThreadProgram};
use crate::diag::{Code, Diagnostic, Span};

/// Lints DMA ops of a co-scheduled thread set: per-op source/destination
/// overlap and cross-thread destination conflicts.
pub fn check_dma(threads: &[ThreadProgram]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for t in threads {
        for (index, instr) in t.instrs.iter().enumerate() {
            if let Op::Dma { src, dst, bytes } = instr.op {
                if bytes == 0 {
                    continue;
                }
                let b = u64::from(bytes);
                if src < dst.saturating_add(b) && dst < src.saturating_add(b) {
                    out.push(
                        Diagnostic::new(
                            Code::DmaSrcDstOverlap,
                            Span::Pc {
                                thread: t.name.clone(),
                                pc: instr.pc,
                                index,
                            },
                            format!(
                                "DMA source [{src:#x}, {:#x}) overlaps destination \
                                 [{dst:#x}, {:#x})",
                                src + b,
                                dst + b,
                            ),
                        )
                        .with_help("overlapping copies read bytes the engine already overwrote"),
                    );
                }
            }
        }
    }
    let dsts: Vec<_> = threads.iter().map(dma_destinations).collect();
    for i in 0..threads.len() {
        for j in i + 1..threads.len() {
            if let Some((ia, ib)) = dsts[i].first_overlap(&dsts[j]) {
                out.push(
                    Diagnostic::new(
                        Code::DmaDstConflict,
                        Span::Pc {
                            thread: threads[i].name.clone(),
                            pc: ia.pc,
                            index: ia.index,
                        },
                        format!(
                            "DMA destination [{:#x}, {:#x}) of `{}` overlaps \
                             [{:#x}, {:#x}) written by `{}` at pc {:#x}",
                            ia.start,
                            ia.end,
                            threads[i].name,
                            ib.start,
                            ib.end,
                            threads[j].name,
                            ib.pc,
                        ),
                    )
                    .with_help("stage each thread into its own SPM share"),
                );
            }
        }
    }
    out
}

/// One planned SPM staging buffer (a DMA destination the runtime will
/// program for a task).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedBuffer {
    /// Which plan element this buffer stages, e.g. `map task 3`.
    pub label: String,
    /// Core whose SPM must hold the buffer.
    pub core: usize,
    /// First byte (unified address).
    pub start: u64,
    /// Exclusive end (unified address).
    pub end: u64,
}

/// Checks a set of planned staging buffers: each must lie wholly inside
/// its own core's SPM data region, and no two may overlap.
pub fn check_staging(space: &AddressSpace, buffers: &[StagedBuffer]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for b in buffers {
        if b.start >= b.end {
            continue;
        }
        let ok = matches!(
            space.classify_range(b.start, b.end - b.start),
            RangeClass::Within(Region::Spm { core, .. }) if core == b.core
        );
        if !ok {
            out.push(
                Diagnostic::new(
                    Code::StagingCollision,
                    Span::Plan(b.label.clone()),
                    format!(
                        "staging buffer [{:#x}, {:#x}) does not fit core {}'s SPM data region",
                        b.start, b.end, b.core,
                    ),
                )
                .with_help("shrink the slice or lower threads_per_core so shares fit"),
            );
        }
    }
    let mut sorted: Vec<&StagedBuffer> = buffers.iter().filter(|b| b.start < b.end).collect();
    sorted.sort_by_key(|b| b.start);
    let mut max_end: Option<&StagedBuffer> = None;
    for b in sorted {
        if let Some(prev) = max_end {
            if b.start < prev.end {
                out.push(
                    Diagnostic::new(
                        Code::StagingCollision,
                        Span::Plan(b.label.clone()),
                        format!(
                            "staging buffer [{:#x}, {:#x}) of {} overlaps [{:#x}, {:#x}) of {}",
                            b.start, b.end, b.label, prev.start, prev.end, prev.label,
                        ),
                    )
                    .with_help("staged tasks must own disjoint SPM shares"),
                );
            }
        }
        if max_end.is_none_or(|prev| b.end > prev.end) {
            max_end = Some(b);
        }
    }
    out
}

fn dram_region(space: &AddressSpace, what: &str, base: u64, len: u64) -> Option<Diagnostic> {
    if len == 0 {
        return None;
    }
    match space.classify_range(base, len) {
        RangeClass::Within(Region::Dram { .. }) => None,
        _ => Some(
            Diagnostic::new(
                Code::PlanShape,
                Span::Plan(what.to_string()),
                format!(
                    "{what} region [{base:#x}, {:#x}) is not wholly in DRAM",
                    base + len
                ),
            )
            .with_help("plan regions must sit below the 64 GiB DRAM boundary"),
        ),
    }
}

/// Lints a MapReduce plan against a chip configuration: shape, region
/// placement, slice rounding, and the staged SPM buffers the runtime
/// would program (mirroring `run_mapreduce`'s placement arithmetic).
pub fn check_mapreduce_plan(
    cfg: &MapReduceConfig,
    chip: &SmarcoConfig,
    space: &AddressSpace,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let subrings = chip.noc.subrings;
    let cps = chip.noc.cores_per_subring;
    let shape = |msg: String, help: &str| {
        Diagnostic::new(Code::PlanShape, Span::Whole, msg).with_help(help.to_string())
    };
    if cfg.map_subrings.is_empty() || cfg.reduce_subrings.is_empty() {
        out.push(shape(
            "map and reduce each need at least one sub-ring".into(),
            "widen map_subrings / reduce_subrings",
        ));
    }
    if cfg.map_subrings.end > subrings || cfg.reduce_subrings.end > subrings {
        out.push(shape(
            format!(
                "plan uses sub-rings up to {} but the chip has {subrings}",
                cfg.map_subrings.end.max(cfg.reduce_subrings.end),
            ),
            "clamp the ranges to the chip's sub-ring count",
        ));
    }
    let disjoint = cfg.map_subrings.end <= cfg.reduce_subrings.start
        || cfg.reduce_subrings.end <= cfg.map_subrings.start;
    if !disjoint {
        out.push(shape(
            format!(
                "map sub-rings {:?} overlap reduce sub-rings {:?}",
                cfg.map_subrings, cfg.reduce_subrings,
            ),
            "phases share cores only sequentially; the ranges must be disjoint",
        ));
    }
    let resident = chip.tcg.resident_threads;
    if cfg.threads_per_core == 0 || cfg.threads_per_core > resident {
        out.push(shape(
            format!(
                "threads_per_core {} outside 1..={resident}",
                cfg.threads_per_core,
            ),
            "each task needs a resident thread slot",
        ));
    }
    if cfg.input_len == 0 {
        out.push(shape("empty input".into(), "input_len must be positive"));
    }
    out.extend(dram_region(space, "input", cfg.input_base, cfg.input_len));
    out.extend(dram_region(
        space,
        "shuffle",
        cfg.shuffle_base,
        cfg.shuffle_len,
    ));
    if cfg.shuffle_len > 0
        && cfg.input_base < cfg.shuffle_base + cfg.shuffle_len
        && cfg.shuffle_base < cfg.input_base + cfg.input_len
    {
        out.push(
            Diagnostic::new(
                Code::PlanShape,
                Span::Whole,
                format!(
                    "input [{:#x}, {:#x}) overlaps shuffle [{:#x}, {:#x})",
                    cfg.input_base,
                    cfg.input_base + cfg.input_len,
                    cfg.shuffle_base,
                    cfg.shuffle_base + cfg.shuffle_len,
                ),
            )
            .with_help("map output would overwrite unread input"),
        );
    }
    if out
        .iter()
        .any(|d| d.severity == crate::diag::Severity::Deny)
    {
        return out; // placement arithmetic below needs a sane shape
    }

    let spm_per_task = Spm::data_bytes() / cfg.threads_per_core as u64;
    for (phase, srs, region_len) in [
        ("map", cfg.map_subrings.clone(), cfg.input_len),
        ("reduce", cfg.reduce_subrings.clone(), cfg.shuffle_len),
    ] {
        let cores: Vec<usize> = srs.flat_map(|sr| sr * cps..(sr + 1) * cps).collect();
        let total = cores.len() * cfg.threads_per_core;
        if total == 0 || region_len == 0 {
            continue;
        }
        let slice_len = (region_len / total as u64).max(1);
        let covered = total as u64 * slice_len;
        if covered > region_len {
            out.push(
                Diagnostic::new(
                    Code::SliceBeyondInput,
                    Span::Plan(format!("{phase} slicing")),
                    format!(
                        "{total} {phase} tasks x {slice_len} B slices cover {covered} B but the \
                         region holds only {region_len} B; trailing tasks read past it",
                    ),
                )
                .with_help("grow the region or launch fewer tasks than bytes"),
            );
        }
        if slice_len <= spm_per_task {
            let mut buffers = Vec::with_capacity(total);
            let mut index = 0usize;
            for &core in &cores {
                for slot in 0..cfg.threads_per_core {
                    let start = space.spm_base(core) + slot as u64 * spm_per_task;
                    buffers.push(StagedBuffer {
                        label: format!("{phase} task {index} (core {core} slot {slot})"),
                        core,
                        start,
                        end: start + slice_len,
                    });
                    index += 1;
                }
            }
            out.extend(check_staging(space, &buffers));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use smarco_isa::op::Instr;
    use smarco_mem::map::SPM_BASE;

    fn prog(name: &str, core: usize, ops: Vec<Op>) -> ThreadProgram {
        let instrs = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| Instr {
                pc: 0x2000 + i as u64 * 4,
                op,
            })
            .collect();
        ThreadProgram::new(name, core, 0, instrs)
    }

    #[test]
    fn src_dst_overlap_is_denied_with_sl0301() {
        let t = prog(
            "t",
            0,
            vec![Op::Dma {
                src: 0x1000,
                dst: 0x1800,
                bytes: 4096, // [0x1000,0x2000) vs [0x1800,0x2800)
            }],
        );
        let ds = check_dma(&[t]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "SL0301");
        assert_eq!(ds[0].severity, Severity::Deny);
    }

    #[test]
    fn cross_thread_dst_conflict_is_denied_with_sl0302() {
        let mk = |name: &str, dst: u64| {
            prog(
                name,
                0,
                vec![Op::Dma {
                    src: 0x10_0000,
                    dst,
                    bytes: 4096,
                }],
            )
        };
        let ds = check_dma(&[mk("a", SPM_BASE), mk("b", SPM_BASE + 2048)]);
        assert!(ds.iter().any(|d| d.code.as_str() == "SL0302"), "{ds:?}");
        let clean = check_dma(&[mk("a", SPM_BASE), mk("b", SPM_BASE + 4096)]);
        assert!(clean.is_empty(), "disjoint destinations are fine");
    }

    #[test]
    fn staging_overlap_and_escape_are_denied_with_sl0303() {
        let space = AddressSpace::new(4, 2);
        let base = space.spm_base(0);
        let buffers = [
            StagedBuffer {
                label: "map task 0".into(),
                core: 0,
                start: base,
                end: base + 8192,
            },
            StagedBuffer {
                label: "map task 1".into(),
                core: 0,
                start: base + 4096, // overlaps task 0
                end: base + 12288,
            },
            StagedBuffer {
                label: "map task 2".into(),
                core: 1,
                start: space.spm_base(2), // wrong core's window
                end: space.spm_base(2) + 64,
            },
        ];
        let ds = check_staging(&space, &buffers);
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert!(ds.iter().all(|d| d.code.as_str() == "SL0303"));
    }

    #[test]
    fn valid_plan_is_clean_and_bad_shape_is_denied() {
        let chip = SmarcoConfig::tiny();
        let space = AddressSpace::new(chip.noc.cores(), chip.dram.channels);
        let good = MapReduceConfig {
            threads_per_core: 4,
            ..MapReduceConfig::split(chip.noc.subrings, 0x100_0000, 4 << 20)
        };
        assert!(check_mapreduce_plan(&good, &chip, &space).is_empty());

        let overlapping = MapReduceConfig {
            map_subrings: 0..3,
            reduce_subrings: 2..4,
            ..good.clone()
        };
        let ds = check_mapreduce_plan(&overlapping, &chip, &space);
        assert!(ds.iter().any(|d| d.code.as_str() == "SL0304"), "{ds:?}");
    }

    #[test]
    fn shuffle_colliding_with_input_is_denied() {
        let chip = SmarcoConfig::tiny();
        let space = AddressSpace::new(chip.noc.cores(), chip.dram.channels);
        let bad = MapReduceConfig {
            threads_per_core: 4,
            shuffle_base: 0x100_0000 + 1024, // inside the input
            ..MapReduceConfig::split(chip.noc.subrings, 0x100_0000, 4 << 20)
        };
        let ds = check_mapreduce_plan(&bad, &chip, &space);
        assert!(
            ds.iter()
                .any(|d| d.code.as_str() == "SL0304" && d.message.contains("overlaps")),
            "{ds:?}"
        );
    }

    #[test]
    fn tiny_input_warns_about_slice_rounding() {
        let chip = SmarcoConfig::tiny();
        let space = AddressSpace::new(chip.noc.cores(), chip.dram.channels);
        // 16 bytes over 48 map tasks: every task gets a 1-byte slice and
        // tasks 16.. read past the region.
        let tiny_input = MapReduceConfig {
            threads_per_core: 4,
            shuffle_base: 0x200_0000,
            shuffle_len: 4096,
            ..MapReduceConfig::split(chip.noc.subrings, 0x100_0000, 16)
        };
        let ds = check_mapreduce_plan(&tiny_input, &chip, &space);
        assert!(
            ds.iter()
                .any(|d| d.code.as_str() == "SL0305" && d.severity == Severity::Warn),
            "{ds:?}"
        );
    }
}
