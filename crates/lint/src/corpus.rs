//! The negative-config corpus: one deliberately broken configuration
//! per model-pass trigger, each annotated with the codes it must
//! produce.
//!
//! The corpus is the verifier's own regression suite, runnable three
//! ways: as unit tests here, via `lint --corpus` in CI (which fails the
//! build if any entry stops producing its expected codes), and as
//! documentation — each entry is a minimal reproduction of one failure
//! mode the passes exist to catch.
//!
//! Every entry runs through [`lint_model`](crate::lint_model), the same
//! entry point the CLI sweep uses, so the corpus exercises the real
//! composition of passes, not the passes in isolation.

use smarco_core::config::SmarcoConfig;
use smarco_core::fault::{Fault, FaultPlan, RetryPolicy};
use smarco_noc::{BufferedNocConfig, NocBackendKind};
use smarco_sched::Task;

use crate::diag::Code;
use crate::model::{ClusterGeometry, PartitionLevel};
use crate::{lint_model, ModelInput};

/// One corpus entry: a broken configuration and the codes it must trip.
pub struct CorpusEntry {
    /// Stable entry name (used in CI output).
    pub name: &'static str,
    /// What the entry seeds and why it is fatal.
    pub why: &'static str,
    /// Codes the model passes must produce (`found ⊇ expected`).
    pub expected: Vec<Code>,
    /// Builds the broken input.
    pub build: fn() -> ModelInput,
}

fn base() -> ModelInput {
    ModelInput::new(SmarcoConfig::tiny())
}

/// The corpus, one entry per seeded failure mode.
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            name: "mact-permanent-lockup",
            why: "a MACT lockup that never ends closes the collect/flush/credit \
                  wait-for cycle around its sub-ring",
            expected: vec![Code::BlockingCycle],
            build: || {
                base().with_plan(FaultPlan::new(1).with_fault(Fault::MactLockup {
                    subring: 0,
                    at: 1_000,
                    cycles: u64::MAX,
                }))
            },
        },
        CorpusEntry {
            name: "all-channels-dead",
            why: "killing every DDR channel leaves memory requests no live server",
            expected: vec![Code::ResourceClassDead],
            build: || {
                let mut plan = FaultPlan::new(2);
                for channel in 0..SmarcoConfig::tiny().dram.channels {
                    plan = plan.with_fault(Fault::DramChannelDeath { channel, at: 100 });
                }
                base().with_plan(plan)
            },
        },
        CorpusEntry {
            name: "all-cores-dead",
            why: "killing every core leaves re-dispatch nowhere to move work",
            expected: vec![Code::ResourceClassDead],
            build: || {
                let mut plan = FaultPlan::new(3);
                for core in 0..SmarcoConfig::tiny().noc.cores() {
                    plan = plan.with_fault(Fault::CoreDeath { core, at: 100 });
                }
                base().with_plan(plan)
            },
        },
        CorpusEntry {
            name: "zero-latency-spoke",
            why: "a zero-cycle direct path floors its class at the junction \
                  latency only, so next_event can under-promise",
            expected: vec![Code::HorizonContract],
            build: || {
                let mut cfg = SmarcoConfig::tiny();
                cfg.direct.as_mut().unwrap().latency = 0;
                ModelInput::new(cfg)
            },
        },
        CorpusEntry {
            name: "zero-dram-latency",
            why: "a zero-cycle DDR reply timestamp equals its request cycle, \
                  voiding the hub shard's horizon promise",
            expected: vec![Code::HorizonContract],
            build: || {
                let mut cfg = SmarcoConfig::tiny();
                cfg.dram.base_latency = 0;
                ModelInput::new(cfg)
            },
        },
        CorpusEntry {
            name: "retry-blows-deadline-under-noise",
            why: "with noise injected, a maximally retried packet (worst 60 \
                  cycles) misses the 16-cycle MACT collection deadline",
            expected: vec![Code::WorstPathExceedsDeadline],
            build: || {
                base().with_plan(
                    FaultPlan::new(4)
                        .with_fault(Fault::SubRingNoise { permille: 50 })
                        .with_retry(RetryPolicy {
                            max_retries: 4,
                            base_backoff: 4,
                        }),
                )
            },
        },
        CorpusEntry {
            name: "starvable-task",
            why: "a task whose laxity is inside the plan's worst-case fault \
                  slack starves even though it is healthy-chip schedulable",
            expected: vec![Code::TaskStarvable],
            build: || {
                base()
                    .with_plan(
                        FaultPlan::new(5)
                            .with_fault(Fault::SubRingNoise { permille: 10 })
                            .with_fault(Fault::DramStall {
                                channel: 0,
                                at: 500,
                                cycles: 5_000,
                            }),
                    )
                    .with_tasks(vec![Task::new(1, 0, 4_000, 1_000)])
            },
        },
        CorpusEntry {
            name: "inverted-hierarchy",
            why: "an outer fabric level with a shorter lookahead than the \
                  sub-ring level would deliver into retired inner windows",
            expected: vec![Code::HierarchyLookahead],
            build: || base().with_outer_level(PartitionLevel::fabric(4, 1, 4)),
        },
        CorpusEntry {
            name: "backend-boundary-below-lookahead",
            why: "a buffered backend promising 1-cycle boundary crossings \
                  undercuts the 2-cycle junction latency the engine windows on",
            expected: vec![Code::BackendBoundaryLatency],
            build: || {
                let mut cfg = SmarcoConfig::tiny();
                cfg.noc.backend = NocBackendKind::Buffered(BufferedNocConfig {
                    boundary_latency: 1,
                    ..BufferedNocConfig::default()
                });
                ModelInput::new(cfg)
            },
        },
        CorpusEntry {
            name: "oversubscribed-host",
            why: "a 64-chip fabric level pinned to a 2-CPU host time-slices \
                  its workers and measures scheduler overhead, not speedup",
            expected: vec![Code::HostOversubscribed],
            build: || base().with_outer_level(PartitionLevel::fabric(64, 20, 64).with_host_cpus(2)),
        },
        CorpusEntry {
            name: "fabric-hop-below-chip-boundary",
            why: "a 1-cycle fabric hop undercuts the chip's 2-cycle internal \
                  boundary, inverting the cluster's two-level PDES hierarchy",
            expected: vec![Code::FabricBelowChipBoundary, Code::HierarchyLookahead],
            build: || base().with_cluster(ClusterGeometry::new(4, 1, 4, &SmarcoConfig::tiny())),
        },
        CorpusEntry {
            name: "open-loop-overload",
            why: "offering 300k work-cycles per kcycle to a 4-chip cluster that \
                  retires 256k grows queues without bound",
            expected: vec![Code::OfferedLoadExceedsCapacity],
            build: || {
                base().with_cluster(
                    ClusterGeometry::new(4, 32, 4, &SmarcoConfig::tiny())
                        .with_offered_load(300_000.0),
                )
            },
        },
        CorpusEntry {
            name: "zero-depth-buffered-switch",
            why: "a buffered backend with no output buffering serializes the \
                  switch on its shared input queue",
            expected: vec![Code::DegenerateBufferDepth],
            build: || {
                let mut cfg = SmarcoConfig::tiny();
                cfg.noc.backend = NocBackendKind::Buffered(BufferedNocConfig {
                    depth: 0,
                    ..BufferedNocConfig::default()
                });
                ModelInput::new(cfg)
            },
        },
    ]
}

/// Runs every corpus entry; returns `(name, missing, report)` triples
/// for entries that failed to produce an expected code. An empty result
/// means the corpus is sound.
pub fn run_corpus() -> Vec<(String, Vec<Code>, crate::Report)> {
    let mut failures = Vec::new();
    for entry in corpus() {
        let report = lint_model(&(entry.build)());
        let missing: Vec<Code> = entry
            .expected
            .iter()
            .copied()
            .filter(|&code| !report.diagnostics().iter().any(|d| d.code == code))
            .collect();
        if !missing.is_empty() {
            failures.push((entry.name.to_string(), missing, report));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_corpus_entry_trips_its_expected_codes() {
        let failures = run_corpus();
        assert!(
            failures.is_empty(),
            "corpus entries missing their codes: {:?}",
            failures
                .iter()
                .map(|(n, m, _)| (n.clone(), m.clone()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn corpus_names_are_unique_and_entries_nonempty() {
        let entries = corpus();
        assert!(entries.len() >= 8);
        let mut names: Vec<_> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries.len(), "duplicate corpus names");
        for entry in &entries {
            assert!(!entry.expected.is_empty(), "{} expects nothing", entry.name);
        }
    }

    #[test]
    fn the_healthy_baseline_is_clean_so_findings_are_the_seeds() {
        // If tiny itself tripped the passes, the corpus would prove
        // nothing: every entry's finding must come from its seed.
        assert!(lint_model(&ModelInput::new(SmarcoConfig::tiny())).is_empty());
    }

    #[test]
    fn starvable_task_entry_uses_a_healthy_chip_schedulable_task() {
        // Guard the entry against drifting into SL0409 territory.
        let task = Task::new(1, 0, 4_000, 1_000);
        assert!(task.laxity(task.arrival) >= 0);
    }
}
