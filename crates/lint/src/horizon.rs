//! Pass (b) — **SL0421** horizon-soundness contracts.
//!
//! The PDES engine advances each shard through conservative time
//! windows; its safety rests on every boundary component *keeping the
//! promises* encoded in the chip's
//! [`HorizonContract`](smarco_core::contract::HorizonContract): a
//! message crossing a shard boundary is timestamped no earlier than the
//! window start plus the pair floor and its traffic-class floor. This
//! pass evaluates **the same contract object the runtime installs** —
//! both sides call [`smarco_core::contract::horizon_contract`], so the
//! static claim and the debug-build assertion in
//! `ParallelEngine::window_step` are provably the same predicate (the
//! `Spm::certify` pattern).
//!
//! Statically, a configuration is horizon-unsound when any latency that
//! backs a contract floor degenerates to zero (the floor becomes an
//! empty promise and cycle skipping can run a component past an event
//! it had not yet emitted) or when a throughput term degenerates so a
//! "later" completion time cannot be computed at all.

use smarco_core::config::SmarcoConfig;
use smarco_core::contract::horizon_contract;

use crate::diag::{Code, Diagnostic, Span};

fn unsound(field: &str, why: &str, help: &str) -> Diagnostic {
    Diagnostic::new(
        Code::HorizonContract,
        Span::Field(field.to_string()),
        why.to_string(),
    )
    .with_help(help)
}

/// Runs the horizon-soundness pass over a configuration.
pub fn check_horizon(cfg: &SmarcoConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let contract = horizon_contract(cfg);

    // The contract's own weakest promise: if any reachable pair floors
    // at 0, a boundary message may carry the window-start timestamp and
    // the receiving shard can no longer order it against local events.
    if contract.min_reachable_floor() == Some(0) {
        out.push(unsound(
            "noc.junction_latency",
            "the derived horizon contract promises a zero-cycle floor on a \
             reachable shard pair: boundary messages may arrive timestamped \
             at the window start and cannot be ordered against local events",
            "every boundary crossing needs at least one cycle of latency",
        ));
    } else if cfg.noc.junction_latency == 0 {
        // Unreachable via the floor check only when the topology is
        // empty; keep the direct field check for a precise span.
        out.push(unsound(
            "noc.junction_latency",
            "junction latency 0 gives the engine a zero lookahead: windows \
             never advance and junction-class floors are empty promises",
            "the junction crossing is the lookahead; it must be positive",
        ));
    }

    // The class floors are the non-vacuous half of the contract: the
    // pair floor equals the lookahead, so `floor = pair.max(class)`
    // hides a zero class floor. Check the backing fields directly.
    if let Some(direct) = &cfg.direct {
        if direct.latency == 0 {
            out.push(unsound(
                "direct.latency",
                "a zero-latency direct-path spoke floors direct-class \
                 traffic at the junction latency only: the spoke's real \
                 arrival can undercut the promise its shard made when it \
                 declared next_event, breaking cycle skipping",
                "the spoke must cost at least one cycle end to end",
            ));
        }
        if direct.bytes_per_cycle <= 0.0 {
            out.push(unsound(
                "direct.bytes_per_cycle",
                "non-positive direct-path bandwidth makes a transfer's \
                 completion cycle incomputable: the shard cannot promise \
                 any horizon for in-flight direct traffic",
                "direct-path bandwidth must be a positive byte rate",
            ));
        }
    }
    if cfg.dram.base_latency == 0 {
        out.push(unsound(
            "dram.base_latency",
            "zero DDR base latency lets a memory reply be timestamped at \
             its request cycle: the hub shard's next_event promise no \
             longer bounds its outgoing replies",
            "model at least one cycle of controller turnaround",
        ));
    }
    if cfg.dram.bytes_per_cycle <= 0.0 {
        out.push(unsound(
            "dram.bytes_per_cycle",
            "non-positive DDR bandwidth makes service completion times \
             incomputable, so the hub shard cannot bound its horizon",
            "DDR bandwidth must be a positive byte rate",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_configs_keep_their_promises() {
        for cfg in [
            SmarcoConfig::tiny(),
            SmarcoConfig::smarco(),
            SmarcoConfig::prototype_40nm(),
        ] {
            assert!(check_horizon(&cfg).is_empty());
        }
    }

    #[test]
    fn zero_latency_spoke_denied_even_though_the_pair_floor_hides_it() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.direct.as_mut().unwrap().latency = 0;
        // The blind spot this pass exists for: the contract's reachable
        // floors still look fine because floor = pair.max(class).
        assert_ne!(
            horizon_contract(&cfg).min_reachable_floor(),
            Some(0),
            "pair floors mask the zero class floor"
        );
        let ds = check_horizon(&cfg);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::HorizonContract);
        assert!(matches!(&ds[0].span, Span::Field(f) if f == "direct.latency"));
    }

    #[test]
    fn zero_junction_latency_is_a_zero_lookahead() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.noc.junction_latency = 0;
        let ds = check_horizon(&cfg);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::HorizonContract);
        assert!(matches!(&ds[0].span, Span::Field(f) if f == "noc.junction_latency"));
    }

    #[test]
    fn degenerate_memory_timing_is_unsound() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.dram.base_latency = 0;
        cfg.dram.bytes_per_cycle = 0.0;
        let codes: Vec<_> = check_horizon(&cfg).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::HorizonContract, Code::HorizonContract]);
    }
}
