//! Pass 1 — address-map analysis.
//!
//! Resolves every static memory reference of a captured program against
//! the unified address space (`mem::map`): references must land wholly
//! inside one mapped region, DMA endpoints must be transferable ranges,
//! and naturally-alignable widths should be aligned. Remote-SPM traffic
//! is legal but noted — it rides the rings at DRAM-class latency.

use std::collections::HashSet;

use smarco_isa::op::Op;
use smarco_mem::map::{AddressSpace, RangeClass, Region};

use crate::access::ThreadProgram;
use crate::diag::{Code, Diagnostic, Span};

/// Identical findings (same code, same address) repeated by a looping
/// stream are reported once; a capture is bounded anyway, so the cap only
/// guards pathological programs.
const MAX_PER_THREAD: usize = 64;

fn region_name(r: Region) -> String {
    match r {
        Region::Dram { channel } => format!("DRAM (channel {channel})"),
        Region::Spm { core, .. } => format!("core {core} SPM"),
        Region::SpmCtrl { core, .. } => format!("core {core} SPM control registers"),
        Region::Unmapped => "unmapped space".to_string(),
    }
}

/// Lints one thread's references; see the module docs for the rules.
pub fn check_thread_addresses(space: &AddressSpace, t: &ThreadProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen: HashSet<(&'static str, u64)> = HashSet::new();
    let mut capped = false;
    for (index, instr) in t.instrs.iter().enumerate() {
        if out.len() >= MAX_PER_THREAD {
            capped = true;
            break;
        }
        let span = |t: &ThreadProgram| Span::Pc {
            thread: t.name.clone(),
            pc: instr.pc,
            index,
        };
        if let Some(m) = instr.op.mem_ref() {
            let kind = if matches!(instr.op, Op::Store(_)) {
                "store"
            } else {
                "load"
            };
            let bytes = u64::from(m.bytes);
            match space.classify_range(m.addr, bytes) {
                RangeClass::Unmapped => {
                    if seen.insert((Code::UnmappedRef.as_str(), m.addr)) {
                        out.push(
                            Diagnostic::new(
                                Code::UnmappedRef,
                                span(t),
                                format!(
                                    "{kind} of {bytes} B at {:#x} hits no mapped region",
                                    m.addr
                                ),
                            )
                            .with_help(
                                "place the buffer in DRAM (below 64 GiB) or in an SPM window",
                            ),
                        );
                    }
                }
                RangeClass::Straddles { first, end } => {
                    if seen.insert((Code::StraddlingRef.as_str(), m.addr)) {
                        out.push(
                            Diagnostic::new(
                                Code::StraddlingRef,
                                span(t),
                                format!(
                                    "{kind} of {bytes} B at {:#x} starts in {} but ends in {}",
                                    m.addr,
                                    region_name(first),
                                    region_name(end),
                                ),
                            )
                            .with_help("split the access or move the buffer off the boundary"),
                        );
                    }
                }
                RangeClass::Within(Region::SpmCtrl { core, offset }) => {
                    if seen.insert((Code::CtrlRef.as_str(), m.addr)) {
                        out.push(
                            Diagnostic::new(
                                Code::CtrlRef,
                                span(t),
                                format!(
                                    "{kind} hits core {core}'s SPM control registers \
                                     (offset {offset:#x}); guests should issue `Dma`/`Sync` ops"
                                ),
                            )
                            .with_help("use the DMA ops instead of poking control registers"),
                        );
                    }
                }
                RangeClass::Within(Region::Spm { core, .. }) if core != t.core => {
                    if seen.insert((Code::RemoteSpmRef.as_str(), m.addr)) {
                        out.push(Diagnostic::new(
                            Code::RemoteSpmRef,
                            span(t),
                            format!(
                                "{kind} at {:#x} targets core {core}'s SPM from core {}; \
                                 remote SPM rides the rings at memory-class latency",
                                m.addr, t.core,
                            ),
                        ));
                    }
                }
                RangeClass::Within(_) => {}
            }
            if m.bytes.is_power_of_two()
                && !m.addr.is_multiple_of(bytes)
                && seen.insert((Code::MisalignedRef.as_str(), m.addr))
            {
                out.push(
                    Diagnostic::new(
                        Code::MisalignedRef,
                        span(t),
                        format!(
                            "{kind} of {bytes} B at {:#x} is not {bytes}-byte aligned",
                            m.addr
                        ),
                    )
                    .with_help(
                        "misaligned accesses can straddle MACT lines and forfeit collection",
                    ),
                );
            }
        }
        if let Op::Dma { src, dst, bytes } = instr.op {
            if bytes == 0 {
                out.push(
                    Diagnostic::new(
                        Code::BadDmaRange,
                        span(t),
                        "zero-length DMA transfer".to_string(),
                    )
                    .with_severity(crate::diag::Severity::Warn)
                    .with_help("drop the op; the engine treats it as a no-op"),
                );
                continue;
            }
            for (what, base) in [("source", src), ("destination", dst)] {
                if !seen.insert((Code::BadDmaRange.as_str(), base)) {
                    continue;
                }
                match space.classify_range(base, u64::from(bytes)) {
                    RangeClass::Unmapped => out.push(
                        Diagnostic::new(
                            Code::BadDmaRange,
                            span(t),
                            format!(
                                "DMA {what} [{:#x}, {:#x}) hits no mapped region",
                                base,
                                base + u64::from(bytes)
                            ),
                        )
                        .with_help("DMA endpoints must be DRAM or a core's SPM data region"),
                    ),
                    RangeClass::Straddles { first, end } => out.push(
                        Diagnostic::new(
                            Code::BadDmaRange,
                            span(t),
                            format!(
                                "DMA {what} [{:#x}, {:#x}) starts in {} but ends in {}",
                                base,
                                base + u64::from(bytes),
                                region_name(first),
                                region_name(end),
                            ),
                        )
                        .with_help("chunk the transfer so each piece stays inside one region"),
                    ),
                    RangeClass::Within(Region::SpmCtrl { core, .. }) => out.push(Diagnostic::new(
                        Code::BadDmaRange,
                        span(t),
                        format!("DMA {what} targets core {core}'s SPM control registers"),
                    )),
                    RangeClass::Within(_) => {}
                }
            }
        }
    }
    if capped {
        out.push(
            Diagnostic::new(
                Code::UnmappedRef,
                Span::Pc {
                    thread: t.name.clone(),
                    pc: 0,
                    index: t.instrs.len(),
                },
                format!("further address findings suppressed after {MAX_PER_THREAD}"),
            )
            .with_severity(crate::diag::Severity::Note),
        );
    }
    out
}

/// Lints every thread's references.
pub fn check_addresses(space: &AddressSpace, threads: &[ThreadProgram]) -> Vec<Diagnostic> {
    threads
        .iter()
        .flat_map(|t| check_thread_addresses(space, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use smarco_isa::op::Instr;
    use smarco_mem::map::{DRAM_BYTES, SPM_BASE, SPM_BYTES, SPM_CTRL_BYTES};

    fn prog(core: usize, ops: Vec<Op>) -> ThreadProgram {
        let instrs = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| Instr {
                pc: 0x1000 + i as u64 * 4,
                op,
            })
            .collect();
        ThreadProgram::new(format!("core{core}/slot0"), core, 0, instrs)
    }

    fn space() -> AddressSpace {
        AddressSpace::new(4, 2)
    }

    #[test]
    fn clean_program_yields_no_findings() {
        let p = prog(
            0,
            vec![
                Op::load(0x1000, 8),
                Op::store(SPM_BASE + 64, 8),
                Op::Dma {
                    src: 0x1_0000,
                    dst: SPM_BASE + 4096,
                    bytes: 4096,
                },
                Op::Sync,
            ],
        );
        assert!(check_thread_addresses(&space(), &p).is_empty());
    }

    #[test]
    fn unmapped_reference_is_denied_with_sl0101() {
        let hole = DRAM_BYTES + (1 << 20);
        let p = prog(0, vec![Op::load(hole, 8)]);
        let ds = check_thread_addresses(&space(), &p);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "SL0101");
        assert_eq!(ds[0].severity, Severity::Deny);
    }

    #[test]
    fn straddling_reference_is_denied_with_sl0102() {
        // Crosses from core 0's SPM data region into its control window.
        let addr = SPM_BASE + SPM_BYTES - SPM_CTRL_BYTES - 4;
        let p = prog(0, vec![Op::load(addr, 8)]);
        let ds = check_thread_addresses(&space(), &p);
        assert!(ds.iter().any(|d| d.code.as_str() == "SL0102"));
    }

    #[test]
    fn misaligned_reference_warns_with_sl0103() {
        let p = prog(0, vec![Op::load(0x1001, 8)]);
        let ds = check_thread_addresses(&space(), &p);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "SL0103");
        assert_eq!(ds[0].severity, Severity::Warn);
    }

    #[test]
    fn control_window_access_warns_and_remote_spm_notes() {
        let ctrl = SPM_BASE + SPM_BYTES - SPM_CTRL_BYTES;
        let remote = SPM_BASE + SPM_BYTES + 64; // core 1's window
        let p = prog(0, vec![Op::store(ctrl, 8), Op::load(remote, 8)]);
        let ds = check_thread_addresses(&space(), &p);
        assert!(ds
            .iter()
            .any(|d| d.code.as_str() == "SL0104" && d.severity == Severity::Warn));
        assert!(ds
            .iter()
            .any(|d| d.code.as_str() == "SL0106" && d.severity == Severity::Note));
    }

    #[test]
    fn bad_dma_endpoints_are_denied_with_sl0105() {
        let p = prog(
            0,
            vec![Op::Dma {
                src: DRAM_BYTES + 4096,                          // unmapped hole
                dst: SPM_BASE + SPM_BYTES - SPM_CTRL_BYTES - 64, // straddles into ctrl
                bytes: 4096,
            }],
        );
        let ds = check_thread_addresses(&space(), &p);
        let bad: Vec<_> = ds.iter().filter(|d| d.code.as_str() == "SL0105").collect();
        assert_eq!(bad.len(), 2, "both endpoints flagged: {ds:?}");
        assert!(bad.iter().all(|d| d.severity == Severity::Deny));
    }

    #[test]
    fn repeated_identical_findings_are_deduplicated() {
        let hole = DRAM_BYTES + 64;
        let p = prog(0, vec![Op::load(hole, 8); 100]);
        let ds = check_thread_addresses(&space(), &p);
        assert_eq!(ds.len(), 1, "one finding for 100 identical bad loads");
    }
}
