//! Pass (a) — **SL042x** static deadlock analysis over the
//! [`ChipModel`](crate::model::ChipModel) graph.
//!
//! The chip's request paths form a directed graph; the engine's
//! blocking discipline means a request parked behind a permanently
//! out-of-service component never completes, and everything queued
//! behind it stalls in turn. Two shapes are fatal:
//!
//! * **SL0420 `BlockingCycle`** — a wait-for cycle with no escape: a
//!   MACT whose scheduled lockup never ends still *admits* collectable
//!   requests into its open lines, but never flushes, so the sub-ring's
//!   cores wait on the MACT, the MACT holds the junction batch, and the
//!   junction's credit never returns to the cores. The pass names the
//!   cycle edge by edge.
//! * **SL0422 `ResourceClassDead`** — the fault plan kills *every* unit
//!   of a resource class some live requester still needs: all DDR
//!   channels dead (every memory request blocks forever) or all cores
//!   dead (nothing can make progress at all). Killing *some* units is
//!   the recovery stack's job and stays silent.
//!
//! Both are reachability facts, checked with a DFS that refuses to exit
//! permanently blocked components — no simulation, no timing.

use crate::diag::{Code, Diagnostic, Span};
use crate::model::{ChipModel, Component};

/// Runs the deadlock pass.
pub fn check_deadlock(model: &ChipModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // SL0420: a permanently locked MACT closes the collect → flush →
    // junction loop around its sub-ring. Narrate the wait-for cycle.
    for id in model.find(Component::permanently_blocked) {
        if let Component::Mact {
            subring, lockups, ..
        } = &model.components[id]
        {
            let at = lockups
                .iter()
                .find(|&&(_, to)| to == u64::MAX)
                .map_or(0, |&(from, _)| from);
            out.push(
                Diagnostic::new(
                    Code::BlockingCycle,
                    Span::Field(format!("fault.mact_lockup[subring{subring}]")),
                    format!(
                        "mact{subring} locks up at cycle {at} and never recovers: \
                         cores on sub-ring {subring} wait on mact{subring}, \
                         mact{subring} holds its flush batch for junction{subring}, \
                         and junction{subring}'s credit never returns to the cores \
                         — a wait-for cycle with no live exit",
                    ),
                )
                .with_help("give the lockup a finite duration or quarantine the sub-ring"),
            );
        }
    }

    // SL0422: class extinction. A request class with zero live servers
    // blocks every live requester that needs it.
    let live = |pred: fn(&Component) -> bool| {
        model
            .components
            .iter()
            .filter(|c| pred(c))
            .filter(|c| !c.permanently_blocked())
            .count()
    };
    let total = |pred: fn(&Component) -> bool| model.find(pred).len();

    let is_ddr = |c: &Component| matches!(c, Component::DdrChannel { .. });
    if total(is_ddr) > 0 && live(is_ddr) == 0 {
        out.push(
            Diagnostic::new(
                Code::ResourceClassDead,
                Span::Field("fault.dram_channel_death".to_string()),
                format!(
                    "the fault plan kills all {} DDR channels: every memory \
                     request on the chip eventually blocks forever",
                    total(is_ddr),
                ),
            )
            .with_help("leave at least one channel alive so remap recovery has a target"),
        );
    }

    let is_core = |c: &Component| matches!(c, Component::TcgCore { .. });
    if total(is_core) > 0 && live(is_core) == 0 {
        out.push(
            Diagnostic::new(
                Code::ResourceClassDead,
                Span::Field("fault.core_death".to_string()),
                format!(
                    "the fault plan kills all {} TCG cores: re-dispatch has \
                     nowhere to move work and the chip halts",
                    total(is_core),
                ),
            )
            .with_help("leave at least one core alive so the scheduler can re-dispatch"),
        );
    }

    // General reachability: every live core must still reach a live DDR
    // channel through the graph. This subsumes single-point blockages
    // the class checks above cannot name (and stays silent when a core
    // has an alternate route, e.g. the direct-path spoke around a locked
    // MACT).
    if out.is_empty() {
        for core in model.find(|c| matches!(c, Component::TcgCore { .. })) {
            if model.components[core].permanently_blocked() {
                continue;
            }
            let reach = model.reachable(core);
            let memory_reachable = reach.iter().any(|&i| {
                matches!(model.components[i], Component::DdrChannel { .. })
                    && !model.components[i].permanently_blocked()
            });
            if !memory_reachable {
                out.push(
                    Diagnostic::new(
                        Code::BlockingCycle,
                        Span::Whole,
                        format!(
                            "{} has no blockage-free path to a live DDR channel: \
                             its first memory request waits forever",
                            model.components[core].label(),
                        ),
                    )
                    .with_help("restore a route (spoke or ring) or kill the core too"),
                );
                break; // one witness is enough; siblings repeat it
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ChipModel;
    use smarco_core::config::SmarcoConfig;
    use smarco_core::fault::{Fault, FaultPlan};

    fn model_with(plan: FaultPlan) -> ChipModel {
        ChipModel::extract(&SmarcoConfig::tiny(), &[], Some(&plan), None)
    }

    #[test]
    fn healthy_and_finitely_faulty_chips_are_clean() {
        assert!(check_deadlock(&model_with(FaultPlan::none())).is_empty());
        // A bounded lockup, one dead channel, one dead core: recoverable.
        let plan = FaultPlan::new(1)
            .with_fault(Fault::MactLockup {
                subring: 0,
                at: 100,
                cycles: 500,
            })
            .with_fault(Fault::DramChannelDeath { channel: 0, at: 50 })
            .with_fault(Fault::CoreDeath { core: 3, at: 10 });
        assert!(check_deadlock(&model_with(plan)).is_empty());
    }

    #[test]
    fn permanent_mact_lockup_is_a_blocking_cycle() {
        let plan = FaultPlan::new(1).with_fault(Fault::MactLockup {
            subring: 2,
            at: 1000,
            cycles: u64::MAX,
        });
        let ds = check_deadlock(&model_with(plan));
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::BlockingCycle);
        assert!(ds[0].message.contains("mact2"), "{}", ds[0].message);
        assert!(
            ds[0].message.contains("wait-for cycle"),
            "{}",
            ds[0].message
        );
    }

    #[test]
    fn killing_every_ddr_channel_is_class_extinction() {
        let channels = SmarcoConfig::tiny().dram.channels;
        let mut plan = FaultPlan::new(1);
        for channel in 0..channels {
            plan = plan.with_fault(Fault::DramChannelDeath { channel, at: 40 });
        }
        let ds = check_deadlock(&model_with(plan));
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::ResourceClassDead);
        assert!(ds[0].message.contains("DDR"), "{}", ds[0].message);
    }

    #[test]
    fn killing_every_core_is_class_extinction() {
        let cores = SmarcoConfig::tiny().noc.cores();
        let mut plan = FaultPlan::new(1);
        for core in 0..cores {
            plan = plan.with_fault(Fault::CoreDeath { core, at: 40 });
        }
        let ds = check_deadlock(&model_with(plan));
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::ResourceClassDead);
        assert!(ds[0].message.contains("cores"), "{}", ds[0].message);
    }
}
