//! Pass 2 — cross-thread race detection.
//!
//! The ISA has no inter-thread barrier: `Sync` only orders a thread
//! after *its own* DMA transfers. Co-scheduled threads (one TCG, one
//! sub-ring team, or a whole chip — whatever set the caller passes) are
//! therefore all concurrent, and any write/write or read/write overlap
//! between two threads' static footprints is a race. In-pair friends
//! (same core, same `slot / 2`) interleave at single-cycle granularity,
//! so findings name the pairing explicitly.
//!
//! One intra-thread hazard also lives here: touching the destination of
//! your own in-flight DMA before the `Sync` that completes it reads or
//! clobbers bytes the engine is still writing.

use smarco_isa::op::Op;

use crate::access::{Interval, ThreadAccesses, ThreadProgram};
use crate::diag::{Code, Diagnostic, Span};

fn relation(a: &ThreadProgram, b: &ThreadProgram) -> &'static str {
    if a.core == b.core && a.pair() == b.pair() {
        "in-pair friends on one core"
    } else if a.core == b.core {
        "co-resident on one core"
    } else {
        "concurrent on the chip"
    }
}

fn race_diag(
    code: Code,
    a: &ThreadProgram,
    b: &ThreadProgram,
    ia: Interval,
    ib: Interval,
    what: &str,
) -> Diagnostic {
    Diagnostic::new(
        code,
        Span::Pc {
            thread: a.name.clone(),
            pc: ia.pc,
            index: ia.index,
        },
        format!(
            "{what}: `{}` [{:#x}, {:#x}) overlaps `{}` [{:#x}, {:#x}) at pc {:#x}; \
             threads are {}",
            a.name,
            ia.start,
            ia.end,
            b.name,
            ib.start,
            ib.end,
            ib.pc,
            relation(a, b),
        ),
    )
    .with_help("give each thread a disjoint slice, or stage through per-thread SPM buffers")
}

/// Lints a co-scheduled set of threads for write/write and read/write
/// overlaps, plus the intra-thread unsynced-DMA hazard. At most one
/// finding per thread pair and kind (the first overlapping range).
pub fn check_races(threads: &[ThreadProgram]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let accesses: Vec<ThreadAccesses> = threads.iter().map(ThreadAccesses::collect).collect();
    for i in 0..threads.len() {
        for j in i + 1..threads.len() {
            let (a, b) = (&threads[i], &threads[j]);
            if let Some((ia, ib)) = accesses[i].writes.first_overlap(&accesses[j].writes) {
                out.push(race_diag(
                    Code::WriteWriteRace,
                    a,
                    b,
                    ia,
                    ib,
                    "unordered write/write",
                ));
            }
            if let Some((ia, ib)) = accesses[i].writes.first_overlap(&accesses[j].reads) {
                out.push(race_diag(
                    Code::ReadWriteRace,
                    a,
                    b,
                    ia,
                    ib,
                    "write racing a read",
                ));
            }
            if let Some((ib, ia)) = accesses[j].writes.first_overlap(&accesses[i].reads) {
                out.push(race_diag(
                    Code::ReadWriteRace,
                    b,
                    a,
                    ib,
                    ia,
                    "write racing a read",
                ));
            }
        }
    }
    for t in threads {
        out.extend(check_unsynced_dma(t));
    }
    out
}

/// Walks one thread, tracking in-flight DMA destination ranges (cleared
/// at each `Sync`); the first access overlapping an in-flight
/// destination is reported.
pub fn check_unsynced_dma(t: &ThreadProgram) -> Vec<Diagnostic> {
    let mut inflight: Vec<(u64, u64, u64)> = Vec::new(); // (start, end, dma pc)
    for (index, instr) in t.instrs.iter().enumerate() {
        if instr.op.is_dma_barrier() {
            inflight.clear();
            continue;
        }
        for e in instr.op.effects() {
            if let Some(&(ds, de, dma_pc)) = inflight
                .iter()
                .find(|&&(s, en, _)| e.start < en && s < e.end)
            {
                return vec![Diagnostic::new(
                    Code::UnsyncedDmaAccess,
                    Span::Pc {
                        thread: t.name.clone(),
                        pc: instr.pc,
                        index,
                    },
                    format!(
                        "access [{:#x}, {:#x}) touches the destination [{ds:#x}, {de:#x}) of the \
                         DMA issued at pc {dma_pc:#x} before any `Sync`",
                        e.start, e.end,
                    ),
                )
                .with_help("insert `Sync` after the DMA before using the staged bytes")];
            }
        }
        if let Op::Dma { dst, bytes, .. } = instr.op {
            if bytes > 0 {
                inflight.push((dst, dst.saturating_add(u64::from(bytes)), instr.pc));
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use smarco_isa::op::Instr;

    fn prog(name: &str, core: usize, slot: usize, ops: Vec<Op>) -> ThreadProgram {
        let instrs = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| Instr {
                pc: 0x1000 + i as u64 * 4,
                op,
            })
            .collect();
        ThreadProgram::new(name, core, slot, instrs)
    }

    #[test]
    fn disjoint_threads_are_clean() {
        let a = prog("a", 0, 0, vec![Op::load(0x1000, 8), Op::store(0x2000, 8)]);
        let b = prog("b", 0, 1, vec![Op::load(0x1000, 8), Op::store(0x3000, 8)]);
        assert!(check_races(&[a, b]).is_empty(), "shared reads are fine");
    }

    #[test]
    fn write_write_race_is_denied_with_sl0201() {
        let a = prog("core0/slot0", 0, 0, vec![Op::store(0x2000, 8)]);
        let b = prog("core0/slot1", 0, 1, vec![Op::store(0x2004, 8)]);
        let ds = check_races(&[a, b]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "SL0201");
        assert_eq!(ds[0].severity, Severity::Deny);
        assert!(
            ds[0].message.contains("in-pair friends"),
            "{}",
            ds[0].message
        );
    }

    #[test]
    fn read_write_race_is_denied_with_sl0202_in_both_directions() {
        let writer = prog("w", 0, 0, vec![Op::store(0x5000, 64)]);
        let reader = prog("r", 1, 0, vec![Op::load(0x5010, 4)]);
        let ds = check_races(&[reader.clone(), writer.clone()]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "SL0202");
        let ds2 = check_races(&[writer, reader]);
        assert_eq!(ds2.len(), 1);
        assert_eq!(ds2[0].code.as_str(), "SL0202");
    }

    #[test]
    fn dma_destination_counts_as_a_write() {
        let dma = prog(
            "dma",
            0,
            0,
            vec![
                Op::Dma {
                    src: 0x1_0000,
                    dst: 0x8000,
                    bytes: 4096,
                },
                Op::Sync,
            ],
        );
        let reader = prog("r", 1, 0, vec![Op::load(0x8100, 8)]);
        let ds = check_races(&[dma, reader]);
        assert!(ds.iter().any(|d| d.code.as_str() == "SL0202"), "{ds:?}");
    }

    #[test]
    fn unsynced_dma_access_is_denied_with_sl0203() {
        let t = prog(
            "t",
            0,
            0,
            vec![
                Op::Dma {
                    src: 0x1_0000,
                    dst: 0x8000,
                    bytes: 4096,
                },
                Op::load(0x8000, 8), // before the Sync
                Op::Sync,
            ],
        );
        let ds = check_unsynced_dma(&t);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "SL0203");
        assert_eq!(ds[0].severity, Severity::Deny);
    }

    #[test]
    fn sync_clears_the_inflight_window() {
        let t = prog(
            "t",
            0,
            0,
            vec![
                Op::Dma {
                    src: 0x1_0000,
                    dst: 0x8000,
                    bytes: 4096,
                },
                Op::Sync,
                Op::load(0x8000, 8), // after the Sync: fine
            ],
        );
        assert!(check_unsynced_dma(&t).is_empty());
    }
}
