//! Pass 4 — configuration validation.
//!
//! Re-states the chip's structural invariants as diagnostics instead of
//! panics: the `validate()` methods on the config structs abort the
//! simulator at construction, while this pass reports *every* violated
//! invariant of a candidate configuration at once, so sweeps and config
//! files can be vetted before a chip is ever built. A few soft
//! heuristics live only here (slice widths that do not tile the
//! guaranteed link capacity, MACT deadlines beyond the line capacity,
//! tasks that are already late when they arrive).

use smarco_core::config::{ProfConfig, SmarcoConfig, TcgConfig};
use smarco_core::fault::{Fault, FaultPlan};
use smarco_mem::mact::MactConfig;
use smarco_noc::direct::DirectPathConfig;
use smarco_noc::{LinkConfig, NocBackendKind, NocConfig};
use smarco_sched::Task;

use crate::diag::{Code, Diagnostic, Severity, Span};
use crate::model::{check_partition_hierarchy, PartitionLevel};

fn zero(path: &str, what: &str) -> Diagnostic {
    Diagnostic::new(
        Code::ZeroField,
        Span::Field(path.to_string()),
        format!("{what} must be positive"),
    )
}

/// Lints one link geometry (`label` names it in spans, e.g. `noc.main_link`).
pub fn check_link(label: &str, link: &LinkConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if link.lanes_fixed_per_dir == 0 {
        out.push(zero(
            &format!("{label}.lanes_fixed_per_dir"),
            "each direction needs at least one dedicated lane",
        ));
    }
    if link.lane_bytes == 0 {
        out.push(zero(&format!("{label}.lane_bytes"), "lane width"));
    }
    if link.hop_latency == 0 {
        out.push(zero(&format!("{label}.hop_latency"), "hop latency"));
    }
    if let Some(s) = link.slice_bytes {
        let span = Span::Field(format!("{label}.slice_bytes"));
        if s == 0 || s > link.max_capacity() {
            out.push(
                Diagnostic::new(
                    Code::SliceWidth,
                    span,
                    format!(
                        "slice width {s} outside 1..={} (peak per-direction bytes/cycle)",
                        link.max_capacity(),
                    ),
                )
                .with_severity(Severity::Deny)
                .with_help("the greedy allocator packs packets into slices of the link width"),
            );
        } else if !link.min_capacity().is_multiple_of(s) {
            out.push(
                Diagnostic::new(
                    Code::SliceWidth,
                    span,
                    format!(
                        "slice width {s} does not tile the guaranteed capacity \
                         ({} B/cycle); the remainder lane fragment idles every cycle",
                        link.min_capacity(),
                    ),
                )
                .with_severity(Severity::Warn)
                .with_help("pick a slice width dividing the fixed-lane capacity"),
            );
        }
    }
    out
}

/// Lints the ring topology.
pub fn check_noc(noc: &NocConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if noc.subrings == 0 {
        out.push(zero("noc.subrings", "sub-ring count"));
    }
    if noc.cores_per_subring == 0 {
        out.push(zero("noc.cores_per_subring", "cores per sub-ring"));
    }
    if noc.mem_ctrls == 0 {
        out.push(zero("noc.mem_ctrls", "memory-controller count"));
    }
    if noc.junction_latency == 0 {
        out.push(zero("noc.junction_latency", "junction latency"));
    }
    if noc.mem_ctrls > 0 && noc.subrings > 0 && !noc.subrings.is_multiple_of(noc.mem_ctrls) {
        out.push(
            Diagnostic::new(
                Code::CtrlSpacing,
                Span::Field("noc.mem_ctrls".to_string()),
                format!(
                    "{} controllers cannot be spaced evenly among {} sub-rings",
                    noc.mem_ctrls, noc.subrings,
                ),
            )
            .with_help("controllers interleave the main ring at fixed stride"),
        );
    }
    out.extend(check_link("noc.main_link", &noc.main_link));
    out.extend(check_link("noc.sub_link", &noc.sub_link));
    out.extend(check_backend(noc));
    out
}

/// Backend-contract checks (**SL0440**, **SL0441**) on the NoC config's
/// selected interconnect backend.
///
/// The boundary latency a backend promises is the PDES lookahead and
/// the junction class floor of the horizon contract, so a promise below
/// the topology's own junction latency (SL0440) makes the conservative
/// windows degenerate. A buffered backend whose per-exit buffers hold
/// at most one packet (SL0441) still simulates — construction clamps
/// the depth — but measures a switch with no usable buffering.
pub fn check_backend(noc: &NocConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if noc.boundary_latency() < noc.junction_latency {
        out.push(
            Diagnostic::new(
                Code::BackendBoundaryLatency,
                Span::Field("noc.backend.boundary_latency".to_string()),
                format!(
                    "the {} backend promises boundary crossings in {} cycle(s), below the \
                     topology's junction latency of {}",
                    noc.backend.name(),
                    noc.boundary_latency(),
                    noc.junction_latency,
                ),
            )
            .with_help("raise the backend's boundary_latency to at least noc.junction_latency"),
        );
    }
    if let NocBackendKind::Buffered(b) = noc.backend {
        if b.depth <= 1 {
            out.push(
                Diagnostic::new(
                    Code::DegenerateBufferDepth,
                    Span::Field("noc.backend.depth".to_string()),
                    format!(
                        "buffered backend depth {} serializes the switch on its shared input \
                         buffer",
                        b.depth,
                    ),
                )
                .with_help("set depth to at least 2 (the shipped default is 8)"),
            );
        }
    }
    out
}

/// Lints one core's TCG parameters.
pub fn check_tcg(tcg: &TcgConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if tcg.pairs == 0 {
        out.push(zero("tcg.pairs", "thread-pair count"));
    }
    if tcg.resident_threads == 0 {
        out.push(zero("tcg.resident_threads", "resident-thread count"));
    }
    for (path, what, v) in [
        ("tcg.pipeline_depth", "pipeline depth", tcg.pipeline_depth),
        ("tcg.spm_latency", "SPM latency", tcg.spm_latency),
        (
            "tcg.cache_hit_latency",
            "cache hit latency",
            tcg.cache_hit_latency,
        ),
    ] {
        if v == 0 {
            out.push(zero(path, what));
        }
    }
    if tcg.resident_threads > 2 * tcg.pairs {
        out.push(
            Diagnostic::new(
                Code::ThreadsExceedPairs,
                Span::Field("tcg.resident_threads".to_string()),
                format!(
                    "{} resident threads exceed the {} slots of {} pairs",
                    tcg.resident_threads,
                    2 * tcg.pairs,
                    tcg.pairs,
                ),
            )
            .with_help("each pair hosts one running thread plus one friend"),
        );
    }
    out
}

/// Lints a MACT geometry.
pub fn check_mact(mact: &MactConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if mact.lines == 0 {
        out.push(
            Diagnostic::new(
                Code::MactGeometry,
                Span::Field("mact.lines".to_string()),
                "a zero-line table collects nothing".to_string(),
            )
            .with_help("disable collection with `mact: None` instead"),
        );
    }
    if mact.line_bytes == 0 || mact.line_bytes > 64 {
        out.push(Diagnostic::new(
            Code::MactGeometry,
            Span::Field("mact.line_bytes".to_string()),
            format!(
                "line covers {} B but the byte bitmap is a 64-bit vector (1..=64)",
                mact.line_bytes,
            ),
        ));
    } else if !mact.line_bytes.is_power_of_two() {
        out.push(
            Diagnostic::new(
                Code::MactGeometry,
                Span::Field("mact.line_bytes".to_string()),
                format!(
                    "line width {} B is not a power of two; aligned requests will \
                     straddle lines and bypass collection",
                    mact.line_bytes,
                ),
            )
            .with_severity(Severity::Warn),
        );
    }
    if mact.threshold == 0 {
        out.push(
            Diagnostic::new(
                Code::MactGeometry,
                Span::Field("mact.threshold".to_string()),
                "a zero deadline flushes every line the cycle it opens".to_string(),
            )
            .with_help("Fig. 19 sweeps the threshold; 16 cycles is best overall"),
        );
    } else if mact.threshold > mact.line_bytes {
        out.push(
            Diagnostic::new(
                Code::MactThreshold,
                Span::Field("mact.threshold".to_string()),
                format!(
                    "deadline of {} cycles exceeds the {} B line capacity: even \
                     back-to-back single-byte requests fill the bitmap first, so the \
                     extra wait only adds latency",
                    mact.threshold, mact.line_bytes,
                ),
            )
            .with_help("keep the threshold at or below the line's byte count"),
        );
    }
    out
}

/// Lints the shard partition the PDES engine derives from a chip
/// configuration: `total_cores` cores cut into per-sub-ring shards of
/// `noc.cores_per_subring` plus one hub shard, driven by `workers` host
/// threads with the junction latency as lookahead. `host_cpus` pins the
/// host the oversubscription check (SL0450) judges against; `None`
/// detects the current machine.
pub fn check_shard_partition(
    total_cores: usize,
    noc: &NocConfig,
    direct: Option<&DirectPathConfig>,
    workers: usize,
    host_cpus: Option<usize>,
) -> Vec<Diagnostic> {
    // One level of the general hierarchy pass: the chip level is the
    // innermost (and, on today's single-chip fabric, only) level.
    let jl = noc.junction_latency;
    let level = PartitionLevel {
        label: "sub-ring".to_string(),
        units: total_cores,
        per_shard: noc.cores_per_subring,
        shards: noc.subrings + 1,
        lookahead: jl,
        min_boundary_latency: direct.map_or(jl, |d| d.latency.min(jl)),
        workers,
        host_cpus: Some(host_cpus.unwrap_or_else(crate::model::detected_host_cpus)),
    };
    check_partition_hierarchy(&[level])
}

/// Lints a fault plan against the chip geometry it targets (SL0414) and
/// its retransmission budget against the MACT collection deadline
/// (SL0415).
pub fn check_fault_plan(plan: &FaultPlan, cfg: &SmarcoConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let cores = cfg.noc.cores();
    let channels = cfg.dram.channels;
    let subrings = cfg.noc.subrings;
    for (i, f) in plan.faults().iter().enumerate() {
        let bad = match f {
            Fault::CoreDeath { core, .. } if *core >= cores => {
                Some(format!("core {core} outside the chip's 0..{cores}"))
            }
            Fault::DramStall { channel, .. } | Fault::DramChannelDeath { channel, .. }
                if *channel >= channels =>
            {
                Some(format!("DDR channel {channel} outside 0..{channels}"))
            }
            Fault::MactLockup { subring, .. } if *subring >= subrings => {
                Some(format!("sub-ring {subring} outside 0..{subrings}"))
            }
            _ => None,
        };
        if let Some(why) = bad {
            out.push(
                Diagnostic::new(
                    Code::FaultTargetOutOfRange,
                    Span::Plan(format!("fault {i} ({})", f.site().name())),
                    format!("{why}: this fault can never fire"),
                )
                .with_help("target a unit inside the chip geometry or drop the fault"),
            );
        }
    }
    if let Some(mact) = &cfg.mact {
        let worst = plan.retry().worst_case_delay();
        if worst >= mact.threshold {
            out.push(
                Diagnostic::new(
                    Code::RetryExceedsDeadline,
                    Span::Field("fault.retry".to_string()),
                    format!(
                        "worst-case retransmit delay {worst} cycles ({} retries, base \
                         backoff {}) reaches the {}-cycle MACT collection deadline: a \
                         fully-retried request always misses its batching window",
                        plan.retry().max_retries,
                        plan.retry().base_backoff,
                        mact.threshold,
                    ),
                )
                .with_help("shrink max_retries/base_backoff or raise the MACT threshold"),
            );
        }
    }
    out
}

/// Lints a whole-chip configuration (topology, core, MACT, fault plan,
/// and the cross-component agreement invariants).
pub fn check_config(cfg: &SmarcoConfig) -> Vec<Diagnostic> {
    let mut out = check_noc(&cfg.noc);
    out.extend(check_tcg(&cfg.tcg));
    if let Some(mact) = &cfg.mact {
        out.extend(check_mact(mact));
    }
    if cfg.freq_ghz <= 0.0 {
        out.push(zero("freq_ghz", "core clock"));
    }
    if cfg.dram.channels == 0 {
        out.push(zero("dram.channels", "DRAM channel count"));
    }
    if cfg.dram.channels != cfg.noc.mem_ctrls {
        out.push(
            Diagnostic::new(
                Code::DramChannelMismatch,
                Span::Field("dram.channels".to_string()),
                format!(
                    "{} DRAM channels but {} NoC memory controllers",
                    cfg.dram.channels, cfg.noc.mem_ctrls,
                ),
            )
            .with_help("each controller drives exactly one channel"),
        );
    }
    if let Some(direct) = &cfg.direct {
        if direct.subrings != cfg.noc.subrings {
            out.push(
                Diagnostic::new(
                    Code::DirectSpokeMismatch,
                    Span::Field("direct.subrings".to_string()),
                    format!(
                        "{} direct-datapath spokes but {} sub-rings",
                        direct.subrings, cfg.noc.subrings,
                    ),
                )
                .with_help("the direct network runs one spoke per sub-ring"),
            );
        }
    }
    out.extend(check_shard_partition(
        cfg.noc.cores(),
        &cfg.noc,
        cfg.direct.as_ref(),
        cfg.workers,
        None,
    ));
    if let Some(plan) = &cfg.fault {
        out.extend(check_fault_plan(plan, cfg));
    }
    if cfg.cycle_skip {
        if let Some(mact) = &cfg.mact {
            if mact.threshold == 1 {
                out.push(
                    Diagnostic::new(
                        Code::DegenerateHorizon,
                        Span::Field("mact.threshold".to_string()),
                        "a 1-cycle MACT deadline pins every open line's horizon to \
                         the next cycle, so shards with memory traffic can never \
                         fast-forward"
                            .to_string(),
                    )
                    .with_help(
                        "raise the threshold (16 is best overall) or disable \
                         cycle skipping if the sweep needs this point",
                    ),
                );
            }
        }
    }
    if cfg.prof.enabled && cfg.prof.sample_every > ProfConfig::DEGENERATE_SAMPLE_EVERY {
        out.push(
            Diagnostic::new(
                Code::DegenerateProfileSampling,
                Span::Field("prof.sample_every".to_string()),
                format!(
                    "profiling samples window telemetry every {} windows — \
                     short runs close few or no sampled windows, so the \
                     occupancy histogram and barrier-spread percentiles \
                     come back empty while the run still pays the \
                     profiling overhead",
                    cfg.prof.sample_every,
                ),
            )
            .with_help(format!(
                "keep the stride at or below {} (1 samples every window; \
                 the phase buckets are exact at any stride)",
                ProfConfig::DEGENERATE_SAMPLE_EVERY,
            )),
        );
    }
    out
}

/// Lints one scheduler task: a task whose laxity is already negative the
/// cycle it arrives can never meet its deadline.
pub fn check_task(task: &Task) -> Vec<Diagnostic> {
    if task.laxity(task.arrival) < 0 {
        vec![Diagnostic::new(
            Code::InfeasibleTask,
            Span::Field(format!("task {}", task.id)),
            format!(
                "deadline {} is infeasible: arrival {} + work {} already \
                     overshoots it by {} cycles",
                task.deadline,
                task.arrival,
                task.work,
                -task.laxity(task.arrival),
            ),
        )
        .with_help("stretch the deadline or shrink the work estimate")]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_configs_are_clean() {
        for cfg in [
            SmarcoConfig::smarco(),
            SmarcoConfig::tiny(),
            SmarcoConfig::prototype_40nm(),
        ] {
            let ds = check_config(&cfg);
            assert!(ds.is_empty(), "{ds:?}");
        }
    }

    #[test]
    fn zero_fields_are_denied_with_sl0401() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.noc.cores_per_subring = 0;
        cfg.freq_ghz = 0.0;
        let ds = check_config(&cfg);
        let zeros: Vec<_> = ds.iter().filter(|d| d.code.as_str() == "SL0401").collect();
        assert_eq!(zeros.len(), 2, "{ds:?}");
        assert!(zeros.iter().all(|d| d.severity == Severity::Deny));
    }

    #[test]
    fn too_many_threads_denied_with_sl0402() {
        let mut tcg = TcgConfig::smarco();
        tcg.resident_threads = 9;
        let ds = check_tcg(&tcg);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "SL0402");
    }

    #[test]
    fn cross_component_mismatches_denied() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.dram.channels = 9;
        cfg.direct.as_mut().unwrap().subrings = 7;
        let ds = check_config(&cfg);
        assert!(ds.iter().any(|d| d.code.as_str() == "SL0403"), "{ds:?}");
        assert!(ds.iter().any(|d| d.code.as_str() == "SL0404"), "{ds:?}");
    }

    #[test]
    fn uneven_controller_spacing_denied_with_sl0405() {
        let mut noc = NocConfig::smarco();
        noc.mem_ctrls = 3; // 16 % 3 != 0
        let ds = check_noc(&noc);
        assert!(ds.iter().any(|d| d.code.as_str() == "SL0405"), "{ds:?}");
    }

    #[test]
    fn slice_width_checked_with_sl0406() {
        let oversized = LinkConfig {
            slice_bytes: Some(64), // > 40 B peak
            ..LinkConfig::main_ring()
        };
        let ds = check_link("noc.main_link", &oversized);
        assert!(ds
            .iter()
            .any(|d| d.code.as_str() == "SL0406" && d.severity == Severity::Deny));
        let ragged = LinkConfig {
            slice_bytes: Some(7), // 24 % 7 != 0
            ..LinkConfig::main_ring()
        };
        let ds = check_link("noc.main_link", &ragged);
        assert!(ds
            .iter()
            .any(|d| d.code.as_str() == "SL0406" && d.severity == Severity::Warn));
    }

    #[test]
    fn mact_geometry_and_threshold_checked() {
        let wide = MactConfig {
            line_bytes: 128,
            ..MactConfig::default()
        };
        assert!(check_mact(&wide)
            .iter()
            .any(|d| d.code.as_str() == "SL0407"));
        let lax = MactConfig {
            threshold: 100, // > 64 B line
            ..MactConfig::default()
        };
        let ds = check_mact(&lax);
        assert!(
            ds.iter()
                .any(|d| d.code.as_str() == "SL0408" && d.severity == Severity::Warn),
            "{ds:?}"
        );
        assert!(check_mact(&MactConfig::default()).is_empty());
    }

    #[test]
    fn short_boundary_path_denied_with_sl0410() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.noc.junction_latency = 20; // > the 8-cycle direct spoke
        let ds = check_config(&cfg);
        assert!(
            ds.iter()
                .any(|d| d.code.as_str() == "SL0410" && d.severity == Severity::Deny),
            "{ds:?}"
        );
        // Without a direct datapath every boundary crosses a junction,
        // so any positive lookahead is safe.
        cfg.direct = None;
        assert!(check_config(&cfg).is_empty());
    }

    #[test]
    fn ragged_core_partition_denied_with_sl0411() {
        let noc = NocConfig::tiny();
        let ds = check_shard_partition(noc.cores() + 1, &noc, None, 1, None);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "SL0411");
        assert_eq!(ds[0].severity, Severity::Deny);
    }

    #[test]
    fn worker_count_sanity_with_sl0412() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.workers = 16; // tiny has 4 sub-rings + hub = 5 shards
        let ds = check_config(&cfg);
        assert!(
            ds.iter()
                .any(|d| d.code.as_str() == "SL0412" && d.severity == Severity::Warn),
            "{ds:?}"
        );
        // The clean case pins an 8-CPU host so it holds on any machine
        // (check_config auto-detects and would add SL0450 on small hosts).
        let ds = check_shard_partition(cfg.noc.cores(), &cfg.noc, cfg.direct.as_ref(), 5, Some(8));
        assert!(ds.is_empty(), "{ds:?}");
        cfg.workers = 0;
        let ds = check_config(&cfg);
        assert!(ds.iter().any(|d| d.code.as_str() == "SL0401"), "{ds:?}");
    }

    #[test]
    fn oversubscribed_workers_warn_with_sl0450() {
        let cfg = SmarcoConfig::tiny();
        // 5 workers fill the tiny chip's 5 shards, but the pinned host
        // has only 2 CPUs.
        let ds = check_shard_partition(cfg.noc.cores(), &cfg.noc, cfg.direct.as_ref(), 5, Some(2));
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code.as_str(), "SL0450");
        assert_eq!(ds[0].severity, Severity::Warn);
        // Every shipped config runs a single worker, which no host can
        // oversubscribe — the ci lint sweep stays clean everywhere.
        let ds = check_shard_partition(cfg.noc.cores(), &cfg.noc, cfg.direct.as_ref(), 1, Some(1));
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn degenerate_horizon_warns_with_sl0413() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.mact.as_mut().unwrap().threshold = 1;
        let ds = check_config(&cfg);
        assert!(
            ds.iter()
                .any(|d| d.code.as_str() == "SL0413" && d.severity == Severity::Warn),
            "{ds:?}"
        );
        // With skipping off the horizon quality is irrelevant.
        cfg.cycle_skip = false;
        assert!(check_config(&cfg).is_empty());
    }

    #[test]
    fn degenerate_profile_sampling_warns_with_sl0416() {
        let mut cfg = SmarcoConfig::tiny();
        cfg.prof = ProfConfig::on();
        cfg.prof.sample_every = ProfConfig::DEGENERATE_SAMPLE_EVERY + 1;
        let ds = check_config(&cfg);
        assert!(
            ds.iter()
                .any(|d| d.code.as_str() == "SL0416" && d.severity == Severity::Warn),
            "{ds:?}"
        );
        // At the boundary the stride is still considered usable.
        cfg.prof.sample_every = ProfConfig::DEGENERATE_SAMPLE_EVERY;
        assert!(check_config(&cfg).is_empty());
        // A sparse stride on *disabled* profiling is inert.
        cfg.prof = ProfConfig::off();
        cfg.prof.sample_every = u64::MAX;
        assert!(check_config(&cfg).is_empty());
    }

    #[test]
    fn fault_targets_outside_geometry_denied_with_sl0414() {
        use smarco_core::fault::Fault;
        let mut cfg = SmarcoConfig::tiny();
        let cores = cfg.noc.cores();
        cfg.fault = Some(
            FaultPlan::new(7)
                .with_fault(Fault::CoreDeath {
                    core: cores,
                    at: 100,
                })
                .with_fault(Fault::DramChannelDeath {
                    channel: cfg.dram.channels,
                    at: 100,
                })
                .with_fault(Fault::MactLockup {
                    subring: cfg.noc.subrings,
                    at: 100,
                    cycles: 10,
                }),
        );
        let ds = check_config(&cfg);
        let bad: Vec<_> = ds.iter().filter(|d| d.code.as_str() == "SL0414").collect();
        assert_eq!(bad.len(), 3, "{ds:?}");
        assert!(bad.iter().all(|d| d.severity == Severity::Deny));
        // In-range targets (and the chaos generator, which only draws
        // in-range ones) are clean.
        cfg.fault = Some(FaultPlan::chaos(7, &cfg));
        assert!(check_config(&cfg).is_empty());
    }

    #[test]
    fn retry_budget_past_mact_deadline_warns_with_sl0415() {
        use smarco_core::fault::RetryPolicy;
        let mut cfg = SmarcoConfig::tiny();
        // 4 retries from 4 cycles: 4 + 8 + 16 + 32 = 60 >= the 16-cycle
        // collection deadline.
        cfg.fault = Some(FaultPlan::new(1).with_retry(RetryPolicy {
            max_retries: 4,
            base_backoff: 4,
        }));
        let ds = check_config(&cfg);
        assert!(
            ds.iter()
                .any(|d| d.code.as_str() == "SL0415" && d.severity == Severity::Warn),
            "{ds:?}"
        );
        // The default budget (14 cycles) fits the default 16-cycle window.
        cfg.fault = Some(FaultPlan::new(1));
        assert!(check_config(&cfg).is_empty());
        // No MACT, no deadline to blow.
        cfg.fault = Some(FaultPlan::new(1).with_retry(RetryPolicy {
            max_retries: 9,
            base_backoff: 64,
        }));
        cfg.mact = None;
        assert!(check_config(&cfg)
            .iter()
            .all(|d| d.code.as_str() != "SL0415"));
    }

    #[test]
    fn infeasible_task_warns_with_sl0409() {
        let late = Task::new(1, 100, 150, 100); // needs 100, has 50
        let ds = check_task(&late);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code.as_str(), "SL0409");
        assert_eq!(ds[0].severity, Severity::Warn);
        assert!(check_task(&Task::new(2, 100, 300, 100)).is_empty());
    }
}
