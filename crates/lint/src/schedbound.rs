//! Pass (c) — **SL043x** worst-case latency and schedulability bounds
//! over the [`ChipModel`](crate::model::ChipModel).
//!
//! The recovery stack turns faults into *delay*: retransmits back off
//! exponentially, DDR stalls park requests, a channel death costs a
//! remap re-issue. This pass composes those worst cases into a single
//! **fault slack** — the most extra latency one request can absorb under
//! the extracted plan — and checks it against every deadline in the
//! model:
//!
//! * **SL0430 `WorstPathExceedsDeadline`** — under injected noise, a
//!   maximally retried packet misses the MACT collection deadline, so a
//!   line flushes without it and the batch it expected splits. This
//!   sharpens `SL0415`: that heuristic compares the retry wheel to the
//!   MACT unconditionally, while this pass only fires when the plan
//!   actually injects noise on the path feeding the MACT.
//! * **SL0431 `TaskStarvable`** — a task's laxity at arrival (or a
//!   MapReduce phase budget) is non-negative but smaller than the fault
//!   slack: schedulable on the healthy chip, starvable under the plan.
//!   (Outright infeasible tasks — negative laxity — are `SL0409`'s job
//!   and stay out of this pass.)
//!
//! All bounds are interval arithmetic over the model; no simulation.

use crate::diag::{Code, Diagnostic, Span};
use crate::model::ChipModel;
use smarco_sim::Cycle;

/// The most extra latency one request can absorb under the model's
/// fault plan: a full retransmit ladder (when noise is injected), plus
/// the longest scheduled DDR stall, plus one remap re-issue (when a
/// channel death forces requests onto a surviving channel).
pub fn fault_slack(model: &ChipModel) -> Cycle {
    let mut slack: Cycle = 0;
    if model.sub_noise_permille > 0 || model.main_noise_permille > 0 {
        slack = slack.saturating_add(model.retry_worst_delay);
    }
    slack = slack.saturating_add(model.max_dram_stall);
    if model.any_channel_death {
        slack = slack.saturating_add(model.dram_base_latency);
    }
    slack
}

/// Runs the schedulability pass.
pub fn check_schedbound(model: &ChipModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let slack = fault_slack(model);

    // SL0430: noise on the collection path vs the MACT deadline.
    if let Some(threshold) = model.mact_threshold {
        if model.sub_noise_permille > 0 && model.retry_worst_delay >= threshold {
            out.push(
                Diagnostic::new(
                    Code::WorstPathExceedsDeadline,
                    Span::Field("fault.retry".to_string()),
                    format!(
                        "with {}‰ sub-ring noise a maximally retried request \
                         ({} retries, base backoff {}) arrives {} cycles late \
                         — at or past the {}-cycle MACT collection deadline, \
                         so its line flushes without it and the batch splits",
                        model.sub_noise_permille,
                        model.retry_max,
                        model.retry_base,
                        model.retry_worst_delay,
                        threshold,
                    ),
                )
                .with_help("shorten the retry ladder or raise mact.threshold above it"),
            );
        }
    }

    if slack == 0 {
        return out;
    }

    // SL0431: per-task laxity vs the fault slack.
    for task in &model.tasks {
        let laxity = task.laxity(task.arrival);
        if laxity >= 0 && (laxity as u64) < slack {
            out.push(
                Diagnostic::new(
                    Code::TaskStarvable,
                    Span::Plan(format!("task {}", task.id)),
                    format!(
                        "laxity {laxity} at arrival is smaller than the plan's \
                         {slack}-cycle worst-case fault slack: schedulable on \
                         the healthy chip, starvable under this fault plan",
                    ),
                )
                .with_help("extend the deadline by the fault slack or soften the plan"),
            );
        }
    }

    // SL0431 (phase form): a MapReduce phase budget inside the slack.
    if let Some(budget) = model.phase_budget {
        if budget < slack {
            out.push(
                Diagnostic::new(
                    Code::TaskStarvable,
                    Span::Plan("mapreduce phase budget".to_string()),
                    format!(
                        "phase budget {budget} is smaller than the plan's \
                         {slack}-cycle worst-case fault slack: one faulted \
                         request can starve an entire phase",
                    ),
                )
                .with_help("budget each phase beyond the worst single-request delay"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ChipModel;
    use smarco_core::config::SmarcoConfig;
    use smarco_core::fault::{Fault, FaultPlan, RetryPolicy};
    use smarco_sched::Task;

    fn model(plan: FaultPlan, tasks: &[Task]) -> ChipModel {
        ChipModel::extract(&SmarcoConfig::tiny(), tasks, Some(&plan), None)
    }

    #[test]
    fn healthy_plan_has_zero_slack_and_no_findings() {
        let m = model(FaultPlan::none(), &[Task::new(1, 0, 10, 5)]);
        assert_eq!(fault_slack(&m), 0);
        assert!(check_schedbound(&m).is_empty());
    }

    #[test]
    fn default_retry_ladder_under_noise_misses_nothing() {
        // Worst delay 2+4+8 = 14 < threshold 16: noise alone is fine.
        let plan = FaultPlan::new(1).with_fault(Fault::SubRingNoise { permille: 50 });
        let m = model(plan, &[]);
        assert_eq!(fault_slack(&m), 14);
        assert!(check_schedbound(&m).is_empty());
    }

    #[test]
    fn oversized_retry_ladder_under_noise_blows_the_mact_deadline() {
        let plan = FaultPlan::new(1)
            .with_fault(Fault::SubRingNoise { permille: 50 })
            .with_retry(RetryPolicy {
                max_retries: 4,
                base_backoff: 4,
            });
        let m = model(plan, &[]);
        let ds = check_schedbound(&m);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::WorstPathExceedsDeadline);
    }

    #[test]
    fn oversized_ladder_without_noise_stays_silent() {
        // Sharper than SL0415: no noise, so the worst path never occurs.
        let plan = FaultPlan::new(1).with_retry(RetryPolicy {
            max_retries: 4,
            base_backoff: 4,
        });
        assert!(check_schedbound(&model(plan, &[])).is_empty());
    }

    #[test]
    fn low_laxity_task_is_starvable_under_the_plan() {
        let plan = FaultPlan::new(1)
            .with_fault(Fault::SubRingNoise { permille: 10 })
            .with_fault(Fault::DramStall {
                channel: 0,
                at: 100,
                cycles: 2000,
            });
        // slack = 14 + 2000 = 2014. laxity = 2500 - 0 - 1000 = 1500.
        let tight = Task::new(7, 0, 2500, 1000);
        let loose = Task::new(8, 0, 1_000_000, 1000);
        let ds = check_schedbound(&model(plan, &[tight, loose]));
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::TaskStarvable);
        assert!(matches!(&ds[0].span, Span::Plan(p) if p == "task 7"));
    }

    #[test]
    fn infeasible_tasks_are_not_this_passes_business() {
        let plan = FaultPlan::new(1).with_fault(Fault::DramStall {
            channel: 0,
            at: 100,
            cycles: 2000,
        });
        // Negative laxity: SL0409 territory, SL0431 stays silent.
        let infeasible = Task::new(9, 0, 10, 1000);
        assert!(check_schedbound(&model(plan, &[infeasible])).is_empty());
    }
}
