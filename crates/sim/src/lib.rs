//! Discrete-event / cycle-hybrid simulation kernel for the SmarCo
//! reproduction.
//!
//! This crate is the substrate the paper calls its "parallel simulation
//! platform based on PDES" (§4.2): a framework responsible for time,
//! synchronization, statistics and parallel acceleration, on which the
//! function modules (cores, routers, memories, NoC) are composed.
//!
//! Design:
//!
//! * **Cycle-driven components, event-driven completions.** Throughput
//!   hardware (pipelines, routers, MACT) is busy nearly every cycle, so the
//!   models tick once per cycle. Long-latency completions (DRAM bursts, DMA)
//!   are scheduled on an [`event::EventWheel`] keyed by cycle.
//! * **Determinism.** All randomness flows through [`rng::SimRng`], a
//!   SplitMix64-seeded xoshiro256** generator that is reproducible across
//!   platforms; the same seed always yields the same simulation.
//! * **Conservative parallel execution.** [`parallel`] implements a
//!   conservative time-window PDES engine: the model is partitioned into
//!   shards (SmarCo uses one shard per sub-ring) that advance in lockstep
//!   windows bounded by the minimum cross-shard latency (the *lookahead*),
//!   exchanging timestamped messages at window boundaries.
//!
//! # Examples
//!
//! ```
//! use smarco_sim::event::EventWheel;
//!
//! let mut wheel: EventWheel<&str> = EventWheel::new();
//! wheel.schedule(10, "dram fill");
//! wheel.schedule(5, "dma done");
//! assert_eq!(wheel.pop_due(5), Some("dma done"));
//! assert_eq!(wheel.pop_due(5), None);
//! assert_eq!(wheel.pop_due(10), Some("dram fill"));
//! ```

#![warn(missing_docs)]

pub mod contract;
pub mod engine;
pub mod event;
pub mod obs;
pub mod parallel;
pub mod prof;
pub mod rng;
pub mod stats;

/// Simulation time, measured in clock cycles of the component's own clock
/// domain.
///
/// SmarCo runs at 1.5 GHz and the baseline Xeon model at 2.2 GHz; cycle
/// counts are converted to seconds only at reporting time (see
/// `smarco-power`).
pub type Cycle = u64;
