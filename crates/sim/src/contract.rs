//! Horizon-soundness contracts: static floors on cross-shard message
//! timestamps, enforced at runtime in debug builds.
//!
//! A [`HorizonContract`] certifies two things about a sharded model:
//!
//! * **Topology** — which `(from, to)` shard pairs may exchange messages
//!   at all. A pair floor of `u64::MAX` means "unreachable"; a debug-build
//!   envelope on such a pair is a wiring bug.
//! * **Latency floors** — for every reachable pair and every *message
//!   class* (e.g. ring-junction traffic vs direct-path traffic), the
//!   minimum number of cycles between a window's start and the earliest
//!   cycle at which an envelope emitted in that window may become
//!   visible. The engine's lookahead already enforces `at >= window_end`;
//!   class floors can be *longer* than the lookahead (a direct-path spoke
//!   with an 8-cycle latency on a 2-cycle-lookahead chip), so the
//!   contract catches a component whose `next_event` under-promises even
//!   when the generic lookahead assertion would not.
//!
//! The same contract object is derived once from the configuration (see
//! `smarco_core::contract::horizon_contract`) and consumed twice: by the
//! static lint pass (`SL0421`) and by the engine's debug-build envelope
//! cross-checker installed via `ParallelEngine::set_contract` — the
//! `Spm::certify` pattern, so the static claim and the runtime assertion
//! are the same predicate.

/// Per-pair and per-class minimum-latency floors for a sharded model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HorizonContract {
    n: usize,
    /// `n * n` row-major pair floors; `u64::MAX` = pair unreachable.
    floors: Vec<u64>,
    /// Per-message-class floors (indexed by the classifier the engine is
    /// given alongside the contract).
    class_floors: Vec<u64>,
}

impl HorizonContract {
    /// A contract over `n` shards in which every pair is unreachable and
    /// no message classes exist. Build up from here with
    /// [`allow`](Self::allow) and [`set_class_floors`](Self::set_class_floors).
    pub fn unreachable(n: usize) -> Self {
        Self {
            n,
            floors: vec![u64::MAX; n * n],
            class_floors: Vec::new(),
        }
    }

    /// Number of shards the contract covers.
    pub fn shards(&self) -> usize {
        self.n
    }

    /// Declares `(from, to)` reachable with a pair floor of `floor`
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn allow(&mut self, from: usize, to: usize, floor: u64) {
        assert!(from < self.n && to < self.n, "shard index out of range");
        self.floors[from * self.n + to] = floor;
    }

    /// The pair floor for `(from, to)`; `u64::MAX` when unreachable.
    pub fn pair_floor(&self, from: usize, to: usize) -> u64 {
        self.floors[from * self.n + to]
    }

    /// Installs the per-class floors (class indices are whatever the
    /// engine's classifier returns).
    pub fn set_class_floors(&mut self, floors: Vec<u64>) {
        self.class_floors = floors;
    }

    /// The floor for message class `class` (0 when the class is unknown —
    /// conservative: never rejects a legal envelope).
    pub fn class_floor(&self, class: usize) -> u64 {
        self.class_floors.get(class).copied().unwrap_or(0)
    }

    /// The per-class floors.
    pub fn class_floors(&self) -> &[u64] {
        &self.class_floors
    }

    /// The effective floor for an envelope: `u64::MAX` when the pair is
    /// unreachable, otherwise the larger of the pair and class floors.
    pub fn floor(&self, from: usize, to: usize, class: usize) -> u64 {
        let pair = self.pair_floor(from, to);
        if pair == u64::MAX {
            u64::MAX
        } else {
            pair.max(self.class_floor(class))
        }
    }

    /// The smallest floor over all reachable pairs and all classes — the
    /// weakest promise the contract makes anywhere. A zero here means
    /// some component may act with no delay at all, which breaks cycle
    /// skipping (the static `SL0421` trigger).
    pub fn min_reachable_floor(&self) -> Option<u64> {
        let mut min = None;
        for from in 0..self.n {
            for to in 0..self.n {
                let pair = self.pair_floor(from, to);
                if pair == u64::MAX {
                    continue;
                }
                for class in 0..self.class_floors.len().max(1) {
                    let f = pair.max(self.class_floor(class));
                    min = Some(min.map_or(f, |m: u64| m.min(f)));
                }
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_until_allowed() {
        let mut c = HorizonContract::unreachable(3);
        assert_eq!(c.pair_floor(0, 1), u64::MAX);
        assert_eq!(c.floor(0, 1, 0), u64::MAX);
        c.allow(0, 1, 2);
        assert_eq!(c.pair_floor(0, 1), 2);
        assert_eq!(c.pair_floor(1, 0), u64::MAX, "direction matters");
        assert_eq!(c.shards(), 3);
    }

    #[test]
    fn class_floor_dominates_pair_floor() {
        let mut c = HorizonContract::unreachable(2);
        c.allow(0, 1, 2);
        c.set_class_floors(vec![2, 8]);
        assert_eq!(c.floor(0, 1, 0), 2);
        assert_eq!(c.floor(0, 1, 1), 8, "direct class outranks lookahead");
        assert_eq!(c.class_floor(99), 0, "unknown class is conservative");
    }

    #[test]
    fn min_reachable_floor_finds_the_weakest_promise() {
        let mut c = HorizonContract::unreachable(3);
        assert_eq!(c.min_reachable_floor(), None);
        c.allow(0, 1, 4);
        c.allow(1, 2, 7);
        c.set_class_floors(vec![5, 9]);
        assert_eq!(c.min_reachable_floor(), Some(5));
        c.set_class_floors(vec![0]);
        assert_eq!(c.min_reachable_floor(), Some(4));
    }
}
