//! Deterministic, platform-independent random number generation.
//!
//! Every stochastic choice in the simulator (workload address streams,
//! traffic injection, tie-breaking) draws from [`SimRng`], so a run is fully
//! reproducible from its seed. The implementation is xoshiro256** seeded
//! via SplitMix64 — the standard, well-tested construction — written out
//! here so results do not depend on any external crate's stream stability.

/// A seeded, splittable pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use smarco_sim::rng::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator; used to give each thread,
    /// core or workload its own stream from one master seed.
    pub fn split(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Picks an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Geometric-ish burst length: 1 + number of successes with prob `p`,
    /// capped at `max`. Used to model bursty arrivals.
    pub fn burst_len(&mut self, p: f64, max: u64) -> u64 {
        let mut n = 1;
        while n < max && self.chance(p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut r = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(4);
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut r = SimRng::new(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn pick_weighted_respects_weights() {
        let mut r = SimRng::new(6);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.pick_weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        // Roughly 10% / 20% / 70%.
        assert!((counts[0] as f64) < 30_000.0 * 0.15);
        assert!((counts[2] as f64) > 30_000.0 * 0.6);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SimRng::new(9);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn burst_len_within_cap() {
        let mut r = SimRng::new(10);
        for _ in 0..1000 {
            let n = r.burst_len(0.9, 8);
            assert!((1..=8).contains(&n));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_bound_panics() {
        SimRng::new(0).gen_range(0);
    }
}
