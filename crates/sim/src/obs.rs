//! Observability: structured event tracing, windowed time-series metrics,
//! and the configuration that turns profiling hooks on.
//!
//! Three coordinated layers:
//!
//! 1. **Event tracing** — components own an optional [`TraceBuffer`]; each
//!    instrumentation site is a single `Option` check when tracing is off
//!    (zero allocation, no clock reads, no side effects on model state).
//!    The system model drains component buffers once per tick into a
//!    ring-buffered [`EventTrace`], which exports Chrome `trace_event`
//!    JSON loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev):
//!    every core, sub-ring, MACT and DDR channel becomes its own track.
//! 2. **Windowed metrics** — a [`MetricsRecorder`] snapshots cumulative
//!    counters every `window` cycles and stores per-window deltas
//!    (computed with [`StatsReport::diff`]), alongside p50/p90/p99 of any
//!    latency samples recorded inside the window
//!    (via [`crate::stats::Percentiles`]). Exports CSV, one row per window.
//! 3. **Configuration** — [`ObsConfig`] rides inside the chip config;
//!    everything defaults to off, and enabling observation must never
//!    change simulated results (hooks are read-only by construction).
//!
//! Invariant shared by all hooks: observation reads model state, it never
//! writes it. A run with tracing + sampling enabled must produce a
//! bit-identical report to the same seed with observation disabled.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::stats::{Percentiles, StatsReport};
use crate::Cycle;

/// Identity of the hardware unit an event happened on; maps 1:1 to a
/// Perfetto track (`pid`/`tid` pair in Chrome trace terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A TCG core, by flat core index.
    Core(usize),
    /// The chip-level main ring.
    MainRing,
    /// A sub-ring, by index.
    SubRing(usize),
    /// A memory-access collection table, by sub-ring index.
    Mact(usize),
    /// A DDR channel, by channel index.
    DdrChannel(usize),
    /// The hardware task scheduler / dispatcher.
    Scheduler,
    /// The direct datapath for real-time requests.
    DirectPath,
}

impl Track {
    /// Chrome trace process id: groups tracks into named lanes.
    fn pid(self) -> u64 {
        match self {
            Track::Core(_) => 1,
            Track::MainRing | Track::SubRing(_) => 2,
            Track::Mact(_) => 3,
            Track::DdrChannel(_) => 4,
            Track::Scheduler => 5,
            Track::DirectPath => 6,
        }
    }

    /// Chrome trace thread id, unique within the pid.
    fn tid(self) -> u64 {
        match self {
            Track::Core(i) => i as u64,
            Track::MainRing => 0,
            Track::SubRing(i) => 1 + i as u64,
            Track::Mact(i) => i as u64,
            Track::DdrChannel(i) => i as u64,
            Track::Scheduler => 0,
            Track::DirectPath => 0,
        }
    }

    /// Human-readable track name shown in the trace viewer.
    pub fn name(self) -> String {
        match self {
            Track::Core(i) => format!("core{i}"),
            Track::MainRing => "main-ring".into(),
            Track::SubRing(i) => format!("sub-ring{i}"),
            Track::Mact(i) => format!("mact{i}"),
            Track::DdrChannel(i) => format!("ddr{i}"),
            Track::Scheduler => "scheduler".into(),
            Track::DirectPath => "direct-path".into(),
        }
    }

    fn group_name(self) -> &'static str {
        match self {
            Track::Core(_) => "cores",
            Track::MainRing | Track::SubRing(_) => "noc",
            Track::Mact(_) => "mact",
            Track::DdrChannel(_) => "dram",
            Track::Scheduler => "scheduler",
            Track::DirectPath => "direct-path",
        }
    }
}

/// Typed payload of a trace event. Every variant carries only plain data
/// copied out of the model — holding one never borrows model state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// `count` instructions retired since the core's last retire event
    /// (retires are sampled, not traced individually).
    InstrRetire {
        /// Retires represented by this event.
        count: u64,
    },
    /// A data or instruction-fetch access missed in the L1.
    CacheMiss {
        /// Address (data) or PC (ifetch) that missed.
        addr: u64,
        /// True for instruction-fetch misses.
        ifetch: bool,
    },
    /// An in-pair friend-thread switch: the pair's issue slot moved from
    /// one resident thread to its partner.
    ThreadSwap {
        /// Pair index within the core.
        pair: usize,
        /// Thread slot that lost the issue slot.
        from: usize,
        /// Thread slot that gained it.
        to: usize,
    },
    /// A thread blocked waiting on a long-latency operation.
    ThreadBlock {
        /// Blocking thread's slot within the core.
        thread: usize,
    },
    /// The MACT absorbed a small request into an open collection line.
    MactCollect {
        /// 64-byte-aligned base address of the line.
        base: u64,
    },
    /// The MACT closed a collection line and emitted one batched request.
    MactFlush {
        /// 64-byte-aligned base address of the line.
        base: u64,
        /// Number of small requests batched into the line.
        requests: u64,
        /// Why the line flushed ("threshold", "deadline", ...).
        cause: &'static str,
    },
    /// A packet finished traversing one ring (injection to ejection).
    RingHop {
        /// Hops traversed on this ring.
        hops: u64,
        /// Payload bytes carried.
        bytes: u64,
    },
    /// A DRAM burst occupied a channel; rendered as a duration slice.
    DramBurst {
        /// Bytes transferred.
        bytes: u64,
        /// Channel occupancy in DRAM-clock cycles.
        duration: Cycle,
    },
    /// The scheduler dispatched a task to an execution slot.
    TaskDispatch {
        /// Task id.
        task: u64,
        /// Task laxity (cycles of slack until its deadline) at dispatch.
        laxity: i64,
        /// Tasks still queued after this dispatch.
        queued: u64,
    },
    /// A task exited.
    TaskExit {
        /// Task id.
        task: u64,
        /// Whether it exited at or before its deadline.
        deadline_met: bool,
    },
    /// A DMA transfer started.
    DmaStart {
        /// Bytes to move.
        bytes: u64,
    },
    /// A DMA transfer completed and unblocked its thread.
    DmaComplete {
        /// Thread slot that issued the DMA.
        thread: usize,
    },
}

impl EventKind {
    /// Stable event-type name (used in exports and summaries).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::InstrRetire { .. } => "instr_retire",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::ThreadSwap { .. } => "thread_swap",
            EventKind::ThreadBlock { .. } => "thread_block",
            EventKind::MactCollect { .. } => "mact_collect",
            EventKind::MactFlush { .. } => "mact_flush",
            EventKind::RingHop { .. } => "ring_hop",
            EventKind::DramBurst { .. } => "dram_burst",
            EventKind::TaskDispatch { .. } => "task_dispatch",
            EventKind::TaskExit { .. } => "task_exit",
            EventKind::DmaStart { .. } => "dma_start",
            EventKind::DmaComplete { .. } => "dma_complete",
        }
    }

    /// For events that occupy their unit over time, the occupancy length.
    fn duration(&self) -> Option<Cycle> {
        match self {
            EventKind::DramBurst { duration, .. } => Some(*duration),
            _ => None,
        }
    }

    fn write_args_json(&self, out: &mut String) {
        match *self {
            EventKind::InstrRetire { count } => {
                let _ = write!(out, "{{\"count\":{count}}}");
            }
            EventKind::CacheMiss { addr, ifetch } => {
                let _ = write!(out, "{{\"addr\":{addr},\"ifetch\":{ifetch}}}");
            }
            EventKind::ThreadSwap { pair, from, to } => {
                let _ = write!(out, "{{\"pair\":{pair},\"from\":{from},\"to\":{to}}}");
            }
            EventKind::ThreadBlock { thread } => {
                let _ = write!(out, "{{\"thread\":{thread}}}");
            }
            EventKind::MactCollect { base } => {
                let _ = write!(out, "{{\"base\":{base}}}");
            }
            EventKind::MactFlush {
                base,
                requests,
                cause,
            } => {
                let _ = write!(
                    out,
                    "{{\"base\":{base},\"requests\":{requests},\"cause\":\"{cause}\"}}"
                );
            }
            EventKind::RingHop { hops, bytes } => {
                let _ = write!(out, "{{\"hops\":{hops},\"bytes\":{bytes}}}");
            }
            EventKind::DramBurst { bytes, duration } => {
                let _ = write!(out, "{{\"bytes\":{bytes},\"duration\":{duration}}}");
            }
            EventKind::TaskDispatch {
                task,
                laxity,
                queued,
            } => {
                let _ = write!(
                    out,
                    "{{\"task\":{task},\"laxity\":{laxity},\"queued\":{queued}}}"
                );
            }
            EventKind::TaskExit { task, deadline_met } => {
                let _ = write!(out, "{{\"task\":{task},\"deadline_met\":{deadline_met}}}");
            }
            EventKind::DmaStart { bytes } => {
                let _ = write!(out, "{{\"bytes\":{bytes}}}");
            }
            EventKind::DmaComplete { thread } => {
                let _ = write!(out, "{{\"thread\":{thread}}}");
            }
        }
    }
}

/// One timestamped, typed occurrence on a track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Cycle the event happened (its unit's clock domain).
    pub cycle: Cycle,
    /// Hardware unit it happened on.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
}

/// Destination for trace events. The system model is the only required
/// implementor ([`EventTrace`]), but tests and tools can capture events
/// with their own sinks.
pub trait TraceSink {
    /// Accepts one event.
    fn emit(&mut self, ev: TraceEvent);
}

/// A sink that drops everything (for running instrumented code untraced).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _ev: TraceEvent) {}
}

/// Per-component staging buffer for trace events.
///
/// Components own `Option<TraceBuffer>` — `None` (the default) costs one
/// branch per instrumentation site. The parent model drains the buffer
/// into the global [`EventTrace`] once per tick, which keeps components
/// free of shared references and `Send` for the parallel engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBuffer {
    track: Track,
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// Creates an empty buffer bound to `track`.
    pub fn new(track: Track) -> Self {
        Self {
            track,
            events: Vec::new(),
        }
    }

    /// The track this buffer reports on.
    pub fn track(&self) -> Track {
        self.track
    }

    /// Records one event at `cycle`.
    #[inline]
    pub fn emit(&mut self, cycle: Cycle, kind: EventKind) {
        self.events.push(TraceEvent {
            cycle,
            track: self.track,
            kind,
        });
    }

    /// Moves all staged events into `sink`, oldest first.
    pub fn drain_into(&mut self, sink: &mut dyn TraceSink) {
        for ev in self.events.drain(..) {
            sink.emit(ev);
        }
    }

    /// Number of staged (not yet drained) events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are staged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Ring-buffered event store: keeps the most recent `capacity` events and
/// counts what it had to drop, so a trace of a long run stays bounded.
#[derive(Debug, Clone)]
pub struct EventTrace {
    buf: Vec<TraceEvent>,
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl TraceSink for EventTrace {
    fn emit(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

impl EventTrace {
    /// Creates a trace retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            buf: Vec::new(),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted by the ring buffer (0 until `capacity` overflows).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever emitted (retained + dropped).
    pub fn total(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// Deterministically merges per-shard traces into one buffer: events
    /// order by cycle, same-cycle ties break by the order of `parts` (the
    /// shard index), and events of one part keep their emission order.
    /// Eviction counts carry over, so `total()` on the merged trace still
    /// counts every event emitted chip-wide.
    pub fn merged<'a>(
        parts: impl IntoIterator<Item = &'a EventTrace>,
        capacity: usize,
    ) -> EventTrace {
        let mut out = EventTrace::new(capacity);
        let mut events: Vec<TraceEvent> = Vec::new();
        for part in parts {
            out.dropped += part.dropped();
            events.extend(part.iter().copied());
        }
        // Each part is already nondecreasing in cycle; a stable sort on the
        // cycle alone therefore yields (cycle, part, emission) order.
        events.sort_by_key(|e| e.cycle);
        for ev in events {
            out.emit(ev);
        }
        out
    }

    /// Count of retained events per event-type name.
    pub fn counts_by_kind(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for ev in self.iter() {
            *out.entry(ev.kind.name()).or_insert(0) += 1;
        }
        out
    }

    /// Serializes the retained events as Chrome `trace_event` JSON (the
    /// object-with-`traceEvents` form Perfetto and `chrome://tracing`
    /// load directly). Cycles map to microseconds 1:1, so viewer "µs" are
    /// simulated cycles.
    pub fn to_chrome_json(&self) -> String {
        let mut tracks: Vec<Track> = self.iter().map(|e| e.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        let mut out = String::with_capacity(64 * (self.buf.len() + tracks.len()) + 64);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        // Metadata: name each pid (unit group) and tid (unit).
        for t in &tracks {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = writeln!(
                out,
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}},",
                t.pid(),
                t.group_name()
            );
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.pid(),
                t.tid(),
                t.name()
            );
        }
        for ev in self.iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            match ev.kind.duration() {
                Some(dur) => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\
                         \"ts\":{},\"dur\":{},\"args\":",
                        ev.kind.name(),
                        ev.track.group_name(),
                        ev.track.pid(),
                        ev.track.tid(),
                        ev.cycle,
                        dur.max(1),
                    );
                }
                None => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"cat\":\"{}\",\
                         \"pid\":{},\"tid\":{},\"ts\":{},\"args\":",
                        ev.kind.name(),
                        ev.track.group_name(),
                        ev.track.pid(),
                        ev.track.tid(),
                        ev.cycle,
                    );
                }
            }
            ev.kind.write_args_json(&mut out);
            out.push('}');
        }
        let _ = write!(
            out,
            "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped_events\":{}}}}}\n",
            self.dropped
        );
        out
    }

    /// Writes [`to_chrome_json`](Self::to_chrome_json) to `path`.
    pub fn write_chrome_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_chrome_json())
    }
}

/// One closed sampling window: `[start, end)` plus the per-window stats.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsWindow {
    /// First cycle of the window.
    pub start: Cycle,
    /// One past the last cycle of the window.
    pub end: Cycle,
    /// Window-local stats: counter deltas, gauges, derived rates and
    /// latency percentiles, all keyed by name.
    pub stats: StatsReport,
}

/// Windowed time-series metrics: snapshots cumulative counters every
/// `window` cycles and stores per-window deltas plus latency percentiles.
///
/// Protocol per window: the model calls [`record_latency`] as samples
/// complete, then [`close_window`] at each boundary with its cumulative
/// counter snapshot and instantaneous gauges. The recorder diffs the
/// snapshot against the previous boundary ([`StatsReport::diff`]), merges
/// the gauges and the window's p50/p90/p99, and returns the window stats
/// for the caller to add derived metrics (IPC, utilization...).
///
/// [`record_latency`]: Self::record_latency
/// [`close_window`]: Self::close_window
#[derive(Debug, Clone)]
pub struct MetricsRecorder {
    window: Cycle,
    next_boundary: Cycle,
    prev: StatsReport,
    prev_at: Cycle,
    windows: Vec<MetricsWindow>,
    lat_window: Percentiles,
    lat_run: Percentiles,
}

impl MetricsRecorder {
    /// Creates a recorder sampling every `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Cycle) -> Self {
        assert!(window > 0, "sampling window must be positive");
        Self {
            window,
            next_boundary: window,
            prev: StatsReport::new(),
            prev_at: 0,
            windows: Vec::new(),
            lat_window: Percentiles::new(),
            lat_run: Percentiles::new(),
        }
    }

    /// The sampling window length in cycles.
    pub fn window(&self) -> Cycle {
        self.window
    }

    /// Whether a window boundary is due at or before `now`.
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_boundary
    }

    /// Cycle of the next window boundary — chunked run loops pause the
    /// engine exactly here so windows close at their nominal edge.
    pub fn next_boundary(&self) -> Cycle {
        self.next_boundary
    }

    /// Records one latency sample into the current window (and the
    /// whole-run summary).
    pub fn record_latency(&mut self, v: f64) {
        self.lat_window.record(v);
        self.lat_run.record(v);
    }

    /// Closes the window ending at `now`.
    ///
    /// `cumulative` holds monotonically growing counters since run start;
    /// `gauges` holds instantaneous values copied into the window as-is.
    /// Returns the stored window's stats so the caller can add derived
    /// metrics that need the delta (e.g. IPC = Δinstructions / Δcycles).
    pub fn close_window(
        &mut self,
        now: Cycle,
        cumulative: &StatsReport,
        gauges: &StatsReport,
    ) -> &mut StatsReport {
        let mut stats = cumulative.diff(&self.prev);
        for (k, v) in gauges.iter() {
            stats.set(k, v);
        }
        stats.set("mem_latency_p50", self.lat_window.p50());
        stats.set("mem_latency_p90", self.lat_window.p90());
        stats.set("mem_latency_p99", self.lat_window.p99());
        stats.set("mem_latency_p999", self.lat_window.p999());
        stats.set("mem_latency_samples", self.lat_window.count() as f64);
        self.prev = cumulative.clone();
        let start = self.prev_at;
        self.prev_at = now;
        self.next_boundary = now + self.window;
        self.lat_window.clear();
        self.windows.push(MetricsWindow {
            start,
            end: now,
            stats,
        });
        &mut self.windows.last_mut().expect("just pushed").stats
    }

    /// All closed windows, in time order.
    pub fn windows(&self) -> &[MetricsWindow] {
        &self.windows
    }

    /// Whole-run latency percentile summary (across every window).
    pub fn run_latency(&self) -> &Percentiles {
        &self.lat_run
    }

    /// Renders all windows as CSV: `start,end,<metric columns>` with the
    /// column set being the union of keys across windows (blank where a
    /// window lacks a key).
    pub fn to_csv(&self) -> String {
        let mut columns: Vec<&str> = Vec::new();
        for w in &self.windows {
            for (k, _) in w.stats.iter() {
                if !columns.contains(&k) {
                    columns.push(k);
                }
            }
        }
        columns.sort_unstable();
        let mut out = String::new();
        out.push_str("start,end");
        for c in &columns {
            let _ = write!(out, ",{c}");
        }
        out.push('\n');
        for w in &self.windows {
            let _ = write!(out, "{},{}", w.start, w.end);
            for c in &columns {
                match w.stats.get(c) {
                    Some(v) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes [`to_csv`](Self::to_csv) to `path`.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_csv())
    }
}

/// Tracing layer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum events retained by the ring buffer.
    pub capacity: usize,
    /// Emit one `instr_retire` event per this many retires per core
    /// (1 = every retire; higher values bound event volume).
    pub retire_sample: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            capacity: 1 << 18,
            retire_sample: 64,
        }
    }
}

/// Observability configuration carried inside the chip config.
///
/// Default is fully off: no buffers are allocated, every hook reduces to
/// one `Option` branch, and simulated results are bit-identical to a
/// build without the hooks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// Event tracing; `Some` enables it.
    pub trace: Option<TraceConfig>,
    /// Windowed metrics sampling every `n` cycles; `Some(n)` enables it.
    pub sample_window: Option<Cycle>,
}

impl ObsConfig {
    /// Fully disabled (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Tracing on (default capacity/sampling), metrics off.
    pub fn tracing() -> Self {
        Self {
            trace: Some(TraceConfig::default()),
            sample_window: None,
        }
    }

    /// Tracing and windowed sampling both on.
    pub fn full(sample_window: Cycle) -> Self {
        Self {
            trace: Some(TraceConfig::default()),
            sample_window: Some(sample_window),
        }
    }

    /// Whether any layer is enabled.
    pub fn enabled(&self) -> bool {
        self.trace.is_some() || self.sample_window.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: Cycle, track: Track, kind: EventKind) -> TraceEvent {
        TraceEvent { cycle, track, kind }
    }

    #[test]
    fn ring_buffer_retains_most_recent() {
        let mut t = EventTrace::new(4);
        for i in 0..10 {
            t.emit(ev(i, Track::Core(0), EventKind::InstrRetire { count: i }));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        assert_eq!(t.total(), 10);
        let cycles: Vec<Cycle> = t.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn trace_buffer_drains_in_order() {
        let mut buf = TraceBuffer::new(Track::Mact(2));
        buf.emit(5, EventKind::MactCollect { base: 64 });
        buf.emit(
            6,
            EventKind::MactFlush {
                base: 64,
                requests: 8,
                cause: "threshold",
            },
        );
        assert_eq!(buf.len(), 2);
        let mut trace = EventTrace::new(16);
        buf.drain_into(&mut trace);
        assert!(buf.is_empty());
        let kinds: Vec<&str> = trace.iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, vec!["mact_collect", "mact_flush"]);
        assert!(trace.iter().all(|e| e.track == Track::Mact(2)));
    }

    #[test]
    fn chrome_json_is_loadable_shape() {
        let mut t = EventTrace::new(16);
        t.emit(ev(
            10,
            Track::Core(1),
            EventKind::CacheMiss {
                addr: 0x40,
                ifetch: false,
            },
        ));
        t.emit(ev(
            12,
            Track::DdrChannel(0),
            EventKind::DramBurst {
                bytes: 64,
                duration: 4,
            },
        ));
        t.emit(ev(
            13,
            Track::Scheduler,
            EventKind::TaskDispatch {
                task: 7,
                laxity: -3,
                queued: 2,
            },
        ));
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\"")); // track metadata
        assert!(json.contains("\"name\":\"core1\""));
        assert!(json.contains("\"ph\":\"X\"")); // duration slice for the burst
        assert!(json.contains("\"dur\":4"));
        assert!(json.contains("\"laxity\":-3"));
        assert!(json.contains("\"dropped_events\":0"));
        // Balanced braces/brackets — cheap structural validity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn counts_by_kind_counts() {
        let mut t = EventTrace::new(16);
        t.emit(ev(1, Track::Core(0), EventKind::ThreadBlock { thread: 3 }));
        t.emit(ev(2, Track::Core(0), EventKind::ThreadBlock { thread: 4 }));
        t.emit(ev(
            2,
            Track::Core(0),
            EventKind::ThreadSwap {
                pair: 1,
                from: 2,
                to: 3,
            },
        ));
        let c = t.counts_by_kind();
        assert_eq!(c["thread_block"], 2);
        assert_eq!(c["thread_swap"], 1);
    }

    #[test]
    fn recorder_windows_diff_cumulative_counters() {
        let mut r = MetricsRecorder::new(100);
        assert!(!r.due(99));
        assert!(r.due(100));
        let mut cum = StatsReport::new();
        cum.set("instructions", 400.0);
        r.record_latency(10.0);
        r.record_latency(20.0);
        let g = StatsReport::new();
        r.close_window(100, &cum, &g);
        cum.set("instructions", 1000.0);
        r.record_latency(30.0);
        let w = r.close_window(200, &cum, &g);
        w.set("ipc", w.get("instructions").unwrap() / 100.0);
        let ws = r.windows();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].start, 0);
        assert_eq!(ws[0].end, 100);
        assert_eq!(ws[0].stats.get("instructions"), Some(400.0));
        assert_eq!(ws[0].stats.get("mem_latency_samples"), Some(2.0));
        assert_eq!(ws[1].stats.get("instructions"), Some(600.0));
        assert_eq!(ws[1].stats.get("ipc"), Some(6.0));
        // Window percentiles reset between windows; the run summary doesn't.
        assert_eq!(ws[1].stats.get("mem_latency_samples"), Some(1.0));
        assert_eq!(r.run_latency().count(), 3);
    }

    #[test]
    fn recorder_csv_has_union_columns() {
        let mut r = MetricsRecorder::new(10);
        let mut cum = StatsReport::new();
        cum.set("a", 1.0);
        let g = StatsReport::new();
        r.close_window(10, &cum, &g);
        cum.set("a", 2.0);
        let w = r.close_window(20, &cum, &g);
        w.set("only_second", 9.0);
        let csv = r.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("start,end,"));
        assert!(header.contains("a"));
        assert!(header.contains("only_second"));
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn obs_config_default_off() {
        let c = ObsConfig::default();
        assert!(!c.enabled());
        assert!(ObsConfig::tracing().enabled());
        assert_eq!(ObsConfig::full(500).sample_window, Some(500));
    }
}
