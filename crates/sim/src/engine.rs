//! Sequential cycle-driven execution.
//!
//! The whole-chip models (`smarco-core`, `smarco-baseline`) implement
//! [`CycleModel`] and are driven by [`run_for`] / [`run_until_quiescent`].

use crate::Cycle;

/// A model advanced one clock cycle at a time.
pub trait CycleModel {
    /// Advances the model through cycle `now`.
    ///
    /// The runner calls this with `now = 0, 1, 2, …`; models must not
    /// assume a different starting point.
    fn tick(&mut self, now: Cycle);

    /// Whether the model has no further work (all threads exited, queues
    /// drained). Runners may stop early when this returns `true`.
    fn is_quiescent(&self) -> bool {
        false
    }
}

/// Runs `model` for exactly `cycles` cycles and returns the next cycle
/// value (i.e. `cycles`).
pub fn run_for<M: CycleModel>(model: &mut M, cycles: Cycle) -> Cycle {
    for now in 0..cycles {
        model.tick(now);
    }
    cycles
}

/// Runs `model` until it reports quiescence or `max_cycles` elapse.
///
/// Returns `Some(cycle_count)` when the model went quiescent (the count is
/// the number of cycles executed), or `None` if the budget was exhausted
/// first.
pub fn run_until_quiescent<M: CycleModel>(model: &mut M, max_cycles: Cycle) -> Option<Cycle> {
    for now in 0..max_cycles {
        if model.is_quiescent() {
            return Some(now);
        }
        model.tick(now);
    }
    if model.is_quiescent() {
        Some(max_cycles)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Countdown {
        remaining: u64,
        ticks: u64,
    }

    impl CycleModel for Countdown {
        fn tick(&mut self, _now: Cycle) {
            self.ticks += 1;
            self.remaining = self.remaining.saturating_sub(1);
        }
        fn is_quiescent(&self) -> bool {
            self.remaining == 0
        }
    }

    #[test]
    fn run_for_ticks_exactly() {
        let mut m = Countdown {
            remaining: 100,
            ticks: 0,
        };
        assert_eq!(run_for(&mut m, 10), 10);
        assert_eq!(m.ticks, 10);
    }

    #[test]
    fn run_until_quiescent_stops_early() {
        let mut m = Countdown {
            remaining: 5,
            ticks: 0,
        };
        assert_eq!(run_until_quiescent(&mut m, 100), Some(5));
        assert_eq!(m.ticks, 5);
    }

    #[test]
    fn run_until_quiescent_budget_exhausted() {
        let mut m = Countdown {
            remaining: 1000,
            ticks: 0,
        };
        assert_eq!(run_until_quiescent(&mut m, 10), None);
    }

    #[test]
    fn run_until_quiescent_at_boundary() {
        let mut m = Countdown {
            remaining: 10,
            ticks: 0,
        };
        assert_eq!(run_until_quiescent(&mut m, 10), Some(10));
    }
}
