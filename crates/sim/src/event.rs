//! A time-ordered event queue ("event wheel") for long-latency completions.
//!
//! Cycle-driven models use this for the few things that are *not* busy every
//! cycle: DRAM burst completions, DMA transfers, timer expiries. Events with
//! equal timestamps pop in FIFO (schedule) order, which keeps simulations
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A min-heap of timestamped events with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use smarco_sim::event::EventWheel;
///
/// let mut wheel = EventWheel::new();
/// wheel.schedule(3, 'a');
/// wheel.schedule(3, 'b');
/// wheel.schedule(1, 'c');
/// assert_eq!(wheel.pop_due(3), Some('c'));
/// assert_eq!(wheel.pop_due(3), Some('a'));
/// assert_eq!(wheel.pop_due(3), Some('b'));
/// assert_eq!(wheel.pop_due(3), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventWheel<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventWheel<T> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to become due at cycle `at`.
    pub fn schedule(&mut self, at: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pops the earliest event whose timestamp is `<= now`, if any.
    ///
    /// Call in a loop to drain everything due this cycle.
    pub fn pop_due(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.at <= now) {
            Some(self.heap.pop().expect("peeked entry exists").payload)
        } else {
            None
        }
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn next_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = EventWheel::new();
        w.schedule(10, 10u32);
        w.schedule(2, 2);
        w.schedule(7, 7);
        let mut out = Vec::new();
        for now in 0..=10 {
            while let Some(v) = w.pop_due(now) {
                out.push((now, v));
            }
        }
        assert_eq!(out, vec![(2, 2), (7, 7), (10, 10)]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut w = EventWheel::new();
        for i in 0..100u32 {
            w.schedule(5, i);
        }
        let mut out = Vec::new();
        while let Some(v) = w.pop_due(5) {
            out.push(v);
        }
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nothing_due_before_timestamp() {
        let mut w = EventWheel::new();
        w.schedule(5, ());
        assert_eq!(w.pop_due(4), None);
        assert_eq!(w.next_due(), Some(5));
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        assert_eq!(w.pop_due(5), Some(()));
        assert!(w.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut w = EventWheel::new();
        w.schedule(1, "a");
        assert_eq!(w.pop_due(1), Some("a"));
        w.schedule(3, "b");
        w.schedule(2, "c");
        assert_eq!(w.pop_due(2), Some("c"));
        assert_eq!(w.pop_due(2), None);
        assert_eq!(w.pop_due(3), Some("b"));
    }
}
