//! Statistics primitives shared by every model: counters, means, ratios,
//! and histograms, plus a snapshot registry the bench harness prints.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Online mean/min/max of a stream of samples (e.g. request latencies).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanTracker {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl MeanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or 0.0 if none were recorded.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 if none were recorded.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// A ratio of two counters, e.g. misses / accesses.
///
/// # Examples
///
/// ```
/// use smarco_sim::stats::Ratio;
///
/// let mut miss_ratio = Ratio::new();
/// miss_ratio.record(true);
/// miss_ratio.record(false);
/// miss_ratio.record(false);
/// assert!((miss_ratio.ratio() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial; `hit` counts toward the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// hits / total, or 0.0 when no trials were recorded.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// A histogram over power-of-two buckets: bucket `i` covers
/// `[2^i, 2^(i+1))`, with bucket 0 covering `[0, 2)`.
///
/// Used for memory-access granularity (Fig. 8) and latency distributions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = if v < 2 { 0 } else { 63 - v.leading_zeros() as usize };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fraction of values in `[lo, hi)` (approximated at bucket granularity:
    /// a bucket counts if its lower bound is within the range).
    pub fn fraction_between(&self, lo: u64, hi: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut in_range = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            let lower = if i == 0 { 0 } else { 1u64 << i };
            if lower >= lo && lower < hi {
                in_range += n;
            }
        }
        in_range as f64 / self.count as f64
    }

    /// (bucket lower bound, count) pairs for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i }, n))
    }
}

/// A named bag of scalar statistics produced by a model at the end of a
/// run; the bench harness formats these into the paper's tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReport {
    values: BTreeMap<String, f64>,
}

impl StatsReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or overwrites) a named scalar.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Reads a named scalar.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterates over `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges `other` into `self`, prefixing its keys with `prefix.`.
    pub fn absorb(&mut self, prefix: &str, other: &StatsReport) {
        for (k, v) in other.iter() {
            self.values.insert(format!("{prefix}.{k}"), v);
        }
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn mean_tracker_stats() {
        let mut m = MeanTracker::new();
        assert_eq!(m.mean(), 0.0);
        for v in [1.0, 2.0, 3.0] {
            m.record(v);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 3.0);
        assert_eq!(m.sum(), 6.0);
    }

    #[test]
    fn ratio_of_zero_trials_is_zero() {
        assert_eq!(Ratio::new().ratio(), 0.0);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 64] {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (4, 2), (8, 1), (64, 1)]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_fraction_between() {
        let mut h = Histogram::new();
        for v in [1, 2, 4, 8, 16] {
            h.record(v);
        }
        // Buckets with lower bound in [0, 8): 0, 2, 4 => 3 of 5 values.
        assert!((h.fraction_between(0, 8) - 0.6).abs() < 1e-12);
        assert_eq!(h.fraction_between(0, 1024), 1.0);
    }

    #[test]
    fn report_roundtrip_and_absorb() {
        let mut inner = StatsReport::new();
        inner.set("ipc", 3.2);
        let mut outer = StatsReport::new();
        outer.set("cycles", 100.0);
        outer.absorb("core0", &inner);
        assert_eq!(outer.get("core0.ipc"), Some(3.2));
        assert_eq!(outer.get("cycles"), Some(100.0));
        assert_eq!(outer.get("missing"), None);
        let rendered = outer.to_string();
        assert!(rendered.contains("core0.ipc = 3.2"));
    }
}
