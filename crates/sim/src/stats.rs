//! Statistics primitives shared by every model: counters, means, ratios,
//! and histograms, plus a snapshot registry the bench harness prints.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Online mean/min/max of a stream of samples (e.g. request latencies).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanTracker {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl MeanTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or 0.0 if none were recorded.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 if none were recorded.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Folds another tracker's samples into this one. Count, min and max
    /// merge exactly; the sums add in merge order, so merging a fixed
    /// sequence of trackers is bit-deterministic.
    pub fn merge(&mut self, other: &MeanTracker) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A ratio of two counters, e.g. misses / accesses.
///
/// # Examples
///
/// ```
/// use smarco_sim::stats::Ratio;
///
/// let mut miss_ratio = Ratio::new();
/// miss_ratio.record(true);
/// miss_ratio.record(false);
/// miss_ratio.record(false);
/// assert!((miss_ratio.ratio() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial; `hit` counts toward the numerator.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// hits / total, or 0.0 when no trials were recorded.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// A histogram over power-of-two buckets: bucket `i` covers
/// `[2^i, 2^(i+1))`, with bucket 0 covering `[0, 2)`.
///
/// Used for memory-access granularity (Fig. 8) and latency distributions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = if v < 2 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate fraction of recorded values in `[lo, hi)`.
    ///
    /// The histogram only knows bucket totals, so the result is exact when
    /// `lo` and `hi` are bucket boundaries (0, or powers of two ≥ 2). A
    /// bucket that the range only partially covers contributes
    /// proportionally to the covered span, i.e. values are assumed
    /// uniformly distributed within their bucket. Degenerate ranges
    /// (`lo >= hi`) and empty histograms yield 0.0.
    pub fn fraction_between(&self, lo: u64, hi: u64) -> f64 {
        if self.count == 0 || hi <= lo {
            return 0.0;
        }
        let mut in_range = 0.0;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let lower: u128 = if i == 0 { 0 } else { 1u128 << i };
            let upper: u128 = 1u128 << (i + 1);
            let o_lo = u128::from(lo).max(lower);
            let o_hi = u128::from(hi).min(upper);
            if o_hi > o_lo {
                in_range += n as f64 * (o_hi - o_lo) as f64 / (upper - lower) as f64;
            }
        }
        in_range / self.count as f64
    }

    /// Fraction of recorded values that landed in the same bucket as `v`
    /// (bucket-exact, no interpolation). When every recorded value is a
    /// bucket lower bound — e.g. power-of-two access sizes — this is the
    /// exact fraction of values equal to `v`.
    pub fn fraction_in_bucket_of(&self, v: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let idx = if v < 2 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        let n = self.buckets.get(idx).copied().unwrap_or(0);
        n as f64 / self.count as f64
    }

    /// Folds another histogram's recorded values into this one. Buckets,
    /// counts and sums add exactly, so the merge is order-independent.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// (bucket lower bound, count) pairs for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i }, n))
    }
}

/// Streaming quantile estimator over non-negative samples, built on
/// log-linear buckets (HdrHistogram-style): each power-of-two octave is
/// split into `2^SUB_BITS` linear sub-buckets, bounding the relative error
/// of any reported quantile to about `2^-SUB_BITS` (≈ 3 % here).
///
/// [`MeanTracker`] only keeps mean/min/max; this is the estimator behind
/// p50/p90/p99 summaries in windowed metrics. Deterministic: the estimate
/// depends only on the multiset of samples, not their order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Percentiles {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
}

/// Linear sub-buckets per octave (2^5 = 32).
const SUB_BITS: u32 = 5;

impl Percentiles {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v < (1 << SUB_BITS) {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let sub = ((v >> (msb - SUB_BITS)) as usize) & ((1 << SUB_BITS) - 1);
            (((msb - SUB_BITS + 1) as usize) << SUB_BITS) | sub
        }
    }

    /// Inclusive lower edge of bucket `idx` (inverse of `bucket_of`).
    fn bucket_low(idx: usize) -> u64 {
        let octave = idx >> SUB_BITS;
        let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
        if octave == 0 {
            sub
        } else {
            let shift = octave as u32 - 1;
            ((1u64 << SUB_BITS) | sub) << shift
        }
    }

    /// Exclusive upper edge of bucket `idx`.
    fn bucket_high(idx: usize) -> u64 {
        let octave = idx >> SUB_BITS;
        let width = if octave == 0 {
            1
        } else {
            1u64 << (octave as u32 - 1)
        };
        Self::bucket_low(idx) + width
    }

    /// Records one sample (negative values clamp to 0).
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() && v > 0.0 {
            v.round() as u64
        } else {
            0
        };
        let idx = Self::bucket_of(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v as f64;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or 0.0 if none were recorded.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min as f64
        }
    }

    /// Largest sample, or 0.0 if none were recorded.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (0.5 = median), or 0.0 if empty.
    ///
    /// Reports the midpoint of the bucket holding the rank-`q` sample,
    /// clamped to the observed min/max, so the answer is within one
    /// sub-bucket width (≈ 3 % relative error) of the true order statistic.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic (nearest-rank, 1-based).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = (Self::bucket_low(i) + Self::bucket_high(i) - 1) / 2;
                return (mid.clamp(self.min, self.max)) as f64;
            }
        }
        self.max as f64
    }

    /// Median (p50).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (tail SLO reporting).
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Folds another estimator's samples into this one. Bucket counts,
    /// min/max and count merge exactly; the sums add in merge order, so
    /// merging a fixed sequence of estimators is bit-deterministic.
    pub fn merge(&mut self, other: &Percentiles) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Resets the estimator to empty without releasing bucket storage.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0.0;
        self.min = 0;
        self.max = 0;
    }
}

/// A named bag of scalar statistics produced by a model at the end of a
/// run; the bench harness formats these into the paper's tables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReport {
    values: BTreeMap<String, f64>,
}

impl StatsReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or overwrites) a named scalar.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Reads a named scalar.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterates over `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges `other` into `self`, prefixing its keys with `prefix.`.
    pub fn absorb(&mut self, prefix: &str, other: &StatsReport) {
        for (k, v) in other.iter() {
            self.values.insert(format!("{prefix}.{k}"), v);
        }
    }

    /// Per-key difference `self - baseline`, over the keys of `self`.
    ///
    /// Keys missing from `baseline` are treated as 0, so diffing a
    /// cumulative-counter snapshot against an earlier snapshot yields the
    /// activity of the intervening window. Keys present only in `baseline`
    /// are dropped (a counter cannot disappear between snapshots).
    pub fn diff(&self, baseline: &StatsReport) -> StatsReport {
        let mut out = StatsReport::new();
        for (k, v) in self.iter() {
            out.set(k, v - baseline.get(k).unwrap_or(0.0));
        }
        out
    }

    /// Every value multiplied by `factor` (e.g. normalizing a window delta
    /// to a per-cycle or per-second rate).
    pub fn scale(&self, factor: f64) -> StatsReport {
        let mut out = StatsReport::new();
        for (k, v) in self.iter() {
            out.set(k, v * factor);
        }
        out
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn mean_tracker_stats() {
        let mut m = MeanTracker::new();
        assert_eq!(m.mean(), 0.0);
        for v in [1.0, 2.0, 3.0] {
            m.record(v);
        }
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 3.0);
        assert_eq!(m.sum(), 6.0);
    }

    #[test]
    fn ratio_of_zero_trials_is_zero() {
        assert_eq!(Ratio::new().ratio(), 0.0);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 64] {
            h.record(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (4, 2), (8, 1), (64, 1)]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_fraction_between() {
        let mut h = Histogram::new();
        for v in [1, 2, 4, 8, 16] {
            h.record(v);
        }
        // Exact at bucket boundaries: buckets [0,2), [2,4), [4,8) hold 3 of
        // the 5 values.
        assert!((h.fraction_between(0, 8) - 0.6).abs() < 1e-12);
        assert_eq!(h.fraction_between(0, 1024), 1.0);
    }

    #[test]
    fn histogram_fraction_between_splits_buckets_proportionally() {
        let mut h = Histogram::new();
        for v in [1, 2, 4, 8, 16] {
            h.record(v);
        }
        // `hi` inside bucket [8, 16): half the bucket's span is covered, so
        // its single value contributes 0.5 under the uniform assumption.
        assert!((h.fraction_between(0, 12) - 3.5 / 5.0).abs() < 1e-12);
        // `lo` inside bucket [2, 4): covers [3, 4), half the bucket span.
        assert!((h.fraction_between(3, 8) - 1.5 / 5.0).abs() < 1e-12);
        // Both endpoints inside the same bucket [16, 32): quarter coverage.
        assert!((h.fraction_between(20, 24) - 0.25 / 5.0).abs() < 1e-12);
        // Complementary split ranges over a bucket sum to the whole bucket.
        let whole = h.fraction_between(8, 16);
        let split = h.fraction_between(8, 12) + h.fraction_between(12, 16);
        assert!((whole - split).abs() < 1e-12);
    }

    #[test]
    fn histogram_fraction_between_degenerate_ranges() {
        let mut h = Histogram::new();
        for v in [1, 2, 4] {
            h.record(v);
        }
        assert_eq!(h.fraction_between(4, 4), 0.0); // lo == hi
        assert_eq!(h.fraction_between(8, 4), 0.0); // lo > hi
        assert_eq!(Histogram::new().fraction_between(0, 100), 0.0); // empty
    }

    #[test]
    fn histogram_fraction_in_bucket_of() {
        let mut h = Histogram::new();
        for v in [1, 2, 2, 4, 64] {
            h.record(v);
        }
        assert!((h.fraction_in_bucket_of(1) - 0.2).abs() < 1e-12);
        assert!((h.fraction_in_bucket_of(2) - 0.4).abs() < 1e-12);
        // 3 shares the [2, 4) bucket with the recorded 2s.
        assert!((h.fraction_in_bucket_of(3) - 0.4).abs() < 1e-12);
        assert_eq!(h.fraction_in_bucket_of(1 << 20), 0.0);
    }

    #[test]
    fn percentiles_small_values_exact() {
        let mut p = Percentiles::new();
        for v in 1..=20 {
            p.record(v as f64);
        }
        // Values below 2^SUB_BITS land in exact unit buckets.
        assert_eq!(p.p50(), 10.0);
        assert_eq!(p.p90(), 18.0);
        // With 20 samples the p99/p99.9 nearest rank is the last sample.
        assert_eq!(p.p99(), 20.0);
        assert_eq!(p.p999(), 20.0);
        assert_eq!(p.quantile(1.0), 20.0);
        assert_eq!(p.quantile(0.0), 1.0);
        assert_eq!(p.min(), 1.0);
        assert_eq!(p.max(), 20.0);
        assert_eq!(p.count(), 20);
        assert!((p.mean() - 10.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_large_values_within_relative_error() {
        let mut p = Percentiles::new();
        for v in 1..=10_000u64 {
            p.record(v as f64);
        }
        for (q, truth) in [
            (0.5, 5_000.0),
            (0.9, 9_000.0),
            (0.99, 9_900.0),
            (0.999, 9_990.0),
        ] {
            let est = p.quantile(q);
            assert!(
                (est - truth).abs() / truth < 0.04,
                "q={q}: est {est} vs true {truth}"
            );
        }
        assert!(p.p999() >= p.p99());
    }

    #[test]
    fn p999_boundaries() {
        // Empty estimator reports 0.
        assert_eq!(Percentiles::new().p999(), 0.0);
        // A single sample is every percentile.
        let mut one = Percentiles::new();
        one.record(7.0);
        assert_eq!(one.p999(), 7.0);
        // 1000 samples: nearest rank of q=0.999 is sample #999.
        let mut p = Percentiles::new();
        for v in 1..=1000u64 {
            p.record(v as f64);
        }
        let est = p.p999();
        assert!((est - 999.0).abs() / 999.0 < 0.04, "p999 est {est}");
        // p999 is clamped to the observed max even for extreme outliers.
        let mut outlier = Percentiles::new();
        for _ in 0..999 {
            outlier.record(1.0);
        }
        outlier.record(1e12);
        assert!(outlier.p999() <= outlier.max());
    }

    #[test]
    fn percentiles_empty_and_clear() {
        let mut p = Percentiles::new();
        assert_eq!(p.p50(), 0.0);
        p.record(42.0);
        assert_eq!(p.p50(), 42.0);
        p.clear();
        assert_eq!(p.count(), 0);
        assert_eq!(p.p99(), 0.0);
    }

    #[test]
    fn percentiles_order_independent() {
        let mut a = Percentiles::new();
        let mut b = Percentiles::new();
        let vals = [900.0, 3.0, 77.0, 512.0, 4096.0, 12.0, 12.0];
        for v in vals {
            a.record(v);
        }
        for v in vals.iter().rev() {
            b.record(*v);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_merge_matches_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [0, 1, 5, 9] {
            a.record(v);
            whole.record(v);
        }
        for v in [2, 64, 1000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.mean(), whole.mean());
    }

    #[test]
    fn percentiles_merge_matches_recording_everything() {
        let mut a = Percentiles::new();
        let mut b = Percentiles::new();
        let mut whole = Percentiles::new();
        for v in [3.0, 900.0, 12.0] {
            a.record(v);
            whole.record(v);
        }
        for v in [77.0, 512.0, 4096.0] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty estimator in either direction is the identity.
        let mut empty = Percentiles::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
        let before = whole.clone();
        whole.merge(&Percentiles::new());
        assert_eq!(whole, before);
    }

    #[test]
    fn merging_two_empties_is_still_empty() {
        let mut h = Histogram::new();
        h.merge(&Histogram::new());
        assert_eq!(h, Histogram::new());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);

        let mut p = Percentiles::new();
        p.merge(&Percentiles::new());
        assert_eq!(p, Percentiles::new());
        assert_eq!(p.count(), 0);
        assert_eq!(p.p50(), 0.0);
        assert_eq!(p.min(), 0.0);
        assert_eq!(p.max(), 0.0);
    }

    #[test]
    fn histogram_merge_with_empty_is_the_identity_both_ways() {
        let mut h = Histogram::new();
        for v in [0, 3, 70, 4096] {
            h.record(v);
        }
        // Populated ⊕ empty.
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        // Empty ⊕ populated. The bucket vectors may differ in trailing
        // zeros, so compare observable behaviour as well as state.
        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty, before);
        assert_eq!(empty.mean(), before.mean());
        assert_eq!(
            empty.buckets().collect::<Vec<_>>(),
            before.buckets().collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_is_associative_across_three_splits() {
        let splits: [&[u64]; 3] = [&[1, 2, 900], &[], &[64, 64, 5000, 3]];
        let hist = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let mut left = hist(splits[0]);
        left.merge(&hist(splits[1]));
        left.merge(&hist(splits[2]));
        // a ⊕ (b ⊕ c)
        let mut bc = hist(splits[1]);
        bc.merge(&hist(splits[2]));
        let mut right = hist(splits[0]);
        right.merge(&bc);
        // One shard recording everything.
        let whole = hist(&splits.concat());
        assert_eq!(left, right);
        assert_eq!(left, whole);

        let pcts = |vals: &[u64]| {
            let mut p = Percentiles::new();
            for &v in vals {
                p.record(v as f64);
            }
            p
        };
        let mut left = pcts(splits[0]);
        left.merge(&pcts(splits[1]));
        left.merge(&pcts(splits[2]));
        let mut bc = pcts(splits[1]);
        bc.merge(&pcts(splits[2]));
        let mut right = pcts(splits[0]);
        right.merge(&bc);
        let whole = pcts(&splits.concat());
        assert_eq!(left, right);
        assert_eq!(left, whole);
        assert_eq!(left.p99(), whole.p99());
    }

    #[test]
    fn report_diff_and_scale() {
        let mut now = StatsReport::new();
        now.set("instructions", 1000.0);
        now.set("cycles", 400.0);
        now.set("new_counter", 7.0);
        let mut before = StatsReport::new();
        before.set("instructions", 600.0);
        before.set("cycles", 100.0);
        before.set("gone", 5.0);
        let d = now.diff(&before);
        assert_eq!(d.get("instructions"), Some(400.0));
        assert_eq!(d.get("cycles"), Some(300.0));
        assert_eq!(d.get("new_counter"), Some(7.0)); // missing baseline key = 0
        assert_eq!(d.get("gone"), None); // baseline-only keys dropped
        let s = d.scale(0.5);
        assert_eq!(s.get("instructions"), Some(200.0));
        assert_eq!(s.get("cycles"), Some(150.0));
    }

    #[test]
    fn report_roundtrip_and_absorb() {
        let mut inner = StatsReport::new();
        inner.set("ipc", 3.2);
        let mut outer = StatsReport::new();
        outer.set("cycles", 100.0);
        outer.absorb("core0", &inner);
        assert_eq!(outer.get("core0.ipc"), Some(3.2));
        assert_eq!(outer.get("cycles"), Some(100.0));
        assert_eq!(outer.get("missing"), None);
        let rendered = outer.to_string();
        assert!(rendered.contains("core0.ipc = 3.2"));
    }
}
