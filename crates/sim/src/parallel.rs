//! Conservative time-window parallel discrete-event execution (PDES).
//!
//! The paper's simulation platform (§4.2) is a parallel discrete-event
//! simulator: a framework layer handles synchronization, communication and
//! parallel acceleration, and function modules plug into it. This module is
//! that framework layer.
//!
//! The classic conservative scheme: partition the model into [`Shard`]s
//! whose only interaction is timestamped messages with a minimum delivery
//! latency (the *lookahead*, e.g. the router pipeline depth between a
//! sub-ring and the main ring). All shards can then safely advance
//! `lookahead` cycles in parallel without seeing each other's messages,
//! because anything a peer emits inside the window cannot become visible
//! until the next window. At each window boundary the engine routes the
//! emitted envelopes into the destination shards' inboxes.
//!
//! Determinism: every envelope carries its source shard and a per-source
//! sequence number, and inboxes deliver in `(timestamp, source, sequence)`
//! order — a total order fixed at emission time, independent of both host
//! thread interleaving and the order envelopes happen to arrive in. The
//! sequence counters live in the engine and persist across windows, so the
//! order is total across the whole run, not just within one window.
//! Results are therefore identical for any worker count, which
//! [`ParallelEngine::run_sequential`] exists to verify.
//!
//! A second property falls out of absolute timestamps: the window length
//! never affects results, only synchronization frequency. Any window no
//! longer than the lookahead is conservative, so running cycle-by-cycle
//! (`run_windowed(n, 1)` with a 1-cycle clamp at the end of a run) produces
//! the same states and messages as full-lookahead windows.
//!
//! The hot path is allocation- and contention-free in steady state. Each
//! lane owns a recycled envelope slab (an arena reused window after
//! window) for its outbox, and emitted envelopes are published straight
//! into a cache-line-padded per-(destination, source) mailbox matrix — a
//! flat-combining [`Exchange`]: routing work rides along with each lane's
//! step instead of serializing at the barrier, so the barrier's serial
//! section shrinks to an O(1) horizon fold. When a [`HorizonContract`]
//! proves that every message class is delayed by more than the base
//! lookahead, [`ParallelEngine::widen_from_contract`] grows the window to
//! the contract's minimum floor, amortizing each barrier over more
//! simulated cycles.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as MemOrder};
use std::sync::Mutex;
use std::time::Instant;

use crate::contract::HorizonContract;
use crate::prof::{
    EngineProfile, HostPhase, HostSlice, HostTrack, ProfConfig, Telemetry, WorkerScratch,
};
use crate::Cycle;

/// A horizon contract paired with the classifier that maps a message to
/// its contract class. Plain function pointer so the pair stays `Copy`
/// across worker threads.
type ContractCheck<M> = (HorizonContract, fn(&M) -> usize);

/// Timestamped message addressed to another shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Cycle at which the message becomes visible to the destination.
    pub at: Cycle,
    /// Destination shard index.
    pub to: usize,
    /// Source shard index (stamped by the [`Outbox`]).
    pub from: usize,
    /// Per-source emission sequence number (stamped by the [`Outbox`]).
    pub seq: u64,
    /// Payload.
    pub msg: M,
}

/// Heap entry ordered min-first by `(at, from, seq)` — the deterministic
/// delivery order. The payload never participates in comparisons.
#[derive(Debug, Clone)]
struct Pending<M> {
    at: Cycle,
    from: usize,
    seq: u64,
    msg: M,
}

impl<M> Pending<M> {
    fn key(&self) -> (Cycle, usize, u64) {
        (self.at, self.from, self.seq)
    }
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<M> Eq for Pending<M> {}

impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest key.
        other.key().cmp(&self.key())
    }
}

/// Messages delivered to a shard, popped in `(timestamp, source shard,
/// sequence)` order — so same-cycle delivery is deterministic no matter in
/// which order the host threads happened to route the envelopes.
#[derive(Debug, Clone)]
pub struct Inbox<M> {
    heap: BinaryHeap<Pending<M>>,
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
        }
    }
}

impl<M> Inbox<M> {
    /// Pops the next message due at or before `now`, if any.
    pub fn pop_due(&mut self, now: Cycle) -> Option<M> {
        if self.heap.peek().is_some_and(|p| p.at <= now) {
            self.heap.pop().map(|p| p.msg)
        } else {
            None
        }
    }

    /// Number of undelivered messages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Due-cycle of the earliest pending message, if any. Together with
    /// [`Shard::next_event`] this bounds the next cycle at which the owning
    /// shard can possibly act.
    pub fn next_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|p| p.at)
    }

    /// Bulk insertion: one capacity reservation for the whole batch instead
    /// of a possible reallocation per envelope.
    fn push_all(&mut self, envs: impl IntoIterator<Item = Envelope<M>>) {
        self.heap.extend(envs.into_iter().map(|env| Pending {
            at: env.at,
            from: env.from,
            seq: env.seq,
            msg: env.msg,
        }));
    }
}

/// Collects messages a shard emits during a window, stamping each with the
/// source shard and a monotonically increasing sequence number.
#[derive(Debug)]
pub struct Outbox<M> {
    from: usize,
    window_end: Cycle,
    next_seq: u64,
    envelopes: Vec<Envelope<M>>,
}

impl<M> Outbox<M> {
    /// `envelopes` is a recycled buffer (cleared here) so steady-state
    /// windows allocate nothing.
    fn new(from: usize, window_end: Cycle, next_seq: u64, mut envelopes: Vec<Envelope<M>>) -> Self {
        envelopes.clear();
        Self {
            from,
            window_end,
            next_seq,
            envelopes,
        }
    }

    /// Sends `msg` to shard `to`, visible at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the end of the current window — that
    /// would violate the lookahead contract and make parallel execution
    /// diverge from sequential execution.
    pub fn send(&mut self, to: usize, at: Cycle, msg: M) {
        assert!(
            at >= self.window_end,
            "lookahead violation: message timestamped {at} inside window ending {}",
            self.window_end
        );
        self.envelopes.push(Envelope {
            at,
            to,
            from: self.from,
            seq: self.next_seq,
            msg,
        });
        self.next_seq += 1;
    }
}

/// Pads a value out to its own 128-byte region so adjacent values never
/// share a cache line (128, not 64, because x86 spatial prefetchers pull
/// lines in pairs). Hand-rolled because the workspace is dependency-free.
#[derive(Debug, Default)]
#[repr(align(128))]
struct CachePadded<T>(T);

/// One cell of the [`Exchange`] matrix: envelopes one source shard has
/// published for one destination shard, plus a fast-path flag so readers
/// skip locking cells nobody wrote to. The per-cell mutex is only ever
/// contended when this cell's single writer and single reader collide.
#[derive(Debug)]
struct MailSlot<M> {
    envelopes: Mutex<Vec<Envelope<M>>>,
    nonempty: AtomicBool,
}

/// Flat-combining window exchange: an `n × n` matrix of padded mailboxes,
/// row-major by destination (`slots[to * n + from]`). Each lane publishes
/// its outbox into its column as part of its own window step and drains
/// its row into its inbox at the next window start, so envelope routing
/// is spread across the workers instead of serialized at the barrier.
///
/// Publishing during the same phase in which other lanes drain is safe:
/// every published envelope is due at or after the current window's end
/// (the [`Outbox`] asserts this), so whether a given envelope is picked up
/// by its destination's drain this window or next, it cannot come due
/// before the destination's next step — and the `(at, from, seq)` heap
/// order makes the delivery sequence independent of arrival time.
#[derive(Debug)]
struct Exchange<M> {
    n: usize,
    slots: Vec<CachePadded<MailSlot<M>>>,
}

impl<M> Exchange<M> {
    fn new(n: usize) -> Self {
        let slots = (0..n * n)
            .map(|_| {
                CachePadded(MailSlot {
                    envelopes: Mutex::new(Vec::new()),
                    nonempty: AtomicBool::new(false),
                })
            })
            .collect();
        Self { n, slots }
    }

    /// Moves everything published for shard `to` into its inbox. Clearing
    /// the flag *before* taking the envelopes pairs with `publish` setting
    /// it *after* pushing: an envelope can be momentarily covered by a
    /// stale `true` (harmless extra lock next window) but never sit in a
    /// slot whose flag reads `false`.
    fn drain_row(&self, to: usize, inbox: &mut Inbox<M>) {
        for from in 0..self.n {
            let slot = &self.slots[to * self.n + from].0;
            if slot.nonempty.swap(false, MemOrder::Acquire) {
                let mut guard = slot.envelopes.lock().expect("mail slot lock");
                inbox.push_all(guard.drain(..));
            }
        }
    }

    /// Publishes one lane's outbox into its column, batching consecutive
    /// same-destination envelopes under one lock acquisition. Leaves `buf`
    /// empty (capacity intact) for slab recycling. Returns the earliest
    /// due-cycle published (`u64::MAX` when none) and the envelope count.
    fn publish(&self, from: usize, buf: &mut Vec<Envelope<M>>) -> (u64, u64) {
        let n = self.n;
        let mut earliest = u64::MAX;
        let mut count = 0u64;
        let mut cur_to = usize::MAX;
        let mut guard: Option<std::sync::MutexGuard<'_, Vec<Envelope<M>>>> = None;
        for env in buf.drain(..) {
            assert!(env.to < n, "unknown shard {}", env.to);
            earliest = earliest.min(env.at);
            count += 1;
            if env.to != cur_to {
                if guard.take().is_some() {
                    self.slots[cur_to * n + from]
                        .0
                        .nonempty
                        .store(true, MemOrder::Release);
                }
                cur_to = env.to;
                let slot = &self.slots[cur_to * n + from].0;
                guard = Some(slot.envelopes.lock().expect("mail slot lock"));
            }
            guard.as_mut().expect("mail slot guard").push(env);
        }
        if guard.take().is_some() {
            self.slots[cur_to * n + from]
                .0
                .nonempty
                .store(true, MemOrder::Release);
        }
        (earliest, count)
    }

    /// Post-run sweep: deliver everything still parked in the matrix
    /// (the final window's publishes were never drained) so a later run
    /// with any worker count sees it. Single-threaded by construction.
    fn drain_all(&self, inboxes: &mut [Inbox<M>]) {
        for (to, inbox) in inboxes.iter_mut().enumerate() {
            for from in 0..self.n {
                let slot = &self.slots[to * self.n + from].0;
                slot.nonempty.store(false, MemOrder::Relaxed);
                let mut guard = slot.envelopes.lock().expect("mail slot lock");
                inbox.push_all(guard.drain(..));
            }
        }
    }
}

/// A partition of the model that advances independently within a window.
pub trait Shard: Send {
    /// Message type exchanged between shards.
    type Msg: Send;

    /// Advances the shard through cycles `[from, to)`, consuming inbox
    /// messages as they come due and emitting cross-shard messages with
    /// timestamps `>= to` into `outbox`.
    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<Self::Msg>,
        outbox: &mut Outbox<Self::Msg>,
    );

    /// Event horizon: the earliest cycle at or after `now` at which this
    /// shard might act — consume an already-delivered message, change
    /// externally visible state (including statistics that are not pure
    /// idle bookkeeping), or emit an envelope. `None` means the shard is
    /// fully drained and only a new inbox message can re-activate it
    /// (the engine accounts for inbox due-cycles separately).
    ///
    /// The contract is conservative: returning a cycle *earlier* than the
    /// true next state change is always safe (it merely disables
    /// skipping); returning a *later* cycle breaks bit-identity. The
    /// default, `Some(now)`, declares the shard permanently active and
    /// opts it out of cycle skipping entirely.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// Fast-forwards the shard across `[from, to)`, a range the engine has
    /// proven event-free via [`next_event`](Self::next_event) and the
    /// inbox. Implementations must apply exactly the state changes
    /// `run_window` would have applied over an idle range (typically
    /// idle-counter bookkeeping) and must not emit messages. The default
    /// does nothing, matching the default always-active horizon (which
    /// guarantees this is never called).
    fn skip_window(&mut self, from: Cycle, to: Cycle) {
        let _ = (from, to);
    }
}

/// One shard's per-window execution state: the shard itself, its inbox,
/// its persistent sequence counter, and its recycled outbox slab, keyed
/// by shard index. The slab is exclusively owned (`&mut`, no lock): only
/// the lane's current worker touches it, and it persists in the engine so
/// steady-state windows allocate nothing.
struct Lane<'a, S: Shard> {
    i: usize,
    shard: &'a mut S,
    inbox: &'a mut Inbox<S::Msg>,
    seq: &'a mut u64,
    slab: &'a mut Vec<Envelope<S::Msg>>,
}

/// Earliest cycle at which `lane` can possibly act at or after `now`:
/// the shard's own horizon or its earliest undelivered message, whichever
/// comes first. `u64::MAX` encodes "never without new input".
fn lane_horizon<S: Shard>(lane: &Lane<'_, S>, now: Cycle) -> u64 {
    let shard = lane.shard.next_event(now).unwrap_or(u64::MAX);
    let inbox = lane.inbox.next_due().unwrap_or(u64::MAX);
    shard.min(inbox)
}

/// What one shard's window step did: whether it fast-forwarded, the
/// earliest due-cycle it published this window (`u64::MAX` when nothing),
/// and how many envelopes it published. The caller folds these into the
/// whole-run fast-forward decision and the exchange telemetry.
struct StepOutcome {
    skipped: bool,
    routed_due: u64,
    routed: u64,
}

/// One shard's window: drain the lane's mailbox row into the inbox, then
/// either fast-forward (when the shard's horizon and inbox both clear the
/// window) or run the model and publish the produced envelopes straight
/// into the exchange.
fn window_step<S: Shard>(
    lane: &mut Lane<'_, S>,
    from: Cycle,
    to: Cycle,
    exchange: &Exchange<S::Msg>,
    skip: bool,
    contract: Option<&ContractCheck<S::Msg>>,
) -> StepOutcome {
    exchange.drain_row(lane.i, lane.inbox);
    if skip && lane_horizon(lane, from) >= to {
        // Nothing can happen in [from, to): skip the per-cycle loop. No
        // outbox is created — a quiescent shard emits nothing, so the
        // sequence counter is untouched and delivery order is unchanged.
        lane.shard.skip_window(from, to);
        return StepOutcome {
            skipped: true,
            routed_due: u64::MAX,
            routed: 0,
        };
    }
    let buf = std::mem::take(lane.slab);
    let mut outbox = Outbox::new(lane.i, to, *lane.seq, buf);
    lane.shard.run_window(from, to, lane.inbox, &mut outbox);
    *lane.seq = outbox.next_seq;
    // Debug-build horizon cross-check: every envelope emitted this window
    // must respect the statically derived contract — reachable pair, and
    // timestamp no earlier than window start + the pair/class floor. This
    // is the runtime half of lint code SL0421: both sides evaluate the
    // same `HorizonContract`, so a static "clean" verdict and a quiet
    // debug run certify the same predicate.
    #[cfg(debug_assertions)]
    if let Some((contract, classify)) = contract {
        for env in &outbox.envelopes {
            let floor = contract.floor(env.from, env.to, classify(&env.msg));
            assert!(
                floor != u64::MAX,
                "horizon contract: shard {} must never message shard {}",
                env.from,
                env.to
            );
            assert!(
                env.at >= from.saturating_add(floor),
                "horizon contract: shard {} message to {} timestamped {} \
                 under-runs floor {} from window start {}",
                env.from,
                env.to,
                env.at,
                floor,
                from
            );
        }
    }
    #[cfg(not(debug_assertions))]
    let _ = contract;
    let (routed_due, routed) = exchange.publish(lane.i, &mut outbox.envelopes);
    // The drained buffer (empty, capacity intact) goes back in the slab.
    *lane.slab = outbox.envelopes;
    StepOutcome {
        skipped: false,
        routed_due,
        routed,
    }
}

/// Nanoseconds elapsed since `t0` on the monotonic host clock.
fn ns_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Nanoseconds from `epoch` to `t` (saturating at zero and `u64::MAX`).
fn ns_between(epoch: Instant, t: Instant) -> u64 {
    u64::try_from(t.duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// Sense-reversing spin barrier. The chip synchronizes every `lookahead`
/// (typically 2) cycles — tens of thousands of window boundaries per run —
/// so parties spin instead of sleeping: a futex-based barrier's sleep/wake
/// round-trip costs more than an entire window of simulation. The spin
/// budget adapts to the party count: more parties means longer expected
/// waits and more cores burning, so each check yields sooner; on an
/// oversubscribed host (more parties than cores, where a spinning waiter
/// can only steal cycles from the party it is waiting for) the budget is
/// zero and every check yields. The arrival and generation counters live
/// on separate padded lines so arrivers incrementing one don't invalidate
/// the line every waiter is polling. The last party to arrive runs a
/// serial section (the horizon fold) before releasing the others.
struct SpinBarrier {
    parties: usize,
    /// Spins between yields while waiting; 0 means yield on every check.
    spins_per_yield: u32,
    arrived: CachePadded<AtomicUsize>,
    generation: CachePadded<AtomicUsize>,
}

impl SpinBarrier {
    /// Total spin budget divided among the parties.
    const SPIN_BASE: u32 = 1024;
    /// Floor so small sane party counts still get a useful spin run.
    const SPIN_MIN: u32 = 32;

    /// Spins between yields for `parties` waiters on a host with
    /// `host_cpus` logical CPUs. Zero (yield immediately) when there is
    /// nobody to wait for or the host is oversubscribed; otherwise
    /// inversely proportional to the party count.
    fn spin_budget(parties: usize, host_cpus: usize) -> u32 {
        if parties <= 1 || parties > host_cpus {
            0
        } else {
            (Self::SPIN_BASE / u32::try_from(parties).unwrap_or(u32::MAX)).max(Self::SPIN_MIN)
        }
    }

    fn new(parties: usize) -> Self {
        let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
        Self::with_spin_budget(parties, Self::spin_budget(parties, host_cpus))
    }

    fn with_spin_budget(parties: usize, spins_per_yield: u32) -> Self {
        Self {
            parties,
            spins_per_yield,
            arrived: CachePadded(AtomicUsize::new(0)),
            generation: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Blocks until all parties arrive; the last runs `serial` first.
    fn wait_with(&self, serial: impl FnOnce()) {
        let generation = self.generation.0.load(MemOrder::Acquire);
        if self.arrived.0.fetch_add(1, MemOrder::AcqRel) + 1 == self.parties {
            serial();
            // Reset before the release so parties freed by the new
            // generation start the next arrival count from zero.
            self.arrived.0.store(0, MemOrder::Relaxed);
            self.generation.0.store(generation + 1, MemOrder::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.0.load(MemOrder::Acquire) == generation {
                if spins >= self.spins_per_yield {
                    spins = 0;
                    std::thread::yield_now();
                } else {
                    spins += 1;
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Drives a set of shards with conservative window synchronization.
///
/// With cycle skipping enabled (the default), the engine additionally
/// exploits each shard's [`Shard::next_event`] horizon at two levels:
/// within a window, a shard whose horizon and inbox both clear the window
/// end fast-forwards via [`Shard::skip_window`] instead of stepping; and
/// at window boundaries, when *every* shard's horizon, every undelivered
/// inbox message, and every just-routed envelope lie beyond the boundary,
/// the clock jumps straight to the earliest of them (clamped to the run
/// end). Both are provably result-neutral: absolute timestamps and the
/// `(at, from, seq)` delivery order mean a cycle nobody acts in is
/// indistinguishable from a cycle that was never stepped.
#[derive(Debug)]
pub struct ParallelEngine<S: Shard> {
    shards: Vec<S>,
    inboxes: Vec<Inbox<S::Msg>>,
    seqs: Vec<u64>,
    lookahead: Cycle,
    // Window length actually used: `lookahead` unless
    // `widen_from_contract` proved a larger floor.
    effective_lookahead: Cycle,
    now: Cycle,
    skip_enabled: bool,
    stepped_cycles: u64,
    skipped_cycles: u64,
    windows: u64,
    // Persistent window-exchange state, held in the engine so per-call
    // (and in the cycle-stepped facade, per-cycle) invocations reuse the
    // allocations: the padded mailbox matrix lanes publish into, and each
    // lane's recycled outbox slab.
    exchange: Exchange<S::Msg>,
    slabs: Vec<Vec<Envelope<S::Msg>>>,
    // Host-side self-profiling. None (the default) costs one branch per
    // instrumentation site and reads no clocks.
    prof: Option<Box<EngineProfile>>,
    // Horizon contract + message classifier, enforced on every emitted
    // envelope in debug builds only; release builds carry the data but
    // never evaluate it.
    contract: Option<ContractCheck<S::Msg>>,
}

impl<S: Shard> ParallelEngine<S> {
    /// Creates an engine over `shards` with the given `lookahead` (minimum
    /// cross-shard message latency, in cycles).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or `lookahead` is zero.
    pub fn new(shards: Vec<S>, lookahead: Cycle) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(lookahead > 0, "lookahead must be positive");
        let inboxes = shards.iter().map(|_| Inbox::default()).collect();
        let seqs = vec![0; shards.len()];
        let exchange = Exchange::new(shards.len());
        let slabs = shards.iter().map(|_| Vec::new()).collect();
        Self {
            shards,
            inboxes,
            seqs,
            lookahead,
            effective_lookahead: lookahead,
            now: 0,
            skip_enabled: true,
            stepped_cycles: 0,
            skipped_cycles: 0,
            windows: 0,
            exchange,
            slabs,
            prof: None,
            contract: None,
        }
    }

    /// Installs a horizon contract and the classifier mapping each message
    /// to its contract class. Debug builds then assert, for every emitted
    /// envelope, that the destination is reachable and the timestamp
    /// clears window-start + the contract floor; release builds ignore it.
    ///
    /// # Panics
    ///
    /// Panics if the contract covers a different number of shards.
    pub fn set_contract(&mut self, contract: HorizonContract, classify: fn(&S::Msg) -> usize) {
        assert_eq!(
            contract.shards(),
            self.shards.len(),
            "contract shard count mismatch"
        );
        self.contract = Some((contract, classify));
        // A new contract invalidates any widening derived from the old
        // one; widening is an explicit policy, re-opt-in per contract.
        self.effective_lookahead = self.lookahead;
    }

    /// Removes an installed horizon contract (for A/B-testing that the
    /// checker is observation-only) and resets any contract-derived
    /// window widening.
    pub fn clear_contract(&mut self) {
        self.contract = None;
        self.effective_lookahead = self.lookahead;
    }

    /// The installed horizon contract, if any.
    pub fn contract(&self) -> Option<&HorizonContract> {
        self.contract.as_ref().map(|(c, _)| c)
    }

    /// Widens the window length to the installed contract's minimum
    /// reachable floor when that exceeds the base lookahead, and returns
    /// the effective lookahead now in force (unchanged when no contract
    /// is installed or the contract doesn't permit more).
    ///
    /// Soundness: the contract promises every message of every class is
    /// delayed by at least its floor from the emitting window's start, so
    /// any window no longer than the minimum floor over all reachable
    /// (pair, class) combinations is still conservative. The promise is
    /// enforced, not trusted: the [`Outbox`] rejects any send inside the
    /// widened window outright, and debug builds additionally check every
    /// envelope against the contract floor itself — a contract that
    /// overstates the model's real delays fails loudly instead of
    /// diverging silently. Widening is an explicit policy (not implied by
    /// [`set_contract`](Self::set_contract)) because it changes window
    /// boundaries: results stay bit-identical across worker counts and
    /// cycle skipping either way, but models that emit per *window*
    /// rather than per simulated cycle observe the boundary change.
    pub fn widen_from_contract(&mut self) -> Cycle {
        if let Some((contract, _)) = &self.contract {
            // No reachable pair at all means the shards are proven fully
            // independent: the whole run is one window.
            let floor = contract.min_reachable_floor().unwrap_or(u64::MAX);
            self.effective_lookahead = self.lookahead.max(floor);
        }
        self.effective_lookahead
    }

    /// The window length currently in force: the construction-time
    /// lookahead, unless [`widen_from_contract`](Self::widen_from_contract)
    /// proved a larger one.
    pub fn effective_lookahead(&self) -> Cycle {
        self.effective_lookahead
    }

    /// Window boundaries processed so far, across all runs. Every worker
    /// observes the same boundaries (the barrier keeps them in lockstep),
    /// so this is a property of the run, not of the worker count.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Enables (or, with a disabled config, tears down) host-side
    /// self-profiling. Profiling is read-only with respect to the
    /// simulation — results stay bit-identical — and accumulates across
    /// subsequent [`run_windowed`](Self::run_windowed) calls.
    pub fn enable_profiling(&mut self, config: ProfConfig) {
        self.prof = if config.enabled {
            Some(Box::new(EngineProfile::new(config, self.shards.len())))
        } else {
            None
        };
    }

    /// The accumulated host-side profile, when profiling is enabled.
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.prof.as_deref()
    }

    /// Enables or disables event-horizon cycle skipping (default: on).
    /// Results are bit-identical either way; off exists for A/B timing and
    /// for flushing out horizon bugs.
    pub fn set_skip_enabled(&mut self, enabled: bool) {
        self.skip_enabled = enabled;
    }

    /// Whether event-horizon cycle skipping is active.
    pub fn skip_enabled(&self) -> bool {
        self.skip_enabled
    }

    /// Shard-cycles executed through `run_window` (one unit = one shard
    /// advanced one cycle the slow way).
    pub fn stepped_cycles(&self) -> u64 {
        self.stepped_cycles
    }

    /// Shard-cycles fast-forwarded through `skip_window`.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Fraction of shard-cycles skipped so far (0 when nothing ran).
    pub fn skip_ratio(&self) -> f64 {
        let total = self.stepped_cycles + self.skipped_cycles;
        if total == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / total as f64
        }
    }

    /// Current simulation time (start of the next window).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Shared view of the shards (for collecting statistics).
    pub fn shards(&self) -> &[S] {
        &self.shards
    }

    /// Exclusive view of the shards.
    pub fn shards_mut(&mut self) -> &mut [S] {
        &mut self.shards
    }

    /// Consumes the engine and returns its shards.
    pub fn into_shards(self) -> Vec<S> {
        self.shards
    }

    /// Cross-shard messages routed but not yet consumed by any shard.
    pub fn pending_messages(&self) -> usize {
        self.inboxes.iter().map(Inbox::len).sum()
    }

    /// Runs `cycles` further cycles with one persistent worker thread per
    /// shard; equivalent to [`run_windowed`](Self::run_windowed) with as
    /// many workers as shards.
    pub fn run_parallel(&mut self, cycles: Cycle) {
        self.run_windowed(cycles, self.shards.len());
    }

    /// Runs `cycles` further cycles on the calling thread with identical
    /// results; the single-worker degenerate case of
    /// [`run_windowed`](Self::run_windowed).
    pub fn run_sequential(&mut self, cycles: Cycle) {
        self.run_windowed(cycles, 1);
    }

    /// The windowing core: advances all shards by `cycles` using up to
    /// `workers` host threads (clamped to `1..=shards`). One worker runs
    /// inline on the calling thread with no synchronization; more workers
    /// split the shards into contiguous groups, synchronize at window
    /// boundaries with a barrier, and publish envelopes through the
    /// mailbox exchange as part of their own steps — the barrier's serial
    /// section only folds horizons. Results are bit-identical for every
    /// worker count.
    pub fn run_windowed(&mut self, cycles: Cycle, workers: usize) {
        let end = self.now + cycles;
        if self.now >= end {
            return;
        }
        let n = self.shards.len();
        let workers = workers.clamp(1, n);
        let lookahead = self.effective_lookahead;
        let start = self.now;
        let skip = self.skip_enabled;
        let Self {
            shards,
            inboxes,
            seqs,
            exchange,
            slabs,
            prof,
            contract,
            ..
        } = self;
        let exchange: &Exchange<S::Msg> = exchange;
        let prof = prof.as_deref_mut();
        let contract = contract.as_ref();
        // Copyable profiling context, extracted up front so worker threads
        // never touch the profile itself. All dead when profiling is off.
        let epoch = prof.as_ref().map(|p| p.epoch());
        let sample_every = prof.as_ref().map_or(1, |p| p.config().sample_every.max(1));
        let base_windows = prof.as_ref().map_or(0, |p| p.telemetry().windows);
        let env_bytes = std::mem::size_of::<Envelope<S::Msg>>() as u64;

        let mut lanes: Vec<Lane<'_, S>> = shards
            .iter_mut()
            .zip(inboxes.iter_mut())
            .zip(seqs.iter_mut())
            .zip(slabs.iter_mut())
            .enumerate()
            .map(|(i, (((shard, inbox), seq), slab))| Lane {
                i,
                shard,
                inbox,
                seq,
                slab,
            })
            .collect();
        let (mut stepped, mut skipped) = (0u64, 0u64);
        let mut windows_here = 0u64;
        if workers == 1 {
            let t_busy = epoch.map(|_| Instant::now());
            let mut scratch = epoch.map(|_| WorkerScratch::new(0, n));
            let mut tel = epoch.map(|_| Telemetry::default());
            let mut now = start;
            while now < end {
                let to = now.saturating_add(lookahead).min(end);
                let win = base_windows + tel.as_ref().map_or(0, |t| t.windows);
                let sampled = epoch.is_some() && win.is_multiple_of(sample_every);
                let mut stepped_lanes = 0usize;
                let (mut win_due, mut win_routed) = (u64::MAX, 0u64);
                for lane in &mut lanes {
                    let t0 = epoch.map(|_| Instant::now());
                    let out = window_step(lane, now, to, exchange, skip, contract);
                    let was_skipped = out.skipped;
                    win_due = win_due.min(out.routed_due);
                    win_routed += out.routed;
                    if was_skipped {
                        skipped += to - now;
                    } else {
                        stepped += to - now;
                        stepped_lanes += 1;
                    }
                    if let (Some(epoch), Some(scratch), Some(t0)) = (epoch, scratch.as_mut(), t0) {
                        let ns = ns_since(t0);
                        let sp = &mut scratch.shards[lane.i];
                        let phase = if was_skipped {
                            sp.skip_ns += ns;
                            sp.windows_skipped += 1;
                            scratch.prof.skip_ns += ns;
                            HostPhase::Skip
                        } else {
                            sp.step_ns += ns;
                            sp.windows_stepped += 1;
                            scratch.prof.step_ns += ns;
                            HostPhase::Step
                        };
                        if sampled {
                            scratch.slices.push(HostSlice {
                                track: HostTrack::Shard(lane.i),
                                phase,
                                start_ns: ns_between(epoch, t0),
                                dur_ns: ns,
                            });
                        }
                    }
                }
                // Envelopes were already published lane-by-lane; the old
                // serial routing phase reduces to bookkeeping.
                let t_route = epoch.map(|_| Instant::now());
                windows_here += 1;
                if let (Some(epoch), Some(scratch), Some(tel), Some(t0)) =
                    (epoch, scratch.as_mut(), tel.as_mut(), t_route)
                {
                    let ns = ns_since(t0);
                    scratch.prof.route_ns += ns;
                    scratch.prof.windows += 1;
                    tel.windows += 1;
                    tel.envelopes_total += win_routed;
                    tel.envelope_bytes += win_routed * env_bytes;
                    if sampled {
                        tel.record_sampled(stepped_lanes, n, win_routed);
                        scratch.slices.push(HostSlice {
                            track: HostTrack::Worker(0),
                            phase: HostPhase::Route,
                            start_ns: ns_between(epoch, t0),
                            dur_ns: ns,
                        });
                    }
                }
                now = to;
                if skip && now < end {
                    // Whole-run fast-forward: if every shard, every
                    // undelivered message, and every just-published
                    // envelope is beyond `now`, jump straight to the
                    // earliest of them instead of grinding out empty
                    // windows.
                    let t_skip = epoch.map(|_| Instant::now());
                    let mut h = win_due;
                    for lane in &lanes {
                        h = h.min(lane_horizon(lane, now));
                    }
                    let mut jumped = false;
                    if h > now {
                        let jump = h.min(end);
                        for lane in &mut lanes {
                            lane.shard.skip_window(now, jump);
                        }
                        skipped += (jump - now) * n as u64;
                        now = jump;
                        jumped = true;
                    }
                    if let (Some(scratch), Some(tel), Some(t0)) =
                        (scratch.as_mut(), tel.as_mut(), t_skip)
                    {
                        scratch.prof.skip_ns += ns_since(t0);
                        if jumped {
                            tel.jumps += 1;
                        }
                    }
                }
            }
            if let (Some(p), Some(mut scratch), Some(tel), Some(t0)) = (prof, scratch, tel, t_busy)
            {
                scratch.prof.busy_ns = ns_since(t0);
                p.add_inline(scratch.prof.busy_ns, tel.windows);
                p.merge_scratch(scratch);
                p.merge_telemetry(&tel);
            }
        } else {
            let group_size = n.div_ceil(workers);
            let groups: Vec<&mut [Lane<'_, S>]> = lanes.chunks_mut(group_size).collect();
            let barrier = SpinBarrier::new(groups.len());
            // Cross-worker horizon exchange: each worker folds its lanes'
            // horizons *and* the due-cycles of the envelopes it published
            // this window into `horizon` before the barrier; the serial
            // section just swaps it out and publishes the agreed jump
            // target for everyone. Every shared word gets its own padded
            // line — these are the words every worker hammers once per
            // window, exactly where false sharing hurts most.
            let horizon = CachePadded(AtomicU64::new(u64::MAX));
            let jump_to = CachePadded(AtomicU64::new(0));
            let stepped_total = CachePadded(AtomicU64::new(0));
            let skipped_total = CachePadded(AtomicU64::new(0));
            let windows_total = CachePadded(AtomicU64::new(0));
            // Profiling-only shared state. Workers accumulate phase time
            // in thread-local scratches (merged after the scope); the
            // serial section owns the window telemetry. `first_arrival`,
            // `occupancy`, and `routed_count` carry each window's
            // barrier-arrival minimum, stepped-lane count, and published
            // envelope count to the serial section.
            let first_arrival = CachePadded(AtomicU64::new(u64::MAX));
            let occupancy = CachePadded(AtomicUsize::new(0));
            let routed_count = CachePadded(AtomicU64::new(0));
            let telemetry = Mutex::new(Telemetry::default());
            let scratches = Mutex::new(Vec::<WorkerScratch>::new());
            let t_path = epoch.map(|_| Instant::now());
            std::thread::scope(|scope| {
                for (w, group) in groups.into_iter().enumerate() {
                    let (barrier, horizon, jump_to) = (&barrier, &horizon, &jump_to);
                    let (stepped_total, skipped_total) = (&stepped_total, &skipped_total);
                    let (first_arrival, occupancy) = (&first_arrival, &occupancy);
                    let (routed_count, windows_total) = (&routed_count, &windows_total);
                    let (telemetry, scratches) = (&telemetry, &scratches);
                    scope.spawn(move || {
                        let t_busy = epoch.map(|_| Instant::now());
                        let mut scratch = epoch.map(|_| WorkerScratch::new(w, n));
                        // Window ordinal, identical across workers (the
                        // barrier keeps them in lockstep), so every thread
                        // agrees on which windows are sampled.
                        let mut win = 0u64;
                        let (mut stepped, mut skipped) = (0u64, 0u64);
                        let mut now = start;
                        while now < end {
                            let to = now.saturating_add(lookahead).min(end);
                            let sampled = epoch.is_some()
                                && (base_windows + win).is_multiple_of(sample_every);
                            let mut stepped_lanes = 0usize;
                            let (mut win_due, mut win_routed) = (u64::MAX, 0u64);
                            for lane in group.iter_mut() {
                                let t0 = epoch.map(|_| Instant::now());
                                let out = window_step(lane, now, to, exchange, skip, contract);
                                let was_skipped = out.skipped;
                                win_due = win_due.min(out.routed_due);
                                win_routed += out.routed;
                                if was_skipped {
                                    skipped += to - now;
                                } else {
                                    stepped += to - now;
                                    stepped_lanes += 1;
                                }
                                if let (Some(epoch), Some(scratch), Some(t0)) =
                                    (epoch, scratch.as_mut(), t0)
                                {
                                    let ns = ns_since(t0);
                                    let sp = &mut scratch.shards[lane.i];
                                    let phase = if was_skipped {
                                        sp.skip_ns += ns;
                                        sp.windows_skipped += 1;
                                        scratch.prof.skip_ns += ns;
                                        HostPhase::Skip
                                    } else {
                                        sp.step_ns += ns;
                                        sp.windows_stepped += 1;
                                        scratch.prof.step_ns += ns;
                                        HostPhase::Step
                                    };
                                    if sampled {
                                        scratch.slices.push(HostSlice {
                                            track: HostTrack::Shard(lane.i),
                                            phase,
                                            start_ns: ns_between(epoch, t0),
                                            dur_ns: ns,
                                        });
                                    }
                                }
                            }
                            if skip {
                                // Published due-cycles fold into the same
                                // shared horizon as the lane horizons:
                                // every worker knows its own publishes,
                                // so no serial routing pass is needed to
                                // see the full minimum.
                                let mut h = win_due;
                                for lane in group.iter() {
                                    h = h.min(lane_horizon(lane, to));
                                }
                                horizon.0.fetch_min(h, MemOrder::AcqRel);
                            }
                            if epoch.is_some() && win_routed > 0 {
                                routed_count.0.fetch_add(win_routed, MemOrder::AcqRel);
                            }
                            let t_arrive = epoch.map(|_| Instant::now());
                            if sampled {
                                if let (Some(epoch), Some(t0)) = (epoch, t_arrive) {
                                    occupancy.0.fetch_add(stepped_lanes, MemOrder::AcqRel);
                                    first_arrival
                                        .0
                                        .fetch_min(ns_between(epoch, t0), MemOrder::AcqRel);
                                }
                            }
                            let mut serial_ns = 0u64;
                            // Last group to finish folds the shared
                            // horizon and picks the jump target — O(1),
                            // since routing already happened inside each
                            // worker's step phase — then everyone
                            // proceeds.
                            barrier.wait_with(|| {
                                let t_serial = epoch.map(|_| Instant::now());
                                let mut jump = to;
                                if skip {
                                    let h = horizon.0.swap(u64::MAX, MemOrder::AcqRel);
                                    jump = if h > to { h.min(end) } else { to };
                                    jump_to.0.store(jump, MemOrder::Relaxed);
                                }
                                if let (Some(epoch), Some(t0)) = (epoch, t_serial) {
                                    let n_envs = routed_count.0.swap(0, MemOrder::AcqRel);
                                    let mut tel = telemetry.lock().expect("prof telemetry lock");
                                    tel.windows += 1;
                                    tel.envelopes_total += n_envs;
                                    tel.envelope_bytes += n_envs * env_bytes;
                                    if jump > to {
                                        tel.jumps += 1;
                                    }
                                    if sampled {
                                        let occ = occupancy.0.swap(0, MemOrder::AcqRel);
                                        tel.record_sampled(occ, n, n_envs);
                                        // Barrier-arrival spread: this
                                        // thread arrived last, so its own
                                        // arrival minus the published
                                        // minimum spans all arrivers.
                                        let first =
                                            first_arrival.0.swap(u64::MAX, MemOrder::AcqRel);
                                        if let Some(me) = t_arrive {
                                            let me = ns_between(epoch, me);
                                            if first <= me {
                                                tel.spread.record((me - first) as f64);
                                            }
                                        }
                                    }
                                    serial_ns = ns_since(t0);
                                }
                            });
                            if let (Some(epoch), Some(scratch), Some(t0)) =
                                (epoch, scratch.as_mut(), t_arrive)
                            {
                                let total = ns_since(t0);
                                let wait = total.saturating_sub(serial_ns);
                                scratch.prof.barrier_ns += wait;
                                scratch.prof.route_ns += serial_ns;
                                scratch.prof.windows += 1;
                                if sampled {
                                    let start_ns = ns_between(epoch, t0);
                                    scratch.slices.push(HostSlice {
                                        track: HostTrack::Worker(w),
                                        phase: HostPhase::Barrier,
                                        start_ns,
                                        dur_ns: wait,
                                    });
                                    if serial_ns > 0 {
                                        scratch.slices.push(HostSlice {
                                            track: HostTrack::Worker(w),
                                            phase: HostPhase::Route,
                                            start_ns: start_ns + wait,
                                            dur_ns: serial_ns,
                                        });
                                    }
                                }
                            }
                            win += 1;
                            now = to;
                            if skip {
                                // The barrier release orders this load
                                // after the serial section's store.
                                let jump = jump_to.0.load(MemOrder::Relaxed);
                                if jump > now {
                                    let t0 = epoch.map(|_| Instant::now());
                                    for lane in group.iter_mut() {
                                        lane.shard.skip_window(now, jump);
                                        skipped += jump - now;
                                    }
                                    if let (Some(scratch), Some(t0)) = (scratch.as_mut(), t0) {
                                        scratch.prof.skip_ns += ns_since(t0);
                                    }
                                    now = jump;
                                }
                            }
                        }
                        stepped_total.0.fetch_add(stepped, MemOrder::Relaxed);
                        skipped_total.0.fetch_add(skipped, MemOrder::Relaxed);
                        if w == 0 {
                            // Every worker counts the same boundaries
                            // (lockstep); one representative publishes.
                            windows_total.0.store(win, MemOrder::Relaxed);
                        }
                        if let (Some(mut s), Some(t0)) = (scratch, t_busy) {
                            s.prof.busy_ns = ns_since(t0);
                            scratches.lock().expect("prof scratch lock").push(s);
                        }
                    });
                }
            });
            stepped += stepped_total.0.load(MemOrder::Relaxed);
            skipped += skipped_total.0.load(MemOrder::Relaxed);
            windows_here += windows_total.0.load(MemOrder::Relaxed);
            if let Some(p) = prof {
                let tel = telemetry.into_inner().expect("prof telemetry lock");
                if let Some(t0) = t_path {
                    p.add_parallel(ns_since(t0), tel.windows);
                }
                let mut list = scratches.into_inner().expect("prof scratch lock");
                // Sort so the merge order (and thus any float folds
                // downstream) is independent of thread finish order.
                list.sort_by_key(|s| s.worker);
                for s in list {
                    p.merge_scratch(s);
                }
                p.merge_telemetry(&tel);
            }
        }
        // Anything published in the final window still sits in the
        // mailbox matrix: deliver it so a later run (any worker count)
        // sees it.
        drop(lanes);
        exchange.drain_all(inboxes);
        self.stepped_cycles += stepped;
        self.skipped_cycles += skipped;
        self.windows += windows_here;
        self.now = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: each shard holds a counter; every cycle it adds what it
    /// receives and every `lookahead` cycles sends its parity to the next
    /// shard around a ring.
    struct RingShard {
        id: usize,
        n: usize,
        counter: u64,
        log: Vec<(Cycle, u64)>,
    }

    impl Shard for RingShard {
        type Msg = u64;

        fn run_window(
            &mut self,
            from: Cycle,
            to: Cycle,
            inbox: &mut Inbox<u64>,
            outbox: &mut Outbox<u64>,
        ) {
            for now in from..to {
                while let Some(v) = inbox.pop_due(now) {
                    self.counter = self.counter.wrapping_mul(31).wrapping_add(v);
                    self.log.push((now, self.counter));
                }
            }
            outbox.send((self.id + 1) % self.n, to, self.counter % 97);
        }
    }

    fn make_ring(n: usize) -> Vec<RingShard> {
        (0..n)
            .map(|id| RingShard {
                id,
                n,
                counter: id as u64 + 1,
                log: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn every_worker_count_matches_sequential() {
        let mut seq = ParallelEngine::new(make_ring(8), 4);
        seq.run_sequential(1000);
        for workers in [2, 3, 5, 8, 64] {
            let mut par = ParallelEngine::new(make_ring(8), 4);
            par.run_windowed(1000, workers);
            for (p, s) in par.shards().iter().zip(seq.shards().iter()) {
                assert_eq!(p.counter, s.counter, "{workers} workers diverged");
                assert_eq!(p.log, s.log, "{workers} workers diverged");
            }
        }
    }

    #[test]
    fn messages_actually_flow() {
        let mut eng = ParallelEngine::new(make_ring(4), 2);
        eng.run_parallel(100);
        assert!(eng.shards().iter().all(|s| !s.log.is_empty()));
        assert_eq!(eng.now(), 100);
    }

    #[test]
    fn window_clamps_to_run_end() {
        let mut eng = ParallelEngine::new(make_ring(2), 64);
        eng.run_sequential(10);
        assert_eq!(eng.now(), 10);
    }

    #[test]
    fn single_cycle_windows_match_full_lookahead_windows() {
        // Absolute timestamps make the window length irrelevant to results
        // — for models that emit per simulated cycle (as the chip shards
        // do), not per window. Chop the same run into 1-cycle slices and
        // compare against full-lookahead windows.
        struct Pulse {
            id: usize,
            n: usize,
            acc: u64,
            log: Vec<(Cycle, u64)>,
        }
        impl Shard for Pulse {
            type Msg = u64;
            fn run_window(
                &mut self,
                from: Cycle,
                to: Cycle,
                inbox: &mut Inbox<u64>,
                outbox: &mut Outbox<u64>,
            ) {
                for now in from..to {
                    while let Some(v) = inbox.pop_due(now) {
                        self.acc = self.acc.wrapping_mul(31).wrapping_add(v);
                        self.log.push((now, self.acc));
                    }
                    if now % 3 == self.id as u64 % 3 {
                        outbox.send((self.id + 1) % self.n, now + 4, self.acc % 101);
                    }
                }
            }
        }
        let mk = |n: usize| {
            (0..n)
                .map(|id| Pulse {
                    id,
                    n,
                    acc: id as u64 + 1,
                    log: Vec::new(),
                })
                .collect::<Vec<_>>()
        };
        let mut whole = ParallelEngine::new(mk(6), 4);
        whole.run_sequential(400);
        let mut sliced = ParallelEngine::new(mk(6), 4);
        for _ in 0..400 {
            sliced.run_windowed(1, 1);
        }
        for (a, b) in whole.shards().iter().zip(sliced.shards().iter()) {
            assert_eq!(a.acc, b.acc);
            assert_eq!(a.log, b.log);
        }
    }

    #[test]
    fn delivery_order_is_independent_of_arrival_order() {
        // Four same-cycle envelopes from different (source, sequence)
        // points; every arrival permutation must pop identically.
        let envs: Vec<Envelope<u64>> = vec![
            Envelope {
                at: 5,
                to: 0,
                from: 2,
                seq: 0,
                msg: 20,
            },
            Envelope {
                at: 5,
                to: 0,
                from: 0,
                seq: 1,
                msg: 1,
            },
            Envelope {
                at: 5,
                to: 0,
                from: 0,
                seq: 0,
                msg: 0,
            },
            Envelope {
                at: 3,
                to: 0,
                from: 7,
                seq: 9,
                msg: 79,
            },
        ];
        let expected = [79, 0, 1, 20]; // (at, from, seq) ascending
        fn permute(k: usize, arr: &mut Vec<Envelope<u64>>, out: &mut Vec<Vec<Envelope<u64>>>) {
            if k <= 1 {
                out.push(arr.clone());
                return;
            }
            for i in 0..k {
                permute(k - 1, arr, out);
                let swap = if k.is_multiple_of(2) { i } else { 0 };
                arr.swap(swap, k - 1);
            }
        }
        let mut perms = Vec::new();
        permute(envs.len(), &mut envs.clone(), &mut perms);
        assert_eq!(perms.len(), 24);
        for perm in perms {
            let mut inbox = Inbox::default();
            inbox.push_all(perm);
            let mut got = Vec::new();
            while let Some(m) = inbox.pop_due(10) {
                got.push(m);
            }
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn sequence_counters_persist_across_windows() {
        // Two separate windows emitting at the same future timestamp must
        // still have distinct, ordered sequence numbers.
        struct Burst {
            sender: bool,
            got: Vec<u64>,
        }
        impl Shard for Burst {
            type Msg = u64;
            fn run_window(
                &mut self,
                from: Cycle,
                to: Cycle,
                inbox: &mut Inbox<u64>,
                outbox: &mut Outbox<u64>,
            ) {
                for now in from..to {
                    while let Some(v) = inbox.pop_due(now) {
                        self.got.push(v);
                    }
                }
                if self.sender && from < 15 {
                    // The first three windows all land messages at t=20.
                    outbox.send(1, 20.max(to), from);
                }
            }
        }
        let mk = || {
            vec![
                Burst {
                    sender: true,
                    got: Vec::new(),
                },
                Burst {
                    sender: false,
                    got: Vec::new(),
                },
            ]
        };
        let mut seq = ParallelEngine::new(mk(), 5);
        seq.run_sequential(40);
        let mut par = ParallelEngine::new(mk(), 5);
        par.run_parallel(40);
        assert_eq!(seq.shards()[1].got, par.shards()[1].got);
        assert_eq!(seq.shards()[1].got, vec![0, 5, 10]);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn outbox_rejects_early_timestamps() {
        let mut outbox: Outbox<()> = Outbox::new(0, 10, 0, Vec::new());
        outbox.send(0, 9, ());
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_rejected() {
        let _ = ParallelEngine::new(make_ring(2), 0);
    }

    #[test]
    fn into_shards_returns_state() {
        let mut eng = ParallelEngine::new(make_ring(3), 1);
        eng.run_sequential(5);
        let shards = eng.into_shards();
        assert_eq!(shards.len(), 3);
    }

    /// Toy model with a real horizon: wakes every `period` cycles, pings
    /// the next shard (due two windows out), and tracks idle cycles the
    /// way the chip shards track stall/idle counters — so a horizon bug
    /// would show up as diverging state, not just timing.
    struct Sleeper {
        id: usize,
        n: usize,
        period: Cycle,
        idle_cycles: u64,
        acc: u64,
        log: Vec<(Cycle, u64)>,
    }

    impl Sleeper {
        fn awake_at(&self, now: Cycle) -> Cycle {
            now.next_multiple_of(self.period)
        }
    }

    impl Shard for Sleeper {
        type Msg = u64;

        fn run_window(
            &mut self,
            from: Cycle,
            to: Cycle,
            inbox: &mut Inbox<u64>,
            outbox: &mut Outbox<u64>,
        ) {
            for now in from..to {
                let mut acted = false;
                while let Some(v) = inbox.pop_due(now) {
                    self.acc = self.acc.wrapping_mul(31).wrapping_add(v);
                    self.log.push((now, self.acc));
                    acted = true;
                }
                if now.is_multiple_of(self.period) {
                    outbox.send((self.id + 1) % self.n, now + 2 * self.period, self.acc % 89);
                    acted = true;
                }
                if !acted {
                    self.idle_cycles += 1;
                }
            }
        }

        fn next_event(&self, now: Cycle) -> Option<Cycle> {
            Some(self.awake_at(now))
        }

        fn skip_window(&mut self, from: Cycle, to: Cycle) {
            debug_assert!(self.awake_at(from) >= to, "skipped past a wakeup");
            self.idle_cycles += to - from;
        }
    }

    fn make_sleepers(n: usize, period: Cycle) -> Vec<Sleeper> {
        (0..n)
            .map(|id| Sleeper {
                id,
                n,
                period,
                idle_cycles: 0,
                acc: id as u64 + 7,
                log: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn skipping_is_bit_identical_and_actually_skips() {
        // Long sleep periods relative to the 2-cycle lookahead: the engine
        // should fast-forward most of the run yet reproduce the no-skip
        // states exactly, for every worker count.
        let mut base = ParallelEngine::new(make_sleepers(6, 64), 2);
        base.set_skip_enabled(false);
        base.run_sequential(5_000);
        assert_eq!(base.skipped_cycles(), 0);
        for workers in [1, 2, 6] {
            let mut eng = ParallelEngine::new(make_sleepers(6, 64), 2);
            eng.run_windowed(5_000, workers);
            assert!(
                eng.skipped_cycles() > eng.stepped_cycles(),
                "{workers} workers: skipped {} vs stepped {}",
                eng.skipped_cycles(),
                eng.stepped_cycles()
            );
            for (a, b) in eng.shards().iter().zip(base.shards().iter()) {
                assert_eq!(a.acc, b.acc, "{workers} workers diverged");
                assert_eq!(a.log, b.log, "{workers} workers diverged");
                assert_eq!(a.idle_cycles, b.idle_cycles, "{workers} workers diverged");
            }
            assert_eq!(eng.now(), base.now());
            assert_eq!(eng.pending_messages(), base.pending_messages());
        }
    }

    #[test]
    fn skip_counters_account_for_every_shard_cycle() {
        let mut eng = ParallelEngine::new(make_sleepers(4, 32), 2);
        eng.run_sequential(1_000);
        assert_eq!(eng.stepped_cycles() + eng.skipped_cycles(), 4 * 1_000);
        assert!(eng.skip_ratio() > 0.5);
        let mut off = ParallelEngine::new(make_sleepers(4, 32), 2);
        off.set_skip_enabled(false);
        off.run_sequential(1_000);
        assert_eq!(off.stepped_cycles(), 4 * 1_000);
        assert_eq!(off.skip_ratio(), 0.0);
    }

    #[test]
    fn default_horizon_never_skips() {
        // RingShard keeps the default `Some(now)` horizon, so skipping
        // stays inert even though it is enabled by default.
        let mut eng = ParallelEngine::new(make_ring(4), 4);
        assert!(eng.skip_enabled());
        eng.run_sequential(200);
        assert_eq!(eng.skipped_cycles(), 0);
        assert_eq!(eng.stepped_cycles(), 4 * 200);
    }

    #[test]
    fn resumed_runs_still_skip_identically() {
        // Chop one run into many `run_windowed` calls (as the chip's
        // chunked is_done grid does) and compare against one long call.
        let mut whole = ParallelEngine::new(make_sleepers(5, 48), 2);
        whole.run_sequential(4_096);
        let mut chopped = ParallelEngine::new(make_sleepers(5, 48), 2);
        for _ in 0..4 {
            chopped.run_windowed(1_024, 2);
        }
        for (a, b) in whole.shards().iter().zip(chopped.shards().iter()) {
            assert_eq!(a.acc, b.acc);
            assert_eq!(a.log, b.log);
            assert_eq!(a.idle_cycles, b.idle_cycles);
        }
    }

    #[test]
    fn profiling_is_bit_identical_and_accounts_every_nanosecond() {
        let mut base = ParallelEngine::new(make_sleepers(6, 64), 2);
        base.run_sequential(5_000);
        for workers in [1, 3, 6] {
            let mut eng = ParallelEngine::new(make_sleepers(6, 64), 2);
            eng.enable_profiling(ProfConfig::on());
            eng.run_windowed(5_000, workers);
            for (a, b) in eng.shards().iter().zip(base.shards().iter()) {
                assert_eq!(a.acc, b.acc, "{workers} workers diverged");
                assert_eq!(a.log, b.log, "{workers} workers diverged");
                assert_eq!(a.idle_cycles, b.idle_cycles, "{workers} workers diverged");
            }
            let report = eng.profile().expect("profiling enabled").report();
            // The named buckets are disjoint sub-intervals of each
            // worker's busy interval and `other` is the remainder, so the
            // partition is exact, not approximate.
            assert_eq!(report.phases().total(), report.total_ns());
            for w in &report.workers {
                assert_eq!(w.named_ns() + w.other_ns(), w.busy_ns);
            }
            let tel = &report.telemetry;
            assert!(tel.windows > 0, "{workers} workers saw no windows");
            assert_eq!(tel.sampled_windows, tel.windows); // sample_every = 1
            assert_eq!(tel.occupancy.iter().sum::<u64>(), tel.sampled_windows);
            // Every shard either steps or skips in every window boundary.
            for s in &report.shards {
                assert_eq!(s.windows_stepped + s.windows_skipped, tel.windows);
            }
            assert!(tel.envelopes_total > 0);
            assert!(tel.jumps > 0, "sleepers should trigger whole-run jumps");
            if workers > 1 {
                assert!(report.workers.len() > 1);
                assert!(tel.spread.count() > 0, "no barrier spread samples");
                assert!(report.parallel.windows == tel.windows);
            } else {
                assert_eq!(report.inline.windows, tel.windows);
            }
        }
    }

    #[test]
    fn disabled_profiling_reports_nothing() {
        let mut eng = ParallelEngine::new(make_sleepers(4, 32), 2);
        assert!(eng.profile().is_none());
        eng.enable_profiling(ProfConfig::off());
        eng.run_sequential(1_000);
        assert!(eng.profile().is_none());
    }

    #[test]
    fn sampling_stride_thins_histograms_not_totals() {
        let mut cfg = ProfConfig::on();
        cfg.sample_every = 8;
        let mut eng = ParallelEngine::new(make_ring(4), 2);
        eng.enable_profiling(cfg);
        eng.run_windowed(400, 2);
        let r = eng.profile().expect("profiling enabled").report();
        // 200 windows, every 8th sampled starting at 0 → 25 samples; the
        // phase totals still cover every window.
        assert_eq!(r.telemetry.windows, 200);
        assert_eq!(r.telemetry.sampled_windows, 25);
        assert!(r.phases().total() > 0);
        for w in &r.workers {
            assert_eq!(w.windows, 200);
        }
    }

    /// The satisfiable contract for `make_ring(n)` with a given lookahead:
    /// each shard only messages its ring successor, at exactly the window
    /// end (= window start + lookahead).
    fn ring_contract(n: usize, lookahead: u64) -> HorizonContract {
        let mut c = HorizonContract::unreachable(n);
        for id in 0..n {
            c.allow(id, (id + 1) % n, lookahead);
        }
        c.set_class_floors(vec![lookahead]);
        c
    }

    #[test]
    fn satisfied_contract_is_observation_only() {
        let mut plain = ParallelEngine::new(make_ring(6), 4);
        plain.run_sequential(500);
        for workers in [1, 3, 6] {
            let mut eng = ParallelEngine::new(make_ring(6), 4);
            eng.set_contract(ring_contract(6, 4), |_| 0);
            assert!(eng.contract().is_some());
            eng.run_windowed(500, workers);
            for (a, b) in eng.shards().iter().zip(plain.shards().iter()) {
                assert_eq!(a.counter, b.counter, "{workers} workers diverged");
                assert_eq!(a.log, b.log, "{workers} workers diverged");
            }
        }
        let mut cleared = ParallelEngine::new(make_ring(6), 4);
        cleared.set_contract(ring_contract(6, 4), |_| 0);
        cleared.clear_contract();
        assert!(cleared.contract().is_none());
        cleared.run_sequential(500);
        assert_eq!(cleared.shards()[0].counter, plain.shards()[0].counter);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "under-runs floor")]
    fn contract_floor_violation_panics_in_debug() {
        // RingShard emits at the window end (start + 4); a class floor of
        // 9 promises more delay than the model delivers.
        let mut c = ring_contract(4, 4);
        c.set_class_floors(vec![9]);
        let mut eng = ParallelEngine::new(make_ring(4), 4);
        eng.set_contract(c, |_| 0);
        eng.run_sequential(8);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "must never message")]
    fn contract_unreachable_pair_panics_in_debug() {
        let mut eng = ParallelEngine::new(make_ring(4), 4);
        eng.set_contract(HorizonContract::unreachable(4), |_| 0);
        eng.run_sequential(8);
    }

    #[test]
    #[should_panic(expected = "contract shard count mismatch")]
    fn contract_shard_count_is_checked() {
        let mut eng = ParallelEngine::new(make_ring(4), 4);
        eng.set_contract(HorizonContract::unreachable(5), |_| 0);
    }

    #[test]
    fn spin_budget_adapts_to_party_count_and_host() {
        // Nothing to wait for: never spin.
        assert_eq!(SpinBarrier::spin_budget(1, 8), 0);
        // Oversubscribed: a spinner only steals cycles from the party it
        // is waiting for, so yield on every check.
        assert_eq!(SpinBarrier::spin_budget(16, 8), 0);
        assert_eq!(SpinBarrier::spin_budget(2, 1), 0);
        // More parties -> earlier yield, but never below the floor.
        let two = SpinBarrier::spin_budget(2, 64);
        let eight = SpinBarrier::spin_budget(8, 64);
        let sixty_four = SpinBarrier::spin_budget(64, 64);
        assert!(two >= eight && eight >= sixty_four);
        assert!(sixty_four >= SpinBarrier::SPIN_MIN);
    }

    #[test]
    fn one_party_barrier_never_spins() {
        let barrier = SpinBarrier::new(1);
        // The budget rule grants a lone party zero spins...
        assert_eq!(barrier.spins_per_yield, 0);
        // ...and a lone party is always the last arriver, so the wait
        // loop is unreachable: the serial section runs inline every time.
        let mut ran = 0u32;
        for _ in 0..3 {
            barrier.wait_with(|| ran += 1);
        }
        assert_eq!(ran, 3);
    }

    /// Per-cycle emitter with a self-imposed delay well above the base
    /// lookahead: sends every cycle, `delay` cycles out — so any window
    /// up to `delay` cycles is conservative for it.
    struct Pacer {
        id: usize,
        n: usize,
        delay: Cycle,
        acc: u64,
        log: Vec<(Cycle, u64)>,
    }

    impl Shard for Pacer {
        type Msg = u64;

        fn run_window(
            &mut self,
            from: Cycle,
            to: Cycle,
            inbox: &mut Inbox<u64>,
            outbox: &mut Outbox<u64>,
        ) {
            for now in from..to {
                while let Some(v) = inbox.pop_due(now) {
                    self.acc = self.acc.wrapping_mul(31).wrapping_add(v);
                    self.log.push((now, self.acc));
                }
                outbox.send((self.id + 1) % self.n, now + self.delay, self.acc % 103);
            }
        }
    }

    fn make_pacers(n: usize, delay: Cycle) -> Vec<Pacer> {
        (0..n)
            .map(|id| Pacer {
                id,
                n,
                delay,
                acc: id as u64 + 3,
                log: Vec::new(),
            })
            .collect()
    }

    /// Ring contract for `make_pacers`: successor-only, floor = delay.
    fn pacer_contract(n: usize, delay: u64) -> HorizonContract {
        let mut c = HorizonContract::unreachable(n);
        for id in 0..n {
            c.allow(id, (id + 1) % n, delay);
        }
        c.set_class_floors(vec![delay]);
        c
    }

    #[test]
    fn contract_widening_grows_windows_and_stays_bit_identical() {
        // Base lookahead 2, contract floor 8: widening amortizes each
        // barrier over 4x the simulated cycles without changing results,
        // for every worker count.
        let mut narrow = ParallelEngine::new(make_pacers(4, 8), 2);
        narrow.set_contract(pacer_contract(4, 8), |_| 0);
        assert_eq!(narrow.effective_lookahead(), 2, "widening is opt-in");
        narrow.run_sequential(400);
        assert_eq!(narrow.windows(), 200);
        for workers in [1, 2, 4] {
            let mut wide = ParallelEngine::new(make_pacers(4, 8), 2);
            wide.set_contract(pacer_contract(4, 8), |_| 0);
            assert_eq!(wide.widen_from_contract(), 8);
            wide.run_windowed(400, workers);
            assert_eq!(wide.windows(), 50, "{workers} workers");
            for (a, b) in wide.shards().iter().zip(narrow.shards().iter()) {
                assert_eq!(a.acc, b.acc, "{workers} workers diverged");
                assert_eq!(a.log, b.log, "{workers} workers diverged");
            }
        }
    }

    #[test]
    fn widening_resets_with_the_contract() {
        let mut eng = ParallelEngine::new(make_pacers(4, 8), 2);
        assert_eq!(eng.widen_from_contract(), 2, "no contract: base stays");
        eng.set_contract(pacer_contract(4, 8), |_| 0);
        assert_eq!(eng.widen_from_contract(), 8);
        // Installing a different contract discards the old widening.
        eng.set_contract(pacer_contract(4, 8), |_| 0);
        assert_eq!(eng.effective_lookahead(), 2);
        eng.widen_from_contract();
        eng.clear_contract();
        assert_eq!(eng.effective_lookahead(), 2);
    }

    #[test]
    fn unreachable_contract_widens_to_a_single_window() {
        // Shards the contract proves fully independent: the whole run is
        // one window, and the barrier fires exactly once.
        struct Silent {
            ticks: u64,
        }
        impl Shard for Silent {
            type Msg = ();
            fn run_window(
                &mut self,
                from: Cycle,
                to: Cycle,
                _inbox: &mut Inbox<()>,
                _outbox: &mut Outbox<()>,
            ) {
                self.ticks += to - from;
            }
        }
        let mut eng = ParallelEngine::new(vec![Silent { ticks: 0 }, Silent { ticks: 0 }], 2);
        eng.set_contract(HorizonContract::unreachable(2), |_| 0);
        assert_eq!(eng.widen_from_contract(), u64::MAX);
        eng.run_windowed(10_000, 2);
        assert_eq!(eng.windows(), 1);
        assert!(eng.shards().iter().all(|s| s.ticks == 10_000));
    }

    #[test]
    fn pending_messages_counts_undelivered_envelopes() {
        let mut eng = ParallelEngine::new(make_ring(2), 8);
        assert_eq!(eng.pending_messages(), 0);
        eng.run_sequential(8);
        // Each shard sent one message due at cycle 8, not yet consumed.
        assert_eq!(eng.pending_messages(), 2);
        eng.run_sequential(8);
        assert_eq!(eng.pending_messages(), 2);
    }
}
