//! Conservative time-window parallel discrete-event execution (PDES).
//!
//! The paper's simulation platform (§4.2) is a parallel discrete-event
//! simulator: a framework layer handles synchronization, communication and
//! parallel acceleration, and function modules plug into it. This module is
//! that framework layer.
//!
//! The classic conservative scheme: partition the model into [`Shard`]s
//! whose only interaction is timestamped messages with a minimum delivery
//! latency (the *lookahead*, e.g. the router pipeline depth between a
//! sub-ring and the main ring). All shards can then safely advance
//! `lookahead` cycles in parallel without seeing each other's messages,
//! because anything a peer emits inside the window cannot become visible
//! until the next window. At each window boundary the engine routes the
//! emitted envelopes into the destination shards' inboxes.
//!
//! Determinism: envelopes are routed in (source shard, emission order), and
//! inboxes deliver equal-timestamp messages FIFO, so results are identical
//! to sequential execution regardless of thread scheduling — which
//! [`ParallelEngine::run_sequential`] exists to verify.

use crate::event::EventWheel;
use crate::Cycle;

/// Timestamped message addressed to another shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Cycle at which the message becomes visible to the destination.
    pub at: Cycle,
    /// Destination shard index.
    pub to: usize,
    /// Payload.
    pub msg: M,
}

/// Messages delivered to a shard, popped in timestamp order.
#[derive(Debug, Clone)]
pub struct Inbox<M> {
    wheel: EventWheel<M>,
}

impl<M> Default for Inbox<M> {
    fn default() -> Self {
        Self {
            wheel: EventWheel::new(),
        }
    }
}

impl<M> Inbox<M> {
    /// Pops the next message due at or before `now`, if any.
    pub fn pop_due(&mut self, now: Cycle) -> Option<M> {
        self.wheel.pop_due(now)
    }

    /// Number of undelivered messages.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    fn push(&mut self, at: Cycle, msg: M) {
        self.wheel.schedule(at, msg);
    }
}

/// Collects messages a shard emits during a window.
#[derive(Debug)]
pub struct Outbox<M> {
    window_end: Cycle,
    envelopes: Vec<Envelope<M>>,
}

impl<M> Outbox<M> {
    fn new(window_end: Cycle) -> Self {
        Self {
            window_end,
            envelopes: Vec::new(),
        }
    }

    /// Sends `msg` to shard `to`, visible at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the end of the current window — that
    /// would violate the lookahead contract and make parallel execution
    /// diverge from sequential execution.
    pub fn send(&mut self, to: usize, at: Cycle, msg: M) {
        assert!(
            at >= self.window_end,
            "lookahead violation: message timestamped {at} inside window ending {}",
            self.window_end
        );
        self.envelopes.push(Envelope { at, to, msg });
    }
}

/// A partition of the model that advances independently within a window.
pub trait Shard: Send {
    /// Message type exchanged between shards.
    type Msg: Send;

    /// Advances the shard through cycles `[from, to)`, consuming inbox
    /// messages as they come due and emitting cross-shard messages with
    /// timestamps `>= to` into `outbox`.
    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<Self::Msg>,
        outbox: &mut Outbox<Self::Msg>,
    );
}

/// Drives a set of shards with conservative window synchronization.
#[derive(Debug)]
pub struct ParallelEngine<S: Shard> {
    shards: Vec<S>,
    inboxes: Vec<Inbox<S::Msg>>,
    lookahead: Cycle,
    now: Cycle,
}

impl<S: Shard> ParallelEngine<S> {
    /// Creates an engine over `shards` with the given `lookahead` (minimum
    /// cross-shard message latency, in cycles).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or `lookahead` is zero.
    pub fn new(shards: Vec<S>, lookahead: Cycle) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(lookahead > 0, "lookahead must be positive");
        let inboxes = shards.iter().map(|_| Inbox::default()).collect();
        Self {
            shards,
            inboxes,
            lookahead,
            now: 0,
        }
    }

    /// Current simulation time (start of the next window).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Shared view of the shards (for collecting statistics).
    pub fn shards(&self) -> &[S] {
        &self.shards
    }

    /// Exclusive view of the shards.
    pub fn shards_mut(&mut self) -> &mut [S] {
        &mut self.shards
    }

    /// Consumes the engine and returns its shards.
    pub fn into_shards(self) -> Vec<S> {
        self.shards
    }

    /// Runs `cycles` further cycles with one persistent worker thread per
    /// shard; workers synchronize at window boundaries with a barrier and
    /// a single routing phase keeps message delivery deterministic.
    pub fn run_parallel(&mut self, cycles: Cycle) {
        use std::sync::{Barrier, Mutex};
        let end = self.now + cycles;
        if self.now >= end {
            return;
        }
        let n = self.shards.len();
        let lookahead = self.lookahead;
        let start = self.now;
        // Workers park their window's envelopes here; the router phase
        // moves them (in shard order) into the staging rows, which each
        // worker drains into its own inbox at the next window start.
        let produced: Vec<Mutex<Vec<Envelope<S::Msg>>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        type Staging<M> = Vec<Mutex<Vec<(Cycle, M)>>>;
        let staging: Staging<S::Msg> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = Barrier::new(n + 1);
        std::thread::scope(|scope| {
            for (i, (shard, inbox)) in self
                .shards
                .iter_mut()
                .zip(self.inboxes.iter_mut())
                .enumerate()
            {
                let produced = &produced;
                let staging = &staging;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut now = start;
                    while now < end {
                        let to = (now + lookahead).min(end);
                        for (at, msg) in staging[i].lock().expect("staging lock").drain(..) {
                            inbox.push(at, msg);
                        }
                        let mut outbox = Outbox::new(to);
                        shard.run_window(now, to, inbox, &mut outbox);
                        *produced[i].lock().expect("produced lock") = outbox.envelopes;
                        barrier.wait(); // all windows produced
                        barrier.wait(); // router finished
                        now = to;
                    }
                });
            }
            // Router phase on the coordinating thread.
            let mut now = start;
            while now < end {
                let to = (now + lookahead).min(end);
                barrier.wait(); // wait for every shard's window
                for slot in &produced {
                    for env in slot.lock().expect("produced lock").drain(..) {
                        assert!(env.to < n, "unknown shard {}", env.to);
                        staging[env.to]
                            .lock()
                            .expect("staging lock")
                            .push((env.at, env.msg));
                    }
                }
                barrier.wait(); // release the workers
                now = to;
            }
        });
        // Anything routed in the final window still sits in staging:
        // deliver it so a later run (parallel or sequential) sees it.
        for (i, slot) in staging.into_iter().enumerate() {
            for (at, msg) in slot.into_inner().expect("staging lock") {
                self.inboxes[i].push(at, msg);
            }
        }
        self.now = end;
    }

    /// Runs `cycles` further cycles on the calling thread with identical
    /// semantics to [`run_parallel`](Self::run_parallel); used to validate
    /// that parallel execution is deterministic.
    pub fn run_sequential(&mut self, cycles: Cycle) {
        let end = self.now + cycles;
        while self.now < end {
            let to = (self.now + self.lookahead).min(end);
            let from = self.now;
            let mut outboxes = Vec::with_capacity(self.shards.len());
            for (shard, inbox) in self.shards.iter_mut().zip(self.inboxes.iter_mut()) {
                let mut outbox = Outbox::new(to);
                shard.run_window(from, to, inbox, &mut outbox);
                outboxes.push(outbox);
            }
            self.route(outboxes);
            self.now = to;
        }
    }

    fn route(&mut self, outboxes: Vec<Outbox<S::Msg>>) {
        // Route in (source shard, emission order); inboxes are FIFO at equal
        // timestamps, so delivery order is deterministic.
        for outbox in outboxes {
            for env in outbox.envelopes {
                assert!(env.to < self.inboxes.len(), "unknown shard {}", env.to);
                self.inboxes[env.to].push(env.at, env.msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: each shard holds a counter; every cycle it adds what it
    /// receives and every `lookahead` cycles sends its parity to the next
    /// shard around a ring.
    struct RingShard {
        id: usize,
        n: usize,
        counter: u64,
        log: Vec<(Cycle, u64)>,
    }

    impl Shard for RingShard {
        type Msg = u64;

        fn run_window(
            &mut self,
            from: Cycle,
            to: Cycle,
            inbox: &mut Inbox<u64>,
            outbox: &mut Outbox<u64>,
        ) {
            for now in from..to {
                while let Some(v) = inbox.pop_due(now) {
                    self.counter = self.counter.wrapping_mul(31).wrapping_add(v);
                    self.log.push((now, self.counter));
                }
            }
            outbox.send((self.id + 1) % self.n, to, self.counter % 97);
        }
    }

    fn make_ring(n: usize) -> Vec<RingShard> {
        (0..n)
            .map(|id| RingShard {
                id,
                n,
                counter: id as u64 + 1,
                log: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut par = ParallelEngine::new(make_ring(8), 4);
        par.run_parallel(1000);
        let mut seq = ParallelEngine::new(make_ring(8), 4);
        seq.run_sequential(1000);
        for (p, s) in par.shards().iter().zip(seq.shards().iter()) {
            assert_eq!(p.counter, s.counter);
            assert_eq!(p.log, s.log);
        }
    }

    #[test]
    fn messages_actually_flow() {
        let mut eng = ParallelEngine::new(make_ring(4), 2);
        eng.run_parallel(100);
        assert!(eng.shards().iter().all(|s| !s.log.is_empty()));
        assert_eq!(eng.now(), 100);
    }

    #[test]
    fn window_clamps_to_run_end() {
        let mut eng = ParallelEngine::new(make_ring(2), 64);
        eng.run_sequential(10);
        assert_eq!(eng.now(), 10);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn outbox_rejects_early_timestamps() {
        let mut outbox: Outbox<()> = Outbox::new(10);
        outbox.send(0, 9, ());
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_rejected() {
        let _ = ParallelEngine::new(make_ring(2), 0);
    }

    #[test]
    fn into_shards_returns_state() {
        let mut eng = ParallelEngine::new(make_ring(3), 1);
        eng.run_sequential(5);
        let shards = eng.into_shards();
        assert_eq!(shards.len(), 3);
    }
}
